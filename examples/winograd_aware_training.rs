//! Static vs learned transforms under quantization (Figures 4 and 5).
//!
//! Trains the same INT8 LeNet four ways — F2/F4, each with static
//! Cook-Toom transforms and with learnable (`-flex`) transforms — and
//! shows the paper's headline result: *learning the Winograd transforms
//! strictly helps under quantization, and the gap grows with tile size*.
//!
//! Run with: `cargo run --release --example winograd_aware_training`

use winograd_aware::core::{fit, ConvAlgo, OptimKind, TrainConfig};
use winograd_aware::data::mnist_like;
use winograd_aware::models::{ConvNet, LeNet, ModelSpec};
use winograd_aware::nn::QuantConfig;
use winograd_aware::quant::BitWidth;
use winograd_aware::tensor::SeededRng;

fn train_one(algo: ConvAlgo, seed: u64) -> f64 {
    let mut rng = SeededRng::new(seed);
    let ds = mnist_like(30, 12, 3);
    let (train, val) = ds.split(0.8);
    let train_b = train.shuffled_batches(32, &mut rng);
    let val_b = val.batches(32);

    let spec = ModelSpec::builder()
        .classes(10)
        .input_size(12)
        .quant(QuantConfig::uniform(BitWidth::INT8))
        .algo(algo)
        .build()
        .expect("valid LeNet spec");
    let mut net = LeNet::from_spec(&spec, &mut rng).expect("valid LeNet spec");
    let _ = net.conv_count();
    let cfg = TrainConfig {
        epochs: 20,
        optim: OptimKind::Adam { lr: 2e-3 },
        weight_decay: 0.0,
        cosine_to: Some(1e-4),
    };
    fit(&mut net, &train_b, &val_b, &cfg).best_val_acc()
}

fn main() {
    println!("INT8 LeNet (5×5 filters) on mnist-like — Winograd-aware training");
    println!(
        "{:<10} {:>10} {:>10} {:>8}",
        "config", "static", "flex", "gap"
    );
    for m in [2usize, 4] {
        let stat = train_one(ConvAlgo::Winograd { m }, 11 + m as u64);
        let flex = train_one(ConvAlgo::WinogradFlex { m }, 11 + m as u64);
        println!(
            "F({0}×{0},5×5) {1:>9.1}% {2:>9.1}% {3:>+7.1}%",
            m,
            100.0 * stat,
            100.0 * flex,
            100.0 * (flex - stat)
        );
    }
    let baseline = train_one(ConvAlgo::Im2row, 11);
    println!(
        "{:<10} {:>10.1}% (im2row reference)",
        "direct",
        100.0 * baseline
    );
    println!("\nLearning the transforms absorbs quantization error (paper Fig. 5).");
}
