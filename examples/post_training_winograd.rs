//! The Table 1 experiment: why you cannot just swap in Winograd.
//!
//! Trains a LeNet with standard convolutions, then replaces them with
//! Winograd convolutions of growing tile size at FP32 and INT8 — with the
//! paper's observer warm-up but *no retraining*. Full precision survives;
//! quantized large tiles collapse. This is the problem Winograd-aware
//! training solves.
//!
//! Run with: `cargo run --release --example post_training_winograd`

use winograd_aware::core::{fit, ConvAlgo, OptimKind, TrainConfig, WaError};
use winograd_aware::data::mnist_like;
use winograd_aware::models::{swap_and_evaluate, LeNet, ModelSpec};
use winograd_aware::nn::QuantConfig;
use winograd_aware::quant::BitWidth;
use winograd_aware::tensor::SeededRng;

fn main() -> Result<(), WaError> {
    let mut rng = SeededRng::new(1);
    let ds = mnist_like(30, 12, 3);
    let (train, val) = ds.split(0.8);
    let train_b = train.shuffled_batches(32, &mut rng);
    let val_b = val.batches(32);

    let spec = ModelSpec::builder().classes(10).input_size(12).build()?;
    let mut net = LeNet::from_spec(&spec, &mut rng)?;
    let cfg = TrainConfig {
        epochs: 8,
        optim: OptimKind::Adam { lr: 2e-3 },
        weight_decay: 0.0,
        cosine_to: Some(1e-4),
    };
    let hist = fit(&mut net, &train_b, &val_b, &cfg);
    let baseline = hist.final_val_acc();
    println!("baseline (direct conv, FP32): {:.1}%\n", 100.0 * baseline);
    println!("post-training swap (observer warm-up, no retraining):");
    println!("{:<14} {:>8} {:>8}", "convolution", "FP32", "INT8");

    // direct-conv reference separates pure-quantization loss from
    // Winograd-induced loss
    {
        let mut row = format!("{:<14}", "direct");
        for bits in [BitWidth::FP32, BitWidth::INT8] {
            let (_, acc) = swap_and_evaluate(
                &mut net,
                ConvAlgo::Im2row,
                QuantConfig::uniform(bits),
                &train_b[..2],
                &val_b,
                0,
            )?;
            row.push_str(&format!(" {:>7.1}%", 100.0 * acc));
        }
        println!("{row}");
    }

    for m in [2usize, 4, 6] {
        let mut row = format!("{:<14}", format!("Winograd F{}", m));
        for bits in [BitWidth::FP32, BitWidth::INT8] {
            // fresh copy of the trained model for each cell
            let (_, acc) = swap_and_evaluate(
                &mut net,
                ConvAlgo::Winograd { m },
                QuantConfig::uniform(bits),
                &train_b[..2],
                &val_b,
                0,
            )?;
            row.push_str(&format!(" {:>7.1}%", 100.0 * acc));
            // restore direct convolution for the next cell
            let (_, _) = swap_and_evaluate(
                &mut net,
                ConvAlgo::Im2row,
                QuantConfig::FP32,
                &train_b[..2],
                &val_b,
                0,
            )?;
        }
        println!("{row}");
    }
    println!("\nLarger tiles amplify quantization noise (paper Table 1).");
    println!("FP32 columns stay near the baseline; INT8 degrades with tile size —");
    println!("note these are 5×5 filters (6×6 tiles already at F2), the paper's");
    println!("hardest case; the bench harness reproduces Table 1 on 3×3 ResNet-18.");
    Ok(())
}
