//! Quickstart: train an INT8 Winograd-aware CNN end-to-end.
//!
//! Builds a narrow ResNet-18 (the paper's CIFAR variant), converts its
//! convolutions to Winograd-aware F4 with *learnable* transforms
//! (`F4-flex`), trains on a synthetic CIFAR-10-shaped dataset at INT8,
//! and reports accuracy — the core capability the paper demonstrates:
//! large-tile Winograd + 8-bit quantization, trained jointly.
//!
//! Run with: `cargo run --release --example quickstart`

use winograd_aware::core::{fit, ConvAlgo, OptimKind, TrainConfig, WaError};
use winograd_aware::data::cifar10_like;
use winograd_aware::models::{ModelSpec, ResNet18};
use winograd_aware::nn::QuantConfig;
use winograd_aware::quant::BitWidth;
use winograd_aware::tensor::SeededRng;

fn main() -> Result<(), WaError> {
    let mut rng = SeededRng::new(42);

    // Small-scale defaults so the example finishes in about a minute;
    // the bench harness runs the full sweeps.
    let ds = cifar10_like(80, 16, 7);
    let (train, val) = ds.split(0.8);
    let train_b = train.shuffled_batches(24, &mut rng);
    let val_b = val.batches(24);

    println!("winograd-aware quickstart");
    println!(
        "  dataset : {} ({} train / {} val images)",
        ds.name,
        train.len(),
        val.len()
    );

    let spec = ModelSpec::builder()
        .classes(10)
        .width(0.125)
        .quant(QuantConfig::uniform(BitWidth::INT8))
        .algo(ConvAlgo::WinogradFlex { m: 4 })
        .build()?;
    let mut model = ResNet18::from_spec(&spec, &mut rng)?;
    println!("  model   : ResNet-18 (width 0.125), F4-flex Winograd-aware, INT8");

    let cfg = TrainConfig {
        epochs: 10,
        optim: OptimKind::Adam { lr: 2e-3 },
        weight_decay: 1e-4,
        cosine_to: Some(1e-5),
    };
    let history = fit(&mut model, &train_b, &val_b, &cfg);

    for e in &history.epochs {
        println!(
            "  epoch {:2}  train loss {:.3}  train acc {:5.1}%  val acc {:5.1}%",
            e.epoch,
            e.train_loss,
            100.0 * e.train_acc,
            100.0 * e.val_acc
        );
    }
    println!(
        "final validation accuracy: {:.1}% (chance = 10%)",
        100.0 * history.final_val_acc()
    );
    Ok(())
}
