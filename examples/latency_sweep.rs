//! Figures 7 and 8: when does Winograd actually win on a mobile CPU?
//!
//! Prints the modeled Cortex-A73 latency grid (output size × channel
//! configuration × algorithm) and the per-stage breakdown for three
//! ResNet-18 layers on both cores — the decision data wiNAS consumes.
//!
//! Run with: `cargo run --release --example latency_sweep`

use winograd_aware::latency::{
    conv_latency_ms, figure8_bars, Core, DType, LatAlgo, LayerShape, FIGURE7_ALGOS,
    FIGURE7_CHANNELS, FIGURE7_WIDTHS,
};

fn main() {
    println!("Modeled latencies (ms), Cortex-A73, FP32 — Figure 7 analog\n");
    print!("{:>5}", "outW");
    for (ic, oc) in FIGURE7_CHANNELS {
        print!(" | {:^31}", format!("{}->{}", ic, oc));
    }
    println!();
    print!("{:>5}", "");
    for _ in FIGURE7_CHANNELS {
        print!(" | {:>7}{:>8}{:>8}{:>8}", "im2row", "F2", "F4", "F6");
    }
    println!();
    for &ow in &FIGURE7_WIDTHS {
        print!("{:>5}", ow);
        for &(ic, oc) in &FIGURE7_CHANNELS {
            print!(" |");
            for &algo in &FIGURE7_ALGOS {
                let shape = LayerShape::square(ic, oc, ow, 3);
                let ms = conv_latency_ms(Core::CortexA73, DType::Fp32, algo, shape);
                print!("{:>8.3}", ms);
            }
        }
        println!();
    }

    println!("\nBest algorithm per output width (64->64 channels):");
    for &ow in &FIGURE7_WIDTHS {
        let shape = LayerShape::square(64, 64, ow, 3);
        let best = FIGURE7_ALGOS
            .iter()
            .min_by(|&&a, &&b| {
                conv_latency_ms(Core::CortexA73, DType::Fp32, a, shape)
                    .partial_cmp(&conv_latency_ms(Core::CortexA73, DType::Fp32, b, shape))
                    .unwrap()
            })
            .unwrap();
        print!("{}@{} ", best, ow);
    }
    println!("\n(note the F4/F6 alternation from tile waste — paper §6.2)");

    for core in [Core::CortexA73, Core::CortexA53] {
        println!("\nStage breakdown vs im2row on {core} (Figure 8 analog):");
        println!(
            "{:<22} {:>8} {:>9} {:>9} {:>9} {:>7}",
            "layer", "algo", "input", "gemm", "output", "ratio"
        );
        for bar in figure8_bars(core) {
            if bar.algo == LatAlgo::Im2col {
                continue;
            }
            println!(
                "{:<22} {:>8} {:>8.3} {:>8.3} {:>8.3} {:>6.2}x",
                format!(
                    "{}x{} {}->{}",
                    bar.shape.out_h, bar.shape.out_w, bar.shape.in_ch, bar.shape.out_ch
                ),
                bar.algo.to_string(),
                bar.breakdown.input_stage_ms,
                bar.breakdown.gemm_ms,
                bar.breakdown.output_stage_ms,
                bar.ratio_vs_im2row,
            );
        }
    }
    println!("\nInput layers do not benefit from Winograd; mid-network layers do,");
    println!("more on the A73 than on the bandwidth-bound A53 (paper §6.2).");
}
