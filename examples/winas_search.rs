//! Figure 9: wiNAS picks a per-layer convolution algorithm (and
//! precision) for a fixed macro-architecture.
//!
//! Runs the two-stage search on a reduced ResNet-style macro-architecture
//! at two latency weights λ₂, then prints the chosen architectures — high
//! λ₂ pushes layers toward fast Winograd tiles, low λ₂ keeps
//! numerically-safer choices.
//!
//! Run with: `cargo run --release --example winas_search`

use winograd_aware::core::WaError;
use winograd_aware::data::cifar10_like;
use winograd_aware::latency::Core;
use winograd_aware::nas::{MacroArch, SearchSpace, WiNas, WiNasConfig};
use winograd_aware::quant::BitWidth;
use winograd_aware::tensor::SeededRng;

fn main() -> Result<(), WaError> {
    let mut rng = SeededRng::new(3);
    let ds = cifar10_like(16, 16, 5);
    let (train, val) = ds.split(0.75);
    let train_b = train.shuffled_batches(20, &mut rng);
    let val_b = val.batches(20);

    // a 2-stage / 2-block macro-arch (8 searchable slots) for demo speed
    let arch = MacroArch {
        classes: 10,
        stem_ch: 8,
        stages: vec![(8, 1, false), (16, 1, true)],
        input_size: 16,
    };
    let space = SearchSpace::wa(BitWidth::INT8);
    println!(
        "search space: {} ({} candidates/layer, {} layers)\n",
        space.name,
        space.len(),
        arch.slot_count()
    );

    for lambda2 in [0.0f32, 5.0] {
        let cfg = WiNasConfig {
            epochs: 6,
            lambda2,
            arch_lr: 0.2,
            core: Core::CortexA73,
            seed: 7,
            ..WiNasConfig::default()
        };
        let mut nas = WiNas::new(&arch, space.clone(), cfg, &mut rng.fork(lambda2 as u64))?;
        let log = nas.search(&train_b, &val_b);
        let last = log.last().unwrap();
        println!(
            "λ₂ = {:<5} val acc {:>5.1}%  E[latency] {:>6.3} ms  entropy {:.2}",
            lambda2,
            100.0 * last.val_acc,
            last.expected_latency_ms,
            last.entropy
        );
        print!("  architecture: input -> im2row(stem)");
        for cand in nas.extract() {
            print!(" -> {}", cand);
        }
        println!(" -> FC\n");
    }
    println!("Higher λ₂ trades numerical headroom for speed (paper Fig. 9 / Table 3).");
    Ok(())
}
