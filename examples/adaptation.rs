//! Figure 6: adapting a pretrained model to Winograd-aware INT8 in a few
//! epochs instead of retraining from scratch.
//!
//! Three arms on the same data and budget, as in the paper's Figure 6:
//!
//! 1. post-training swap to F4 INT8 with observer warm-up (no retraining)
//!    — collapses (Table 1);
//! 2. Winograd-aware F4-flex INT8 trained **from scratch** for the short
//!    budget;
//! 3. the same short budget **adapting** an FP32 direct-conv pretrained
//!    model — recovers fastest, and "is only possible when allowing the
//!    transformation matrices to evolve during training".
//!
//! Run with: `cargo run --release --example adaptation`

use winograd_aware::core::{evaluate, fit, warm_up, ConvAlgo, OptimKind, TrainConfig, WaError};
use winograd_aware::data::cifar10_like;
use winograd_aware::models::{adapt, convert_convs, set_conv_quant, ModelSpec, ResNet18};
use winograd_aware::nn::QuantConfig;
use winograd_aware::quant::BitWidth;
use winograd_aware::tensor::SeededRng;

fn main() -> Result<(), WaError> {
    let mut rng = SeededRng::new(5);
    let ds = cifar10_like(60, 16, 7);
    let (train, val) = ds.split(0.8);
    let train_b = train.shuffled_batches(24, &mut rng);
    let val_b = val.batches(24);
    let int8 = QuantConfig::uniform(BitWidth::INT8);
    let cfg = |epochs: usize| TrainConfig {
        epochs,
        optim: OptimKind::Adam { lr: 2e-3 },
        weight_decay: 1e-4,
        cosine_to: Some(1e-5),
    };
    let budget = 8; // the short budget (paper: 20 of 120 epochs)

    // ---- arm 2: from scratch at the short budget
    let scratch_spec = ModelSpec::builder()
        .classes(10)
        .width(0.125)
        .quant(int8)
        .algo(ConvAlgo::WinogradFlex { m: 4 })
        .build()?;
    let mut scratch = ResNet18::from_spec(&scratch_spec, &mut rng.fork(1))?;
    let h_scratch = fit(&mut scratch, &train_b, &val_b, &cfg(budget));

    // ---- pretrain an FP32 direct-convolution model
    let fp32_spec = ModelSpec::builder().classes(10).width(0.125).build()?;
    let mut net = ResNet18::from_spec(&fp32_spec, &mut rng.fork(2))?;
    let h_pre = fit(&mut net, &train_b, &val_b, &cfg(10));
    println!(
        "FP32 direct-conv pretraining (10 epochs): {:.1}%",
        100.0 * h_pre.final_val_acc()
    );

    // ---- arm 1: swap + warm-up only
    let mut swapped = ResNet18::from_spec(&fp32_spec, &mut rng.fork(2))?;
    let _ = fit(&mut swapped, &train_b, &val_b, &cfg(10));
    convert_convs(&mut swapped, ConvAlgo::WinogradFlex { m: 4 }, 4)?;
    set_conv_quant(&mut swapped, int8);
    warm_up(&mut swapped, &train_b);
    let (_, acc_swap) = evaluate(&mut swapped, &val_b);

    // ---- arm 3: adaptation at the short budget (F2-pinned last blocks)
    let h_adapt = adapt(
        &mut net,
        ConvAlgo::WinogradFlex { m: 4 },
        int8,
        &train_b,
        &val_b,
        &cfg(budget),
        4,
    )?;

    println!("\nINT8 F4-flex ResNet-18, equal {}-epoch budget:", budget);
    println!(
        "  swap + warm-up, no retraining : {:>5.1}%  (the Table 1 collapse)",
        100.0 * acc_swap
    );
    println!(
        "  trained from scratch          : {:>5.1}%",
        100.0 * h_scratch.best_val_acc()
    );
    println!(
        "  adapted from FP32 pretraining : {:>5.1}%   per-epoch {:?}",
        100.0 * h_adapt.best_val_acc(),
        h_adapt
            .epochs
            .iter()
            .map(|e| format!("{:.0}%", 100.0 * e.val_acc))
            .collect::<Vec<_>>()
    );
    println!("\nAdaptation converges fastest (paper Fig. 6: full WA accuracy in 20");
    println!("epochs, a 2.8× training-time reduction).");
    Ok(())
}
