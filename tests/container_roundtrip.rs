//! Binary-container round-trip sweep: every zoo architecture × every
//! quantization mode goes JSON ⇄ binary with nothing lost, and a model
//! rebuilt from the binary form produces bit-identical logits to the
//! original — the container is a *lossless* re-encoding, not an
//! approximation.

use winograd_aware::core::ConvAlgo;
use winograd_aware::models::{ExecutorConfig, Infer, ModelKind, ModelSpec, ZooModel};
use winograd_aware::nn::{
    is_container, read_checkpoint, write_checkpoint, FullCheckpoint, Layer, QuantConfig, Tape,
};
use winograd_aware::quant::BitWidth;
use winograd_aware::tensor::SeededRng;

const CFG: ExecutorConfig = ExecutorConfig {
    threads: 2,
    chunk: 2,
};

fn spec_for(kind: ModelKind, quant: QuantConfig) -> ModelSpec {
    // per-tap transforms only exist on Winograd layers, so the whole
    // sweep runs the paper's F2 algorithm
    let builder = ModelSpec::builder()
        .classes(10)
        .algo(ConvAlgo::Winograd { m: 2 })
        .quant(quant);
    match kind {
        ModelKind::LeNet => builder.input_size(12),
        _ => builder.input_size(8).width(0.125),
    }
    .build()
    .expect("static spec")
}

/// A calibrated model of the given kind/quant — one training batch
/// warms every observer so quantized specs export a `quant` section.
fn calibrated(kind: ModelKind, quant: QuantConfig, rng: &mut SeededRng) -> ZooModel {
    let spec = spec_for(kind, quant);
    let mut model = ZooModel::from_spec(kind, &spec, rng).expect("static spec");
    let [c, h, w] = model.sample_shape();
    let warm = rng.uniform_tensor(&[2, c, h, w], -1.0, 1.0);
    let mut tape = Tape::new();
    let x = tape.leaf(warm);
    let _ = model.forward(&mut tape, x, true);
    model
}

#[test]
fn binary_roundtrip_is_lossless_across_the_zoo() {
    let mut rng = SeededRng::new(60);
    let quants = [
        QuantConfig::FP32,
        QuantConfig::uniform(BitWidth::INT8),
        QuantConfig::per_tap(BitWidth::INT8),
    ];
    for kind in [
        ModelKind::LeNet,
        ModelKind::ResNet18,
        ModelKind::SqueezeNet,
        ModelKind::ResNeXt20,
    ] {
        for quant in quants {
            let mut original = calibrated(kind, quant, &mut rng);
            let doc = original.to_full_checkpoint().expect("export");

            // JSON → binary → JSON: every field survives verbatim
            let json_text = doc.to_json().to_string_pretty();
            let from_json = FullCheckpoint::from_json_str(&json_text).expect("JSON parses");
            let bytes = write_checkpoint(&from_json);
            assert!(is_container(&bytes), "{kind}/{quant:?}: magic missing");
            let back = read_checkpoint(&bytes).expect("container parses");
            assert_eq!(back.arch, doc.arch, "{kind}/{quant:?}");
            assert_eq!(back.spec, doc.spec, "{kind}/{quant:?}: spec drifted");
            assert_eq!(back.quant, doc.quant, "{kind}/{quant:?}: quant drifted");
            assert_eq!(
                back.params.params, doc.params.params,
                "{kind}/{quant:?}: params drifted"
            );
            // ... and re-encoding the decoded document is byte-stable
            assert_eq!(bytes, write_checkpoint(&back), "{kind}/{quant:?}");

            // binary → load → forward: bit-identical logits
            let rebuilt = ZooModel::from_full_checkpoint(&back).expect("rebuild");
            assert_eq!(rebuilt.kind(), kind);
            let [c, h, w] = original.sample_shape();
            let batch = rng.uniform_tensor(&[3, c, h, w], -1.0, 1.0);
            let want = original.try_forward_batch(&batch, CFG).expect("original");
            let got = rebuilt.try_forward_batch(&batch, CFG).expect("rebuilt");
            assert_eq!(
                want.data(),
                got.data(),
                "{kind}/{quant:?}: binary-loaded model must match bit-for-bit"
            );
        }
    }
}

#[test]
fn per_tap_bit_overrides_survive_the_binary_roundtrip() {
    // mixed per-tap bit-widths are the hardest quant state to carry:
    // they ride the container's `quant` metadata exactly like JSON
    use winograd_aware::nn::QuantStateMut;
    use winograd_aware::quant::BitWidth as B;

    let mut rng = SeededRng::new(61);
    let mut original = calibrated(
        ModelKind::LeNet,
        QuantConfig::per_tap(BitWidth::INT8),
        &mut rng,
    );
    original.visit_quant_state(&mut |name, site| {
        if let QuantStateMut::Taps(taps) = site {
            if name.ends_with(".q.bdb") {
                let mut bits = vec![B::INT8; taps.taps()];
                bits[0] = B::INT16;
                taps.set_bit_overrides(Some(bits)).expect("right length");
            }
        }
    });
    let doc = original.to_full_checkpoint().expect("export");
    let back = read_checkpoint(&write_checkpoint(&doc)).expect("container parses");
    assert_eq!(back.quant, doc.quant, "overrides must survive verbatim");

    let rebuilt = ZooModel::from_full_checkpoint(&back).expect("rebuild");
    let batch = rng.uniform_tensor(&[4, 1, 12, 12], -1.0, 1.0);
    let want = original.try_forward_batch(&batch, CFG).expect("original");
    let got = rebuilt.try_forward_batch(&batch, CFG).expect("rebuilt");
    assert_eq!(want.data(), got.data());
}

#[test]
fn quant_section_errors_name_the_same_paths_in_both_formats() {
    // the JSON reader and the binary reader share one error-path helper,
    // so a broken calibration site diagnoses identically either way
    let json = "{\"arch\": \"lenet\", \"spec\": {}, \
         \"quant\": {\"conv1.q.bdb\": {\"ranges\": [0.5, \"x\"], \"seen\": 1, \"frozen\": false}}, \
         \"params\": {}}";
    let json_err = FullCheckpoint::from_json_str(json).expect_err("bad range");
    assert!(
        json_err.message.contains("`quant.conv1.q.bdb.ranges`"),
        "{json_err}"
    );

    let container = winograd_aware::nn::Container {
        meta: vec![
            ("arch".to_string(), "lenet".to_string()),
            ("spec".to_string(), "{}".to_string()),
            (
                "quant".to_string(),
                "{\"conv1.q.bdb\": {\"ranges\": [0.5, \"x\"], \"seen\": 1, \"frozen\": false}}"
                    .to_string(),
            ),
        ],
        blobs: Vec::new(),
    };
    let bin_err = read_checkpoint(&container.to_bytes()).expect_err("bad range");
    assert!(
        bin_err.to_string().contains("`quant.conv1.q.bdb.ranges`"),
        "binary reader must carry the same site path, got: {bin_err}"
    );
}
