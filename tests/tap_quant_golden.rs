//! Tap-wise quantization golden suite: the `PerTap` transform-domain
//! policy with **uniform** tap scales must be bit-for-bit equal to the
//! `PerLayer` path — for every paper tile size (F2/F4/F6) at FP32 and
//! INT8 — and genuinely *tap-wise* calibration must both diverge from
//! per-layer scales and reduce the Winograd-domain quantization error
//! that motivates it (Tap-Wise Quantization, Andri et al. 2022).

use winograd_aware::core::{ConvAlgo, ConvSpec, WinogradAwareConv2d};
use winograd_aware::nn::{
    export_params, export_quant_state, import_params, import_quant_state, Layer, QuantConfig, Tape,
};
use winograd_aware::quant::{BitWidth, TapPolicy};
use winograd_aware::tensor::{SeededRng, Tensor};

fn spec(m: usize, quant: QuantConfig) -> ConvSpec {
    ConvSpec::builder()
        .name("wa")
        .in_channels(4)
        .out_channels(4)
        .kernel(3)
        .pad(1)
        .algo(ConvAlgo::Winograd { m })
        .quant(quant)
        .build()
        .expect("static spec")
}

fn train_fwd(layer: &mut WinogradAwareConv2d, x: &Tensor) {
    let mut tape = Tape::new();
    let xv = tape.leaf(x.clone());
    let _ = layer.forward(&mut tape, xv, true);
}

fn infer_fwd(layer: &WinogradAwareConv2d, x: &Tensor) -> Tensor {
    use winograd_aware::nn::Infer;
    let mut tape = Tape::new();
    let xv = tape.leaf(x.clone());
    let y = layer.infer(&mut tape, xv).expect("infer");
    tape.value(y).clone()
}

/// Builds a `PerTap` twin of a warmed `PerLayer` layer by transferring
/// its parameters and calibration state; the per-layer ranges broadcast
/// onto the tap grids, i.e. *uniform taps*.
fn per_tap_twin(
    per_layer: &mut WinogradAwareConv2d,
    m: usize,
    bits: BitWidth,
) -> WinogradAwareConv2d {
    let mut twin = WinogradAwareConv2d::from_spec(
        &spec(
            m,
            QuantConfig::uniform(bits).with_transform(TapPolicy::PerTap),
        ),
        &mut SeededRng::new(999),
    )
    .expect("static spec");
    let params = export_params(per_layer).expect("unique names");
    import_params(&mut twin, &params).expect("same geometry");
    let state = export_quant_state(per_layer).expect("unique names");
    let applied = import_quant_state(&mut twin, &state).expect("observer state broadcasts");
    assert_eq!(applied, 9, "all nine Figure-2 sites must transfer");
    twin
}

#[test]
fn per_tap_with_uniform_taps_is_bit_identical_to_per_layer() {
    for m in [2usize, 4, 6] {
        for bits in [BitWidth::FP32, BitWidth::INT8] {
            let mut rng = SeededRng::new(40 + m as u64);
            let mut a =
                WinogradAwareConv2d::from_spec(&spec(m, QuantConfig::uniform(bits)), &mut rng)
                    .expect("static spec");
            // calibrate the per-layer observers on one batch
            let warm = rng.uniform_tensor(&[2, 4, 12, 12], -1.0, 1.0);
            train_fwd(&mut a, &warm);

            let b = per_tap_twin(&mut a, m, bits);
            let x = rng.uniform_tensor(&[3, 4, 12, 12], -1.0, 1.0);
            let want = infer_fwd(&a, &x);
            let got = infer_fwd(&b, &x);
            assert_eq!(
                want.data(),
                got.data(),
                "F{m} {bits}: PerTap with uniform taps must be bit-identical to PerLayer"
            );
        }
    }
}

#[test]
fn calibrated_tap_ranges_are_non_uniform_and_diverge_from_per_layer() {
    // A layer that *calibrates* tap-wise (rather than inheriting a
    // broadcast per-layer range) sees different ranges per tap position
    // and therefore quantizes differently.
    let mut rng = SeededRng::new(41);
    let mut a =
        WinogradAwareConv2d::from_spec(&spec(4, QuantConfig::uniform(BitWidth::INT8)), &mut rng)
            .expect("static spec");
    let mut b = WinogradAwareConv2d::from_spec(&spec(4, QuantConfig::per_tap(BitWidth::INT8)), {
        &mut SeededRng::new(999)
    })
    .expect("static spec");
    let params = export_params(&mut a).expect("unique names");
    import_params(&mut b, &params).expect("same geometry");

    let warm = rng.uniform_tensor(&[2, 4, 12, 12], -1.0, 1.0);
    train_fwd(&mut a, &warm);
    train_fwd(&mut b, &warm);

    let (bdb, ggt) = b.tap_calibration();
    for (name, taps) in [("BᵀdB", bdb), ("G·g·Gᵀ", ggt)] {
        let r = taps.ranges();
        assert!(taps.observations() > 0, "{name} taps must have calibrated");
        assert!(
            r.iter().any(|v| (v - r[0]).abs() > 1e-9),
            "{name}: real Winograd-domain data must produce non-uniform tap ranges, got {r:?}"
        );
    }

    let x = rng.uniform_tensor(&[3, 4, 12, 12], -1.0, 1.0);
    assert_ne!(
        infer_fwd(&a, &x).data(),
        infer_fwd(&b, &x).data(),
        "tap-wise calibration must change the INT8 output"
    );
}

#[test]
fn per_tap_scales_reduce_winograd_domain_quantization_error() {
    // The point of the scheme: fitting each tap's scale to its own
    // observed range wastes less of the integer grid on the quiet taps.
    // Build F6-tile rows whose taps span wildly different amplitudes
    // (the structure real `BᵀdB` tiles have — pinned non-uniform by the
    // test above) and compare the INT8 rounding error of one shared
    // scale against per-tap scales calibrated on the same data.
    use winograd_aware::quant::{fake_quant_taps, quantization_rmse, ObserverMode, TapQuant};

    let mut rng = SeededRng::new(42);
    let (n, rows) = (6usize, 64usize);
    let taps = n * n;
    let mut x = rng.uniform_tensor(&[rows, taps], -1.0, 1.0);
    for (i, v) in x.data_mut().iter_mut().enumerate() {
        // corner taps amplified ~60× over the quiet center taps
        *v *= 0.05 + 3.0 * (i % taps) as f32 / taps as f32;
    }

    // RunningMax calibration on the exact data: per-tap scales clip
    // nothing and use a finer grid wherever a tap is quiet
    let mut tq = TapQuant::with_mode(n, ObserverMode::RunningMax);
    tq.observe(&x);
    let q = fake_quant_taps(
        &x,
        &tq.effective_bits(BitWidth::INT8),
        &tq.scales(BitWidth::INT8),
    );
    let per_tap: f64 = {
        let acc: f64 = x
            .data()
            .iter()
            .zip(q.data())
            .map(|(a, b)| ((a - b) as f64).powi(2))
            .sum();
        (acc / x.len() as f64).sqrt()
    };
    let per_layer = quantization_rmse(&x, BitWidth::INT8, x.max_abs() / 127.0);
    assert!(
        per_tap < 0.75 * per_layer,
        "per-tap scales must cut the Winograd-domain rounding error: \
         per-tap {per_tap} vs per-layer {per_layer}"
    );
}

#[test]
fn per_tap_bit_overrides_flow_through_the_pipeline() {
    // Mixed per-tap precision: dropping a few taps to INT4 must change
    // the output (the overrides are live), while FP32 overrides on every
    // tap make the two Winograd-domain sites lossless.
    let mut rng = SeededRng::new(43);
    let mut layer =
        WinogradAwareConv2d::from_spec(&spec(2, QuantConfig::per_tap(BitWidth::INT8)), &mut rng)
            .expect("static spec");
    let warm = rng.uniform_tensor(&[2, 4, 8, 8], -1.0, 1.0);
    train_fwd(&mut layer, &warm);
    let x = rng.uniform_tensor(&[2, 4, 8, 8], -1.0, 1.0);
    let base = infer_fwd(&layer, &x);

    let taps = layer.tap_calibration().0.taps();
    let mut coarse = vec![BitWidth::INT8; taps];
    for b in coarse.iter_mut().take(taps / 2) {
        *b = BitWidth::Int(4);
    }
    layer
        .tap_calibration_mut()
        .0
        .set_bit_overrides(Some(coarse))
        .expect("right length");
    let mixed = infer_fwd(&layer, &x);
    assert_ne!(
        base.data(),
        mixed.data(),
        "INT4 tap overrides must change the quantized output"
    );
}
