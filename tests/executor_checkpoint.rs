//! Checkpoint round-trip through the executor: `export_params` →
//! `import_params` into a fresh `ModelSpec`-built model → batched forward
//! produces identical logits.
//!
//! Parameters are the *entire* serialized state here: the models are
//! used fresh (no training), so batch-norm running statistics and range
//! observers are at their construction defaults on both sides — which is
//! exactly the state a serving node reconstructs from a spec + params
//! document.

use winograd_aware::core::ConvAlgo;
use winograd_aware::models::{ExecutorConfig, Infer, LeNet, ModelSpec, ResNet18};
use winograd_aware::nn::{export_params, import_params, Checkpoint, QuantConfig};
use winograd_aware::quant::BitWidth;
use winograd_aware::tensor::{SeededRng, Tensor};

const CFG: ExecutorConfig = ExecutorConfig {
    threads: 2,
    chunk: 2,
};

#[test]
fn lenet_fp32_roundtrip_reproduces_batched_logits() {
    let spec = ModelSpec::builder()
        .classes(10)
        .input_size(12)
        .algo(ConvAlgo::Winograd { m: 2 })
        .build()
        .expect("static spec");
    let mut rng_a = SeededRng::new(10);
    let mut a = LeNet::from_spec(&spec, &mut rng_a).expect("static spec");
    // fresh model with *different* weights, rebuilt from the same spec
    let mut rng_b = SeededRng::new(99);
    let mut b = LeNet::from_spec(&spec, &mut rng_b).expect("static spec");

    let batch = rng_a.uniform_tensor(&[5, 1, 12, 12], -1.0, 1.0);
    let logits_a = a.try_forward_batch(&batch, CFG).expect("batched forward");
    let before = b.try_forward_batch(&batch, CFG).expect("batched forward");
    assert_ne!(
        logits_a.data(),
        before.data(),
        "differently-seeded models must disagree before the import"
    );

    // export → JSON text → parse → import (the full wire round-trip)
    let ckpt = export_params(&mut a).expect("unique parameter names");
    let json = ckpt.to_json().to_string_pretty();
    let restored = Checkpoint::from_json_str(&json).expect("checkpoint JSON parses");
    let n = import_params(&mut b, &restored).expect("import succeeds");
    assert!(n > 0, "import must update parameters");

    let logits_b = b.try_forward_batch(&batch, CFG).expect("batched forward");
    assert_eq!(logits_a.shape(), logits_b.shape());
    assert_eq!(
        logits_a.data(),
        logits_b.data(),
        "imported model must produce identical batched logits"
    );
}

#[test]
fn lenet_int8_roundtrip_reproduces_batched_logits() {
    // Quantized variant: both models are un-warmed, so every inference
    // scale is derived deterministically from the (identical) weights
    // and inputs — the round-trip must still be exact.
    let spec = ModelSpec::builder()
        .classes(10)
        .input_size(12)
        .quant(QuantConfig::uniform(BitWidth::INT8))
        .build()
        .expect("static spec");
    let mut rng_a = SeededRng::new(11);
    let mut a = LeNet::from_spec(&spec, &mut rng_a).expect("static spec");
    let mut b = LeNet::from_spec(&spec, &mut SeededRng::new(12)).expect("static spec");

    let ckpt = export_params(&mut a).expect("unique parameter names");
    import_params(&mut b, &ckpt).expect("import succeeds");

    let batch = rng_a.uniform_tensor(&[4, 1, 12, 12], -1.0, 1.0);
    let logits_a = a.try_forward_batch(&batch, CFG).expect("batched forward");
    let logits_b = b.try_forward_batch(&batch, CFG).expect("batched forward");
    assert_eq!(logits_a.data(), logits_b.data());
}

#[test]
fn resnet18_roundtrip_reproduces_batched_logits() {
    let spec = ModelSpec::builder()
        .classes(10)
        .width(0.125)
        .algo(ConvAlgo::Winograd { m: 2 })
        .build()
        .expect("static spec");
    let mut rng_a = SeededRng::new(13);
    let mut a = ResNet18::from_spec(&spec, &mut rng_a).expect("static spec");
    let mut b = ResNet18::from_spec(&spec, &mut SeededRng::new(14)).expect("static spec");

    let ckpt = export_params(&mut a).expect("unique parameter names");
    import_params(&mut b, &ckpt).expect("import succeeds");

    let batch = rng_a.uniform_tensor(&[3, 3, 8, 8], -1.0, 1.0);
    let logits_a = a.try_forward_batch(&batch, CFG).expect("batched forward");
    let logits_b = b.try_forward_batch(&batch, CFG).expect("batched forward");
    assert_eq!(logits_a.data(), logits_b.data());
}

#[test]
fn import_into_wrong_geometry_fails_before_any_batched_forward() {
    let mut rng = SeededRng::new(15);
    let spec_a = ModelSpec::builder()
        .classes(10)
        .input_size(12)
        .build()
        .expect("static spec");
    let spec_b = ModelSpec::builder()
        .classes(7) // different head width
        .input_size(12)
        .build()
        .expect("static spec");
    let mut a = LeNet::from_spec(&spec_a, &mut rng).expect("static spec");
    let mut b = LeNet::from_spec(&spec_b, &mut rng).expect("static spec");
    let ckpt = export_params(&mut a).expect("unique parameter names");
    let before: Vec<Tensor> = {
        let mut vals = Vec::new();
        winograd_aware::nn::Layer::visit_params(&mut b, &mut |p| vals.push(p.value.clone()));
        vals
    };
    assert!(import_params(&mut b, &ckpt).is_err(), "shape mismatch");
    // failed import must not have mutated anything
    let mut after = Vec::new();
    winograd_aware::nn::Layer::visit_params(&mut b, &mut |p| after.push(p.value.clone()));
    assert_eq!(before.len(), after.len());
    for (x, y) in before.iter().zip(&after) {
        assert_eq!(x, y);
    }
}
