//! Seeded corrupt-container battery: ~30 deterministic mutations of a
//! real binary checkpoint, every one of which must come back as a
//! structured `CheckpointError` naming the offending field — never a
//! panic, and never an allocation beyond a small multiple of the input
//! (a counting global allocator enforces the bound, so a hostile
//! declared count can't size a gigabyte `Vec` out of a kilobyte file).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, Ordering};

use winograd_aware::core::ConvAlgo;
use winograd_aware::models::{ModelKind, ModelSpec, ZooModel};
use winograd_aware::nn::{
    read_checkpoint, write_checkpoint, Blob, BlobData, BlobDtype, CheckpointError, Container,
    Layer, QuantConfig, Tape,
};
use winograd_aware::quant::BitWidth;
use winograd_aware::tensor::{SeededRng, Tensor};

/// System allocator with live-bytes accounting, so each parse attempt
/// can assert a peak-allocation ceiling relative to its input size.
struct CountingAlloc;

static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);

fn note_alloc(bytes: i64) {
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size() as i64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            note_alloc(new_size as i64 - layout.size() as i64);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// FNV-1a 64 (the container's trailing checksum), re-derived here so a
/// structural mutation can re-seal the file and exercise the *field*
/// validation instead of tripping the checksum.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Recomputes and rewrites the trailing checksum after a structural
/// mutation.
fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
    let body = bytes.len() - 8;
    let sum = fnv1a64(&bytes[..body]);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
    bytes
}

/// Byte positions of one blob-table row's fields.
struct BlobFields {
    name_len: usize,
    dtype: usize,
    ndim: usize,
    dims: usize,
    scale_count: usize,
    offset: usize,
    byte_len: usize,
    /// Decoded dimension count, for picking multi-dim blobs.
    dims_decoded: usize,
    /// Decoded data offset, for flipping blob-data bytes.
    offset_decoded: usize,
}

/// Walks a well-formed container's bytes and records where every
/// structural field of the header/table lives, so mutations can hit
/// exact fields instead of guessing at byte positions.
struct Layout2 {
    meta_count: usize,
    first_meta_key_len: usize,
    first_meta_key: usize,
    first_meta_val_len: usize,
    blob_count: usize,
    blobs: Vec<BlobFields>,
}

fn layout_of(bytes: &[u8]) -> Layout2 {
    let u32_at = |p: usize| u32::from_le_bytes(bytes[p..p + 4].try_into().unwrap()) as usize;
    let u64_at = |p: usize| u64::from_le_bytes(bytes[p..p + 8].try_into().unwrap()) as usize;
    let mut p = 8; // magic + version
    let meta_count = p;
    let metas = u32_at(p);
    p += 4;
    let first_meta_key_len = p;
    let first_meta_key = p + 4;
    let mut first_meta_val_len = 0;
    for i in 0..metas {
        p += 4 + u32_at(p); // key
        if i == 0 {
            first_meta_val_len = p;
        }
        p += 4 + u32_at(p); // value
    }
    let blob_count = p;
    let count = u32_at(p);
    p += 4;
    let mut blobs = Vec::new();
    for _ in 0..count {
        let name_len = p;
        p += 4 + u32_at(p);
        let dtype = p;
        p += 1;
        let ndim = p;
        let dims_decoded = u32_at(p);
        p += 4;
        let dims = p;
        p += 8 * dims_decoded;
        let scale_count = p;
        p += 4 + 4 * u32_at(p);
        let offset = p;
        let offset_decoded = u64_at(p);
        p += 8;
        let byte_len = p;
        p += 8;
        blobs.push(BlobFields {
            name_len,
            dtype,
            ndim,
            dims,
            scale_count,
            offset,
            byte_len,
            dims_decoded,
            offset_decoded,
        });
    }
    Layout2 {
        meta_count,
        first_meta_key_len,
        first_meta_key,
        first_meta_val_len,
        blob_count,
        blobs,
    }
}

/// A calibrated int8 LeNet checkpoint in container form — a real file
/// with metadata, a quant section and dozens of blobs.
fn checkpoint_bytes() -> Vec<u8> {
    let spec = ModelSpec::builder()
        .classes(10)
        .input_size(12)
        .algo(ConvAlgo::Winograd { m: 2 })
        .quant(QuantConfig::uniform(BitWidth::INT8))
        .build()
        .expect("static spec");
    let mut model =
        ZooModel::from_spec(ModelKind::LeNet, &spec, &mut SeededRng::new(3)).expect("build");
    // one training batch warms every observer so `quant` is non-empty
    let warm = SeededRng::new(4).uniform_tensor(&[2, 1, 12, 12], -1.0, 1.0);
    let mut tape = Tape::new();
    let x = tape.leaf(warm);
    let _ = model.forward(&mut tape, x, true);
    write_checkpoint(&model.to_full_checkpoint().expect("export"))
}

fn put_u32(bytes: &mut [u8], at: usize, v: u32) {
    bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u64(bytes: &mut [u8], at: usize, v: u64) {
    bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

/// One battery case: a label, the mutated bytes, and a substring the
/// structured error must contain (the "useful path" requirement).
struct Case {
    label: &'static str,
    bytes: Vec<u8>,
    expect: &'static str,
}

fn battery(base: &[u8]) -> Vec<Case> {
    let lay = layout_of(base);
    let multi = lay
        .blobs
        .iter()
        .position(|b| b.dims_decoded >= 2)
        .expect("a conv weight has >= 2 dims");
    // scalar copies so every mutation closure can capture by value
    let meta_count = lay.meta_count;
    let first_meta_key_len = lay.first_meta_key_len;
    let first_meta_key = lay.first_meta_key;
    let first_meta_val_len = lay.first_meta_val_len;
    let blob_count = lay.blob_count;
    let b0_name_len = lay.blobs[0].name_len;
    let b0_dtype = lay.blobs[0].dtype;
    let b0_ndim = lay.blobs[0].ndim;
    let b0_dims = lay.blobs[0].dims;
    let b0_scale_count = lay.blobs[0].scale_count;
    let b0_offset = lay.blobs[0].offset;
    let b0_byte_len = lay.blobs[0].byte_len;
    let b0_offset_decoded = lay.blobs[0].offset_decoded;
    let b1_offset = lay.blobs[1].offset;
    let multi_dims = lay.blobs[multi].dims;
    let case = |label, bytes, expect| Case {
        label,
        bytes,
        expect,
    };
    type Mutation = Box<dyn FnMut(&mut Vec<u8>)>;
    let sealed = |label, mut f: Mutation, expect| {
        let mut bytes = base.to_vec();
        f(&mut bytes);
        case(label, reseal(bytes), expect)
    };
    let mut cases = vec![
        case("empty input", Vec::new(), "header"),
        case("three bytes", base[..3].to_vec(), "header"),
        case("header only, no sections", base[..23].to_vec(), "header"),
        case(
            "JSON text where a container was expected",
            b"{\"arch\": \"lenet\", \"spec\": {}, \"params\": {}}".to_vec(),
            "magic",
        ),
        case(
            "first magic byte flipped",
            {
                let mut b = base.to_vec();
                b[0] ^= 0xFF;
                b
            },
            "magic",
        ),
        case(
            "checksum flipped",
            {
                let mut b = base.to_vec();
                let last = b.len() - 1;
                b[last] ^= 0xFF;
                b
            },
            "checksum",
        ),
        case(
            "one blob-data byte flipped (structurally invisible)",
            {
                let mut b = base.to_vec();
                let at = b0_offset_decoded + 1;
                b[at] ^= 0x40;
                b
            },
            "checksum",
        ),
        case("file cut in half", base[..base.len() / 2].to_vec(), ""),
        sealed("future version", Box::new(|b| put_u32(b, 4, 2)), "version"),
        sealed("version zero", Box::new(|b| put_u32(b, 4, 0)), "version"),
        sealed(
            "metadata count beyond the file",
            Box::new(move |b| put_u32(b, meta_count, u32::MAX)),
            "meta.count",
        ),
        sealed(
            "metadata key length beyond the file",
            Box::new(move |b| put_u32(b, first_meta_key_len, u32::MAX - 7)),
            "meta[0].key",
        ),
        sealed(
            "metadata key is not UTF-8",
            Box::new(move |b| {
                b[first_meta_key] = 0xFF;
                b[first_meta_key + 1] = 0xFE;
            }),
            "meta[0].key",
        ),
        sealed(
            "metadata value length beyond the file",
            Box::new(move |b| put_u32(b, first_meta_val_len, 0x7FFF_FFF0)),
            "meta[0].value",
        ),
        sealed(
            "blob count beyond the file",
            Box::new(move |b| put_u32(b, blob_count, u32::MAX)),
            "blobs.count",
        ),
        sealed(
            "blob name length beyond the file",
            Box::new(move |b| put_u32(b, b0_name_len, 0x7000_0000)),
            "blobs[0].name",
        ),
        sealed(
            "unknown dtype tag",
            Box::new(move |b| b[b0_dtype] = 7),
            "dtype",
        ),
        sealed(
            "zero dimensions",
            Box::new(move |b| put_u32(b, b0_ndim, 0)),
            "shape",
        ),
        sealed(
            "dimension count beyond the file",
            Box::new(move |b| put_u32(b, b0_ndim, u32::MAX / 2)),
            "shape",
        ),
        sealed(
            "zero-sized dimension",
            Box::new(move |b| put_u64(b, b0_dims, 0)),
            "shape",
        ),
        sealed(
            "dimension of u64::MAX",
            Box::new(move |b| put_u64(b, b0_dims, u64::MAX)),
            "",
        ),
        sealed(
            "element count that overflows usize",
            Box::new(move |b| {
                let dims = multi_dims;
                put_u64(b, dims, 1 << 33);
                put_u64(b, dims + 8, 1 << 33);
            }),
            "overflows",
        ),
        sealed(
            "huge but non-overflowing dimension",
            Box::new(move |b| put_u64(b, b0_dims, 1 << 40)),
            "byte_len",
        ),
        sealed(
            "scale count beyond the file",
            Box::new(move |b| put_u32(b, b0_scale_count, u32::MAX - 3)),
            "scales",
        ),
        sealed(
            "declared byte length off by one",
            Box::new(move |b| {
                let at = b0_byte_len;
                let v = u64::from_le_bytes(b[at..at + 8].try_into().unwrap());
                put_u64(b, at, v + 1);
            }),
            "byte_len",
        ),
        sealed(
            "unaligned blob offset",
            Box::new(move |b| {
                let at = b0_offset;
                put_u64(b, at, b0_offset_decoded as u64 + 1);
            }),
            "offset",
        ),
        sealed(
            "blob offset beyond the data region",
            Box::new(move |b| put_u64(b, b0_offset, 1 << 40)),
            "offset",
        ),
        sealed(
            "blob offset inside the table",
            Box::new(move |b| put_u64(b, b0_offset, 0)),
            "overlap",
        ),
        sealed(
            "two blobs at the same offset",
            Box::new(move |b| {
                put_u64(b, b1_offset, b0_offset_decoded as u64);
            }),
            "overlap",
        ),
        case(
            "trailing garbage after the last blob",
            {
                let mut b = base.to_vec();
                let body = b.len() - 8;
                b.splice(body..body, std::iter::repeat_n(0u8, 128));
                reseal(b)
            },
            "data",
        ),
    ];
    // malformed-by-construction containers: shapes the writer would
    // never emit, but a reader must still refuse with a named field
    let tensor = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
    let mut f32_with_scales = Container {
        meta: vec![("arch".to_string(), "lenet".to_string())],
        blobs: vec![Blob::from_tensor("w", &tensor)],
    };
    f32_with_scales.blobs[0].scales = vec![0.5];
    cases.push(case(
        "f32 blob carrying scales",
        f32_with_scales.to_bytes(),
        "scales",
    ));
    let i8_blob = |scales: Vec<f32>| Blob {
        name: "q".to_string(),
        dtype: BlobDtype::I8,
        shape: vec![2, 3],
        scales,
        data: BlobData::I8(vec![1, -2, 4, 8, -8, 100]),
    };
    cases.push(case(
        "i8 blob with the wrong scale count",
        Container {
            meta: Vec::new(),
            blobs: vec![i8_blob(vec![0.5, 0.25, 0.125])],
        }
        .to_bytes(),
        "scales",
    ));
    cases.push(case(
        "i8 blob with a NaN scale",
        Container {
            meta: Vec::new(),
            blobs: vec![i8_blob(vec![f32::NAN])],
        }
        .to_bytes(),
        "finite",
    ));
    cases.push(case(
        "duplicate metadata key",
        Container {
            meta: vec![
                ("arch".to_string(), "lenet".to_string()),
                ("arch".to_string(), "resnet18".to_string()),
            ],
            blobs: Vec::new(),
        }
        .to_bytes(),
        "duplicate",
    ));
    cases.push(case(
        "duplicate blob name",
        Container {
            meta: Vec::new(),
            blobs: vec![
                Blob::from_tensor("w", &tensor),
                Blob::from_tensor("w", &tensor),
            ],
        }
        .to_bytes(),
        "duplicate",
    ));
    cases.push(case(
        "container without an arch key",
        Container {
            meta: vec![("spec".to_string(), "{}".to_string())],
            blobs: Vec::new(),
        }
        .to_bytes(),
        "meta.arch",
    ));
    cases.push(case(
        "spec metadata that is not JSON",
        Container {
            meta: vec![
                ("arch".to_string(), "lenet".to_string()),
                ("spec".to_string(), "not json".to_string()),
            ],
            blobs: Vec::new(),
        }
        .to_bytes(),
        "meta.spec",
    ));
    cases
}

/// The whole battery runs inside one test so the allocator counters are
/// never raced by a concurrently-running sibling test.
#[test]
fn every_corrupt_container_is_a_structured_error_with_bounded_allocation() {
    let base = checkpoint_bytes();
    // sanity: the untampered file parses
    read_checkpoint(&base).expect("pristine container must parse");

    let cases = battery(&base);
    assert!(cases.len() >= 30, "battery shrank to {} cases", cases.len());
    for Case {
        label,
        bytes,
        expect,
    } in &cases
    {
        let baseline = LIVE.load(Ordering::Relaxed);
        PEAK.store(baseline, Ordering::Relaxed);
        let result = read_checkpoint(bytes);
        let peak = PEAK.load(Ordering::Relaxed) - baseline;
        let err = match result {
            Err(e) => e,
            Ok(_) => panic!("{label}: corrupt container parsed successfully"),
        };
        assert!(
            matches!(err, CheckpointError::Container { .. }),
            "{label}: expected a container error, got {err}"
        );
        let msg = err.to_string();
        assert!(
            msg.contains(expect),
            "{label}: error `{msg}` does not name `{expect}`"
        );
        // the bounded-allocation contract: a parse attempt never holds
        // more than ~2× the input live at once (slack for error strings
        // and small fixed-size scratch)
        let ceiling = 2 * bytes.len() as i64 + 16 * 1024;
        assert!(
            peak <= ceiling,
            "{label}: peak allocation {peak} exceeds {ceiling} for a {}-byte input",
            bytes.len()
        );
    }
}
