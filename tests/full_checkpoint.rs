//! Spec-driven one-document checkpoints: `spec → build → export →
//! import → identical logits`, across architectures and algorithms, plus
//! the key-path diagnostics malformed documents must produce.

use winograd_aware::core::ConvAlgo;
use winograd_aware::models::{ExecutorConfig, Infer, ModelKind, ModelSpec, ZooModel};
use winograd_aware::nn::{Checkpoint, FullCheckpoint, QuantConfig};
use winograd_aware::quant::BitWidth;
use winograd_aware::tensor::SeededRng;

const CFG: ExecutorConfig = ExecutorConfig {
    threads: 2,
    chunk: 2,
};

fn spec_for(kind: ModelKind, algo: ConvAlgo, quant: QuantConfig) -> ModelSpec {
    let builder = ModelSpec::builder().classes(10).algo(algo).quant(quant);
    match kind {
        ModelKind::LeNet => builder.input_size(12),
        _ => builder.input_size(8).width(0.125),
    }
    .build()
    .expect("static spec")
}

#[test]
fn one_document_roundtrip_reproduces_logits_across_the_zoo() {
    let mut rng = SeededRng::new(50);
    for kind in [ModelKind::LeNet, ModelKind::SqueezeNet] {
        for algo in [ConvAlgo::Im2row, ConvAlgo::Winograd { m: 2 }] {
            let spec = spec_for(kind, algo, QuantConfig::FP32);
            let mut original = ZooModel::from_spec(kind, &spec, &mut rng).expect("static spec");

            // the full wire round trip: struct → JSON text → struct
            let text = original
                .to_full_checkpoint()
                .expect("export")
                .to_json()
                .to_string_pretty();
            let doc = FullCheckpoint::from_json_str(&text).expect("document parses");
            let rebuilt = ZooModel::from_full_checkpoint(&doc).expect("rebuild");

            assert_eq!(rebuilt.kind(), kind);
            assert_eq!(rebuilt.spec(), &spec, "spec must survive the round trip");

            let [c, h, w] = original.sample_shape();
            let batch = rng.uniform_tensor(&[3, c, h, w], -1.0, 1.0);
            let want = original.try_forward_batch(&batch, CFG).expect("original");
            let got = rebuilt.try_forward_batch(&batch, CFG).expect("rebuilt");
            assert_eq!(
                want.data(),
                got.data(),
                "{kind}/{algo}: rebuilt model must produce identical logits"
            );
        }
    }
}

#[test]
fn quantized_flex_spec_survives_the_roundtrip() {
    // -flex transforms are parameters, so a trained (here: freshly
    // initialized) transform rides along in the document
    let mut rng = SeededRng::new(51);
    let spec = spec_for(
        ModelKind::LeNet,
        ConvAlgo::WinogradFlex { m: 2 },
        QuantConfig::uniform(BitWidth::INT8),
    );
    let mut original = ZooModel::from_spec(ModelKind::LeNet, &spec, &mut rng).expect("static spec");
    let text = original
        .to_full_checkpoint()
        .expect("export")
        .to_json()
        .to_string_compact();
    let rebuilt =
        ZooModel::from_full_checkpoint(&FullCheckpoint::from_json_str(&text).expect("parses"))
            .expect("rebuild");
    assert_eq!(rebuilt.spec().algo, ConvAlgo::WinogradFlex { m: 2 });
    assert_eq!(rebuilt.spec().quant, QuantConfig::uniform(BitWidth::INT8));

    let batch = rng.uniform_tensor(&[4, 1, 12, 12], -1.0, 1.0);
    let want = original.try_forward_batch(&batch, CFG).expect("original");
    let got = rebuilt.try_forward_batch(&batch, CFG).expect("rebuilt");
    assert_eq!(want.data(), got.data());
}

#[test]
fn calibrated_per_tap_scales_roundtrip_through_one_document() {
    // A warmed tap-wise INT8 F4 LeNet — non-uniform tap ranges *and*
    // non-uniform per-tap bit-widths — must serialize into the `quant`
    // section and reproduce bit-identical logits after the full
    // struct → JSON text → struct round trip.
    use winograd_aware::nn::{Layer, QuantStateMut, Tape};
    use winograd_aware::quant::BitWidth as B;

    let mut rng = SeededRng::new(53);
    let spec = spec_for(
        ModelKind::LeNet,
        ConvAlgo::Winograd { m: 4 },
        QuantConfig::per_tap(BitWidth::INT8),
    );
    let mut original = ZooModel::from_spec(ModelKind::LeNet, &spec, &mut rng).expect("static spec");
    // calibrate: one training batch gives every tap its own range
    {
        let warm = rng.uniform_tensor(&[4, 1, 12, 12], -1.0, 1.0);
        let mut tape = Tape::new();
        let x = tape.leaf(warm);
        let _ = original.forward(&mut tape, x, true);
    }
    // and make the tap *bit-widths* non-uniform too (mixed precision)
    original.visit_quant_state(&mut |name, site| {
        if let QuantStateMut::Taps(taps) = site {
            if name.ends_with(".q.bdb") {
                let mut bits = vec![B::INT8; taps.taps()];
                bits[0] = B::INT16;
                bits[taps.taps() - 1] = B::Int(6);
                taps.set_bit_overrides(Some(bits)).expect("right length");
            }
        }
    });

    let doc = original.to_full_checkpoint().expect("export");
    assert!(
        doc.quant.values().any(
            |s| matches!(s, winograd_aware::nn::QuantSiteState::Taps { ranges, .. }
                if ranges.iter().any(|r| (r - ranges[0]).abs() > 1e-9))
        ),
        "the exported quant section must contain non-uniform tap ranges"
    );

    let text = doc.to_json().to_string_pretty();
    assert!(
        text.contains("\"quant\""),
        "document must carry the section"
    );
    let parsed = FullCheckpoint::from_json_str(&text).expect("parses");
    let mut rebuilt = ZooModel::from_full_checkpoint(&parsed).expect("rebuild");

    let batch = rng.uniform_tensor(&[5, 1, 12, 12], -1.0, 1.0);
    let want = original.try_forward_batch(&batch, CFG).expect("original");
    let got = rebuilt.try_forward_batch(&batch, CFG).expect("rebuilt");
    assert_eq!(
        want.data(),
        got.data(),
        "per-tap calibration must survive the round trip bit-for-bit"
    );

    // the calibration itself round-trips verbatim, overrides included
    let re_exported = rebuilt.to_full_checkpoint().expect("re-export");
    assert_eq!(re_exported.quant, doc.quant);
}

#[test]
fn quant_section_errors_carry_the_offending_key_path() {
    // a malformed site state names `quant.<site>.<field>`
    let err = FullCheckpoint::from_json_str(
        "{\"arch\": \"lenet\", \"spec\": {}, \
         \"quant\": {\"conv1.q.bdb\": {\"ranges\": [0.5, \"x\"], \"seen\": 1, \"frozen\": false}}, \
         \"params\": {}}",
    )
    .expect_err("non-numeric range must fail");
    assert!(err.message.contains("`quant.conv1.q.bdb.ranges`"), "{err}");

    // a bad per-tap bit-width names its path too
    let err = FullCheckpoint::from_json_str(
        "{\"arch\": \"lenet\", \"spec\": {}, \
         \"quant\": {\"conv1.q.ggt\": {\"ranges\": [0.5], \"seen\": 1, \"frozen\": false, \
         \"bits\": [\"INT99\"]}}, \"params\": {}}",
    )
    .expect_err("bad bit width must fail");
    assert!(err.message.contains("`quant.conv1.q.ggt.bits`"), "{err}");

    // a parseable entry that does not fit the rebuilt model names the
    // site through the WaError surface
    let mut rng = SeededRng::new(54);
    let spec = spec_for(
        ModelKind::LeNet,
        ConvAlgo::Winograd { m: 2 },
        QuantConfig::per_tap(BitWidth::INT8),
    );
    let mut model = ZooModel::from_spec(ModelKind::LeNet, &spec, &mut rng).expect("static spec");
    let mut doc = model.to_full_checkpoint().expect("export");
    let key = "conv1.q.bdb".to_string();
    assert!(doc.quant.contains_key(&key), "fixture went stale");
    doc.quant.insert(
        key,
        winograd_aware::nn::QuantSiteState::Taps {
            ranges: vec![1.0; 3], // F2 with r=5 has 6×6 = 36 taps, not 3
            bits: None,
            seen: 1,
            frozen: false,
        },
    );
    let err = ZooModel::from_full_checkpoint(&doc).expect_err("tap count mismatch");
    assert!(err.to_string().contains("`quant.conv1.q.bdb`"), "{err}");
}

#[test]
fn spec_quant_errors_carry_the_spec_key_path() {
    // the `params.<name>` convention extends to the spec document:
    // a broken quant field surfaces as `spec.quant.<field>`
    let mut rng = SeededRng::new(55);
    let spec = spec_for(ModelKind::LeNet, ConvAlgo::Im2row, QuantConfig::FP32);
    let mut model = ZooModel::from_spec(ModelKind::LeNet, &spec, &mut rng).expect("static spec");
    let mut doc = model.to_full_checkpoint().expect("export");
    doc.spec = winograd_aware::tensor::Json::obj([
        ("classes", winograd_aware::tensor::Json::from(10usize)),
        ("input_size", winograd_aware::tensor::Json::from(12usize)),
        (
            "quant",
            winograd_aware::tensor::Json::obj([
                ("activations", "INT8"),
                ("weights", "INT8"),
                ("transform", "per-channel"),
            ]),
        ),
    ]);
    let err = ZooModel::from_full_checkpoint(&doc).expect_err("bad policy");
    assert!(err.to_string().contains("`spec.quant.transform`"), "{err}");
}

#[test]
fn checkpoint_parse_errors_carry_the_offending_key_path() {
    // a tensor entry that cannot decode must name `params.<name>`
    let err = Checkpoint::from_json_str(
        "{\"params\": {\"conv1.weight\": {\"shape\": [2, 2], \"data\": [1]}}}",
    )
    .expect_err("length mismatch must fail");
    assert!(
        err.message.contains("`params.conv1.weight`"),
        "message must carry the key path, got: {err}"
    );

    // a full checkpoint with a broken tensor reports the same path
    let err = FullCheckpoint::from_json_str(
        "{\"arch\": \"lenet\", \"spec\": {}, \
         \"params\": {\"fc1.bias\": {\"data\": [1]}}}",
    )
    .expect_err("missing shape must fail");
    assert!(err.message.contains("`params.fc1.bias`"), "{err}");
}

#[test]
fn tampered_spec_documents_are_rejected_with_field_names() {
    let mut rng = SeededRng::new(52);
    let spec = spec_for(ModelKind::LeNet, ConvAlgo::Im2row, QuantConfig::FP32);
    let mut model = ZooModel::from_spec(ModelKind::LeNet, &spec, &mut rng).expect("static spec");
    let mut doc = model.to_full_checkpoint().expect("export");

    // an unsupported tile size sneaks into the spec document
    doc.spec = winograd_aware::tensor::Json::obj([
        ("classes", winograd_aware::tensor::Json::from(10usize)),
        ("input_size", winograd_aware::tensor::Json::from(12usize)),
        ("algo", winograd_aware::tensor::Json::from("F3")),
    ]);
    let err = ZooModel::from_full_checkpoint(&doc).expect_err("F3 is unsupported");
    assert!(err.to_string().contains("F3"), "{err}");
}
