//! True-integer execution parity suite: the [`Execution::Int8`] path —
//! quantize → `gemm_i8` → fixed-point requantize — must track the
//! fake-quant f32 reference within the documented tolerance contract
//! (per-element ≤ 1 ulp-of-scale at every requantize site; see
//! `docs/quantization.md`), for every zoo architecture under im2row, F2
//! and F4, per-layer and per-tap, and the batched executor must stay
//! bit-for-bit identical to the sequential loop *within* the int path.

use winograd_aware::core::{ConvAlgo, ConvSpec, WinogradAwareConv2d};
use winograd_aware::models::{
    BatchExecutor, ExecutorConfig, Infer, ModelKind, ModelSpec, ZooModel,
};
use winograd_aware::nn::{Conv2d, Conv2dSpec, Layer, QuantConfig, QuantStateMut, Tape};
use winograd_aware::quant::{BitWidth, Execution, TapPolicy};
use winograd_aware::tensor::{SeededRng, Tensor};

/// Warm a layer/model's observers (and BN moments) with one training
/// forward over `x`.
fn warm<L: Layer>(layer: &mut L, x: &Tensor) {
    let mut tape = Tape::new();
    let v = tape.leaf(x.clone());
    let _ = layer.forward(&mut tape, v, true);
}

/// The scale a named quant site settled on (the site must use a scalar
/// observer).
fn site_scale<L: Layer>(layer: &mut L, suffix: &str, bits: BitWidth) -> f32 {
    let mut found = None;
    layer.visit_quant_state(&mut |name, state| {
        if name.ends_with(suffix) {
            if let QuantStateMut::Observer(o) = state {
                found = Some(o.scale(bits));
            }
        }
    });
    found.unwrap_or_else(|| panic!("no scalar-observer site named *{suffix}"))
}

fn int8_quant(execution: Execution, transform: TapPolicy) -> QuantConfig {
    let mut q = QuantConfig::uniform(BitWidth::INT8).with_execution(execution);
    q.transform = transform;
    q
}

/// Builds the same layer twice — identical weights and calibration, one
/// fake-quant and one int8 — by cloning construction RNG and warm data.
/// (Training forwards are execution-independent, so the observers evolve
/// identically.)
fn twin_convs(quant_fq: QuantConfig, quant_i8: QuantConfig, x: &Tensor) -> (Conv2d, Conv2d) {
    let build = |q: QuantConfig| {
        let spec = Conv2dSpec::builder("c")
            .in_channels(x.dim(1))
            .out_channels(6)
            .kernel(3)
            .pad(1)
            .quant(q)
            .build()
            .expect("static spec");
        Conv2d::from_spec(&spec, &mut SeededRng::new(41)).expect("static spec")
    };
    let (mut a, mut b) = (build(quant_fq), build(quant_i8));
    warm(&mut a, x);
    warm(&mut b, x);
    (a, b)
}

#[test]
fn direct_conv_is_within_one_output_quantum() {
    // The direct conv has exactly one requantize site: its output. Both
    // paths emit values on the q·s_out grid, so the contract is testable
    // literally — every element within one quantum.
    let mut rng = SeededRng::new(1);
    let x = rng.uniform_tensor(&[3, 4, 9, 9], -1.0, 1.0);
    let (a, mut b) = twin_convs(
        int8_quant(Execution::FakeQuant, TapPolicy::PerLayer),
        int8_quant(Execution::Int8, TapPolicy::PerLayer),
        &x,
    );
    let s_out = site_scale(&mut b, ".q.output", BitWidth::INT8);
    let want = a.infer_tensor(&x).expect("fake-quant inference");
    let got = b.infer_tensor(&x).expect("int8 inference");
    assert_eq!(got.shape(), want.shape());
    let tol = s_out * 1.0001;
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert!(
            (g - w).abs() <= tol,
            "element {i}: int8 {g} vs fake-quant {w} exceeds one output \
             quantum ({s_out})"
        );
    }
}

#[test]
fn winograd_conv_is_within_the_propagated_hadamard_quantum() {
    // The Winograd layer's requantize site is the Hadamard product; its
    // ≤ 1-quantum error then rides through the f32 output transform
    // (amplified by at most the row-abs-sum of A per one-sided product)
    // and the Ay/Aya snapping. The assertable whole-layer bound is
    //   (s_h·amax + s_ay)·amax + s_aya
    // which the int8 layer must respect for both tile sizes and both tap
    // policies.
    let mut rng = SeededRng::new(2);
    let x = rng.uniform_tensor(&[2, 4, 8, 8], -1.0, 1.0);
    for m in [2usize, 4] {
        for policy in [TapPolicy::PerLayer, TapPolicy::PerTap] {
            let build = |execution: Execution| {
                let spec = ConvSpec::builder()
                    .name("wa")
                    .in_channels(4)
                    .out_channels(6)
                    .kernel(3)
                    .pad(1)
                    .algo(ConvAlgo::Winograd { m })
                    .quant(int8_quant(execution, policy))
                    .build()
                    .expect("static spec");
                WinogradAwareConv2d::from_spec(&spec, &mut SeededRng::new(42)).expect("static spec")
            };
            let (mut a, mut b) = (build(Execution::FakeQuant), build(Execution::Int8));
            warm(&mut a, &x);
            warm(&mut b, &x);

            let s_h = site_scale(&mut b, ".q.hadamard", BitWidth::INT8);
            let s_ay = site_scale(&mut b, ".q.ay", BitWidth::INT8);
            let s_aya = site_scale(&mut b, ".q.aya", BitWidth::INT8);
            let at = b.transform();
            let n = b.input_tile();
            let amax = (0..b.m())
                .map(|j| (0..n).map(|k| at.at().data()[j * n + k].abs()).sum::<f32>())
                .fold(0.0f32, f32::max);
            let tol = ((s_h * amax + s_ay) * amax + s_aya) * 1.0001;

            let want = a.infer_tensor(&x).expect("fake-quant inference");
            let got = b.infer_tensor(&x).expect("int8 inference");
            assert_eq!(got.shape(), want.shape());
            for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
                assert!(
                    (g - w).abs() <= tol,
                    "F{m} {policy} element {i}: int8 {g} vs fake-quant {w} \
                     exceeds the propagated bound {tol} \
                     (s_h {s_h}, s_ay {s_ay}, s_aya {s_aya}, amax {amax})"
                );
            }
        }
    }
}

const ZOO_ALGOS: [ConvAlgo; 3] = [
    ConvAlgo::Im2row,
    ConvAlgo::Winograd { m: 2 },
    ConvAlgo::Winograd { m: 4 },
];

fn zoo_spec(kind: ModelKind, algo: ConvAlgo, quant: QuantConfig) -> ModelSpec {
    let builder = ModelSpec::builder().classes(10).algo(algo).quant(quant);
    match kind {
        ModelKind::LeNet => builder.input_size(12),
        _ => builder.input_size(8).width(0.125),
    }
    .build()
    .expect("static spec")
}

/// Builds a warmed (fake-quant, int8) twin pair of one zoo model.
fn twin_models(kind: ModelKind, algo: ConvAlgo, policy: TapPolicy) -> (ZooModel, ZooModel, Tensor) {
    let mut a = ZooModel::from_spec(
        kind,
        &zoo_spec(kind, algo, int8_quant(Execution::FakeQuant, policy)),
        &mut SeededRng::new(17),
    )
    .expect("static spec");
    let mut b = ZooModel::from_spec(
        kind,
        &zoo_spec(kind, algo, int8_quant(Execution::Int8, policy)),
        &mut SeededRng::new(17),
    )
    .expect("static spec");
    let [c, h, w] = a.sample_shape();
    let mut rng = SeededRng::new(23);
    let warm_batch = rng.uniform_tensor(&[4, c, h, w], -1.0, 1.0);
    warm(&mut a, &warm_batch);
    warm(&mut b, &warm_batch);
    let batch = rng.uniform_tensor(&[5, c, h, w], -1.0, 1.0);
    (a, b, batch)
}

#[test]
fn zoo_models_track_the_fake_quant_reference() {
    // Whole models compound the per-site contract across layers. For
    // every cell where the quantization itself is healthy the two paths
    // stay within 5% relative RMSE (measured: < 0.1% — the headroom is
    // >50×). The exception is F4 with *per-layer* transform-domain
    // scales: there the huge corner taps of the F4 transforms dominate
    // the shared scale, most taps straddle a handful of integer levels,
    // and sub-quantum requantize differences cascade into decorrelated
    // logits — the exact failure mode that motivates the paper (Table 1)
    // and Tap-Wise Quantization. Those cells get a loose sanity bound;
    // per-tap restores the tight one everywhere.
    for kind in ModelKind::ALL {
        for algo in ZOO_ALGOS {
            for policy in [TapPolicy::PerLayer, TapPolicy::PerTap] {
                let (a, b, batch) = twin_models(kind, algo, policy);
                let want = a.infer_tensor(&batch).expect("fake-quant inference");
                let got = b.infer_tensor(&batch).expect("int8 inference");
                assert_eq!(got.shape(), want.shape());
                let num: f64 = got
                    .data()
                    .iter()
                    .zip(want.data())
                    .map(|(g, w)| ((g - w) as f64).powi(2))
                    .sum();
                let den: f64 = want.data().iter().map(|v| (*v as f64).powi(2)).sum();
                assert!(den > 0.0, "{kind}/{algo}/{policy}: degenerate reference");
                let rel = (num / den).sqrt();
                let f4_per_layer =
                    algo == ConvAlgo::Winograd { m: 4 } && policy == TapPolicy::PerLayer;
                let bound = if f4_per_layer { 1.0 } else { 0.05 };
                assert!(
                    rel < bound,
                    "{kind}/{algo}/{policy}: int8 logits drifted {rel:.4} \
                     relative RMSE from the fake-quant reference (bound {bound})"
                );
            }
        }
    }
}

#[test]
fn int8_batched_matches_sequential_bit_for_bit() {
    // Within the integer path, sharding must be invisible: the i8 GEMM is
    // pinned to the naive loop, the requantizer is deterministic, and the
    // f32 halves run the same per-sample ops — so batched == sequential
    // exactly, per thread count, like the f32 executor-parity suite.
    for kind in ModelKind::ALL {
        for algo in [ConvAlgo::Im2row, ConvAlgo::Winograd { m: 4 }] {
            let (_, b, batch) = twin_models(kind, algo, TapPolicy::PerTap);
            let outs: Vec<Tensor> = (0..batch.dim(0))
                .map(|i| {
                    b.infer_tensor(&batch.slice_dim0(i, i + 1))
                        .expect("sequential int8 inference")
                })
                .collect();
            let refs: Vec<&Tensor> = outs.iter().collect();
            let want = Tensor::concat_dim0(&refs);
            for threads in [1usize, 2, 4] {
                let exec = BatchExecutor::new(ExecutorConfig { threads, chunk: 2 })
                    .expect("static config is valid");
                let got = exec.run(&b, &batch).expect("batched int8 inference");
                assert_eq!(
                    got.data(),
                    want.data(),
                    "{kind}/{algo} threads {threads}: int8 batched output \
                     must equal the sequential per-sample loop"
                );
            }
        }
    }
}

#[test]
fn int8_rejects_incompatible_bit_widths() {
    // The int path carries i8 operands: FP32 or >8-bit configs must be
    // rejected by spec validation with the `quant.execution` key path.
    for bits in [BitWidth::Fp32, BitWidth::INT10, BitWidth::INT16] {
        let err = Conv2dSpec::builder("c")
            .in_channels(2)
            .out_channels(2)
            .kernel(3)
            .quant(QuantConfig::uniform(bits).with_execution(Execution::Int8))
            .build()
            .expect_err("int8 execution must reject non-i8 operand widths");
        let msg = err.to_string();
        assert!(
            msg.contains("quant.execution"),
            "error must name the key path, got: {msg}"
        );
    }
}
