//! Golden-value tests for the Winograd transforms: fixed seeded inputs
//! through F(2,3), F(4,3) and F(6,3), compared element-wise against
//! direct convolution at FP32 and INT8, plus one fully hard-coded case.
//!
//! These pin the numerical contract the executor parity suite builds on:
//! if the transforms drift, every batched result drifts with them.

use winograd_aware::core::{ConvAlgo, ConvSpec, WinogradAwareConv2d};
use winograd_aware::nn::{Layer, QuantConfig, Tape};
use winograd_aware::quant::BitWidth;
use winograd_aware::tensor::{conv2d_direct, SeededRng, Tensor};

fn wa_spec(in_ch: usize, out_ch: usize, m: usize, pad: usize, quant: QuantConfig) -> ConvSpec {
    ConvSpec::builder()
        .name("golden")
        .in_channels(in_ch)
        .out_channels(out_ch)
        .kernel(3)
        .pad(pad)
        .algo(ConvAlgo::Winograd { m })
        .quant(quant)
        .build()
        .expect("golden spec is statically valid")
}

fn forward(layer: &mut WinogradAwareConv2d, x: &Tensor, train: bool) -> Tensor {
    let mut tape = Tape::new();
    let xv = tape.leaf(x.clone());
    let y = layer.forward(&mut tape, xv, train);
    tape.value(y).clone()
}

/// Relative RMS error of `got` against `want`.
fn rel_rms(got: &Tensor, want: &Tensor) -> f64 {
    assert_eq!(got.shape(), want.shape());
    let num: f64 = got
        .data()
        .iter()
        .zip(want.data())
        .map(|(a, b)| ((a - b) as f64).powi(2))
        .sum();
    let den: f64 = want.data().iter().map(|v| (*v as f64).powi(2)).sum();
    (num / den.max(1e-30)).sqrt()
}

#[test]
fn f2_hardcoded_box_filter_case() {
    // 4x4 ramp input, all-ones 3x3 filter, no padding: the F(2,3) tile
    // covers the whole output, and every output value is an integer sum
    // of 9 inputs — exactly representable, so the expected tensor can be
    // written down by hand.
    let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
    let w = Tensor::ones(&[1, 1, 3, 3]);
    let mut layer = WinogradAwareConv2d::from_spec(
        &wa_spec(1, 1, 2, 0, QuantConfig::FP32),
        &mut SeededRng::new(0),
    )
    .expect("static spec");
    layer.weight.value = w;
    let got = forward(&mut layer, &x, false);
    assert_eq!(got.shape(), &[1, 1, 2, 2]);
    let expected = [45.0f32, 54.0, 81.0, 90.0];
    for (i, (g, e)) in got.data().iter().zip(&expected).enumerate() {
        assert!(
            (g - e).abs() < 1e-4,
            "output[{i}]: got {g}, expected {e} (hard-coded golden value)"
        );
    }
}

#[test]
fn fp32_transforms_match_direct_convolution_for_all_tiles() {
    let mut rng = SeededRng::new(42);
    let x = rng.uniform_tensor(&[2, 3, 12, 12], -1.0, 1.0);
    for m in [2usize, 4, 6] {
        let mut layer = WinogradAwareConv2d::from_spec(
            &wa_spec(3, 4, m, 1, QuantConfig::FP32),
            &mut rng.fork(m as u64),
        )
        .expect("static spec");
        let got = forward(&mut layer, &x, false);
        let want = conv2d_direct(&x, &layer.weight.value, None, 1, 1);
        assert_eq!(got.shape(), want.shape(), "F({m},3) output shape");
        let mut max_err = 0.0f32;
        for (a, b) in got.data().iter().zip(want.data()) {
            max_err = max_err.max((a - b).abs());
        }
        // F6's larger transforms lose more bits but must stay tight at fp32
        let tol = if m == 6 { 5e-3 } else { 1e-3 };
        assert!(
            max_err < tol,
            "F({m},3) fp32 max element error {max_err} exceeds {tol}"
        );
    }
}

#[test]
fn int8_error_is_bounded_and_grows_with_tile_size() {
    let mut rng = SeededRng::new(7);
    let x = rng.uniform_tensor(&[1, 4, 12, 12], -1.0, 1.0);
    let mut errs = Vec::new();
    for m in [2usize, 4, 6] {
        let mut layer = WinogradAwareConv2d::from_spec(
            &wa_spec(4, 4, m, 1, QuantConfig::uniform(BitWidth::INT8)),
            &mut rng.fork(100 + m as u64),
        )
        .expect("static spec");
        // warm the range observers, then evaluate
        let _ = forward(&mut layer, &x, true);
        let got = forward(&mut layer, &x, false);
        let want = conv2d_direct(&x, &layer.weight.value, None, 1, 1);
        for v in got.data() {
            assert!(v.is_finite(), "F({m},3) int8 produced a non-finite value");
        }
        let e = rel_rms(&got, &want);
        assert!(
            e > 0.0,
            "F({m},3) int8 must differ from the fp32 direct reference"
        );
        errs.push((m, e));
    }
    // paper Figure 3 ordering: quantization error grows with tile size
    let e2 = errs[0].1;
    let e6 = errs[2].1;
    assert!(e2 < e6, "int8 error must grow from F2 ({e2}) to F6 ({e6})");
    // F2 stays serviceable at int8 (the paper's deployable configuration)
    assert!(e2 < 0.2, "F2 int8 relative RMS error too large: {e2}");
}
