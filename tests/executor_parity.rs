//! Executor parity suite: the [`BatchExecutor`] must reproduce the
//! sequential per-sample loop *exactly* — for every model of the zoo,
//! under both direct and Winograd convolutions, for thread counts 1/2/4
//! (determinism under sharding), and regardless of chunk size.

use winograd_aware::core::ConvAlgo;
use winograd_aware::models::{
    BatchExecutor, ExecutorConfig, Infer, LeNet, ModelSpec, ResNeXt20, ResNet18, SqueezeNet,
};
use winograd_aware::nn::{Layer, QuantConfig, Tape};
use winograd_aware::quant::BitWidth;
use winograd_aware::tensor::{SeededRng, Tensor};

const BATCH: usize = 5; // deliberately not a multiple of the chunk size

/// Sequential reference: one sample at a time through the same read-only
/// inference path, stitched in order.
fn sequential<M: Infer>(model: &M, batch: &Tensor) -> Tensor {
    let n = batch.dim(0);
    let outs: Vec<Tensor> = (0..n)
        .map(|i| {
            model
                .infer_tensor(&batch.slice_dim0(i, i + 1))
                .expect("sequential inference failed")
        })
        .collect();
    let refs: Vec<&Tensor> = outs.iter().collect();
    Tensor::concat_dim0(&refs)
}

/// Asserts batched == sequential for threads 1, 2 and 4.
fn assert_parity<M: Infer + Sync>(name: &str, model: &M, batch: &Tensor) {
    let want = sequential(model, batch);
    for threads in [1usize, 2, 4] {
        let exec = BatchExecutor::new(ExecutorConfig { threads, chunk: 2 })
            .expect("static config is valid");
        let got = exec.run(model, batch).expect("batched inference failed");
        assert_eq!(got.shape(), want.shape(), "{name}, threads {threads}");
        assert_eq!(
            got.data(),
            want.data(),
            "{name}: batched output must be identical to the sequential \
             per-sample loop (threads {threads})"
        );
    }
}

fn cifar_spec(algo: ConvAlgo) -> ModelSpec {
    ModelSpec::builder()
        .classes(10)
        .width(0.125)
        .algo(algo)
        .build()
        .expect("static spec")
}

const ALGOS: [ConvAlgo; 2] = [ConvAlgo::Im2row, ConvAlgo::Winograd { m: 2 }];

#[test]
fn lenet_parity_direct_and_winograd() {
    let mut rng = SeededRng::new(1);
    let batch = rng.uniform_tensor(&[BATCH, 1, 12, 12], -1.0, 1.0);
    for algo in ALGOS {
        let spec = ModelSpec::builder()
            .classes(10)
            .input_size(12)
            .algo(algo)
            .build()
            .expect("static spec");
        let net = LeNet::from_spec(&spec, &mut rng).expect("static spec");
        assert_parity(&format!("LeNet {algo}"), &net, &batch);
    }
}

#[test]
fn resnet18_parity_direct_and_winograd() {
    let mut rng = SeededRng::new(2);
    let batch = rng.uniform_tensor(&[BATCH, 3, 8, 8], -1.0, 1.0);
    for algo in ALGOS {
        let net = ResNet18::from_spec(&cifar_spec(algo), &mut rng).expect("static spec");
        assert_parity(&format!("ResNet-18 {algo}"), &net, &batch);
    }
}

#[test]
fn squeezenet_parity_direct_and_winograd() {
    let mut rng = SeededRng::new(3);
    let batch = rng.uniform_tensor(&[BATCH, 3, 8, 8], -1.0, 1.0);
    for algo in ALGOS {
        let net = SqueezeNet::from_spec(&cifar_spec(algo), &mut rng).expect("static spec");
        assert_parity(&format!("SqueezeNet {algo}"), &net, &batch);
    }
}

#[test]
fn resnext20_parity_direct_and_winograd() {
    let mut rng = SeededRng::new(4);
    let batch = rng.uniform_tensor(&[BATCH, 3, 8, 8], -1.0, 1.0);
    for algo in ALGOS {
        let net = ResNeXt20::from_spec(&cifar_spec(algo), &mut rng).expect("static spec");
        assert_parity(&format!("ResNeXt-20 {algo}"), &net, &batch);
    }
}

#[test]
fn chunk_size_never_changes_the_output() {
    let mut rng = SeededRng::new(5);
    let spec = ModelSpec::builder()
        .classes(10)
        .input_size(12)
        .algo(ConvAlgo::Winograd { m: 2 })
        .build()
        .expect("static spec");
    let net = LeNet::from_spec(&spec, &mut rng).expect("static spec");
    let batch = rng.uniform_tensor(&[7, 1, 12, 12], -1.0, 1.0);
    let reference = net
        .try_forward_batch(
            &batch,
            ExecutorConfig {
                threads: 1,
                chunk: 1,
            },
        )
        .expect("batched inference failed");
    for chunk in [2usize, 3, 7, 16] {
        let got = net
            .try_forward_batch(&batch, ExecutorConfig { threads: 4, chunk })
            .expect("batched inference failed");
        assert_eq!(got.data(), reference.data(), "chunk {chunk}");
    }
}

#[test]
fn batched_path_matches_the_legacy_eval_tape() {
    // One whole-batch forward through the original &mut Layer path
    // (train = false) must agree with the executor: the Infer split may
    // not drift from the tape the rest of the workspace uses.
    let mut rng = SeededRng::new(6);
    let spec = cifar_spec(ConvAlgo::Winograd { m: 2 });
    let mut net = ResNet18::from_spec(&spec, &mut rng).expect("static spec");
    let batch = rng.uniform_tensor(&[3, 3, 8, 8], -1.0, 1.0);
    let want = {
        let mut tape = Tape::new();
        let x = tape.leaf(batch.clone());
        let y = net.forward(&mut tape, x, false);
        tape.value(y).clone()
    };
    let got = net
        .try_forward_batch(
            &batch,
            ExecutorConfig {
                threads: 2,
                chunk: 3,
            },
        )
        .expect("batched inference failed");
    assert_eq!(got.shape(), want.shape());
    assert_eq!(got.data(), want.data());
}

#[test]
fn filter_cache_reuse_is_bit_identical_across_runs_and_invalidation() {
    // The Winograd filter transform G·g·Gᵀ is derived once per model and
    // reused for every chunk of every run. Repeated runs (warm cache),
    // a fresh identical model (cold cache), and a model whose cache was
    // invalidated through the &mut Layer API must all agree exactly.
    let mut rng = SeededRng::new(8);
    let spec = ModelSpec::builder()
        .classes(10)
        .input_size(12)
        .algo(ConvAlgo::Winograd { m: 2 })
        .quant(QuantConfig::uniform(BitWidth::INT8))
        .build()
        .expect("static spec");
    let mut net = LeNet::from_spec(&spec, &mut rng).expect("static spec");
    let batch = rng.uniform_tensor(&[BATCH, 1, 12, 12], -1.0, 1.0);
    let cfg = ExecutorConfig {
        threads: 2,
        chunk: 2,
    };
    let first = net.try_forward_batch(&batch, cfg).expect("batched run");
    let warm = net.try_forward_batch(&batch, cfg).expect("warm-cache run");
    assert_eq!(first.data(), warm.data(), "cache reuse changed the output");

    // a no-op visit_params invalidates the cache (visitors may mutate);
    // the re-derived transform must reproduce the same logits
    Layer::visit_params(&mut net, &mut |_| {});
    let rederived = net
        .try_forward_batch(&batch, cfg)
        .expect("post-invalidation run");
    assert_eq!(first.data(), rederived.data(), "re-derivation diverged");

    // and a cold model restored from the same parameters agrees too
    let ckpt = winograd_aware::nn::export_params(&mut net).expect("unique names");
    let mut fresh = LeNet::from_spec(&spec, &mut SeededRng::new(77)).expect("static spec");
    winograd_aware::nn::import_params(&mut fresh, &ckpt).expect("import");
    let cold = fresh
        .try_forward_batch(&batch, cfg)
        .expect("cold-cache run");
    assert_eq!(first.data(), cold.data(), "cold vs warm cache diverged");
}

#[test]
fn quantized_model_parity_after_warmup() {
    // INT8 path: warm the observers with one training batch, then the
    // frozen scales must make batched and sequential outputs identical.
    let mut rng = SeededRng::new(7);
    let spec = ModelSpec::builder()
        .classes(10)
        .input_size(12)
        .algo(ConvAlgo::Winograd { m: 2 })
        .quant(QuantConfig::uniform(BitWidth::INT8))
        .build()
        .expect("static spec");
    let mut net = LeNet::from_spec(&spec, &mut rng).expect("static spec");
    let warm = rng.uniform_tensor(&[4, 1, 12, 12], -1.0, 1.0);
    {
        let mut tape = Tape::new();
        let x = tape.leaf(warm);
        let _ = net.forward(&mut tape, x, true);
    }
    let batch = rng.uniform_tensor(&[BATCH, 1, 12, 12], -1.0, 1.0);
    assert_parity("LeNet INT8 F2", &net, &batch);
}

#[test]
fn per_tap_with_uniform_taps_matches_per_layer_across_the_zoo() {
    // The tap-wise refactor is pinned by the parity matrix: for every
    // architecture and algorithm, an INT8 `PerTap` model whose tap
    // scales are uniform (broadcast from a warmed `PerLayer` model's
    // calibration) must produce bit-identical logits — under every
    // thread count. im2row layers have no Winograd domain, so there the
    // policy must be perfectly inert.
    use winograd_aware::models::{ModelKind, ZooModel};
    use winograd_aware::nn::{
        export_params, export_quant_state, import_params, import_quant_state,
    };
    use winograd_aware::quant::TapPolicy;

    let mut rng = SeededRng::new(11);
    for kind in ModelKind::ALL {
        for algo in ALGOS {
            let builder = ModelSpec::builder()
                .classes(10)
                .algo(algo)
                .quant(QuantConfig::uniform(BitWidth::INT8));
            let spec = match kind {
                ModelKind::LeNet => builder.input_size(12),
                _ => builder.input_size(8).width(0.125),
            }
            .build()
            .expect("static spec");
            let mut per_layer = ZooModel::from_spec(kind, &spec, &mut rng).expect("static spec");

            let [c, h, w] = per_layer.sample_shape();
            // warm the per-layer calibration (observers + BN moments)
            {
                let warm = rng.uniform_tensor(&[4, c, h, w], -1.0, 1.0);
                let mut tape = Tape::new();
                let x = tape.leaf(warm);
                let _ = per_layer.forward(&mut tape, x, true);
            }

            let mut tap_spec = spec.clone();
            tap_spec.quant.transform = TapPolicy::PerTap;
            let mut per_tap =
                ZooModel::from_spec(kind, &tap_spec, &mut SeededRng::new(77)).expect("static spec");
            let params = export_params(&mut per_layer).expect("unique names");
            import_params(&mut per_tap, &params).expect("same geometry");
            let state = export_quant_state(&mut per_layer).expect("unique names");
            import_quant_state(&mut per_tap, &state).expect("calibration broadcasts");

            let batch = rng.uniform_tensor(&[BATCH, c, h, w], -1.0, 1.0);
            let want = per_layer
                .try_forward_batch(
                    &batch,
                    ExecutorConfig {
                        threads: 1,
                        chunk: 2,
                    },
                )
                .expect("per-layer reference");
            for threads in [1usize, 2, 4] {
                let got = per_tap
                    .try_forward_batch(&batch, ExecutorConfig { threads, chunk: 2 })
                    .expect("per-tap batched inference");
                assert_eq!(
                    got.data(),
                    want.data(),
                    "{kind}/{algo} threads {threads}: uniform-tap PerTap must be \
                     bit-identical to PerLayer"
                );
            }
        }
    }
}

#[test]
fn worker_tapes_alias_parameter_buffers_without_copying() {
    // Zero-copy contract: Tensor storage is copy-on-write, so
    // `Tape::param_ref` registers a leaf that *aliases* the parameter's
    // buffer. A probe model records the buffer address every worker tape
    // actually saw — all of them must be pointer-identical to the
    // parameter itself, and the executor's COW-detach stat must be 0.
    use std::sync::Mutex;
    use winograd_aware::nn::{Param, Tape, Var, WaError};

    struct Probe {
        w: Param,
        seen: Mutex<Vec<usize>>,
    }

    impl Infer for Probe {
        fn infer(&self, tape: &mut Tape, x: Var) -> Result<Var, WaError> {
            let w = tape.param_ref(&self.w);
            self.seen
                .lock()
                .expect("probe lock")
                .push(tape.value(w).data_ptr() as usize);
            Ok(tape.matmul(x, w))
        }
    }

    let mut rng = SeededRng::new(9);
    let probe = Probe {
        w: Param::new("w", rng.uniform_tensor(&[3, 2], -1.0, 1.0)),
        seen: Mutex::new(Vec::new()),
    };
    let batch = rng.uniform_tensor(&[8, 3], -1.0, 1.0);
    let exec = BatchExecutor::new(ExecutorConfig {
        threads: 4,
        chunk: 1,
    })
    .expect("static config is valid");

    let (out, stats) = exec
        .run_with_stats(&probe, &batch)
        .expect("batched inference failed");
    assert_eq!(out.shape(), &[8, 2]);
    assert_eq!(stats.chunks, 8);
    assert_eq!(stats.samples, 8);
    assert_eq!(
        stats.params_cloned_bytes, 0,
        "the read-only inference path must not trigger a single COW detach"
    );

    let want = probe.w.value.data_ptr() as usize;
    let seen = probe.seen.into_inner().expect("probe lock");
    assert_eq!(seen.len(), 8, "one registration per chunk");
    assert!(
        seen.iter().all(|&p| p == want),
        "every worker tape must alias the parameter buffer (no copy): \
         param at {want:#x}, tapes saw {seen:?}"
    );
}

#[test]
fn full_model_inference_is_cow_detach_free() {
    // The whole zoo-model inference pipeline — Winograd transforms,
    // quant sites, reshapes, GEMMs — over shared parameters must never
    // write to a shared buffer: params_cloned_bytes stays 0 for any
    // thread/chunk sharding.
    let mut rng = SeededRng::new(10);
    let net = ResNet18::from_spec(&cifar_spec(ConvAlgo::Winograd { m: 2 }), &mut rng)
        .expect("static spec");
    let batch = rng.uniform_tensor(&[4, 3, 8, 8], -1.0, 1.0);
    for (threads, chunk) in [(1usize, 1usize), (2, 1), (4, 2)] {
        let exec =
            BatchExecutor::new(ExecutorConfig { threads, chunk }).expect("static config is valid");
        let (_, stats) = exec
            .run_with_stats(&net, &batch)
            .expect("batched inference failed");
        assert_eq!(
            stats.params_cloned_bytes, 0,
            "threads {threads} chunk {chunk}: inference must share, not copy"
        );
    }
}
