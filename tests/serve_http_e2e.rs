//! End-to-end HTTP serving: boot a real server with both front-ends on
//! ephemeral ports and assert that the HTTP edge is a *view* of the
//! same service — logits bit-identical to in-process
//! `try_forward_batch` **and** to the socket path, error kinds mapped
//! onto HTTP statuses, deadlines enforced, admission control refusing
//! before batching, and graceful drain answering everything accepted.

use std::net::SocketAddr;
use std::time::Duration;

use winograd_aware::bench::HttpClient;
use winograd_aware::models::{ExecutorConfig, Infer, ModelKind, ModelSpec, ZooModel};
use winograd_aware::serve::{
    Client, ClientError, SchedulerConfig, Server, ServerConfig, ServerHandle,
};
use winograd_aware::tensor::{Json, SeededRng, Tensor};

/// The executor sharding used on both sides of every comparison.
const EXEC: ExecutorConfig = ExecutorConfig {
    threads: 2,
    chunk: 2,
};

/// Boots a server with socket + HTTP listeners on ephemeral ports.
fn boot_http(
    cfg: ServerConfig,
) -> (
    SocketAddr,
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<()>,
) {
    let server =
        Server::bind_with_http("127.0.0.1:0", "127.0.0.1:0", cfg).expect("binding ephemeral ports");
    let addr = server.local_addr();
    let http = server.http_addr().expect("an HTTP listener was requested");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().expect("server run failed");
    });
    (addr, http, handle, join)
}

fn quick_batching() -> SchedulerConfig {
    SchedulerConfig {
        max_batch: 16,
        max_delay: Duration::from_millis(1),
        exec: EXEC,
        ..SchedulerConfig::default()
    }
}

/// A small LeNet and its one-document checkpoint.
fn lenet(seed: u64) -> (ZooModel, Json) {
    let spec = ModelSpec::builder()
        .classes(10)
        .input_size(12)
        .build()
        .expect("static spec");
    let mut rng = SeededRng::new(seed);
    let mut model = ZooModel::from_spec(ModelKind::LeNet, &spec, &mut rng).expect("static spec");
    let ckpt = model.to_full_checkpoint().expect("export").to_json();
    (model, ckpt)
}

/// `POST /v1/models/load` with a checkpoint document.
fn http_load(http: &mut HttpClient, name: &str, ckpt: &Json) {
    let body =
        Json::obj([("name", Json::from(name)), ("checkpoint", ckpt.clone())]).to_string_compact();
    let reply = http.post("/v1/models/load", &body).expect("POST load");
    assert_eq!(reply.status, 200, "load failed: {}", reply.body);
}

/// The error kind of a structured `{ok: false}` body.
fn error_kind(body: &str) -> String {
    Json::parse(body)
        .expect("responses are JSON")
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(|k| k.as_str())
        .expect("error bodies carry a kind")
        .to_string()
}

#[test]
fn http_logits_bit_identical_to_in_process_and_to_the_socket_path() {
    let (addr, http_addr, _handle, join) = boot_http(ServerConfig {
        scheduler: quick_batching(),
        ..ServerConfig::default()
    });
    let (model, ckpt) = lenet(41);
    let mut http = HttpClient::connect(http_addr, None).expect("http connect");
    http_load(&mut http, "mnist", &ckpt);

    let [c, h, w] = model.sample_shape();
    let mut rng = SeededRng::new(42);
    let batch = rng.uniform_tensor(&[3, c, h, w], -1.0, 1.0);
    let want = model
        .try_forward_batch(&batch, EXEC)
        .expect("in-process batched forward");

    // the HTTP edge and the socket edge answer over the same scheduler:
    // all three outputs must agree to the bit
    let body =
        Json::obj([("model", Json::from("mnist")), ("input", batch.to_json())]).to_string_compact();
    let reply = http.post("/v1/infer", &body).expect("POST infer");
    assert_eq!(reply.status, 200, "infer failed: {}", reply.body);
    let doc = Json::parse(&reply.body).expect("infer body is JSON");
    let via_http = Tensor::from_json(doc.get("output").expect("infer responses carry `output`"))
        .expect("output parses as a tensor");
    assert_eq!(via_http.shape(), want.shape());
    assert_eq!(
        via_http.data(),
        want.data(),
        "HTTP logits must be bit-identical to try_forward_batch"
    );

    let mut socket = Client::connect(addr).expect("socket connect");
    let via_socket = socket.infer("mnist", &batch).expect("socket inference");
    assert_eq!(
        via_socket.data(),
        via_http.data(),
        "the socket and HTTP edges must agree to the bit"
    );

    // both edges see the same registry
    let listed = http.get("/v1/models").expect("GET models");
    assert_eq!(listed.status, 200);
    let names = Json::parse(&listed.body).expect("JSON");
    assert_eq!(
        names
            .get("models")
            .and_then(|m| m.as_arr())
            .map(<[Json]>::len),
        Some(1)
    );

    let reply = http.post("/v1/shutdown", "").expect("POST shutdown");
    assert_eq!(reply.status, 200);
    join.join().expect("server thread");
}

#[test]
fn http_error_paths_map_onto_statuses() {
    let (_addr, http_addr, handle, join) = boot_http(ServerConfig {
        max_frame: 2048,
        scheduler: quick_batching(),
        ..ServerConfig::default()
    });
    let mut http = HttpClient::connect(http_addr, None).expect("http connect");

    // unknown path → 404; the message names the endpoints
    let reply = http.post("/v2/does-not-exist", "{}").expect("POST");
    assert_eq!(reply.status, 404);
    assert_eq!(error_kind(&reply.body), "bad_request");

    // wrong method on a known path → 405
    let reply = http.get("/v1/infer").expect("GET infer");
    assert_eq!(reply.status, 405);
    let reply = http.post("/v1/models", "{}").expect("POST models");
    assert_eq!(reply.status, 405);

    // malformed JSON body → 400 bad_frame (connection keeps serving)
    let reply = http.post("/v1/infer", "{not json").expect("POST bad json");
    assert_eq!(reply.status, 400);
    assert_eq!(error_kind(&reply.body), "bad_frame");

    // a valid request for an absent model → 404 unknown_model
    let body = Json::obj([
        ("model", Json::from("ghost")),
        ("input", Json::arr([Json::from(1.0)])),
    ])
    .to_string_compact();
    let reply = http.post("/v1/infer", &body).expect("POST ghost");
    assert_eq!(reply.status, 400, "bad input tensor shape reports first");

    // an oversized body → 413, and that connection closes (the body was
    // never read, so the stream cannot be trusted afterwards)
    let huge = "x".repeat(4096);
    let reply = http.post("/v1/infer", &huge).expect("POST oversized");
    assert_eq!(reply.status, 413);
    assert_eq!(error_kind(&reply.body), "bad_frame");
    assert!(
        http.get("/v1/stats").is_err(),
        "the connection must close after an unread oversized body"
    );

    // a fresh connection still serves
    let mut http = HttpClient::connect(http_addr, None).expect("reconnect");
    let reply = http.get("/v1/stats").expect("GET stats");
    assert_eq!(reply.status, 200);

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn deadline_zero_is_answered_with_504_and_never_executed() {
    let (_addr, http_addr, handle, join) = boot_http(ServerConfig {
        scheduler: quick_batching(),
        ..ServerConfig::default()
    });
    let (model, ckpt) = lenet(43);
    let mut http = HttpClient::connect(http_addr, None).expect("http connect");
    http_load(&mut http, "mnist", &ckpt);

    let [c, h, w] = model.sample_shape();
    let mut rng = SeededRng::new(44);
    let input = rng.uniform_tensor(&[1, c, h, w], -1.0, 1.0);
    let body = Json::obj([
        ("model", Json::from("mnist")),
        ("input", input.to_json()),
        ("deadline_ms", Json::from(0.0)),
    ])
    .to_string_compact();
    let reply = http.post("/v1/infer", &body).expect("POST infer");
    assert_eq!(reply.status, 504, "an already-expired budget is a 504");
    assert_eq!(error_kind(&reply.body), "deadline_exceeded");

    // the drop shows up in the stats, and nothing was executed for it
    let stats = http.get("/v1/stats").expect("GET stats");
    let doc = Json::parse(&stats.body).expect("JSON");
    let mnist = doc
        .get("models")
        .and_then(|m| m.as_arr())
        .and_then(|a| a.first())
        .and_then(|row| row.get("stats"))
        .expect("one model stats row");
    assert_eq!(
        mnist.get("deadline_expired").and_then(Json::as_f64),
        Some(1.0)
    );
    assert_eq!(mnist.get("batches").and_then(Json::as_f64), Some(0.0));

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn admission_cap_refuses_with_429_before_batching() {
    // a long batching window keeps the first request queued while the
    // second arrives, so the cap (not the executor) is what answers
    let (addr, http_addr, _handle, join) = boot_http(ServerConfig {
        scheduler: SchedulerConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(400),
            max_queue: 4,
            exec: EXEC,
            ..SchedulerConfig::default()
        },
        ..ServerConfig::default()
    });
    let (model, ckpt) = lenet(45);
    let mut http = HttpClient::connect(http_addr, None).expect("http connect");
    http_load(&mut http, "mnist", &ckpt);

    let [c, h, w] = model.sample_shape();
    let mut rng = SeededRng::new(46);
    let filler = rng.uniform_tensor(&[4, c, h, w], -1.0, 1.0);
    let one = rng.uniform_tensor(&[1, c, h, w], -1.0, 1.0);

    // fill the queue from a socket client on its own thread…
    let fill = std::thread::spawn(move || {
        let mut socket = Client::connect(addr).expect("socket connect");
        socket
            .infer("mnist", &filler)
            .expect("the filler batch runs")
    });
    std::thread::sleep(Duration::from_millis(100));

    // …then the HTTP request over the cap is refused, before batching
    let body =
        Json::obj([("model", Json::from("mnist")), ("input", one.to_json())]).to_string_compact();
    let reply = http.post("/v1/infer", &body).expect("POST infer");
    assert_eq!(reply.status, 429);
    assert_eq!(error_kind(&reply.body), "busy");

    let stats = http.get("/v1/stats").expect("GET stats");
    let doc = Json::parse(&stats.body).expect("JSON");
    let mnist = doc
        .get("models")
        .and_then(|m| m.as_arr())
        .and_then(|a| a.first())
        .and_then(|row| row.get("stats"))
        .expect("one model stats row");
    assert_eq!(mnist.get("rejected_busy").and_then(Json::as_f64), Some(1.0));

    // the refused request never displaced the accepted one
    let logits = fill.join().expect("filler thread");
    assert_eq!(logits.shape(), &[4, 10]);

    let reply = http.post("/v1/shutdown", "").expect("POST shutdown");
    assert_eq!(reply.status, 200);
    join.join().expect("server thread");
}

#[test]
fn graceful_drain_answers_every_accepted_request() {
    // requests sit in a wide batching window when shutdown lands; every
    // one of them must still be answered — with logits (flushed by the
    // drain) or a structured error — never a dead connection
    let (addr, http_addr, _handle, join) = boot_http(ServerConfig {
        scheduler: SchedulerConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(300),
            exec: EXEC,
            ..SchedulerConfig::default()
        },
        ..ServerConfig::default()
    });
    let (model, ckpt) = lenet(47);
    let mut http = HttpClient::connect(http_addr, None).expect("http connect");
    http_load(&mut http, "mnist", &ckpt);

    let [c, h, w] = model.sample_shape();
    let workers: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || {
                let mut rng = SeededRng::new(100 + i);
                let input = rng.uniform_tensor(&[1, c, h, w], -1.0, 1.0);
                let mut socket = Client::connect(addr).expect("socket connect");
                socket.infer("mnist", &input)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100)); // let them queue

    let reply = http.post("/v1/shutdown", "").expect("POST shutdown");
    assert_eq!(reply.status, 200);
    join.join().expect("server thread");

    for worker in workers {
        match worker.join().expect("client thread") {
            Ok(logits) => assert_eq!(logits.shape(), &[1, 10]),
            Err(ClientError::Server { kind, .. }) => {
                assert!(
                    kind == "shutting_down" || kind == "deadline_exceeded",
                    "unexpected structured error: {kind}"
                );
            }
            Err(other) => panic!("an accepted request died without an answer: {other}"),
        }
    }
}

#[test]
fn stats_report_uptime_and_latency_quantiles() {
    let (_addr, http_addr, handle, join) = boot_http(ServerConfig {
        scheduler: quick_batching(),
        ..ServerConfig::default()
    });
    let (model, ckpt) = lenet(48);
    let mut http = HttpClient::connect(http_addr, None).expect("http connect");
    http_load(&mut http, "mnist", &ckpt);

    let [c, h, w] = model.sample_shape();
    let mut rng = SeededRng::new(49);
    for _ in 0..3 {
        let input = rng.uniform_tensor(&[2, c, h, w], -1.0, 1.0);
        let body = Json::obj([("model", Json::from("mnist")), ("input", input.to_json())])
            .to_string_compact();
        let reply = http.post("/v1/infer", &body).expect("POST infer");
        assert_eq!(reply.status, 200);
    }

    let stats = http.get("/v1/stats").expect("GET stats");
    assert_eq!(stats.status, 200);
    let doc = Json::parse(&stats.body).expect("JSON");
    assert!(doc.get("uptime_ms").and_then(Json::as_f64).unwrap_or(-1.0) >= 0.0);
    assert!(
        doc.get("scheduler")
            .and_then(|s| s.get("max_queue"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            > 0.0
    );
    let mnist = doc
        .get("models")
        .and_then(|m| m.as_arr())
        .and_then(|a| a.first())
        .and_then(|row| row.get("stats"))
        .expect("one model stats row");
    let latency = mnist.get("latency").expect("per-model latency block");
    let p50 = latency.get("p50_ms").and_then(Json::as_f64).expect("p50");
    let p99 = latency.get("p99_ms").and_then(Json::as_f64).expect("p99");
    assert!(p50 > 0.0 && p99 >= p50, "p50 {p50}ms, p99 {p99}ms");

    handle.shutdown();
    join.join().expect("server thread");
}
