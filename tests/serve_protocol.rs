//! Protocol error paths: malformed JSON, unknown models, shape-mismatched
//! inputs and oversized payloads must each produce a *structured* error
//! response — and the server must keep serving afterwards.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use winograd_aware::models::{ModelKind, ModelSpec, ZooModel};
use winograd_aware::serve::{
    read_frame, Client, ClientError, SchedulerConfig, Server, ServerConfig, ServerHandle,
    DEFAULT_MAX_FRAME,
};
use winograd_aware::tensor::{Json, SeededRng, Tensor};

fn boot(max_frame: usize) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_frame,
            scheduler: SchedulerConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(1),
                ..SchedulerConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("binding an ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run failed"));
    (addr, handle, join)
}

fn load_lenet(client: &mut Client, name: &str) -> ZooModel {
    let spec = ModelSpec::builder()
        .classes(10)
        .input_size(12)
        .build()
        .expect("static spec");
    let mut model =
        ZooModel::from_spec(ModelKind::LeNet, &spec, &mut SeededRng::new(40)).expect("static spec");
    let ckpt = model.to_full_checkpoint().expect("export");
    client.load_model(name, &ckpt).expect("load");
    model
}

/// The error kind of a failed request, via the typed client.
fn server_error_kind(result: Result<Tensor, ClientError>) -> String {
    match result {
        Err(ClientError::Server { kind, .. }) => kind,
        other => panic!("expected a structured server error, got {other:?}"),
    }
}

#[test]
fn malformed_json_gets_structured_error_and_connection_survives() {
    let (addr, _handle, join) = boot(DEFAULT_MAX_FRAME);
    let mut stream = TcpStream::connect(addr).expect("connect");

    // a frame whose body is not JSON
    let body = b"{definitely not json";
    stream
        .write_all(&(body.len() as u32).to_be_bytes())
        .expect("header");
    stream.write_all(body).expect("body");
    stream.flush().expect("flush");

    let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME).expect("a response frame");
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        resp.get("error").unwrap().get("kind").unwrap().as_str(),
        Some("bad_frame")
    );

    // the SAME connection must still serve a valid request
    let list = Json::obj([("op", Json::from("list_models"))]);
    winograd_aware::serve::write_frame(&mut stream, &list).expect("write");
    let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME).expect("a response frame");
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));

    Client::connect(addr)
        .expect("connect")
        .shutdown()
        .expect("shutdown");
    join.join().expect("server thread");
}

#[test]
fn non_object_and_unknown_op_requests_are_structured_errors() {
    let (addr, _handle, join) = boot(DEFAULT_MAX_FRAME);
    let mut client = Client::connect(addr).expect("connect");

    for doc in [
        Json::from(42usize),
        Json::obj([("op", Json::from("levitate"))]),
        Json::obj([("op", Json::from("infer"))]), // missing model/input
    ] {
        let resp = client.request_raw(&doc).expect("a response frame");
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{doc}");
        assert_eq!(
            resp.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("bad_request"),
            "{doc}"
        );
    }

    // request ids are echoed even on failures
    let doc = Json::obj([("id", Json::from("req-9")), ("op", Json::from("levitate"))]);
    let resp = client.request_raw(&doc).expect("a response frame");
    assert_eq!(resp.get("id").unwrap().as_str(), Some("req-9"));

    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

#[test]
fn unknown_model_and_bad_shape_leave_the_server_serving() {
    let (addr, _handle, join) = boot(DEFAULT_MAX_FRAME);
    let mut client = Client::connect(addr).expect("connect");
    let x = Tensor::zeros(&[1, 1, 12, 12]);

    // unknown model
    let kind = server_error_kind(client.infer("ghost", &x));
    assert_eq!(kind, "unknown_model");

    // now load a model and send it a wrong-shaped input
    load_lenet(&mut client, "mnist");
    let bad = Tensor::zeros(&[1, 3, 12, 12]);
    let kind = server_error_kind(client.infer("mnist", &bad));
    assert_eq!(kind, "shape_mismatch");
    // wrong rank entirely
    let kind = server_error_kind(client.infer("mnist", &Tensor::zeros(&[12, 12])));
    assert_eq!(kind, "shape_mismatch");

    // the same connection still serves valid work afterwards
    let out = client.infer("mnist", &x).expect("valid inference");
    assert_eq!(out.shape(), &[1, 10]);

    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

#[test]
fn bad_checkpoints_are_rejected_with_diagnosable_messages() {
    let (addr, _handle, join) = boot(DEFAULT_MAX_FRAME);
    let mut client = Client::connect(addr).expect("connect");

    // checkpoint missing its params object: the error names the key path
    let doc = Json::obj([
        ("op", Json::from("load_model")),
        ("name", Json::from("m")),
        (
            "checkpoint",
            Json::obj([("arch", Json::from("lenet")), ("spec", Json::Obj(vec![]))]),
        ),
    ]);
    let resp = client.request_raw(&doc).expect("a response frame");
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
    let message = resp
        .get("error")
        .unwrap()
        .get("message")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert!(message.contains("`params`"), "{message}");

    // unknown architecture: structured invalid_spec
    let doc = Json::obj([
        ("op", Json::from("load_model")),
        ("name", Json::from("m")),
        (
            "checkpoint",
            Json::obj([
                ("arch", Json::from("transformer")),
                ("spec", Json::Obj(vec![])),
                ("params", Json::Obj(vec![])),
            ]),
        ),
    ]);
    let resp = client.request_raw(&doc).expect("a response frame");
    assert_eq!(
        resp.get("error").unwrap().get("kind").unwrap().as_str(),
        Some("invalid_spec")
    );

    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

#[test]
fn oversized_payload_gets_error_then_new_connections_still_serve() {
    // a tiny frame cap so an ordinary request is oversized
    let (addr, _handle, join) = boot(256);
    let mut stream = TcpStream::connect(addr).expect("connect");

    // declare a body far over the cap; the server must answer without
    // reading it, then close this connection (stream is out of sync)
    stream
        .write_all(&(1_000_000u32).to_be_bytes())
        .expect("header");
    stream.flush().expect("flush");
    let resp = read_frame(&mut stream, DEFAULT_MAX_FRAME).expect("a response frame");
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        resp.get("error").unwrap().get("kind").unwrap().as_str(),
        Some("bad_frame")
    );
    let after = read_frame(&mut stream, DEFAULT_MAX_FRAME);
    assert!(
        matches!(
            after,
            Err(winograd_aware::serve::FrameError::Closed)
                | Err(winograd_aware::serve::FrameError::Io(_))
        ),
        "the desynced connection must be closed"
    );

    // the server itself keeps serving: a new connection works
    let mut client = Client::connect(addr).expect("connect");
    let models = client.list_models().expect("list");
    assert_eq!(models.as_arr().expect("array").len(), 0);

    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}
