//! Cross-crate integration tests: the full pipelines each experiment
//! relies on, at miniature scale.

use winograd_aware::core::{evaluate, fit, ConvAlgo, ConvLayer, ConvSpec, OptimKind, TrainConfig};
use winograd_aware::data::{cifar10_like, mnist_like};
use winograd_aware::latency::{conv_latency_ms, Core, DType, LatAlgo, LayerShape};
use winograd_aware::models::{swap_and_evaluate, ConvNet, LeNet, ModelSpec, ResNet18};
use winograd_aware::nas::{MacroArch, SearchSpace, WiNas, WiNasConfig};
use winograd_aware::nn::{Layer, QuantConfig, Tape};
use winograd_aware::quant::BitWidth;
use winograd_aware::tensor::{conv2d_direct, SeededRng};
use winograd_aware::winograd::{winograd_conv2d, WinogradTransform};

fn quick_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        optim: OptimKind::Adam { lr: 2e-3 },
        weight_decay: 1e-4,
        cosine_to: Some(1e-5),
    }
}

/// End-to-end: an INT8 F4-flex Winograd-aware ResNet-18 learns a synthetic
/// task well above chance (the paper's core capability).
#[test]
fn winograd_aware_int8_resnet_learns() {
    // full scale in release; a light smoke profile under debug builds
    let (per_class, epochs, bar) = if cfg!(debug_assertions) {
        (16, 3, 0.11)
    } else {
        (80, 10, 0.3)
    };
    let mut rng = SeededRng::new(42);
    let ds = cifar10_like(per_class, 16, 7);
    let (train, val) = ds.split(0.8);
    let train_b = train.shuffled_batches(24, &mut rng);
    let val_b = val.batches(24);
    let spec = ModelSpec::builder()
        .classes(10)
        .width(0.125)
        .quant(QuantConfig::uniform(BitWidth::INT8))
        .algo(ConvAlgo::WinogradFlex { m: 4 })
        .build()
        .unwrap();
    let mut model = ResNet18::from_spec(&spec, &mut rng).unwrap();
    let hist = fit(&mut model, &train_b, &val_b, &quick_cfg(epochs));
    assert!(
        hist.best_val_acc() > bar,
        "INT8 F4-flex ResNet must beat chance: {}",
        hist.best_val_acc()
    );
    assert!(hist.epochs.last().unwrap().train_loss < hist.epochs[0].train_loss);
}

/// Table 1 pipeline: train direct → swap to Winograd → FP32 survives,
/// INT8 F6 collapses; the model itself is restorable.
#[test]
fn table1_pipeline_shape() {
    let mut rng = SeededRng::new(2);
    let n = if cfg!(debug_assertions) { 12 } else { 16 };
    let ds = mnist_like(n, 12, 3);
    let (train, val) = ds.split(0.8);
    let train_b = train.shuffled_batches(32, &mut rng);
    let val_b = val.batches(32);
    let spec = ModelSpec::builder()
        .classes(10)
        .input_size(12)
        .build()
        .unwrap();
    let mut net = LeNet::from_spec(&spec, &mut rng).unwrap();
    let hist = fit(&mut net, &train_b, &val_b, &quick_cfg(8));
    let base = hist.final_val_acc();
    assert!(base > 0.4, "baseline too weak: {}", base);

    let (_, fp32_f2) = swap_and_evaluate(
        &mut net,
        ConvAlgo::Winograd { m: 2 },
        QuantConfig::FP32,
        &train_b,
        &val_b,
        0,
    )
    .unwrap();
    assert!(
        (fp32_f2 - base).abs() < 0.15,
        "FP32 F2 swap must track baseline"
    );

    let (_, int8_f6) = swap_and_evaluate(
        &mut net,
        ConvAlgo::Winograd { m: 6 },
        QuantConfig::uniform(BitWidth::INT8),
        &train_b,
        &val_b,
        0,
    )
    .unwrap();
    assert!(
        int8_f6 < base - 0.2,
        "INT8 F6 must collapse: {} vs {}",
        int8_f6,
        base
    );

    // restore: back to direct FP32, accuracy returns
    let (_, restored) = swap_and_evaluate(
        &mut net,
        ConvAlgo::Im2row,
        QuantConfig::FP32,
        &train_b,
        &val_b,
        0,
    )
    .unwrap();
    assert!(
        (restored - base).abs() < 0.1,
        "surgery must be reversible: {} vs {}",
        restored,
        base
    );
}

/// The Winograd kernels, the autograd layer and the direct reference all
/// compute the same convolution at FP32.
#[test]
fn three_implementations_agree() {
    let mut rng = SeededRng::new(3);
    let x = rng.uniform_tensor(&[2, 3, 10, 10], -1.0, 1.0);
    let w = rng.uniform_tensor(&[4, 3, 3, 3], -1.0, 1.0);
    let direct = conv2d_direct(&x, &w, None, 1, 1);

    let t = WinogradTransform::canonical(4, 3);
    let kernel = winograd_conv2d(&x, &w, None, &t, 1);

    let spec = ConvSpec::builder()
        .name("c")
        .in_channels(3)
        .out_channels(4)
        .algo(ConvAlgo::Winograd { m: 4 })
        .build()
        .unwrap();
    let mut layer = ConvLayer::from_spec(&spec, &mut rng).unwrap();
    if let ConvLayer::Winograd(wl) = &mut layer {
        wl.weight.value = w.clone();
    }
    let mut tape = Tape::new();
    let xv = tape.leaf(x);
    let y = layer.forward(&mut tape, xv, false);
    let layer_out = tape.value(y);

    for (a, b) in kernel.data().iter().zip(direct.data()) {
        assert!((a - b).abs() < 1e-3, "kernel vs direct: {} vs {}", a, b);
    }
    for (a, b) in layer_out.data().iter().zip(direct.data()) {
        assert!((a - b).abs() < 1e-3, "layer vs direct: {} vs {}", a, b);
    }
}

/// wiNAS produces a well-formed architecture whose expected latency falls
/// when λ₂ rises (the Table 3 / Figure 9 trade-off).
#[test]
fn winas_latency_pressure() {
    let mut rng = SeededRng::new(4);
    let ds = cifar10_like(10, 8, 5);
    let (train, val) = ds.split(0.75);
    let train_b = train.shuffled_batches(16, &mut rng);
    let val_b = val.batches(16);
    let arch = MacroArch::tiny(10, 8, 8);
    let space = SearchSpace::wa(BitWidth::INT8);

    let run = |lambda2: f32, rng: &mut SeededRng| {
        let cfg = WiNasConfig {
            epochs: 4,
            lambda2,
            arch_lr: 0.3,
            core: Core::CortexA73,
            seed: 9,
            ..WiNasConfig::default()
        };
        let mut nas = WiNas::new(&arch, space.clone(), cfg, rng).unwrap();
        let _ = nas.search(&train_b, &val_b);
        nas.finalize();
        let cands = nas.extract();
        assert_eq!(cands.len(), arch.slot_count());
        (nas.expected_latency_ms(), cands)
    };
    let (lat_hi, _) = run(100.0, &mut rng);
    let (lat_none, _) = run(0.0, &mut rng);
    assert!(
        lat_hi <= lat_none * 1.05,
        "latency pressure must not slow the result: {} vs {}",
        lat_hi,
        lat_none
    );
}

/// The latency model and the real model zoo agree on layer inventories:
/// summing modeled per-layer latencies over the ResNet-18 shape list
/// matches the network's conv structure.
#[test]
fn latency_shapes_match_model_zoo() {
    let mut rng = SeededRng::new(5);
    let spec = ModelSpec::builder().classes(10).width(1.0).build().unwrap();
    let mut net = ResNet18::from_spec(&spec, &mut rng).unwrap();
    let shapes = winograd_aware::latency::resnet18_shapes(1.0, 32);
    // 1 stem + 16 block convs
    assert_eq!(shapes.len(), 1 + net.conv_count());
    // channel trajectory agrees with the real network
    let layers = net.conv_layers_mut();
    for (shape, layer) in shapes[1..].iter().zip(&layers) {
        assert_eq!(shape.in_ch, layer.in_channels(), "in_ch mismatch");
        assert_eq!(shape.out_ch, layer.out_channels(), "out_ch mismatch");
    }
}

/// Evaluation does not mutate the model (params, statistics, observers).
#[test]
fn evaluation_is_pure() {
    let mut rng = SeededRng::new(6);
    let ds = cifar10_like(6, 8, 9);
    let batches = ds.batches(12);
    let spec = ModelSpec::builder()
        .classes(10)
        .width(0.125)
        .quant(QuantConfig::uniform(BitWidth::INT8))
        .algo(ConvAlgo::WinogradFlex { m: 2 })
        .build()
        .unwrap();
    let mut net = ResNet18::from_spec(&spec, &mut rng).unwrap();
    // warm the observers once so eval has sane scales
    winograd_aware::core::warm_up(&mut net, &batches);
    let (l1, a1) = evaluate(&mut net, &batches);
    let (l2, a2) = evaluate(&mut net, &batches);
    assert_eq!(
        l1, l2,
        "evaluate must be deterministic and side-effect free"
    );
    assert_eq!(a1, a2);
}

/// Modeled latency honors the paper's headline Table 3 numbers in shape:
/// INT8 WAF4 ≥ 2× over FP32 im2row on the A73.
#[test]
fn headline_speedup_holds() {
    let shapes = winograd_aware::latency::resnet18_shapes(1.0, 32);
    let base: f64 = shapes
        .iter()
        .map(|&s| conv_latency_ms(Core::CortexA73, DType::Fp32, LatAlgo::Im2row, s))
        .sum();
    let waf4: f64 = shapes
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let algo = if i == 0 {
                LatAlgo::Im2row
            } else if i >= shapes.len() - 4 {
                LatAlgo::WinogradDense { m: 2 }
            } else {
                LatAlgo::WinogradDense { m: 4 }
            };
            conv_latency_ms(Core::CortexA73, DType::Int8, algo, s)
        })
        .sum();
    let speedup = base / waf4;
    assert!(
        (1.8..3.0).contains(&speedup),
        "WAF4-INT8 speedup {} out of the paper's ballpark (2.43×)",
        speedup
    );
}

/// A single LayerShape round-trips through the latency model sanely at
/// every precision.
#[test]
fn latency_precisions_ordered() {
    let s = LayerShape::square(128, 128, 16, 3);
    for algo in [LatAlgo::Im2row, LatAlgo::Winograd { m: 4 }] {
        let fp32 = conv_latency_ms(Core::CortexA73, DType::Fp32, algo, s);
        let int16 = conv_latency_ms(Core::CortexA73, DType::Int16, algo, s);
        let int8 = conv_latency_ms(Core::CortexA73, DType::Int8, algo, s);
        assert!(
            fp32 >= int16 && int16 >= int8,
            "{:?}: {} {} {}",
            algo,
            fp32,
            int16,
            int8
        );
    }
}
