//! End-to-end serving: boot a real server on an ephemeral port, load
//! models from one-document checkpoints over the wire, and assert that
//! served `infer` logits are **bit-identical** to in-process
//! `try_forward_batch` — for two architectures under both im2row and
//! Winograd F2 — and that concurrent clients are coalesced into shared
//! batches by the scheduler.

use std::net::SocketAddr;
use std::time::Duration;

use winograd_aware::core::ConvAlgo;
use winograd_aware::models::{ExecutorConfig, Infer, ModelKind, ModelSpec, ZooModel};
use winograd_aware::serve::{
    Client, ClientError, SchedulerConfig, Server, ServerConfig, ServerHandle,
};
use winograd_aware::tensor::{SeededRng, Tensor};

/// The executor sharding used on both sides of every comparison.
const EXEC: ExecutorConfig = ExecutorConfig {
    threads: 2,
    chunk: 2,
};

/// Boots a server on an ephemeral port in a background thread.
fn boot(scheduler: SchedulerConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    boot_with(ServerConfig {
        scheduler,
        ..ServerConfig::default()
    })
}

/// Boots a server with a full [`ServerConfig`] on an ephemeral port.
fn boot_with(cfg: ServerConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("binding an ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().expect("server run failed");
    });
    (addr, handle, join)
}

fn spec_for(kind: ModelKind, algo: ConvAlgo) -> ModelSpec {
    let builder = ModelSpec::builder().classes(10).algo(algo);
    match kind {
        ModelKind::LeNet => builder.input_size(12),
        _ => builder.input_size(8).width(0.125),
    }
    .build()
    .expect("static spec")
}

#[test]
fn served_logits_bit_identical_to_in_process_for_two_models_two_algos() {
    let (addr, _handle, join) = boot(SchedulerConfig {
        max_batch: 16,
        max_delay: Duration::from_millis(1),
        exec: EXEC,
        ..SchedulerConfig::default()
    });
    let mut rng = SeededRng::new(30);
    let mut client = Client::connect(addr).expect("connect");

    for kind in [ModelKind::LeNet, ModelKind::ResNet18] {
        for algo in [ConvAlgo::Im2row, ConvAlgo::Winograd { m: 2 }] {
            let spec = spec_for(kind, algo);
            let mut model = ZooModel::from_spec(kind, &spec, &mut rng).expect("static spec");
            let name = format!("{kind}-{algo}");
            let ckpt = model.to_full_checkpoint().expect("export");
            client.load_model(&name, &ckpt).expect("load over the wire");

            let [c, h, w] = model.sample_shape();
            let batch = rng.uniform_tensor(&[5, c, h, w], -1.0, 1.0);
            let want = model
                .try_forward_batch(&batch, EXEC)
                .expect("in-process batched forward");
            let got = client.infer(&name, &batch).expect("served inference");
            assert_eq!(got.shape(), want.shape(), "{name}");
            assert_eq!(
                got.data(),
                want.data(),
                "{name}: served logits must be bit-identical to try_forward_batch"
            );
        }
    }

    // all four models stayed loaded
    let models = client.list_models().expect("list");
    assert_eq!(models.as_arr().expect("array").len(), 4);

    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

#[test]
fn per_tap_int8_f4_model_round_trips_through_the_wire_unchanged() {
    // A *calibrated* tap-wise INT8 F4 model: warmed so every
    // Winograd-domain tap has its own (non-uniform) scale, exported as a
    // one-document checkpoint, loaded over the wire, and served — the
    // served logits must be bit-identical to the in-process
    // `try_forward_batch` of the exporting model, which is only possible
    // if the per-tap calibration survived FullCheckpoint → wa-serve.
    use winograd_aware::nn::{Layer, QuantConfig, Tape};
    use winograd_aware::quant::BitWidth;

    let (addr, _handle, join) = boot(SchedulerConfig {
        max_batch: 16,
        max_delay: Duration::from_millis(1),
        exec: EXEC,
        ..SchedulerConfig::default()
    });
    let mut rng = SeededRng::new(33);
    let spec = ModelSpec::builder()
        .classes(10)
        .input_size(12)
        .algo(ConvAlgo::Winograd { m: 4 })
        .quant(QuantConfig::per_tap(BitWidth::INT8))
        .build()
        .expect("static spec");
    let mut model = ZooModel::from_spec(ModelKind::LeNet, &spec, &mut rng).expect("static spec");
    {
        let warm = rng.uniform_tensor(&[4, 1, 12, 12], -1.0, 1.0);
        let mut tape = Tape::new();
        let x = tape.leaf(warm);
        let _ = model.forward(&mut tape, x, true);
    }

    let ckpt = model.to_full_checkpoint().expect("export");
    assert!(
        !ckpt.quant.is_empty(),
        "the served document must carry the calibration section"
    );
    let mut client = Client::connect(addr).expect("connect");
    client
        .load_model("tapnet", &ckpt)
        .expect("load over the wire");

    let batch = rng.uniform_tensor(&[5, 1, 12, 12], -1.0, 1.0);
    let want = model
        .try_forward_batch(&batch, EXEC)
        .expect("in-process batched forward");
    let got = client.infer("tapnet", &batch).expect("served inference");
    assert_eq!(
        got.data(),
        want.data(),
        "served per-tap INT8 F4 logits must be bit-identical to in-process"
    );

    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

#[test]
fn concurrent_clients_are_coalesced_into_one_scheduler_batch() {
    // max_batch equals the total concurrent sample count and the
    // deadline is far away: only the size threshold can flush, so all
    // requests *must* land in one executor batch.
    const CLIENTS: usize = 3;
    const PER_CLIENT: usize = 2;
    let (addr, _handle, join) = boot(SchedulerConfig {
        max_batch: CLIENTS * PER_CLIENT,
        max_delay: Duration::from_secs(30),
        exec: EXEC,
        ..SchedulerConfig::default()
    });
    let mut rng = SeededRng::new(31);
    let spec = spec_for(ModelKind::LeNet, ConvAlgo::Winograd { m: 2 });
    let mut model = ZooModel::from_spec(ModelKind::LeNet, &spec, &mut rng).expect("static spec");
    let ckpt = model.to_full_checkpoint().expect("export");

    let mut admin = Client::connect(addr).expect("connect");
    admin.load_model("mnist", &ckpt).expect("load");

    // per-request references: FP32 outputs are independent of batch
    // composition (executor chunk invariance), so each client's served
    // logits must equal its own in-process forward regardless of which
    // requests shared the batch
    let inputs: Vec<Tensor> = (0..CLIENTS)
        .map(|_| rng.uniform_tensor(&[PER_CLIENT, 1, 12, 12], -1.0, 1.0))
        .collect();
    let wants: Vec<Tensor> = inputs
        .iter()
        .map(|x| model.try_forward_batch(x, EXEC).expect("reference"))
        .collect();

    std::thread::scope(|s| {
        let handles: Vec<_> = inputs
            .iter()
            .map(|x| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client.infer("mnist", x).expect("served inference")
                })
            })
            .collect();
        for (h, want) in handles.into_iter().zip(&wants) {
            let got = h.join().expect("client thread");
            assert_eq!(got.data(), want.data(), "batched-together request diverged");
        }
    });

    // the scheduler must have formed exactly one batch out of the three
    // concurrent requests
    let stats = admin.stats().expect("stats");
    let rows = stats.get("models").and_then(|m| m.as_arr()).expect("rows");
    let mnist = rows
        .iter()
        .find(|r| r.get("name").and_then(|v| v.as_str()) == Some("mnist"))
        .expect("mnist row");
    let counter = |key: &str| {
        mnist
            .get("stats")
            .and_then(|s| s.get(key))
            .and_then(|v| v.as_f64())
            .expect("counter")
    };
    assert_eq!(counter("requests"), CLIENTS as f64);
    assert_eq!(counter("samples"), (CLIENTS * PER_CLIENT) as f64);
    assert_eq!(
        counter("batches"),
        1.0,
        "concurrent requests must coalesce into a single executor batch"
    );

    admin.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

#[test]
fn hot_reload_swaps_the_served_model() {
    let (addr, _handle, join) = boot(SchedulerConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(1),
        exec: EXEC,
        ..SchedulerConfig::default()
    });
    let spec = spec_for(ModelKind::LeNet, ConvAlgo::Im2row);
    let mut rng = SeededRng::new(32);
    let mut a = ZooModel::from_spec(ModelKind::LeNet, &spec, &mut rng).expect("static spec");
    let mut b = ZooModel::from_spec(ModelKind::LeNet, &spec, &mut rng).expect("static spec");

    let mut client = Client::connect(addr).expect("connect");
    let x = rng.uniform_tensor(&[2, 1, 12, 12], -1.0, 1.0);

    client
        .load_model("m", &a.to_full_checkpoint().expect("export"))
        .expect("load a");
    let got_a = client.infer("m", &x).expect("serve a");
    assert_eq!(
        got_a.data(),
        a.try_forward_batch(&x, EXEC).expect("ref a").data()
    );

    client
        .load_model("m", &b.to_full_checkpoint().expect("export"))
        .expect("reload with b");
    let got_b = client.infer("m", &x).expect("serve b");
    assert_eq!(
        got_b.data(),
        b.try_forward_batch(&x, EXEC).expect("ref b").data()
    );
    assert_ne!(
        got_a.data(),
        got_b.data(),
        "differently-seeded models must disagree"
    );

    client.unload("m").expect("unload");
    assert!(client.infer("m", &x).is_err(), "unloaded model must 404");

    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

#[test]
fn over_limit_connections_get_a_structured_busy_error() {
    // max_conns = 1: while one client connection is open, a second
    // connection's first request must be answered with exactly one
    // {ok: false, error: {kind: "busy"}} frame — not a reset, not a
    // hang, and never an unbounded connection thread.
    let (addr, handle, join) = boot_with(ServerConfig {
        max_conns: 1,
        scheduler: SchedulerConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(1),
            exec: EXEC,
            ..SchedulerConfig::default()
        },
        ..ServerConfig::default()
    });

    // occupy the only slot with a live connection
    let mut holder = Client::connect(addr).expect("connect");
    let models = holder.list_models().expect("list over the held slot");
    assert_eq!(models.as_arr().expect("array").len(), 0);

    // the over-limit connection gets the busy refusal
    let mut refused = Client::connect(addr).expect("tcp connect still accepted");
    match refused.list_models() {
        Err(ClientError::Server { kind, message }) => {
            assert_eq!(kind, "busy", "unexpected error kind: {message}");
            assert!(message.contains("connection limit"), "got: {message}");
        }
        other => panic!("expected a structured busy error, got {other:?}"),
    }

    // releasing the held slot lets new connections in again (the slot is
    // freed asynchronously when the connection thread sees EOF, so poll)
    drop(holder);
    let mut ok = false;
    for _ in 0..100 {
        let mut retry = Client::connect(addr).expect("tcp connect");
        if retry.list_models().is_ok() {
            ok = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(ok, "a freed slot must become usable again");

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn stats_reports_connection_and_flusher_limits() {
    let (addr, handle, join) = boot_with(ServerConfig {
        max_conns: 7,
        scheduler: SchedulerConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(1),
            exec: EXEC,
            max_inflight_flushes: 3,
            ..SchedulerConfig::default()
        },
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");

    let conns = stats.get("connections").expect("connections object");
    assert_eq!(conns.get("max_conns").and_then(|v| v.as_f64()), Some(7.0));
    // this very client is the one open connection
    assert_eq!(conns.get("open").and_then(|v| v.as_f64()), Some(1.0));

    let sched = stats.get("scheduler").expect("scheduler object");
    assert_eq!(
        sched.get("max_inflight_flushes").and_then(|v| v.as_f64()),
        Some(3.0)
    );
    assert_eq!(
        sched.get("inflight_flushes").and_then(|v| v.as_f64()),
        Some(0.0)
    );

    handle.shutdown();
    join.join().expect("server thread");
}
