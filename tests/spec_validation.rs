//! Workspace-level contract tests for the spec/builder construction API:
//! every invalid configuration must surface as the right [`WaError`]
//! variant (never a panic), and builder-built layers must be numerically
//! identical to layers assembled through the surgery path.

use winograd_aware::core::{
    ConvAlgo, ConvLayer, ConvSpec, WaError, WinogradAwareConv2d, SUPPORTED_TILE_SIZES,
};
use winograd_aware::models::{LeNet, ModelSpec, ResNeXt20, ResNet18, SqueezeNet};
use winograd_aware::nn::{
    BatchNorm2d, BatchNormSpec, Conv2d, Conv2dSpec, Layer, Linear, LinearSpec, QuantConfig, Tape,
};
use winograd_aware::quant::BitWidth;
use winograd_aware::tensor::{SeededRng, Tensor};

// ---- invalid specs return the right error variant ---------------------

#[test]
fn conv_spec_zero_channels_is_invalid_spec() {
    let err = ConvSpec::builder().out_channels(8).build().unwrap_err();
    assert!(
        matches!(
            err,
            WaError::InvalidSpec {
                spec: "ConvSpec",
                field: "in_channels",
                ..
            }
        ),
        "{err}"
    );
    let err = ConvSpec::builder().in_channels(8).build().unwrap_err();
    assert!(
        matches!(
            err,
            WaError::InvalidSpec {
                field: "out_channels",
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn conv_spec_even_kernel_winograd_is_unsupported_algo() {
    let err = ConvSpec::builder()
        .in_channels(4)
        .out_channels(4)
        .kernel(4)
        .algo(ConvAlgo::Winograd { m: 2 })
        .build()
        .unwrap_err();
    assert!(matches!(err, WaError::UnsupportedAlgo { .. }), "{err}");
    // even kernels are fine for im2row
    assert!(ConvSpec::builder()
        .in_channels(4)
        .out_channels(4)
        .kernel(4)
        .build()
        .is_ok());
}

#[test]
fn conv_spec_winograd_stride_two_is_unsupported_algo() {
    let err = ConvSpec::builder()
        .in_channels(4)
        .out_channels(4)
        .stride(2)
        .algo(ConvAlgo::WinogradFlex { m: 2 })
        .build()
        .unwrap_err();
    assert!(matches!(err, WaError::UnsupportedAlgo { .. }), "{err}");
    assert!(err.to_string().contains("stride"), "{err}");
}

#[test]
fn conv_spec_unsupported_tile_is_unsupported_algo() {
    for m in [0usize, 1, 3, 5, 7, 8] {
        assert!(!SUPPORTED_TILE_SIZES.contains(&m));
        let err = ConvSpec::builder()
            .in_channels(4)
            .out_channels(4)
            .algo(ConvAlgo::Winograd { m })
            .build()
            .unwrap_err();
        assert!(
            matches!(err, WaError::UnsupportedAlgo { .. }),
            "m={m}: {err}"
        );
    }
}

#[test]
fn layer_specs_reject_zero_dims() {
    assert!(matches!(
        Conv2dSpec::builder("c").out_channels(1).build(),
        Err(WaError::InvalidSpec {
            spec: "Conv2dSpec",
            ..
        })
    ));
    assert!(matches!(
        LinearSpec::builder("l").in_features(3).build(),
        Err(WaError::InvalidSpec {
            spec: "LinearSpec",
            field: "out_features",
            ..
        })
    ));
    assert!(matches!(
        BatchNormSpec::builder("bn").build(),
        Err(WaError::InvalidSpec {
            spec: "BatchNormSpec",
            field: "channels",
            ..
        })
    ));
}

#[test]
fn model_spec_rejects_bad_fields() {
    assert!(matches!(
        ModelSpec::builder().classes(0).build(),
        Err(WaError::InvalidSpec {
            field: "classes",
            ..
        })
    ));
    assert!(matches!(
        ModelSpec::builder().width(-1.0).build(),
        Err(WaError::InvalidSpec { field: "width", .. })
    ));
    assert!(matches!(
        ModelSpec::builder()
            .algo(ConvAlgo::WinogradFlex { m: 3 })
            .build(),
        Err(WaError::UnsupportedAlgo { .. })
    ));
}

#[test]
fn every_model_rejects_an_invalid_spec_without_panicking() {
    // invalid at validate() time — shared across the zoo
    let bad = ModelSpec {
        classes: 0,
        width: 1.0,
        input_size: 32,
        quant: QuantConfig::FP32,
        algo: ConvAlgo::Im2row,
        overrides: vec![],
    };
    let mut rng = SeededRng::new(0);
    assert!(ResNet18::from_spec(&bad, &mut rng).is_err());
    assert!(LeNet::from_spec(&bad, &mut rng).is_err());
    assert!(SqueezeNet::from_spec(&bad, &mut rng).is_err());
    assert!(ResNeXt20::from_spec(&bad, &mut rng).is_err());
}

#[test]
fn surgery_to_unsupported_tile_is_rejected() {
    let mut rng = SeededRng::new(1);
    let spec = ConvSpec::builder()
        .in_channels(2)
        .out_channels(2)
        .build()
        .unwrap();
    let mut layer = ConvLayer::from_spec(&spec, &mut rng).unwrap();
    let err = layer.try_convert(ConvAlgo::Winograd { m: 8 }).unwrap_err();
    assert!(matches!(err, WaError::UnsupportedAlgo { .. }), "{err}");
    assert_eq!(layer.algo(), ConvAlgo::Im2row);
}

#[test]
fn winograd_weight_shape_mismatch_is_shape_error() {
    let mut rng = SeededRng::new(2);
    let spec = ConvSpec::builder()
        .in_channels(3)
        .out_channels(4)
        .algo(ConvAlgo::Winograd { m: 2 })
        .build()
        .unwrap();
    // wrong channel count in the carried weight
    let w = winograd_aware::nn::Param::new("w", rng.kaiming_tensor(&[4, 2, 3, 3]));
    let Err(err) = WinogradAwareConv2d::from_spec_with_weight(&spec, w, None) else {
        panic!("mismatched weight must be rejected")
    };
    assert!(matches!(err, WaError::ShapeMismatch { .. }), "{err}");
}

#[test]
fn try_forward_shape_errors_do_not_panic() {
    let mut rng = SeededRng::new(3);
    let conv_spec = Conv2dSpec::builder("c")
        .in_channels(3)
        .out_channels(4)
        .build()
        .unwrap();
    let mut conv = Conv2d::from_spec(&conv_spec, &mut rng).unwrap();
    let lin_spec = LinearSpec::builder("l")
        .in_features(8)
        .out_features(2)
        .build()
        .unwrap();
    let mut lin = Linear::from_spec(&lin_spec, &mut rng).unwrap();
    let bn_spec = BatchNormSpec::builder("bn").channels(3).build().unwrap();
    let mut bnorm = BatchNorm2d::from_spec(&bn_spec).unwrap();

    let mut tape = Tape::new();
    let wrong_nchw = tape.leaf(rng.uniform_tensor(&[1, 5, 8, 8], -1.0, 1.0));
    let wrong_mat = tape.leaf(rng.uniform_tensor(&[2, 7], -1.0, 1.0));
    assert!(matches!(
        conv.try_forward(&mut tape, wrong_nchw, false),
        Err(WaError::ShapeMismatch { .. })
    ));
    assert!(matches!(
        lin.try_forward(&mut tape, wrong_mat, false),
        Err(WaError::ShapeMismatch { .. })
    ));
    assert!(matches!(
        bnorm.try_forward(&mut tape, wrong_nchw, false),
        Err(WaError::ShapeMismatch { .. })
    ));
}

#[test]
fn model_try_forward_rejects_unpoolable_spatial_dims() {
    // inputs that would hit a max-pool on odd dims mid-network must come
    // back as errors, not panics — the serving contract of try_forward
    let mut rng = SeededRng::new(11);
    let spec = ModelSpec::builder()
        .classes(10)
        .width(0.125)
        .build()
        .unwrap();
    let mut tape = Tape::new();

    let mut resnet = ResNet18::from_spec(&spec, &mut rng).unwrap();
    let x = tape.leaf(rng.uniform_tensor(&[1, 3, 15, 15], -1.0, 1.0));
    assert!(matches!(
        resnet.try_forward(&mut tape, x, false),
        Err(WaError::ShapeMismatch { .. })
    ));

    let mut resnext = ResNeXt20::from_spec(&spec, &mut rng).unwrap();
    let x = tape.leaf(rng.uniform_tensor(&[1, 3, 10, 10], -1.0, 1.0));
    assert!(matches!(
        resnext.try_forward(&mut tape, x, false),
        Err(WaError::ShapeMismatch { .. })
    ));

    let mut squeeze = SqueezeNet::from_spec(&spec, &mut rng).unwrap();
    let x = tape.leaf(rng.uniform_tensor(&[1, 3, 18, 18], -1.0, 1.0));
    assert!(matches!(
        squeeze.try_forward(&mut tape, x, false),
        Err(WaError::ShapeMismatch { .. })
    ));
    // while a poolable 12x12 still forwards (covers the guarded pools)
    let x = tape.leaf(rng.uniform_tensor(&[1, 3, 12, 12], -1.0, 1.0));
    assert!(squeeze.try_forward(&mut tape, x, false).is_ok());

    let lenet_spec = ModelSpec::builder()
        .classes(10)
        .input_size(28)
        .build()
        .unwrap();
    let mut lenet = LeNet::from_spec(&lenet_spec, &mut rng).unwrap();
    let x = tape.leaf(rng.uniform_tensor(&[1, 1, 14, 14], -1.0, 1.0));
    assert!(matches!(
        lenet.try_forward(&mut tape, x, false),
        Err(WaError::ShapeMismatch { .. })
    ));
}

// ---- numerical equivalence: builder path vs surgery path --------------

/// A layer built directly as Winograd must compute the same function as
/// an im2row layer surgically converted to the same algorithm with the
/// same weights — i.e. the spec path introduces no numerical drift.
#[test]
fn builder_and_surgery_paths_are_numerically_identical() {
    for algo in [
        ConvAlgo::Winograd { m: 2 },
        ConvAlgo::Winograd { m: 4 },
        ConvAlgo::WinogradFlex { m: 4 },
    ] {
        let mut rng = SeededRng::new(7);
        let direct_spec = ConvSpec::builder()
            .name("eq")
            .in_channels(3)
            .out_channels(5)
            .build()
            .unwrap();
        let mut surgical = ConvLayer::from_spec(&direct_spec, &mut rng).unwrap();

        // builder path: same spec but with the Winograd algorithm, then
        // copy the weights over
        let wino_spec = direct_spec.with_algo(algo).unwrap();
        let mut built = ConvLayer::from_spec(&wino_spec, &mut rng).unwrap();
        let weights = match &surgical {
            ConvLayer::Direct(c) => c.weight.value.clone(),
            _ => unreachable!(),
        };
        match &mut built {
            ConvLayer::Winograd(w) => w.weight.value = weights,
            _ => unreachable!("spec with Winograd algo must build a Winograd layer"),
        }

        // surgery path
        surgical.try_convert(algo).unwrap();

        let x = rng.uniform_tensor(&[2, 3, 9, 9], -1.0, 1.0);
        let run = |l: &mut ConvLayer, x: &Tensor| {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let y = l.try_forward(&mut tape, xv, false).unwrap();
            tape.value(y).clone()
        };
        let a = run(&mut built, &x);
        let b = run(&mut surgical, &x);
        assert_eq!(a.shape(), b.shape());
        for (p, q) in a.data().iter().zip(b.data()) {
            assert_eq!(
                p, q,
                "{algo}: builder and surgery outputs must match bit-for-bit"
            );
        }
    }
}

/// The read-back spec of a layer reconstructs a layer with identical
/// geometry and algorithm (construction is round-trippable).
#[test]
fn conv_spec_roundtrip_preserves_configuration() {
    let mut rng = SeededRng::new(8);
    let spec = ConvSpec::builder()
        .name("rt")
        .in_channels(6)
        .out_channels(12)
        .kernel(5)
        .pad(2)
        .algo(ConvAlgo::WinogradFlex { m: 2 })
        .quant(QuantConfig::uniform(BitWidth::INT8))
        .build()
        .unwrap();
    let layer = ConvLayer::from_spec(&spec, &mut rng).unwrap();
    let back = layer.spec();
    assert_eq!(back, spec);
}
