//! Property-style tests for the Winograd algebra, driven by deterministic
//! seeded sweeps (the container has no property-testing framework, so the
//! random-case generation uses the workspace's own `SeededRng`).

use wa_tensor::{conv2d_direct, SeededRng, Tensor};
use wa_winograd::{winograd_1d_exact, winograd_conv2d, Frac, TileGeometry, WinogradTransform};

fn fir_exact(d: &[Frac], g: &[Frac]) -> Vec<Frac> {
    let m = d.len() - g.len() + 1;
    (0..m)
        .map(|i| {
            g.iter()
                .enumerate()
                .fold(Frac::ZERO, |acc, (k, &gk)| acc + gk * d[i + k])
        })
        .collect()
}

/// The synthesized F(m, r) triple computes FIR filtering exactly over
/// the rationals for every supported size and random integer data.
#[test]
fn cook_toom_is_exact() {
    let mut rng = SeededRng::new(0x1001);
    for m in 2usize..=6 {
        for r in [3usize, 5] {
            for _ in 0..8 {
                let ct = wa_winograd::cook_toom(m, r);
                let n = m + r - 1;
                let d: Vec<Frac> = (0..n)
                    .map(|_| Frac::int(rng.below(41) as i128 - 20))
                    .collect();
                let g: Vec<Frac> = (0..r)
                    .map(|_| Frac::int(rng.below(21) as i128 - 10))
                    .collect();
                assert_eq!(
                    winograd_1d_exact(&ct, &d, &g),
                    fir_exact(&d, &g),
                    "F({m},{r})"
                );
            }
        }
    }
}

/// The batched f32 kernel agrees with direct convolution on random
/// shapes (the full NCHW path: padding, tiling, GEMM, assembly).
#[test]
fn kernel_matches_direct() {
    let mut rng = SeededRng::new(0x1002);
    for case in 0..48 {
        let m = if case % 2 == 0 { 2 } else { 4 };
        let h = 4 + rng.below(10);
        let w = 4 + rng.below(10);
        let c = 1 + rng.below(3);
        let k = 1 + rng.below(3);
        let batch = 1 + rng.below(2);
        let pad = rng.below(2);
        if h + 2 * pad < 3 || w + 2 * pad < 3 {
            continue;
        }
        let t = WinogradTransform::canonical(m, 3);
        let x = rng.uniform_tensor(&[batch, c, h, w], -1.0, 1.0);
        let wt = rng.uniform_tensor(&[k, c, 3, 3], -1.0, 1.0);
        let got = winograd_conv2d(&x, &wt, None, &t, pad);
        let want = conv2d_direct(&x, &wt, None, 1, pad);
        assert_eq!(got.shape(), want.shape());
        for (a, b) in got.data().iter().zip(want.data()) {
            assert!(
                (a - b).abs() < 1e-3 * (1.0 + b.abs()),
                "case {case}: {a} vs {b}"
            );
        }
    }
}

/// gather/scatter and assemble/disassemble are adjoint linear maps for
/// arbitrary geometry: ⟨Ax, y⟩ = ⟨x, Aᵀy⟩.
#[test]
fn tiling_adjointness() {
    let mut rng = SeededRng::new(0x1003);
    for case in 0..48 {
        let m = [2usize, 4, 6][case % 3];
        let h = 3 + rng.below(9);
        let w = 3 + rng.below(9);
        let c = 1 + rng.below(2);
        let geom = TileGeometry::for_conv(h, w, m, 3, 1);
        let xp = rng.uniform_tensor(&[1, c, geom.padded_h(), geom.padded_w()], -1.0, 1.0);
        let tiles = geom.gather_tiles(&xp);
        let y = rng.uniform_tensor(tiles.shape(), -1.0, 1.0);
        let back = geom.scatter_tiles(&y, 1, c);
        let dot = |a: &Tensor, b: &Tensor| -> f64 {
            a.data()
                .iter()
                .zip(b.data())
                .map(|(&p, &q)| (p * q) as f64)
                .sum()
        };
        assert!((dot(&tiles, &y) - dot(&xp, &back)).abs() < 1e-2);

        let otiles = rng.uniform_tensor(&[geom.tiles() * c, m * m], -1.0, 1.0);
        let out = geom.assemble_output(&otiles, 1, c);
        let og = rng.uniform_tensor(out.shape(), -1.0, 1.0);
        let oback = geom.disassemble_output(&og);
        assert!((dot(&out, &og) - dot(&otiles, &oback)).abs() < 1e-2);
    }
}

/// Tile counts always cover the output and the waste is less than one
/// tile ring.
#[test]
fn tile_waste_bounds() {
    for m in [2usize, 4, 6] {
        for h in 3usize..40 {
            for w in [3usize, 7, 16, 25, 39] {
                for pad in 0usize..2 {
                    if h + 2 * pad < 3 || w + 2 * pad < 3 {
                        continue;
                    }
                    let geom = TileGeometry::for_conv(h, w, m, 3, pad);
                    assert!(geom.tiles_y * m >= geom.out_h);
                    assert!(geom.tiles_x * m >= geom.out_w);
                    assert!(geom.tiles_y * m < geom.out_h + m);
                    assert!(geom.tiles_x * m < geom.out_w + m);
                    let covered = (geom.tiles_y * m) * (geom.tiles_x * m);
                    assert_eq!(geom.wasted_outputs(), covered - geom.out_h * geom.out_w);
                }
            }
        }
    }
}

/// Fake-quantized Winograd error is monotone non-increasing in
/// precision for every tile size.
#[test]
fn error_monotone_in_precision() {
    use wa_quant::BitWidth;
    for m in [2usize, 4, 6] {
        for seed in [0u64, 17, 42, 99] {
            let t = WinogradTransform::canonical(m, 3);
            let e8 = wa_winograd::tile_error_quantized(&t, BitWidth::INT8, 30, seed).rel_fro;
            let e16 = wa_winograd::tile_error_quantized(&t, BitWidth::INT16, 30, seed).rel_fro;
            assert!(
                e16 <= e8 + 1e-12,
                "F{m}: INT16 {e16} must not exceed INT8 {e8}"
            );
        }
    }
}
