//! Property-based tests for the Winograd algebra.

use proptest::prelude::*;
use wa_tensor::{conv2d_direct, SeededRng, Tensor};
use wa_winograd::{winograd_1d_exact, winograd_conv2d, Frac, TileGeometry, WinogradTransform};

fn fir_exact(d: &[Frac], g: &[Frac]) -> Vec<Frac> {
    let m = d.len() - g.len() + 1;
    (0..m)
        .map(|i| {
            g.iter()
                .enumerate()
                .fold(Frac::ZERO, |acc, (k, &gk)| acc + gk * d[i + k])
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The synthesized F(m, r) triple computes FIR filtering exactly over
    /// the rationals for every supported size and random integer data.
    #[test]
    fn cook_toom_is_exact(
        m in 2usize..=6,
        r in prop::sample::select(vec![3usize, 5]),
        seed in 0u64..1000,
    ) {
        let ct = wa_winograd::cook_toom(m, r);
        let n = m + r - 1;
        let mut rng = SeededRng::new(seed);
        let d: Vec<Frac> = (0..n).map(|_| Frac::int(rng.below(41) as i128 - 20)).collect();
        let g: Vec<Frac> = (0..r).map(|_| Frac::int(rng.below(21) as i128 - 10)).collect();
        prop_assert_eq!(winograd_1d_exact(&ct, &d, &g), fir_exact(&d, &g));
    }

    /// The batched f32 kernel agrees with direct convolution on random
    /// shapes (the full NCHW path: padding, tiling, GEMM, assembly).
    #[test]
    fn kernel_matches_direct(
        m in prop::sample::select(vec![2usize, 4]),
        h in 4usize..14,
        w in 4usize..14,
        c in 1usize..4,
        k in 1usize..4,
        batch in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= 3 && w + 2 * pad >= 3);
        let t = WinogradTransform::canonical(m, 3);
        let mut rng = SeededRng::new(seed);
        let x = rng.uniform_tensor(&[batch, c, h, w], -1.0, 1.0);
        let wt = rng.uniform_tensor(&[k, c, 3, 3], -1.0, 1.0);
        let got = winograd_conv2d(&x, &wt, None, &t, pad);
        let want = conv2d_direct(&x, &wt, None, 1, pad);
        prop_assert_eq!(got.shape(), want.shape());
        for (a, b) in got.data().iter().zip(want.data()) {
            prop_assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()), "{} vs {}", a, b);
        }
    }

    /// gather/scatter and assemble/disassemble are adjoint linear maps for
    /// arbitrary geometry: ⟨Ax, y⟩ = ⟨x, Aᵀy⟩.
    #[test]
    fn tiling_adjointness(
        m in prop::sample::select(vec![2usize, 4, 6]),
        h in 3usize..12,
        w in 3usize..12,
        c in 1usize..3,
        seed in 0u64..1000,
    ) {
        let geom = TileGeometry::for_conv(h, w, m, 3, 1);
        let mut rng = SeededRng::new(seed);
        let xp = rng.uniform_tensor(&[1, c, geom.padded_h(), geom.padded_w()], -1.0, 1.0);
        let tiles = geom.gather_tiles(&xp);
        let y = rng.uniform_tensor(tiles.shape(), -1.0, 1.0);
        let back = geom.scatter_tiles(&y, 1, c);
        let dot = |a: &Tensor, b: &Tensor| -> f64 {
            a.data().iter().zip(b.data()).map(|(&p, &q)| (p * q) as f64).sum()
        };
        prop_assert!((dot(&tiles, &y) - dot(&xp, &back)).abs() < 1e-2);

        let otiles = rng.uniform_tensor(&[geom.tiles() * c, m * m], -1.0, 1.0);
        let out = geom.assemble_output(&otiles, 1, c);
        let og = rng.uniform_tensor(out.shape(), -1.0, 1.0);
        let oback = geom.disassemble_output(&og);
        prop_assert!((dot(&out, &og) - dot(&otiles, &oback)).abs() < 1e-2);
    }

    /// Tile counts always cover the output and the waste is less than one
    /// tile ring.
    #[test]
    fn tile_waste_bounds(
        m in prop::sample::select(vec![2usize, 4, 6]),
        h in 3usize..40,
        w in 3usize..40,
        pad in 0usize..2,
    ) {
        prop_assume!(h + 2 * pad >= 3 && w + 2 * pad >= 3);
        let geom = TileGeometry::for_conv(h, w, m, 3, pad);
        prop_assert!(geom.tiles_y * m >= geom.out_h);
        prop_assert!(geom.tiles_x * m >= geom.out_w);
        prop_assert!(geom.tiles_y * m < geom.out_h + m);
        prop_assert!(geom.tiles_x * m < geom.out_w + m);
        let covered = (geom.tiles_y * m) * (geom.tiles_x * m);
        prop_assert_eq!(geom.wasted_outputs(), covered - geom.out_h * geom.out_w);
    }

    /// Fake-quantized Winograd error is monotone non-increasing in
    /// precision for every tile size.
    #[test]
    fn error_monotone_in_precision(
        m in prop::sample::select(vec![2usize, 4, 6]),
        seed in 0u64..100,
    ) {
        use wa_quant::BitWidth;
        let t = WinogradTransform::canonical(m, 3);
        let e8 = wa_winograd::tile_error_quantized(&t, BitWidth::INT8, 30, seed).rel_fro;
        let e16 = wa_winograd::tile_error_quantized(&t, BitWidth::INT16, 30, seed).rel_fro;
        prop_assert!(e16 <= e8 + 1e-12, "INT16 {} must not exceed INT8 {}", e16, e8);
    }
}
