//! Parity between the tile-batched transforms and their per-tile
//! counterparts: `transform_{input,filter,output}_tiles` must reproduce
//! `transform_{input,filter,output}` **bit-for-bit** on every tile.
//!
//! The batched versions run as two GEMMs over the whole tile stack, but
//! each output element is still accumulated over the shared dimension in
//! the same ascending order as the per-tile matmul chain, so exact
//! equality — not a tolerance — is the contract. The geometry is chosen
//! with `wasted_outputs() > 0` (30×30 output at F4 covers 32×32), so the
//! stack includes partially-wasted edge tiles.

use wa_tensor::{SeededRng, Tensor};
use wa_winograd::{TileGeometry, WinogradTransform};

/// Extracts row `i` of a `[rows, s·s]` tile stack as an `[s, s]` tensor.
fn tile_of(rows: &Tensor, i: usize, s: usize) -> Tensor {
    let d = rows.data();
    Tensor::from_vec(d[i * s * s..(i + 1) * s * s].to_vec(), &[s, s])
}

#[test]
fn batched_input_transform_is_bit_identical_to_per_tile_at_f4() {
    let t = WinogradTransform::canonical(4, 3);
    let n = t.input_tile();
    // 30×30 output at F4: 8×8 tiles cover 32×32, so edge tiles carry
    // wasted area — the ragged case the batched gather must preserve.
    let geom = TileGeometry::for_conv(30, 30, 4, 3, 1);
    assert!(
        geom.wasted_outputs() > 0,
        "geometry must include wasted tile area"
    );

    let mut rng = SeededRng::new(42);
    let x = rng.uniform_tensor(&[2, 3, 30, 30], -1.0, 1.0);
    let tiles = geom.gather_tiles(&geom.pad_input(&x)); // [N·T·C, n²]
    assert_eq!(tiles.dim(0), 2 * geom.tiles() * 3);

    let batched = t.transform_input_tiles(&tiles);
    assert_eq!(batched.shape(), &[tiles.dim(0), n * n]);
    for i in 0..tiles.dim(0) {
        let want = t.transform_input(&tile_of(&tiles, i, n));
        assert_eq!(
            &batched.data()[i * n * n..(i + 1) * n * n],
            want.data(),
            "input tile {i}: batched Bᵀ·d·B must equal per-tile bit-for-bit"
        );
    }
}

#[test]
fn batched_output_transform_is_bit_identical_to_per_tile_at_f4() {
    let t = WinogradTransform::canonical(4, 3);
    let (m, n) = (t.m(), t.input_tile());
    let geom = TileGeometry::for_conv(30, 30, 4, 3, 1);
    let rows = 2 * geom.tiles() * 5; // N·T·K Winograd-domain tiles

    let mut rng = SeededRng::new(7);
    let y = rng.uniform_tensor(&[rows, n * n], -2.0, 2.0);
    let batched = t.transform_output_tiles(&y);
    assert_eq!(batched.shape(), &[rows, m * m]);
    for i in 0..rows {
        let want = t.transform_output(&tile_of(&y, i, n));
        assert_eq!(
            &batched.data()[i * m * m..(i + 1) * m * m],
            want.data(),
            "output tile {i}: batched Aᵀ·y·A must equal per-tile bit-for-bit"
        );
    }
}

#[test]
fn batched_filter_transform_is_bit_identical_to_per_tile() {
    for (m, r) in [(2usize, 3usize), (4, 3), (6, 3)] {
        let t = WinogradTransform::canonical(m, r);
        let n = t.input_tile();
        let (k, c) = (5usize, 3usize);
        let mut rng = SeededRng::new(100 + m as u64);
        let w = rng.uniform_tensor(&[k * c, r * r], -1.0, 1.0);
        let batched = t.transform_filter_tiles(&w);
        assert_eq!(batched.shape(), &[k * c, n * n]);
        for i in 0..k * c {
            let want = t.transform_filter(&tile_of(&w, i, r));
            assert_eq!(
                &batched.data()[i * n * n..(i + 1) * n * n],
                want.data(),
                "F({m},{r}) filter tile {i}: batched G·g·Gᵀ must equal \
                 per-tile bit-for-bit"
            );
        }
    }
}

#[test]
fn batched_transforms_are_invariant_to_the_gemm_thread_cap() {
    // The batched formulation routes through the threaded GEMM; the row
    // split must not change any bit. Large stack to cross the threshold.
    let t = WinogradTransform::canonical(4, 3);
    let n = t.input_tile();
    let mut rng = SeededRng::new(9);
    let tiles = rng.uniform_tensor(&[4096, n * n], -1.0, 1.0);
    let capped = wa_tensor::with_gemm_thread_cap(1, || t.transform_input_tiles(&tiles));
    let free = t.transform_input_tiles(&tiles);
    assert_eq!(capped.data(), free.data());
}
