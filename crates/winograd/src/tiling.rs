//! Tile geometry and gather/scatter between NCHW images and Winograd
//! tiles.
//!
//! A Winograd convolution `F(m×m, r×r)` slides an `n×n` window (`n = m +
//! r − 1`) with stride `m`, producing non-overlapping `m×m` output tiles
//! (Figure 1 of the paper). When the output extent is not a multiple of
//! `m`, the last tile column/row overruns and its extra outputs are
//! discarded — the "wasted calculations when operating around the matrix
//! edges" that make the optimal tile size alternate with output width
//! (paper §6.2, Figure 7).

use wa_tensor::Tensor;

/// Tile decomposition of one convolution layer.
///
/// # Example
///
/// ```
/// use wa_winograd::TileGeometry;
///
/// // 32×32 output, F4: 8×8 tiles of 4×4 outputs, no waste
/// let g = TileGeometry::for_conv(32, 32, 4, 3, 1);
/// assert_eq!((g.tiles_y, g.tiles_x), (8, 8));
/// assert_eq!(g.wasted_outputs(), 0);
///
/// // 30×30 output, F4: 8×8 tiles cover 32×32 -> waste
/// let g = TileGeometry::for_conv(30, 30, 4, 3, 1);
/// assert_eq!(g.wasted_outputs(), 32 * 32 - 30 * 30);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TileGeometry {
    /// Output tile size `m`.
    pub m: usize,
    /// Filter size `r`.
    pub r: usize,
    /// Input height (unpadded).
    pub in_h: usize,
    /// Input width (unpadded).
    pub in_w: usize,
    /// Convolution zero-padding on each side.
    pub pad: usize,
    /// Output height `in_h + 2·pad − r + 1`.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
    /// Number of tile rows `⌈out_h / m⌉`.
    pub tiles_y: usize,
    /// Number of tile columns `⌈out_w / m⌉`.
    pub tiles_x: usize,
}

impl TileGeometry {
    /// Computes the decomposition of a stride-1 `r×r` convolution of an
    /// `in_h × in_w` input with `pad` zero-padding into `F(m×m, r×r)`
    /// tiles.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, `r == 0`, or the padded input is smaller than
    /// the filter.
    pub fn for_conv(in_h: usize, in_w: usize, m: usize, r: usize, pad: usize) -> TileGeometry {
        assert!(m >= 1 && r >= 1, "F(m, r) requires m, r >= 1");
        let (ph, pw) = (in_h + 2 * pad, in_w + 2 * pad);
        assert!(
            ph >= r && pw >= r,
            "padded input {}x{} smaller than filter {}",
            ph,
            pw,
            r
        );
        let out_h = ph - r + 1;
        let out_w = pw - r + 1;
        TileGeometry {
            m,
            r,
            in_h,
            in_w,
            pad,
            out_h,
            out_w,
            tiles_y: out_h.div_ceil(m),
            tiles_x: out_w.div_ceil(m),
        }
    }

    /// Input tile size `n = m + r − 1`.
    pub fn tile(&self) -> usize {
        self.m + self.r - 1
    }

    /// Tiles per image.
    pub fn tiles(&self) -> usize {
        self.tiles_y * self.tiles_x
    }

    /// Height the padded input must have so every tile is in bounds:
    /// `tiles_y·m + r − 1`.
    pub fn padded_h(&self) -> usize {
        self.tiles_y * self.m + self.r - 1
    }

    /// Width the padded input must have (see [`TileGeometry::padded_h`]).
    pub fn padded_w(&self) -> usize {
        self.tiles_x * self.m + self.r - 1
    }

    /// Outputs computed but discarded because the tile grid overruns the
    /// output extent.
    pub fn wasted_outputs(&self) -> usize {
        self.tiles() * self.m * self.m - self.out_h * self.out_w
    }

    /// Pads `x` (NCHW, unpadded) with `pad` zeros plus whatever extra
    /// bottom/right zeros the tile grid requires.
    ///
    /// # Panics
    ///
    /// Panics if `x` spatial dims disagree with the geometry.
    pub fn pad_input(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.ndim(), 4, "pad_input expects NCHW");
        assert_eq!(
            (x.dim(2), x.dim(3)),
            (self.in_h, self.in_w),
            "input {}x{} does not match geometry {}x{}",
            x.dim(2),
            x.dim(3),
            self.in_h,
            self.in_w
        );
        let (n, c) = (x.dim(0), x.dim(1));
        let (ph, pw) = (self.padded_h(), self.padded_w());
        let mut out = Tensor::zeros(&[n, c, ph, pw]);
        let src = x.data();
        let dst = out.data_mut();
        for img in 0..n * c {
            let s0 = img * self.in_h * self.in_w;
            let d0 = img * ph * pw;
            for row in 0..self.in_h {
                let s = s0 + row * self.in_w;
                let d = d0 + (row + self.pad) * pw + self.pad;
                dst[d..d + self.in_w].copy_from_slice(&src[s..s + self.in_w]);
            }
        }
        out
    }

    /// Adjoint of [`TileGeometry::pad_input`]: crops a padded gradient back
    /// to the unpadded input shape.
    ///
    /// # Panics
    ///
    /// Panics if `g` does not have the padded shape.
    pub fn unpad_input(&self, g: &Tensor) -> Tensor {
        assert_eq!(g.ndim(), 4, "unpad_input expects NCHW");
        let (ph, pw) = (self.padded_h(), self.padded_w());
        assert_eq!(
            (g.dim(2), g.dim(3)),
            (ph, pw),
            "gradient {}x{} does not match padded {}x{}",
            g.dim(2),
            g.dim(3),
            ph,
            pw
        );
        let (n, c) = (g.dim(0), g.dim(1));
        let mut out = Tensor::zeros(&[n, c, self.in_h, self.in_w]);
        let src = g.data();
        let dst = out.data_mut();
        for img in 0..n * c {
            let s0 = img * ph * pw;
            let d0 = img * self.in_h * self.in_w;
            for row in 0..self.in_h {
                let s = s0 + (row + self.pad) * pw + self.pad;
                let d = d0 + row * self.in_w;
                dst[d..d + self.in_w].copy_from_slice(&src[s..s + self.in_w]);
            }
        }
        out
    }

    /// Gathers overlapping `n×n` input tiles from a *padded* input.
    ///
    /// Returns `[N·T·C, n·n]` where `T = tiles()`, with row index
    /// `((img·T + t)·C + c)` — tiles vary slower than channels so the
    /// downstream per-frequency GEMM sees contiguous channel runs.
    ///
    /// # Panics
    ///
    /// Panics if `xp` does not have the padded shape.
    pub fn gather_tiles(&self, xp: &Tensor) -> Tensor {
        let (ph, pw) = (self.padded_h(), self.padded_w());
        assert_eq!(xp.ndim(), 4, "gather_tiles expects NCHW");
        assert_eq!(
            (xp.dim(2), xp.dim(3)),
            (ph, pw),
            "input {}x{} does not match padded {}x{}",
            xp.dim(2),
            xp.dim(3),
            ph,
            pw
        );
        let (nb, c) = (xp.dim(0), xp.dim(1));
        let t = self.tiles();
        let n = self.tile();
        let mut out = Tensor::zeros(&[nb * t * c, n * n]);
        let src = xp.data();
        let dst = out.data_mut();
        for img in 0..nb {
            for ty in 0..self.tiles_y {
                for tx in 0..self.tiles_x {
                    let tile = ty * self.tiles_x + tx;
                    let (y0, x0) = (ty * self.m, tx * self.m);
                    for ch in 0..c {
                        let row = ((img * t + tile) * c + ch) * n * n;
                        let s0 = ((img * c + ch) * ph + y0) * pw + x0;
                        for dy in 0..n {
                            let s = s0 + dy * pw;
                            let d = row + dy * n;
                            dst[d..d + n].copy_from_slice(&src[s..s + n]);
                        }
                    }
                }
            }
        }
        out
    }

    /// Adjoint of [`TileGeometry::gather_tiles`]: scatter-adds tile
    /// gradients back onto the padded input shape (overlaps accumulate).
    ///
    /// # Panics
    ///
    /// Panics if `tiles` has the wrong shape for `batch`/`channels`.
    pub fn scatter_tiles(&self, tiles: &Tensor, batch: usize, channels: usize) -> Tensor {
        let t = self.tiles();
        let n = self.tile();
        assert_eq!(
            tiles.shape(),
            &[batch * t * channels, n * n],
            "tiles shape {:?} does not match [{}, {}]",
            tiles.shape(),
            batch * t * channels,
            n * n
        );
        let (ph, pw) = (self.padded_h(), self.padded_w());
        let mut out = Tensor::zeros(&[batch, channels, ph, pw]);
        let src = tiles.data();
        let dst = out.data_mut();
        for img in 0..batch {
            for ty in 0..self.tiles_y {
                for tx in 0..self.tiles_x {
                    let tile = ty * self.tiles_x + tx;
                    let (y0, x0) = (ty * self.m, tx * self.m);
                    for ch in 0..channels {
                        let row = ((img * t + tile) * channels + ch) * n * n;
                        let d0 = ((img * channels + ch) * ph + y0) * pw + x0;
                        for dy in 0..n {
                            let d = d0 + dy * pw;
                            let s = row + dy * n;
                            for dx in 0..n {
                                dst[d + dx] += src[s + dx];
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Assembles `m×m` output tiles into the NCHW output, cropping the
    /// overrun.
    ///
    /// `tiles` is `[N·T·K, m·m]` with row index `((img·T + t)·K + k)`.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` has the wrong shape.
    pub fn assemble_output(&self, tiles: &Tensor, batch: usize, out_ch: usize) -> Tensor {
        let t = self.tiles();
        let m = self.m;
        assert_eq!(
            tiles.shape(),
            &[batch * t * out_ch, m * m],
            "output tiles shape {:?} does not match [{}, {}]",
            tiles.shape(),
            batch * t * out_ch,
            m * m
        );
        let mut out = Tensor::zeros(&[batch, out_ch, self.out_h, self.out_w]);
        let src = tiles.data();
        let dst = out.data_mut();
        for img in 0..batch {
            for ty in 0..self.tiles_y {
                for tx in 0..self.tiles_x {
                    let tile = ty * self.tiles_x + tx;
                    let (y0, x0) = (ty * m, tx * m);
                    let ylim = m.min(self.out_h.saturating_sub(y0));
                    let xlim = m.min(self.out_w.saturating_sub(x0));
                    for k in 0..out_ch {
                        let row = ((img * t + tile) * out_ch + k) * m * m;
                        let d0 = ((img * out_ch + k) * self.out_h + y0) * self.out_w + x0;
                        for dy in 0..ylim {
                            let s = row + dy * m;
                            let d = d0 + dy * self.out_w;
                            dst[d..d + xlim].copy_from_slice(&src[s..s + xlim]);
                        }
                    }
                }
            }
        }
        out
    }

    /// Adjoint of [`TileGeometry::assemble_output`]: splits an output
    /// gradient into `m×m` tile gradients, zero-filling the overrun.
    ///
    /// # Panics
    ///
    /// Panics if `grad` is not `[batch, out_ch, out_h, out_w]`.
    pub fn disassemble_output(&self, grad: &Tensor) -> Tensor {
        assert_eq!(grad.ndim(), 4, "disassemble_output expects NCHW");
        let (batch, out_ch) = (grad.dim(0), grad.dim(1));
        assert_eq!(
            (grad.dim(2), grad.dim(3)),
            (self.out_h, self.out_w),
            "gradient {}x{} does not match output {}x{}",
            grad.dim(2),
            grad.dim(3),
            self.out_h,
            self.out_w
        );
        let t = self.tiles();
        let m = self.m;
        let mut out = Tensor::zeros(&[batch * t * out_ch, m * m]);
        let src = grad.data();
        let dst = out.data_mut();
        for img in 0..batch {
            for ty in 0..self.tiles_y {
                for tx in 0..self.tiles_x {
                    let tile = ty * self.tiles_x + tx;
                    let (y0, x0) = (ty * m, tx * m);
                    let ylim = m.min(self.out_h.saturating_sub(y0));
                    let xlim = m.min(self.out_w.saturating_sub(x0));
                    for k in 0..out_ch {
                        let row = ((img * t + tile) * out_ch + k) * m * m;
                        let s0 = ((img * out_ch + k) * self.out_h + y0) * self.out_w + x0;
                        for dy in 0..ylim {
                            let d = row + dy * m;
                            let s = s0 + dy * self.out_w;
                            dst[d..d + xlim].copy_from_slice(&src[s..s + xlim]);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_tensor::SeededRng;

    #[test]
    fn geometry_even_division() {
        let g = TileGeometry::for_conv(32, 32, 4, 3, 1);
        assert_eq!((g.out_h, g.out_w), (32, 32));
        assert_eq!(g.tile(), 6);
        assert_eq!(g.tiles(), 64);
        assert_eq!(g.padded_h(), 34);
        assert_eq!(g.wasted_outputs(), 0);
    }

    #[test]
    fn geometry_with_overrun() {
        // 7x7 output with m=4 -> 2x2 tiles covering 8x8
        let g = TileGeometry::for_conv(7, 7, 4, 3, 1);
        assert_eq!((g.out_h, g.out_w), (7, 7));
        assert_eq!((g.tiles_y, g.tiles_x), (2, 2));
        assert_eq!(g.wasted_outputs(), 64 - 49);
        // padded input must cover 2*4+2 = 10
        assert_eq!(g.padded_h(), 10);
        assert!(g.padded_h() >= g.in_h + 2 * g.pad);
    }

    #[test]
    fn pad_unpad_roundtrip() {
        let g = TileGeometry::for_conv(5, 7, 4, 3, 1);
        let mut rng = SeededRng::new(0);
        let x = rng.uniform_tensor(&[2, 3, 5, 7], -1.0, 1.0);
        let xp = g.pad_input(&x);
        assert_eq!(xp.shape(), &[2, 3, g.padded_h(), g.padded_w()]);
        assert_eq!(g.unpad_input(&xp), x);
    }

    #[test]
    fn gather_scatter_are_adjoint() {
        // <gather(x), y> == <x, scatter(y)>
        let g = TileGeometry::for_conv(6, 5, 2, 3, 1);
        let mut rng = SeededRng::new(1);
        let xp = rng.uniform_tensor(&[1, 2, g.padded_h(), g.padded_w()], -1.0, 1.0);
        let tiles = g.gather_tiles(&xp);
        let y = rng.uniform_tensor(tiles.shape(), -1.0, 1.0);
        let back = g.scatter_tiles(&y, 1, 2);
        let lhs: f64 = tiles
            .data()
            .iter()
            .zip(y.data())
            .map(|(&a, &b)| (a * b) as f64)
            .sum();
        let rhs: f64 = xp
            .data()
            .iter()
            .zip(back.data())
            .map(|(&a, &b)| (a * b) as f64)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{} vs {}", lhs, rhs);
    }

    #[test]
    fn assemble_disassemble_are_adjoint() {
        let g = TileGeometry::for_conv(7, 7, 4, 3, 1); // with overrun
        let mut rng = SeededRng::new(2);
        let tiles = rng.uniform_tensor(&[g.tiles() * 3, 16], -1.0, 1.0);
        let out = g.assemble_output(&tiles, 1, 3);
        let grad = rng.uniform_tensor(out.shape(), -1.0, 1.0);
        let back = g.disassemble_output(&grad);
        let lhs: f64 = out
            .data()
            .iter()
            .zip(grad.data())
            .map(|(&a, &b)| (a * b) as f64)
            .sum();
        let rhs: f64 = tiles
            .data()
            .iter()
            .zip(back.data())
            .map(|(&a, &b)| (a * b) as f64)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{} vs {}", lhs, rhs);
    }

    #[test]
    fn gather_tile_content() {
        // one image, one channel, tile grid 2x1 with m=2, r=3 (n=4)
        let g = TileGeometry::for_conv(4, 2, 2, 3, 1);
        assert_eq!((g.tiles_y, g.tiles_x), (2, 1));
        let x = Tensor::from_fn(&[1, 1, 4, 2], |i| i as f32);
        let xp = g.pad_input(&x);
        let tiles = g.gather_tiles(&xp);
        assert_eq!(tiles.shape(), &[2, 16]);
        // first tile covers padded rows 0..4, cols 0..4
        let t0 = &tiles.data()[..16];
        assert_eq!(t0[5], x.at(&[0, 0, 0, 0])); // padded (1,1) = original (0,0)
        assert_eq!(t0[6], x.at(&[0, 0, 0, 1]));
        // second tile starts at padded row 2
        let t1 = &tiles.data()[16..];
        assert_eq!(t1[1], x.at(&[0, 0, 1, 0])); // padded (2,1) = original (1,0)
    }

    #[test]
    fn assemble_crops_overrun() {
        let g = TileGeometry::for_conv(3, 3, 2, 3, 1); // out 3x3, tiles 2x2 covering 4x4
        let tiles = Tensor::ones(&[4, 4]);
        let out = g.assemble_output(&tiles, 1, 1);
        assert_eq!(out.shape(), &[1, 1, 3, 3]);
        assert!(out.data().iter().all(|&v| v == 1.0));
    }
}
