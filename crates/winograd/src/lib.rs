//! # wa-winograd
//!
//! Winograd minimal-filtering convolutions: exact Cook-Toom synthesis of
//! the transformation triple `(Aᵀ, G, Bᵀ)`, the canonical published
//! Lavin & Gray matrices, tile geometry, batched GEMM-formulated
//! convolution kernels, and numerical-error analysis.
//!
//! This crate is the algorithmic core of the *Searching for
//! Winograd-aware Quantized Networks* (MLSys 2020) reproduction: it
//! implements Eq. (1) of the paper,
//!
//! ```text
//! Y = Aᵀ[(G·g·Gᵀ) ⊙ (Bᵀ·d·B)]A
//! ```
//!
//! and everything needed to study *why* it breaks under quantization
//! (entry growth with tile size) and to build the Winograd-aware training
//! layer on top (in `wa-nn`/`wa-core`).
//!
//! # Example
//!
//! ```
//! use wa_tensor::{SeededRng, Tensor};
//! use wa_winograd::{winograd_conv2d, WinogradTransform};
//!
//! // F(4×4, 3×3): 2.25 multiplies per output instead of 9.
//! let t = WinogradTransform::canonical(4, 3);
//! assert_eq!(t.mults_per_output(), 2.25);
//!
//! let mut rng = SeededRng::new(0);
//! let x = rng.uniform_tensor(&[1, 3, 16, 16], -1.0, 1.0);
//! let w = rng.uniform_tensor(&[8, 3, 3, 3], -1.0, 1.0);
//! let y = winograd_conv2d(&x, &w, None, &t, 1);
//! assert_eq!(y.shape(), &[1, 8, 16, 16]);
//! ```

mod cook_toom;
mod error;
mod kernels;
mod rational;
mod tiling;
mod transform;

pub use cook_toom::{
    cook_toom, cook_toom_with_points, default_points, winograd_1d_exact, CookToom, PolyPoint,
};
pub use error::{tile_error_fp32, tile_error_quantized, ErrorStats};
pub use kernels::{transform_weights, winograd_conv2d, winograd_conv2d_pretransformed};
pub use rational::{Frac, FracMat};
pub use tiling::TileGeometry;
pub use transform::WinogradTransform;
