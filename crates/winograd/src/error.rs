//! Numerical-error analysis of Winograd convolutions.
//!
//! Quantifies the phenomenon behind Table 1 of the paper: the entries of
//! `G`, `Bᵀ`, `Aᵀ` grow with tile size, so the transforms amplify
//! rounding error — catastrophically once intermediates are quantized.

use wa_quant::{fake_quant_scale, BitWidth};
use wa_tensor::{conv2d_direct_f64, SeededRng, Tensor};

use crate::transform::WinogradTransform;

/// Error statistics of Winograd vs direct convolution over random tiles.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ErrorStats {
    /// Mean absolute elementwise error.
    pub mean_abs: f64,
    /// Maximum absolute elementwise error.
    pub max_abs: f64,
    /// Relative Frobenius error ‖y − ŷ‖ / ‖y‖.
    pub rel_fro: f64,
}

fn direct_tile_f64(d: &Tensor, g: &Tensor, m: usize, r: usize) -> Vec<f64> {
    let n = m + r - 1;
    let din: Vec<f64> = d.data().iter().map(|&v| v as f64).collect();
    let ker: Vec<f64> = g.data().iter().map(|&v| v as f64).collect();
    conv2d_direct_f64(&din, n, n, &ker, r, r)
}

fn stats_from(trials: &[(Vec<f64>, Vec<f64>)]) -> ErrorStats {
    let mut sum_abs = 0.0;
    let mut max_abs: f64 = 0.0;
    let mut err_sq = 0.0;
    let mut ref_sq = 0.0;
    let mut count = 0usize;
    for (want, got) in trials {
        for (w, g) in want.iter().zip(got) {
            let e = (w - g).abs();
            sum_abs += e;
            max_abs = max_abs.max(e);
            err_sq += e * e;
            ref_sq += w * w;
            count += 1;
        }
    }
    ErrorStats {
        mean_abs: sum_abs / count.max(1) as f64,
        max_abs,
        rel_fro: if ref_sq > 0.0 {
            (err_sq / ref_sq).sqrt()
        } else {
            0.0
        },
    }
}

/// Error of the *floating point* Winograd algorithm against an f64 direct
/// convolution, over `trials` random tiles with inputs in `[−1, 1]`.
///
/// Small for F2, growing with tile size — but benign at FP32, which is why
/// post-training Winograd substitution works in full precision (Table 1,
/// column 1).
pub fn tile_error_fp32(t: &WinogradTransform, trials: usize, seed: u64) -> ErrorStats {
    let n = t.input_tile();
    let r = t.r();
    let mut rng = SeededRng::new(seed);
    let mut results = Vec::with_capacity(trials);
    for _ in 0..trials {
        let d = rng.uniform_tensor(&[n, n], -1.0, 1.0);
        let g = rng.uniform_tensor(&[r, r], -1.0, 1.0);
        let got: Vec<f64> = t
            .convolve_tile(&d, &g)
            .data()
            .iter()
            .map(|&v| v as f64)
            .collect();
        results.push((direct_tile_f64(&d, &g, t.m(), t.r()), got));
    }
    stats_from(&results)
}

/// Error of the Winograd algorithm with **every intermediate
/// fake-quantized** to `bits` (inputs, transformed weights `GgGᵀ`,
/// transformed data `BᵀdB`, Hadamard product, and output), against a
/// direct f64 convolution of the *same quantized inputs*.
///
/// This isolates the error Winograd itself introduces under quantization —
/// the quantity that "grows at least exponentially with tile size"
/// (Barabasz et al. 2018, cited in §3.1) and collapses F4/F6 in Table 1.
pub fn tile_error_quantized(
    t: &WinogradTransform,
    bits: BitWidth,
    trials: usize,
    seed: u64,
) -> ErrorStats {
    if bits.is_float() {
        return tile_error_fp32(t, trials, seed);
    }
    let n = t.input_tile();
    let r = t.r();
    let mut rng = SeededRng::new(seed);
    let q = |x: &Tensor| {
        let range = x.max_abs();
        if range == 0.0 {
            x.clone()
        } else {
            fake_quant_scale(x, bits, range / bits.qmax() as f32)
        }
    };
    let mut results = Vec::with_capacity(trials);
    for _ in 0..trials {
        let d = q(&rng.uniform_tensor(&[n, n], -1.0, 1.0));
        let g = q(&rng.uniform_tensor(&[r, r], -1.0, 1.0));
        // Winograd with quantized intermediates (Fig. 2 pipeline)
        let u = q(&t.transform_filter(&g));
        let v = q(&t.transform_input(&d));
        let h = q(&u.mul(&v));
        let y = q(&t.transform_output(&h));
        let got: Vec<f64> = y.data().iter().map(|&x| x as f64).collect();
        results.push((direct_tile_f64(&d, &g, t.m(), t.r()), got));
    }
    stats_from(&results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_error_is_tiny_for_f2() {
        let t = WinogradTransform::canonical(2, 3);
        let e = tile_error_fp32(&t, 50, 1);
        assert!(e.max_abs < 1e-5, "F2 FP32 max error {}", e.max_abs);
    }

    #[test]
    fn fp32_error_grows_with_tile_size_but_stays_benign() {
        let e2 = tile_error_fp32(&WinogradTransform::canonical(2, 3), 100, 2).rel_fro;
        let e6 = tile_error_fp32(&WinogradTransform::cook_toom(6, 3), 100, 2).rel_fro;
        assert!(
            e6 > e2,
            "error should grow with tile size: {} vs {}",
            e2,
            e6
        );
        assert!(e6 < 1e-4, "but remain benign at FP32: {}", e6);
    }

    #[test]
    fn int8_error_explodes_with_tile_size() {
        // The Table 1 phenomenon: at INT8, F2 is usable, F4/F6 are not.
        let e2 = tile_error_quantized(&WinogradTransform::canonical(2, 3), BitWidth::INT8, 100, 3);
        let e4 = tile_error_quantized(&WinogradTransform::canonical(4, 3), BitWidth::INT8, 100, 3);
        let e6 = tile_error_quantized(&WinogradTransform::cook_toom(6, 3), BitWidth::INT8, 100, 3);
        assert!(
            e2.rel_fro < e4.rel_fro && e4.rel_fro < e6.rel_fro,
            "INT8 error must grow with tile size: {} {} {}",
            e2.rel_fro,
            e4.rel_fro,
            e6.rel_fro
        );
        assert!(e2.rel_fro < 0.05, "F2 INT8 should be mild: {}", e2.rel_fro);
        assert!(
            e6.rel_fro > 0.05,
            "F6 INT8 should be severe: {}",
            e6.rel_fro
        );
    }

    #[test]
    fn higher_precision_reduces_error() {
        let t = WinogradTransform::canonical(4, 3);
        let e8 = tile_error_quantized(&t, BitWidth::INT8, 100, 4).rel_fro;
        let e16 = tile_error_quantized(&t, BitWidth::INT16, 100, 4).rel_fro;
        assert!(
            e16 < e8 / 10.0,
            "INT16 {} should be far below INT8 {}",
            e16,
            e8
        );
    }

    #[test]
    fn five_by_five_worse_than_three_by_three() {
        // Larger filters need larger tiles: F(6,5) uses 10×10 tiles and is
        // the paper's hardest case (Fig. 5: static F(6×6,5×5) loses ~47%).
        let t33 = WinogradTransform::cook_toom(6, 3);
        let t55 = WinogradTransform::cook_toom(6, 5);
        let e33 = tile_error_quantized(&t33, BitWidth::INT8, 100, 5).rel_fro;
        let e55 = tile_error_quantized(&t55, BitWidth::INT8, 100, 5).rel_fro;
        assert!(e55 > e33, "5×5 filters should be worse: {} vs {}", e55, e33);
    }

    #[test]
    fn stats_are_deterministic_per_seed() {
        let t = WinogradTransform::canonical(2, 3);
        let a = tile_error_quantized(&t, BitWidth::INT8, 20, 7);
        let b = tile_error_quantized(&t, BitWidth::INT8, 20, 7);
        assert_eq!(a, b);
    }
}
