//! Exact rational arithmetic for Cook-Toom synthesis.
//!
//! Transformation matrices must be constructed *exactly*: tiny errors in
//! `G`, `Bᵀ`, `Aᵀ` would be amplified by the very numerical instability the
//! paper studies. `Frac` is a reduced `i128` fraction with overflow-checked
//! operations — plenty of headroom for the Vandermonde inverses of
//! `F(6×6, 5×5)` (10×10) and beyond.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num/den` in lowest terms with `den > 0`.
///
/// # Example
///
/// ```
/// use wa_winograd::Frac;
///
/// let half = Frac::new(1, 2);
/// let third = Frac::new(1, 3);
/// assert_eq!(half + third, Frac::new(5, 6));
/// assert_eq!((half * third).to_f64(), 1.0 / 6.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frac {
    num: i128,
    den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Frac {
    /// Zero.
    pub const ZERO: Frac = Frac { num: 0, den: 1 };
    /// One.
    pub const ONE: Frac = Frac { num: 1, den: 1 };

    /// Creates the reduced fraction `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Frac {
        assert!(den != 0, "fraction denominator must be non-zero");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Frac {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The integer `n` as a fraction.
    pub fn int(n: i128) -> Frac {
        Frac { num: n, den: 1 }
    }

    /// Numerator (after reduction, sign-carrying).
    pub fn numerator(&self) -> i128 {
        self.num
    }

    /// Denominator (after reduction, always positive).
    pub fn denominator(&self) -> i128 {
        self.den
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Whether the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    pub fn recip(&self) -> Frac {
        assert!(self.num != 0, "cannot invert zero");
        Frac::new(self.den, self.num)
    }

    /// Nearest `f64` value.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    fn checked_mul_i128(a: i128, b: i128) -> i128 {
        a.checked_mul(b)
            .expect("rational arithmetic overflow (i128)")
    }
}

impl Add for Frac {
    type Output = Frac;
    fn add(self, rhs: Frac) -> Frac {
        // reduce across denominators first to delay overflow
        let g = gcd(self.den, rhs.den).max(1);
        let (da, db) = (self.den / g, rhs.den / g);
        let num = Frac::checked_mul_i128(self.num, db)
            .checked_add(Frac::checked_mul_i128(rhs.num, da))
            .expect("rational arithmetic overflow (i128)");
        let den = Frac::checked_mul_i128(self.den, db);
        Frac::new(num, den)
    }
}

impl Sub for Frac {
    type Output = Frac;
    fn sub(self, rhs: Frac) -> Frac {
        self + (-rhs)
    }
}

impl Neg for Frac {
    type Output = Frac;
    fn neg(self) -> Frac {
        Frac {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Frac {
    type Output = Frac;
    fn mul(self, rhs: Frac) -> Frac {
        // cross-reduce before multiplying
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let num = Frac::checked_mul_i128(self.num / g1, rhs.num / g2);
        let den = Frac::checked_mul_i128(self.den / g2, rhs.den / g1);
        Frac::new(num, den)
    }
}

impl Div for Frac {
    type Output = Frac;
    /// # Panics
    ///
    /// Panics on division by zero.
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a·b⁻¹ is the definition
    fn div(self, rhs: Frac) -> Frac {
        self * rhs.recip()
    }
}

impl fmt::Debug for Frac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Frac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A dense matrix of exact rationals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FracMat {
    rows: usize,
    cols: usize,
    data: Vec<Frac>,
}

impl FracMat {
    /// Zero matrix of the given size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> FracMat {
        assert!(rows > 0 && cols > 0, "FracMat dimensions must be positive");
        FracMat {
            rows,
            cols,
            data: vec![Frac::ZERO; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> FracMat {
        let mut m = FracMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Frac::ONE;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Transposed copy.
    pub fn transpose(&self) -> FracMat {
        let mut t = FracMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &FracMat) -> FracMat {
        assert_eq!(
            self.cols, rhs.rows,
            "FracMat inner dims: {} vs {}",
            self.cols, rhs.rows
        );
        let mut out = FracMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let b = rhs[(k, j)];
                    if !b.is_zero() {
                        out[(i, j)] = out[(i, j)] + a * b;
                    }
                }
            }
        }
        out
    }

    /// Exact inverse via Gauss–Jordan elimination with partial pivoting on
    /// non-zero entries.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or is singular.
    pub fn inverse(&self) -> FracMat {
        assert_eq!(self.rows, self.cols, "inverse requires a square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = FracMat::identity(n);
        for col in 0..n {
            // find a pivot
            let pivot = (col..n)
                .find(|&r| !a[(r, col)].is_zero())
                .unwrap_or_else(|| panic!("singular matrix: no pivot in column {}", col));
            if pivot != col {
                for j in 0..n {
                    let (x, y) = (a[(pivot, j)], a[(col, j)]);
                    a[(pivot, j)] = y;
                    a[(col, j)] = x;
                    let (x, y) = (inv[(pivot, j)], inv[(col, j)]);
                    inv[(pivot, j)] = y;
                    inv[(col, j)] = x;
                }
            }
            let p = a[(col, col)].recip();
            for j in 0..n {
                a[(col, j)] = a[(col, j)] * p;
                inv[(col, j)] = inv[(col, j)] * p;
            }
            for r in 0..n {
                if r != col && !a[(r, col)].is_zero() {
                    let f = a[(r, col)];
                    for j in 0..n {
                        a[(r, j)] = a[(r, j)] - f * a[(col, j)];
                        inv[(r, j)] = inv[(r, j)] - f * inv[(col, j)];
                    }
                }
            }
        }
        inv
    }

    /// Converts to a row-major `f64` matrix.
    pub fn to_f64_rows(&self) -> Vec<Vec<f64>> {
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)].to_f64()).collect())
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for FracMat {
    type Output = Frac;
    fn index(&self, (i, j): (usize, usize)) -> &Frac {
        assert!(
            i < self.rows && j < self.cols,
            "index ({}, {}) out of bounds",
            i,
            j
        );
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for FracMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Frac {
        assert!(
            i < self.rows && j < self.cols,
            "index ({}, {}) out of bounds",
            i,
            j
        );
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frac_reduction_and_sign() {
        assert_eq!(Frac::new(2, 4), Frac::new(1, 2));
        assert_eq!(Frac::new(1, -2), Frac::new(-1, 2));
        assert_eq!(Frac::new(-3, -6), Frac::new(1, 2));
        assert_eq!(Frac::new(0, 5), Frac::ZERO);
    }

    #[test]
    fn frac_field_ops() {
        let a = Frac::new(3, 4);
        let b = Frac::new(5, 6);
        assert_eq!(a + b, Frac::new(19, 12));
        assert_eq!(a - b, Frac::new(-1, 12));
        assert_eq!(a * b, Frac::new(5, 8));
        assert_eq!(a / b, Frac::new(9, 10));
        assert_eq!(-a, Frac::new(-3, 4));
        assert_eq!(a.recip(), Frac::new(4, 3));
    }

    #[test]
    #[should_panic(expected = "denominator must be non-zero")]
    fn zero_denominator_panics() {
        let _ = Frac::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "cannot invert zero")]
    fn zero_recip_panics() {
        let _ = Frac::ZERO.recip();
    }

    #[test]
    fn display_forms() {
        assert_eq!(Frac::new(3, 1).to_string(), "3");
        assert_eq!(Frac::new(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn identity_inverse_is_identity() {
        let i = FracMat::identity(4);
        assert_eq!(i.inverse(), i);
    }

    #[test]
    fn inverse_times_self_is_identity() {
        // A 4x4 Vandermonde-like matrix with fractional points.
        let pts = [Frac::int(0), Frac::int(1), Frac::int(-1), Frac::new(1, 2)];
        let mut v = FracMat::zeros(4, 4);
        for (i, p) in pts.iter().enumerate() {
            let mut pow = Frac::ONE;
            for j in 0..4 {
                v[(i, j)] = pow;
                pow = pow * *p;
            }
        }
        let vi = v.inverse();
        assert_eq!(v.matmul(&vi), FracMat::identity(4));
        assert_eq!(vi.matmul(&v), FracMat::identity(4));
    }

    #[test]
    #[should_panic(expected = "singular matrix")]
    fn singular_inverse_panics() {
        let mut m = FracMat::zeros(2, 2);
        m[(0, 0)] = Frac::ONE;
        m[(0, 1)] = Frac::ONE;
        m[(1, 0)] = Frac::ONE;
        m[(1, 1)] = Frac::ONE;
        let _ = m.inverse();
    }

    #[test]
    fn transpose_roundtrip() {
        let mut m = FracMat::zeros(2, 3);
        m[(0, 2)] = Frac::new(7, 3);
        m[(1, 0)] = Frac::int(-2);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 0)], Frac::new(7, 3));
    }

    #[test]
    fn matmul_hand_example() {
        let mut a = FracMat::zeros(2, 2);
        a[(0, 0)] = Frac::int(1);
        a[(0, 1)] = Frac::int(2);
        a[(1, 0)] = Frac::int(3);
        a[(1, 1)] = Frac::int(4);
        let b = a.clone();
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], Frac::int(7));
        assert_eq!(c[(0, 1)], Frac::int(10));
        assert_eq!(c[(1, 0)], Frac::int(15));
        assert_eq!(c[(1, 1)], Frac::int(22));
    }
}
