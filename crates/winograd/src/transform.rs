//! The [`WinogradTransform`] triple in `f32`/`f64` form, canonical
//! published matrices, and sparsity statistics.

use wa_tensor::{gemm, Tensor, Transpose};

use crate::cook_toom::{cook_toom, CookToom};

/// Transposes each `rows × cols` tile stored as a row of `[R, rows·cols]`,
/// yielding `[R, cols·rows]`.
fn tile_transpose_rows(x: &Tensor, rows: usize, cols: usize) -> Tensor {
    let r = x.dim(0);
    let mut out = Tensor::zeros(&[r, cols * rows]);
    let src = x.data();
    let dst = out.data_mut();
    for t in 0..r {
        let s0 = t * rows * cols;
        for i in 0..rows {
            for j in 0..cols {
                dst[s0 + j * rows + i] = src[s0 + i * cols + j];
            }
        }
    }
    out
}

/// Applies the two-sided transform `L · X · Lᵀ` to a stack of square
/// tiles stored as rows: `tiles` is `[rows, s·s]`, `l` is `[o, s]`, the
/// result is `[rows, o·o]`.
///
/// Instead of `rows` tiny `o×s · s×s` matmuls, the whole stack runs as
/// two GEMMs over `[rows·s, s]` / `[rows·o, s]` row matrices (with a
/// cheap per-tile transpose between the one-sided products), so the
/// packed micro-kernel — and its threading — sees one large product.
///
/// Bit-exactness: each GEMM accumulates over the shared `s` dimension in
/// ascending order, exactly like the per-tile `l.matmul(x).matmul_nt(l)`
/// chain, so the batched result is **bit-identical** to transforming each
/// tile individually — the contract `batched_transform_parity.rs` pins.
pub(crate) fn two_sided_tiles(tiles: &Tensor, l: &Tensor) -> Tensor {
    let rows = tiles.dim(0);
    let s = l.dim(1);
    let o = l.dim(0);
    assert_eq!(
        tiles.dim(1),
        s * s,
        "tile rows must be {}², got {}",
        s,
        tiles.dim(1)
    );
    // Row r of tile X against Lᵀ gives (L·X)ᵀ rows, so transpose tiles in,
    // multiply, transpose back, multiply again:
    //   X → Xᵀ → Xᵀ·Lᵀ = (L·X)ᵀ → L·X → (L·X)·Lᵀ
    let xt = tile_transpose_rows(tiles, s, s);
    let z1 = gemm(
        &xt.reshape(&[rows * s, s]),
        Transpose::No,
        l,
        Transpose::Yes,
    );
    let z1t = tile_transpose_rows(&z1.reshape(&[rows, s * o]), s, o);
    let z2 = gemm(
        &z1t.reshape(&[rows * o, s]),
        Transpose::No,
        l,
        Transpose::Yes,
    );
    z2.reshape(&[rows, o * o])
}

/// A ready-to-use Winograd transform triple for `F(m×m, r×r)`.
///
/// Holds `Aᵀ` (`m × n`), `G` (`n × r`) and `Bᵀ` (`n × n`) as `f32`
/// matrices, where `n = m + r − 1` is the input tile size. Obtain one from
/// [`WinogradTransform::cook_toom`] (synthesized, any size) or
/// [`WinogradTransform::canonical`] (the published Lavin & Gray matrices
/// for F2/F4 with 3×3 filters, synthesized for other sizes).
///
/// # Example
///
/// ```
/// use wa_winograd::WinogradTransform;
///
/// let t = WinogradTransform::canonical(4, 3); // the paper's F4
/// assert_eq!(t.input_tile(), 6);
/// assert_eq!((t.m(), t.r()), (4, 3));
/// // 36 Hadamard multiplies produce 16 outputs -> 2.25 mults/output
/// assert!((t.mults_per_output() - 2.25).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct WinogradTransform {
    m: usize,
    r: usize,
    at: Tensor,
    g: Tensor,
    bt: Tensor,
}

impl WinogradTransform {
    /// Builds the triple from an exact [`CookToom`] synthesis result.
    pub fn from_cook_toom(ct: &CookToom) -> Self {
        WinogradTransform {
            m: ct.m,
            r: ct.r,
            at: Tensor::from_rows_f64(&ct.at.to_f64_rows()),
            g: Tensor::from_rows_f64(&ct.g.to_f64_rows()),
            bt: Tensor::from_rows_f64(&ct.bt.to_f64_rows()),
        }
    }

    /// Synthesizes `F(m, r)` with the default Cook-Toom points.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `r == 0` or the size exceeds the default
    /// point sequence (see [`crate::default_points`]).
    pub fn cook_toom(m: usize, r: usize) -> Self {
        Self::from_cook_toom(&cook_toom(m, r))
    }

    /// The canonical published transforms: exact Lavin & Gray (2016)
    /// matrices for `F(2×2, 3×3)` and `F(4×4, 3×3)`; Cook-Toom synthesis
    /// (identical point sets to common practice) otherwise.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`WinogradTransform::cook_toom`].
    pub fn canonical(m: usize, r: usize) -> Self {
        match (m, r) {
            (2, 3) => WinogradTransform {
                m,
                r,
                at: Tensor::from_vec(
                    vec![
                        1.0, 1.0, 1.0, 0.0, //
                        0.0, 1.0, -1.0, -1.0,
                    ],
                    &[2, 4],
                ),
                g: Tensor::from_vec(
                    vec![
                        1.0, 0.0, 0.0, //
                        0.5, 0.5, 0.5, //
                        0.5, -0.5, 0.5, //
                        0.0, 0.0, 1.0,
                    ],
                    &[4, 3],
                ),
                bt: Tensor::from_vec(
                    vec![
                        1.0, 0.0, -1.0, 0.0, //
                        0.0, 1.0, 1.0, 0.0, //
                        0.0, -1.0, 1.0, 0.0, //
                        0.0, 1.0, 0.0, -1.0,
                    ],
                    &[4, 4],
                ),
            },
            (4, 3) => WinogradTransform {
                m,
                r,
                at: Tensor::from_vec(
                    vec![
                        1.0, 1.0, 1.0, 1.0, 1.0, 0.0, //
                        0.0, 1.0, -1.0, 2.0, -2.0, 0.0, //
                        0.0, 1.0, 1.0, 4.0, 4.0, 0.0, //
                        0.0, 1.0, -1.0, 8.0, -8.0, 1.0,
                    ],
                    &[4, 6],
                ),
                g: Tensor::from_vec(
                    vec![
                        0.25,
                        0.0,
                        0.0, //
                        -1.0 / 6.0,
                        -1.0 / 6.0,
                        -1.0 / 6.0, //
                        -1.0 / 6.0,
                        1.0 / 6.0,
                        -1.0 / 6.0, //
                        1.0 / 24.0,
                        1.0 / 12.0,
                        1.0 / 6.0, //
                        1.0 / 24.0,
                        -1.0 / 12.0,
                        1.0 / 6.0, //
                        0.0,
                        0.0,
                        1.0,
                    ],
                    &[6, 3],
                ),
                bt: Tensor::from_vec(
                    vec![
                        4.0, 0.0, -5.0, 0.0, 1.0, 0.0, //
                        0.0, -4.0, -4.0, 1.0, 1.0, 0.0, //
                        0.0, 4.0, -4.0, -1.0, 1.0, 0.0, //
                        0.0, -2.0, -1.0, 2.0, 1.0, 0.0, //
                        0.0, 2.0, -1.0, -2.0, 1.0, 0.0, //
                        0.0, 4.0, 0.0, -5.0, 0.0, 1.0,
                    ],
                    &[6, 6],
                ),
            },
            _ => Self::cook_toom(m, r),
        }
    }

    /// Builds a transform from explicit matrices — used to re-materialize
    /// *learned* (`-flex`) transforms after training.
    ///
    /// # Panics
    ///
    /// Panics if shapes are not `Aᵀ: [m, n]`, `G: [n, r]`, `Bᵀ: [n, n]`
    /// with consistent `n = m + r − 1`.
    pub fn from_matrices(m: usize, r: usize, at: Tensor, g: Tensor, bt: Tensor) -> Self {
        let n = m + r - 1;
        assert_eq!(
            at.shape(),
            &[m, n],
            "Aᵀ must be [{}, {}], got {:?}",
            m,
            n,
            at.shape()
        );
        assert_eq!(
            g.shape(),
            &[n, r],
            "G must be [{}, {}], got {:?}",
            n,
            r,
            g.shape()
        );
        assert_eq!(
            bt.shape(),
            &[n, n],
            "Bᵀ must be [{}, {}], got {:?}",
            n,
            n,
            bt.shape()
        );
        WinogradTransform { m, r, at, g, bt }
    }

    /// Output tile size `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Filter size `r`.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Input tile size `n = m + r − 1`.
    pub fn input_tile(&self) -> usize {
        self.m + self.r - 1
    }

    /// The `m × n` output transform `Aᵀ`.
    pub fn at(&self) -> &Tensor {
        &self.at
    }

    /// The `n × r` filter transform `G`.
    pub fn g(&self) -> &Tensor {
        &self.g
    }

    /// The `n × n` input transform `Bᵀ`.
    pub fn bt(&self) -> &Tensor {
        &self.bt
    }

    /// General multiplications per output pixel for the 2-D algorithm:
    /// `n² / m²` (e.g. 4 for F2, 2.25 for F4 — paper §3.1).
    pub fn mults_per_output(&self) -> f64 {
        let n = self.input_tile() as f64;
        let m = self.m as f64;
        (n * n) / (m * m)
    }

    /// Transforms a single `r × r` filter tile: `G·g·Gᵀ` (returns `n × n`).
    ///
    /// # Panics
    ///
    /// Panics if `g` is not `[r, r]`.
    pub fn transform_filter(&self, g: &Tensor) -> Tensor {
        assert_eq!(
            g.shape(),
            &[self.r, self.r],
            "filter tile must be [{0}, {0}]",
            self.r
        );
        self.g.matmul(g).matmul_nt(&self.g)
    }

    /// Transforms a single `n × n` input tile: `Bᵀ·d·B` (returns `n × n`).
    ///
    /// # Panics
    ///
    /// Panics if `d` is not `[n, n]`.
    pub fn transform_input(&self, d: &Tensor) -> Tensor {
        let n = self.input_tile();
        assert_eq!(d.shape(), &[n, n], "input tile must be [{0}, {0}]", n);
        self.bt.matmul(d).matmul_nt(&self.bt)
    }

    /// Inverse-transforms a Winograd-domain `n × n` tile: `Aᵀ·y·A`
    /// (returns `m × m`).
    ///
    /// # Panics
    ///
    /// Panics if `y` is not `[n, n]`.
    pub fn transform_output(&self, y: &Tensor) -> Tensor {
        let n = self.input_tile();
        assert_eq!(
            y.shape(),
            &[n, n],
            "Winograd-domain tile must be [{0}, {0}]",
            n
        );
        self.at.matmul(y).matmul_nt(&self.at)
    }

    /// Transforms a whole stack of input tiles at once: `Bᵀ·d·B` for
    /// every `n×n` tile stored as a row of `tiles` `[rows, n²]`
    /// (e.g. the `[tiles·batch·channels, n²]` matrix gathered from a
    /// chunk), returning `[rows, n²]`.
    ///
    /// Runs as two batched GEMMs instead of `rows` tiny matmuls, and is
    /// **bit-identical** to calling [`WinogradTransform::transform_input`]
    /// on each tile (see `two_sided_tiles`).
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is not `[rows, n²]`.
    pub fn transform_input_tiles(&self, tiles: &Tensor) -> Tensor {
        let n = self.input_tile();
        assert_eq!(
            tiles.dim(1),
            n * n,
            "input tile rows must be {0}·{0} wide",
            n
        );
        two_sided_tiles(tiles, &self.bt)
    }

    /// Transforms a stack of filter tiles at once: `G·g·Gᵀ` for every
    /// `r×r` filter stored as a row of `filters` `[rows, r²]` (e.g. the
    /// flattened `[K·C, r²]` weight tensor), returning `[rows, n²]`.
    ///
    /// Bit-identical to per-tile [`WinogradTransform::transform_filter`].
    ///
    /// # Panics
    ///
    /// Panics if `filters` is not `[rows, r²]`.
    pub fn transform_filter_tiles(&self, filters: &Tensor) -> Tensor {
        assert_eq!(
            filters.dim(1),
            self.r * self.r,
            "filter tile rows must be {0}·{0} wide",
            self.r
        );
        two_sided_tiles(filters, &self.g)
    }

    /// Inverse-transforms a stack of Winograd-domain tiles at once:
    /// `Aᵀ·y·A` for every `n×n` tile stored as a row of `tiles`
    /// `[rows, n²]`, returning `[rows, m²]`.
    ///
    /// Bit-identical to per-tile [`WinogradTransform::transform_output`].
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is not `[rows, n²]`.
    pub fn transform_output_tiles(&self, tiles: &Tensor) -> Tensor {
        let n = self.input_tile();
        assert_eq!(
            tiles.dim(1),
            n * n,
            "Winograd-domain tile rows must be {0}·{0} wide",
            n
        );
        two_sided_tiles(tiles, &self.at)
    }

    /// Full single-tile Winograd convolution
    /// `Aᵀ[(G·g·Gᵀ) ⊙ (Bᵀ·d·B)]A` — Eq. (1) of the paper.
    ///
    /// # Panics
    ///
    /// Panics if tile shapes disagree with `(m, r)`.
    pub fn convolve_tile(&self, d: &Tensor, g: &Tensor) -> Tensor {
        let u = self.transform_filter(g);
        let v = self.transform_input(d);
        self.transform_output(&u.mul(&v))
    }

    /// Fraction of exactly-zero entries in (`Bᵀ`, `G`, `Aᵀ`) — the
    /// sparsity the paper's Appendix A.2 reports (50%/33%/25% for
    /// canonical F2), which learned dense transforms forfeit.
    pub fn sparsity(&self) -> (f64, f64, f64) {
        let frac0 =
            |t: &Tensor| t.data().iter().filter(|&&v| v == 0.0).count() as f64 / t.len() as f64;
        (frac0(&self.bt), frac0(&self.g), frac0(&self.at))
    }

    /// Largest absolute entry across the triple — grows with tile size and
    /// drives the numerical error (paper §3.1).
    pub fn max_entry(&self) -> f32 {
        self.bt
            .max_abs()
            .max(self.g.max_abs())
            .max(self.at.max_abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_tensor::{conv2d_direct, SeededRng};

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{} vs {}",
                x,
                y
            );
        }
    }

    /// Single-tile equivalence with direct convolution for a given triple.
    fn check_tile_equivalence(t: &WinogradTransform, seed: u64, tol: f32) {
        let n = t.input_tile();
        let r = t.r();
        let mut rng = SeededRng::new(seed);
        let d = rng.uniform_tensor(&[n, n], -1.0, 1.0);
        let g = rng.uniform_tensor(&[r, r], -1.0, 1.0);
        let got = t.convolve_tile(&d, &g);
        let want = conv2d_direct(
            &d.reshape(&[1, 1, n, n]),
            &g.reshape(&[1, 1, r, r]),
            None,
            1,
            0,
        )
        .reshape(&[t.m(), t.m()]);
        assert_close(&got, &want, tol);
    }

    #[test]
    fn canonical_f2_tile_equals_direct() {
        check_tile_equivalence(&WinogradTransform::canonical(2, 3), 1, 1e-5);
    }

    #[test]
    fn canonical_f4_tile_equals_direct() {
        check_tile_equivalence(&WinogradTransform::canonical(4, 3), 2, 1e-4);
    }

    #[test]
    fn synthesized_f6_tile_equals_direct() {
        check_tile_equivalence(&WinogradTransform::cook_toom(6, 3), 3, 1e-3);
    }

    #[test]
    fn five_by_five_filters_for_lenet() {
        for (m, seed) in [(2usize, 4u64), (4, 5), (6, 6)] {
            check_tile_equivalence(&WinogradTransform::cook_toom(m, 5), seed, 1e-3);
        }
    }

    #[test]
    fn mults_per_output_match_paper() {
        assert_eq!(WinogradTransform::canonical(2, 3).mults_per_output(), 4.0);
        assert_eq!(WinogradTransform::canonical(4, 3).mults_per_output(), 2.25);
        // direct convolution: 9 mults per output for 3x3
        let f6 = WinogradTransform::cook_toom(6, 3);
        assert!((f6.mults_per_output() - 64.0 / 36.0).abs() < 1e-12);
    }

    #[test]
    fn canonical_f2_sparsity_matches_appendix_a2() {
        let (bt, g, at) = WinogradTransform::canonical(2, 3).sparsity();
        assert!((bt - 0.50).abs() < 1e-9, "Bᵀ sparsity {}", bt);
        assert!((g - 1.0 / 3.0).abs() < 1e-9, "G sparsity {}", g);
        assert!((at - 0.25).abs() < 1e-9, "Aᵀ sparsity {}", at);
    }

    #[test]
    fn canonical_f4_sparsity_matches_appendix_a2() {
        let (bt, g, at) = WinogradTransform::canonical(4, 3).sparsity();
        // Appendix A.2: "for the default transforms F4 these ratios are
        // 22%, 22% and 25%" for Bᵀ/G/Aᵀ. G and Aᵀ match exactly; the
        // published Bᵀ matrix actually contains 14/36 ≈ 39% zeros — we
        // assert the exact counts of the published matrix.
        assert!((bt - 14.0 / 36.0).abs() < 1e-9, "Bᵀ sparsity {}", bt);
        assert!((g - 4.0 / 18.0).abs() < 1e-9, "G sparsity {}", g);
        assert!((at - 6.0 / 24.0).abs() < 1e-9, "Aᵀ sparsity {}", at);
    }

    #[test]
    fn max_entry_grows_with_tile_size() {
        let f2 = WinogradTransform::canonical(2, 3).max_entry();
        let f4 = WinogradTransform::canonical(4, 3).max_entry();
        let f6 = WinogradTransform::cook_toom(6, 3).max_entry();
        assert!(f2 < f4 && f4 < f6, "{} {} {}", f2, f4, f6);
    }

    #[test]
    fn from_matrices_roundtrip() {
        let t = WinogradTransform::canonical(2, 3);
        let t2 =
            WinogradTransform::from_matrices(2, 3, t.at().clone(), t.g().clone(), t.bt().clone());
        assert_eq!(t, t2);
    }

    #[test]
    #[should_panic(expected = "Aᵀ must be")]
    fn from_matrices_rejects_bad_shapes() {
        let t = WinogradTransform::canonical(2, 3);
        let _ =
            WinogradTransform::from_matrices(4, 3, t.at().clone(), t.g().clone(), t.bt().clone());
    }
}
