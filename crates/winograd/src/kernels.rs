//! Batched Winograd convolution kernels (GEMM formulation).
//!
//! The layout follows the efficient region-wise multi-channel scheme of
//! Maji et al. (2019) that the paper deploys on Arm CPUs: after
//! transforming, the Hadamard-product-and-channel-sum stage becomes one
//! independent GEMM per Winograd-domain coordinate `(u, v)`:
//! `M_uv[K, T] = U_uv[K, C] · V_uv[C, T]`.

use wa_tensor::{gemm_batched, Tensor};

use crate::tiling::TileGeometry;
use crate::transform::WinogradTransform;

/// Transforms a weight tensor `[K, C, r, r]` to the Winograd domain,
/// returning `U` laid out `[n², K·C]` (coordinate-major).
///
/// This is the `GgGᵀ` stage whose cost is "often ignored as it is
/// amortized across inferences" (paper §3.1); surgery and deployment
/// pre-compute it once.
///
/// # Panics
///
/// Panics if `weight` is not `[K, C, r, r]` with `r` matching the
/// transform.
pub fn transform_weights(weight: &Tensor, t: &WinogradTransform) -> Tensor {
    assert_eq!(weight.ndim(), 4, "weight must be [K, C, r, r]");
    let (k, c, r) = (weight.dim(0), weight.dim(1), weight.dim(2));
    assert_eq!(
        (r, weight.dim(3)),
        (t.r(), t.r()),
        "filter size mismatch with transform"
    );
    let n = t.input_tile();
    let flat = weight.reshape(&[k * c, r * r]);
    let u_rows = t.transform_filter_tiles(&flat); // [K·C, n²]
                                                  // permute to [n², K·C]
    let mut out = Tensor::zeros(&[n * n, k * c]);
    let src = u_rows.data();
    let dst = out.data_mut();
    for kc in 0..k * c {
        for uv in 0..n * n {
            dst[uv * k * c + kc] = src[kc * n * n + uv];
        }
    }
    out
}

/// Winograd convolution of an NCHW input (stride 1).
///
/// Computes `Y = Aᵀ[(G·g·Gᵀ) ⊙ (Bᵀ·d·B)]A` over all tiles of all images —
/// Eq. (1) of the paper — using per-coordinate GEMMs. Results match
/// [`wa_tensor::conv2d_direct`] up to FP32 rounding for well-conditioned
/// transforms.
///
/// # Panics
///
/// Panics on shape mismatches between `x` `[N, C, H, W]`, `weight`
/// `[K, C, r, r]`, `bias` `[K]`, and the transform's `r`.
///
/// # Example
///
/// ```
/// use wa_tensor::{SeededRng, Tensor};
/// use wa_winograd::{winograd_conv2d, WinogradTransform};
///
/// let mut rng = SeededRng::new(0);
/// let x = rng.uniform_tensor(&[1, 2, 8, 8], -1.0, 1.0);
/// let w = rng.uniform_tensor(&[4, 2, 3, 3], -1.0, 1.0);
/// let t = WinogradTransform::canonical(2, 3);
/// let y = winograd_conv2d(&x, &w, None, &t, 1);
/// assert_eq!(y.shape(), &[1, 4, 8, 8]);
/// ```
pub fn winograd_conv2d(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    t: &WinogradTransform,
    pad: usize,
) -> Tensor {
    let u = transform_weights(weight, t);
    winograd_conv2d_pretransformed(x, &u, weight.dim(0), weight.dim(1), bias, t, pad)
}

/// Winograd convolution with pre-transformed weights `u` (layout
/// `[n², K·C]`, from [`transform_weights`]).
///
/// Splitting the weight transform out mirrors deployment, where `GgGᵀ` is
/// computed once — and exposes the 1.78×/4× run-time weight-memory
/// increase of F2/F4 the paper notes in §3.1 (`u` holds `n²·K·C` floats
/// versus `r²·K·C`).
///
/// # Panics
///
/// Panics on layout mismatches.
pub fn winograd_conv2d_pretransformed(
    x: &Tensor,
    u: &Tensor,
    out_ch: usize,
    in_ch: usize,
    bias: Option<&Tensor>,
    t: &WinogradTransform,
    pad: usize,
) -> Tensor {
    assert_eq!(x.ndim(), 4, "input must be NCHW");
    let (nb, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    assert_eq!(
        c, in_ch,
        "input channels {} vs weight channels {}",
        c, in_ch
    );
    let n = t.input_tile();
    assert_eq!(
        u.shape(),
        &[n * n, out_ch * in_ch],
        "pretransformed weight layout mismatch"
    );
    if let Some(b) = bias {
        assert_eq!(b.shape(), &[out_ch], "bias must be [{}]", out_ch);
    }

    let geom = TileGeometry::for_conv(h, w, t.m(), t.r(), pad);
    let tiles_per_img = geom.tiles();
    let total_tiles = nb * tiles_per_img;

    // 1. gather + input transform (tile-batched: two GEMMs over all tiles)
    let xp = geom.pad_input(x);
    let tiles = geom.gather_tiles(&xp); // [N·T·C, n²]
    let v_rows = t.transform_input_tiles(&tiles); // [N·T·C, n²]

    // 2. permute to V[uv][C, N·T]
    let nn = n * n;
    let mut v = vec![0.0f32; nn * c * total_tiles];
    {
        let src = v_rows.data();
        for tile in 0..total_tiles {
            for ch in 0..c {
                let row = (tile * c + ch) * nn;
                for uv in 0..nn {
                    v[(uv * c + ch) * total_tiles + tile] = src[row + uv];
                }
            }
        }
    }

    // 3. per-coordinate GEMM: M_uv[K, T] = U_uv[K, C] · V_uv[C, T] —
    //    one packed batched GEMM over all n² coordinates
    let mut m = vec![0.0f32; nn * out_ch * total_tiles];
    gemm_batched(u.data(), &v, &mut m, nn, out_ch, c, total_tiles);

    // 4. inverse transform per (tile, k): rows [N·T·K, n²] -> [N·T·K, m²]
    let mut m_rows = Tensor::zeros(&[total_tiles * out_ch, nn]);
    {
        let dst = m_rows.data_mut();
        for tile in 0..total_tiles {
            for k in 0..out_ch {
                let row = (tile * out_ch + k) * nn;
                for uv in 0..nn {
                    dst[row + uv] = m[(uv * out_ch + k) * total_tiles + tile];
                }
            }
        }
    }
    let y_rows = t.transform_output_tiles(&m_rows); // [N·T·K, m²]

    // 5. assemble + bias
    let mut out = geom.assemble_output(&y_rows, nb, out_ch);
    if let Some(b) = bias {
        let (oh, ow) = (geom.out_h, geom.out_w);
        let dst = out.data_mut();
        for img in 0..nb {
            for k in 0..out_ch {
                let bv = b.data()[k];
                let o0 = (img * out_ch + k) * oh * ow;
                for v in &mut dst[o0..o0 + oh * ow] {
                    *v += bv;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_tensor::{conv2d_direct, SeededRng};

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{} vs {}",
                x,
                y
            );
        }
    }

    fn check(m: usize, r: usize, shape: &[usize; 4], k: usize, pad: usize, tol: f32, seed: u64) {
        let mut rng = SeededRng::new(seed);
        let x = rng.uniform_tensor(shape, -1.0, 1.0);
        let w = rng.uniform_tensor(&[k, shape[1], r, r], -1.0, 1.0);
        let b = rng.uniform_tensor(&[k], -0.5, 0.5);
        let t = WinogradTransform::canonical(m, r);
        let got = winograd_conv2d(&x, &w, Some(&b), &t, pad);
        let want = conv2d_direct(&x, &w, Some(&b), 1, pad);
        assert_close(&got, &want, tol);
    }

    #[test]
    fn f2_matches_direct_conv() {
        check(2, 3, &[2, 3, 8, 8], 4, 1, 1e-4, 10);
    }

    #[test]
    fn f4_matches_direct_conv() {
        check(4, 3, &[1, 4, 12, 12], 5, 1, 1e-3, 11);
    }

    #[test]
    fn f6_matches_direct_conv() {
        check(6, 3, &[1, 2, 16, 16], 3, 1, 1e-3, 12);
    }

    #[test]
    fn odd_sizes_with_tile_overrun() {
        // 7x9 output with m=4 wastes tile area; result must still be exact.
        check(4, 3, &[1, 3, 7, 9], 2, 1, 1e-3, 13);
    }

    #[test]
    fn no_padding() {
        check(2, 3, &[1, 2, 10, 10], 3, 0, 1e-4, 14);
    }

    #[test]
    fn five_by_five_filter() {
        let mut rng = SeededRng::new(15);
        let x = rng.uniform_tensor(&[1, 2, 12, 12], -1.0, 1.0);
        let w = rng.uniform_tensor(&[3, 2, 5, 5], -1.0, 1.0);
        let t = WinogradTransform::cook_toom(2, 5);
        let got = winograd_conv2d(&x, &w, None, &t, 2);
        let want = conv2d_direct(&x, &w, None, 1, 2);
        assert_close(&got, &want, 1e-3);
    }

    #[test]
    fn pretransformed_weights_match_on_the_fly() {
        let mut rng = SeededRng::new(16);
        let x = rng.uniform_tensor(&[1, 3, 8, 8], -1.0, 1.0);
        let w = rng.uniform_tensor(&[4, 3, 3, 3], -1.0, 1.0);
        let t = WinogradTransform::canonical(2, 3);
        let u = transform_weights(&w, &t);
        // run-time weight footprint grows n²/r² = 16/9 ≈ 1.78x (paper §3.1)
        assert_eq!(u.len(), 16 * 4 * 3);
        assert_eq!(u.len() as f64 / w.len() as f64, 16.0 / 9.0);
        let a = winograd_conv2d(&x, &w, None, &t, 1);
        let b = winograd_conv2d_pretransformed(&x, &u, 4, 3, None, &t, 1);
        assert_close(&a, &b, 1e-6);
    }

    #[test]
    fn batch_independence() {
        // convolving a batch equals convolving each image separately
        let mut rng = SeededRng::new(17);
        let x = rng.uniform_tensor(&[3, 2, 6, 6], -1.0, 1.0);
        let w = rng.uniform_tensor(&[2, 2, 3, 3], -1.0, 1.0);
        let t = WinogradTransform::canonical(2, 3);
        let all = winograd_conv2d(&x, &w, None, &t, 1);
        for i in 0..3 {
            let single = winograd_conv2d(&x.slice_dim0(i, i + 1), &w, None, &t, 1);
            assert_close(&all.slice_dim0(i, i + 1), &single, 1e-6);
        }
    }
}
