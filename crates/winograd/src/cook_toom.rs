//! Cook-Toom synthesis of Winograd transformation matrices.
//!
//! The minimal filtering algorithm `F(m, r)` computes `m` outputs of an
//! `r`-tap FIR filter with `n = m + r − 1` general multiplications
//! (Winograd 1980). Its matrix form `y = Aᵀ[(G·g) ⊙ (Bᵀ·d)]` is obtained
//! from the Cook-Toom algorithm (Toom 1963; see Blahut 2010 §5.2):
//! evaluate at `n − 1` distinct *polynomial points* plus the point at
//! infinity, multiply pointwise, and interpolate. Concretely, with `V_k`
//! the `n × k` evaluation (Vandermonde) matrix over the chosen points,
//!
//! * `G  = V_r` (filter evaluation, `n × r`),
//! * `Aᵀ = V_mᵀ` (output interpolation via the transposition principle, `m × n`),
//! * `Bᵀ = V_n⁻ᵀ` (data interpolation, `n × n`),
//!
//! all constructed over exact rationals. The *choice of points* controls
//! the magnitude of the matrix entries and hence the numerical error that
//! the paper identifies as the obstacle to quantized Winograd (its §3.1,
//! citing Barabasz et al. 2018).

use crate::rational::{Frac, FracMat};

/// A Cook-Toom interpolation point: a finite rational or the point at
/// infinity (which selects the leading polynomial coefficient).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolyPoint {
    /// A finite rational point.
    Finite(Frac),
    /// The point at infinity.
    Infinity,
}

impl PolyPoint {
    /// Convenience constructor for the rational point `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn rational(num: i128, den: i128) -> PolyPoint {
        PolyPoint::Finite(Frac::new(num, den))
    }

    /// Convenience constructor for an integer point.
    pub fn int(n: i128) -> PolyPoint {
        PolyPoint::Finite(Frac::int(n))
    }
}

/// The default point sequence `0, 1, −1, 2, −2, ½, −½, 3, −3, ⅓, −⅓, 4, −4, …`.
///
/// Small magnitudes and reciprocal pairs keep Vandermonde entries small —
/// the "good polynomial points" consensus the paper refers to for
/// F(2×2, 3×3) and F(4×4, 3×3) (its §3.1), extended per Barabasz et al.
/// (2018) for larger tiles.
///
/// # Panics
///
/// Panics if `count > 13` (enough for `F(8×8, 5×5)`); larger algorithms
/// need a hand-picked point set passed to [`cook_toom_with_points`].
pub fn default_points(count: usize) -> Vec<PolyPoint> {
    const SEQ: [(i128, i128); 13] = [
        (0, 1),
        (1, 1),
        (-1, 1),
        (2, 1),
        (-2, 1),
        (1, 2),
        (-1, 2),
        (3, 1),
        (-3, 1),
        (1, 3),
        (-1, 3),
        (4, 1),
        (-4, 1),
    ];
    assert!(
        count <= SEQ.len(),
        "default point sequence has {} points, {} requested; supply custom points",
        SEQ.len(),
        count
    );
    SEQ[..count]
        .iter()
        .map(|&(n, d)| PolyPoint::rational(n, d))
        .collect()
}

/// The exact-rational transform triple produced by [`cook_toom`].
#[derive(Clone, Debug)]
pub struct CookToom {
    /// Output count `m` (per dimension).
    pub m: usize,
    /// Filter taps `r` (per dimension).
    pub r: usize,
    /// `m × n` output transform.
    pub at: FracMat,
    /// `n × r` filter transform.
    pub g: FracMat,
    /// `n × n` input transform.
    pub bt: FracMat,
}

impl CookToom {
    /// Input tile size `n = m + r − 1`.
    pub fn n(&self) -> usize {
        self.m + self.r - 1
    }
}

/// Vandermonde-with-infinity evaluation matrix: row `i` is
/// `[1, aᵢ, aᵢ², …, aᵢ^(cols−1)]` for a finite point, or `e_{cols−1}` for
/// the point at infinity.
fn vandermonde(points: &[PolyPoint], cols: usize) -> FracMat {
    let mut v = FracMat::zeros(points.len(), cols);
    for (i, p) in points.iter().enumerate() {
        match p {
            PolyPoint::Finite(a) => {
                let mut pow = Frac::ONE;
                for j in 0..cols {
                    v[(i, j)] = pow;
                    pow = pow * *a;
                }
            }
            PolyPoint::Infinity => {
                v[(i, cols - 1)] = Frac::ONE;
            }
        }
    }
    v
}

/// Synthesizes `F(m, r)` transforms with the default point set
/// (`m + r − 2` finite points plus infinity), normalized so `Bᵀ` has
/// integer entries where possible.
///
/// # Panics
///
/// Panics if `m == 0` or `r == 0`, or if more default points are needed
/// than [`default_points`] provides.
///
/// # Example
///
/// ```
/// use wa_winograd::cook_toom;
///
/// let ct = cook_toom(2, 3); // F(2, 3)
/// assert_eq!(ct.n(), 4);
/// assert_eq!(ct.at.rows(), 2);
/// assert_eq!(ct.g.rows(), 4);
/// assert_eq!(ct.bt.rows(), 4);
/// ```
pub fn cook_toom(m: usize, r: usize) -> CookToom {
    assert!(
        m >= 1 && r >= 1,
        "F(m, r) requires m, r >= 1, got F({}, {})",
        m,
        r
    );
    let n = m + r - 1;
    let mut points = default_points(n - 1);
    points.push(PolyPoint::Infinity);
    cook_toom_with_points(m, r, &points)
}

/// Synthesizes `F(m, r)` transforms from explicit points.
///
/// The last point may be [`PolyPoint::Infinity`]; all points must be
/// distinct and there must be exactly `m + r − 1` of them.
///
/// # Panics
///
/// Panics on a wrong point count, duplicate points, or an infinity that is
/// not in the final position.
pub fn cook_toom_with_points(m: usize, r: usize, points: &[PolyPoint]) -> CookToom {
    assert!(
        m >= 1 && r >= 1,
        "F(m, r) requires m, r >= 1, got F({}, {})",
        m,
        r
    );
    let n = m + r - 1;
    assert_eq!(
        points.len(),
        n,
        "F({}, {}) needs {} points, got {}",
        m,
        r,
        n,
        points.len()
    );
    for (i, a) in points.iter().enumerate() {
        for b in &points[..i] {
            assert_ne!(a, b, "duplicate Cook-Toom point {:?}", a);
        }
        if *a == PolyPoint::Infinity {
            assert_eq!(i, n - 1, "the infinity point must be last");
        }
    }

    let at = vandermonde(points, m).transpose();
    let g = vandermonde(points, r);
    let bt = vandermonde(points, n).inverse().transpose();
    let mut ct = CookToom { m, r, at, g, bt };
    normalize(&mut ct);
    ct
}

/// Rescales the triple so `Bᵀ` rows are integral, pushing the
/// compensating factor into the matching `G` row — the convention of the
/// published Lavin & Gray matrices (integer `Bᵀ`, fractional `G`), which
/// is also the friendly form for fixed-point arithmetic.
///
/// Correctness is invariant: component `i` of the Hadamard product is
/// `(G·g)ᵢ (Bᵀ·d)ᵢ`, so scaling `Bᵀ` row `i` by `s` while scaling `G` row
/// `i` by `1/s` leaves `y = Aᵀ[(G·g) ⊙ (Bᵀ·d)]` unchanged.
fn normalize(ct: &mut CookToom) {
    let n = ct.n();
    for i in 0..n {
        // lcm of denominators in Bᵀ row i
        let mut lcm: i128 = 1;
        for j in 0..n {
            let d = ct.bt[(i, j)].denominator();
            let g = {
                let (mut a, mut b) = (lcm, d);
                while b != 0 {
                    (a, b) = (b, a % b);
                }
                a
            };
            lcm = (lcm / g) * d;
        }
        if lcm == 1 {
            continue;
        }
        let s = Frac::int(lcm);
        let inv = Frac::new(1, lcm);
        for j in 0..n {
            ct.bt[(i, j)] = ct.bt[(i, j)] * s;
        }
        for j in 0..ct.r {
            ct.g[(i, j)] = ct.g[(i, j)] * inv;
        }
    }
}

/// Exact 1-D Winograd filtering over rationals: `y = Aᵀ[(G·g) ⊙ (Bᵀ·d)]`.
///
/// Used by property tests to show the synthesized triple computes FIR
/// filtering *exactly* (no floating point involved).
///
/// # Panics
///
/// Panics if `d.len() != n` or `g.len() != r`.
pub fn winograd_1d_exact(ct: &CookToom, d: &[Frac], g: &[Frac]) -> Vec<Frac> {
    let n = ct.n();
    assert_eq!(d.len(), n, "data length {} != n {}", d.len(), n);
    assert_eq!(g.len(), ct.r, "filter length {} != r {}", g.len(), ct.r);
    // G·g
    let gg: Vec<Frac> = (0..n)
        .map(|i| (0..ct.r).fold(Frac::ZERO, |acc, j| acc + ct.g[(i, j)] * g[j]))
        .collect();
    // Bᵀ·d
    let bd: Vec<Frac> = (0..n)
        .map(|i| (0..n).fold(Frac::ZERO, |acc, j| acc + ct.bt[(i, j)] * d[j]))
        .collect();
    // Aᵀ·(gg ⊙ bd)
    (0..ct.m)
        .map(|i| (0..n).fold(Frac::ZERO, |acc, j| acc + ct.at[(i, j)] * gg[j] * bd[j]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fir_exact(d: &[Frac], g: &[Frac]) -> Vec<Frac> {
        let m = d.len() - g.len() + 1;
        (0..m)
            .map(|i| {
                g.iter()
                    .enumerate()
                    .fold(Frac::ZERO, |acc, (k, &gk)| acc + gk * d[i + k])
            })
            .collect()
    }

    #[test]
    fn f23_matches_fir_exactly() {
        let ct = cook_toom(2, 3);
        let d: Vec<Frac> = [3, -1, 4, 1].iter().map(|&x| Frac::int(x)).collect();
        let g: Vec<Frac> = [2, 7, -5].iter().map(|&x| Frac::int(x)).collect();
        assert_eq!(winograd_1d_exact(&ct, &d, &g), fir_exact(&d, &g));
    }

    #[test]
    fn many_sizes_match_fir_exactly() {
        // every (m, r) pair used anywhere in the paper
        for (m, r) in [
            (2, 3),
            (4, 3),
            (6, 3),
            (2, 5),
            (4, 5),
            (6, 5),
            (8, 3),
            (3, 3),
            (5, 3),
        ] {
            let ct = cook_toom(m, r);
            let n = ct.n();
            let d: Vec<Frac> = (0..n)
                .map(|i| Frac::new(2 * i as i128 - 3, 1 + (i as i128 % 3)))
                .collect();
            let g: Vec<Frac> = (0..r).map(|i| Frac::new(1 - i as i128, 2)).collect();
            assert_eq!(
                winograd_1d_exact(&ct, &d, &g),
                fir_exact(&d, &g),
                "F({}, {})",
                m,
                r
            );
        }
    }

    #[test]
    fn normalized_bt_is_integral() {
        for (m, r) in [(2, 3), (4, 3), (6, 3), (4, 5)] {
            let ct = cook_toom(m, r);
            let n = ct.n();
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        ct.bt[(i, j)].is_integer(),
                        "F({},{}) Bᵀ[{},{}] = {} not integral",
                        m,
                        r,
                        i,
                        j,
                        ct.bt[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn f23_reproduces_lavin_gray_up_to_row_sign() {
        // The generated F(2,3) equals the canonical Lavin & Gray matrices
        // except that Bᵀ row 3 and Aᵀ column 3 are both negated — an
        // equivalent minimal algorithm (the two sign flips cancel in the
        // pointwise product). Magnitudes and sparsity are identical.
        let ct = cook_toom(2, 3);
        let bt: Vec<Vec<f64>> = ct.bt.to_f64_rows();
        assert_eq!(bt[0], vec![1.0, 0.0, -1.0, 0.0]);
        assert_eq!(bt[1], vec![0.0, 1.0, 1.0, 0.0]);
        assert_eq!(bt[2], vec![0.0, -1.0, 1.0, 0.0]);
        assert_eq!(bt[3], vec![0.0, -1.0, 0.0, 1.0]);
        let g = ct.g.to_f64_rows();
        assert_eq!(g[0], vec![1.0, 0.0, 0.0]);
        assert_eq!(g[1], vec![0.5, 0.5, 0.5]);
        assert_eq!(g[2], vec![0.5, -0.5, 0.5]);
        assert_eq!(g[3], vec![0.0, 0.0, 1.0]);
        let at = ct.at.to_f64_rows();
        assert_eq!(at[0], vec![1.0, 1.0, 1.0, 0.0]);
        assert_eq!(at[1], vec![0.0, 1.0, -1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate Cook-Toom point")]
    fn duplicate_points_panic() {
        let pts = vec![
            PolyPoint::int(0),
            PolyPoint::int(0),
            PolyPoint::int(1),
            PolyPoint::Infinity,
        ];
        let _ = cook_toom_with_points(2, 3, &pts);
    }

    #[test]
    #[should_panic(expected = "needs 4 points")]
    fn wrong_point_count_panics() {
        let _ = cook_toom_with_points(2, 3, &[PolyPoint::int(0)]);
    }

    #[test]
    #[should_panic(expected = "infinity point must be last")]
    fn infinity_must_be_last() {
        let pts = vec![
            PolyPoint::Infinity,
            PolyPoint::int(0),
            PolyPoint::int(1),
            PolyPoint::int(2),
        ];
        let _ = cook_toom_with_points(2, 3, &pts);
    }

    #[test]
    fn all_finite_points_also_work() {
        let pts = vec![
            PolyPoint::int(0),
            PolyPoint::int(1),
            PolyPoint::int(-1),
            PolyPoint::int(2),
        ];
        let ct = cook_toom_with_points(2, 3, &pts);
        let d: Vec<Frac> = [1, 2, 3, 4].iter().map(|&x| Frac::int(x)).collect();
        let g: Vec<Frac> = [1, 1, 1].iter().map(|&x| Frac::int(x)).collect();
        assert_eq!(winograd_1d_exact(&ct, &d, &g), fir_exact(&d, &g));
    }

    #[test]
    fn bad_points_grow_entries() {
        // Large points → large matrix entries → numerical error (the root
        // cause discussed in paper §3.1).
        let good = cook_toom(4, 3);
        let bad_pts: Vec<PolyPoint> = vec![
            PolyPoint::int(0),
            PolyPoint::int(1),
            PolyPoint::int(2),
            PolyPoint::int(3),
            PolyPoint::int(4),
            PolyPoint::Infinity,
        ];
        let bad = cook_toom_with_points(4, 3, &bad_pts);
        let max_abs = |m: &FracMat| {
            let mut best = 0.0f64;
            for row in m.to_f64_rows() {
                for v in row {
                    best = best.max(v.abs());
                }
            }
            best
        };
        assert!(
            max_abs(&bad.bt) > max_abs(&good.bt),
            "bad points should inflate Bᵀ"
        );
    }
}
