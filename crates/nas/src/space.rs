//! wiNAS search spaces (paper §4/§5.2, Figure 3).

use wa_core::{ConvAlgo, ConvSpec};
use wa_latency::{DType, LatAlgo};
use wa_nn::{QuantConfig, WaError};
use wa_quant::{BitWidth, TapPolicy};

/// One candidate operation for a conv slot: an algorithm at a precision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Candidate {
    /// Convolution algorithm (Winograd candidates are `-flex`, matching
    /// the paper's Winograd-aware layers with learned transforms).
    pub algo: ConvAlgo,
    /// Weight/activation precision.
    pub quant: QuantConfig,
}

impl Candidate {
    /// Emits this candidate as a validated [`ConvSpec`] for a concrete
    /// 3×3 stride-1 slot — the construction path the supernet uses, and
    /// the mutation wiNAS applies when it re-implements a slot.
    ///
    /// # Errors
    ///
    /// [`WaError::UnsupportedAlgo`] / [`WaError::InvalidSpec`] if the
    /// candidate cannot implement the slot.
    pub fn conv_spec(&self, name: &str, in_ch: usize, out_ch: usize) -> Result<ConvSpec, WaError> {
        ConvSpec::builder()
            .name(name)
            .in_channels(in_ch)
            .out_channels(out_ch)
            .kernel(3)
            .algo(self.algo)
            .quant(self.quant)
            .build()
    }

    /// The latency-model algorithm for this candidate. Learned (`-flex`)
    /// transforms are dense, so they map to the Appendix A.2 penalized
    /// variant.
    pub fn lat_algo(&self) -> LatAlgo {
        match self.algo {
            ConvAlgo::Im2row => LatAlgo::Im2row,
            ConvAlgo::Winograd { m } => LatAlgo::Winograd { m },
            ConvAlgo::WinogradFlex { m } => LatAlgo::WinogradDense { m },
        }
    }

    /// The latency-model dtype for this candidate.
    pub fn lat_dtype(&self) -> DType {
        match self.quant.activations {
            BitWidth::Fp32 => DType::Fp32,
            BitWidth::Int(b) if b <= 8 => DType::Int8,
            BitWidth::Int(_) => DType::Int16,
        }
    }
}

impl std::fmt::Display for Candidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.algo, self.quant.activations)?;
        if self.quant.transform == TapPolicy::PerTap {
            write!(f, " per-tap")?;
        }
        Ok(())
    }
}

/// A wiNAS search space: which candidates each 3×3 conv may choose from.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchSpace {
    /// Candidate set shared by every searchable layer.
    pub candidates: Vec<Candidate>,
    /// Space name for logs ("wiNAS-WA", "wiNAS-WA-Q").
    pub name: String,
}

impl SearchSpace {
    /// `wiNAS_WA`: {im2row, F2, F4, F6} at one fixed bit-width (§5.2).
    pub fn wa(bits: BitWidth) -> SearchSpace {
        let quant = QuantConfig::uniform(bits);
        SearchSpace {
            candidates: vec![
                Candidate {
                    algo: ConvAlgo::Im2row,
                    quant,
                },
                Candidate {
                    algo: ConvAlgo::WinogradFlex { m: 2 },
                    quant,
                },
                Candidate {
                    algo: ConvAlgo::WinogradFlex { m: 4 },
                    quant,
                },
                Candidate {
                    algo: ConvAlgo::WinogradFlex { m: 6 },
                    quant,
                },
            ],
            name: format!("wiNAS-WA ({bits})"),
        }
    }

    /// `wiNAS_WA-Q`: each algorithm at each of FP32 / INT16 / INT8 —
    /// "introduces in the search space candidates of each operation
    /// quantized to FP32, INT16 and INT8" (§5.2).
    pub fn wa_q() -> SearchSpace {
        let algos = [
            ConvAlgo::Im2row,
            ConvAlgo::WinogradFlex { m: 2 },
            ConvAlgo::WinogradFlex { m: 4 },
            ConvAlgo::WinogradFlex { m: 6 },
        ];
        let precisions = [BitWidth::FP32, BitWidth::INT16, BitWidth::INT8];
        let mut candidates = Vec::with_capacity(algos.len() * precisions.len());
        for &algo in &algos {
            for &bits in &precisions {
                candidates.push(Candidate {
                    algo,
                    quant: QuantConfig::uniform(bits),
                });
            }
        }
        SearchSpace {
            candidates,
            name: "wiNAS-WA-Q".to_string(),
        }
    }

    /// `wiNAS_WA-Tap`: the Winograd candidates of [`SearchSpace::wa`]
    /// with **tap-wise** transform-domain quantization
    /// ([`TapPolicy::PerTap`]) alongside their per-layer originals, plus
    /// the im2row baseline — so the search can trade tap-level precision
    /// against the per-layer scheme slot by slot. Per-tap scaling is what
    /// keeps the large-tile candidates (F4, F6) accurate at low
    /// precision, letting the latency-driven search actually pick them.
    pub fn wa_tap(bits: BitWidth) -> SearchSpace {
        let per_layer = QuantConfig::uniform(bits);
        let per_tap = QuantConfig::per_tap(bits);
        let mut candidates = vec![Candidate {
            algo: ConvAlgo::Im2row,
            quant: per_layer,
        }];
        for m in [2usize, 4, 6] {
            let algo = ConvAlgo::WinogradFlex { m };
            candidates.push(Candidate {
                algo,
                quant: per_layer,
            });
            candidates.push(Candidate {
                algo,
                quant: per_tap,
            });
        }
        SearchSpace {
            candidates,
            name: format!("wiNAS-WA-Tap ({bits})"),
        }
    }

    /// A reduced space for unit tests and small demos.
    pub fn small(bits: BitWidth) -> SearchSpace {
        let quant = QuantConfig::uniform(bits);
        SearchSpace {
            candidates: vec![
                Candidate {
                    algo: ConvAlgo::Im2row,
                    quant,
                },
                Candidate {
                    algo: ConvAlgo::WinogradFlex { m: 2 },
                    quant,
                },
                Candidate {
                    algo: ConvAlgo::WinogradFlex { m: 4 },
                    quant,
                },
            ],
            name: format!("wiNAS-small ({bits})"),
        }
    }

    /// Validates the whole space: non-empty, every candidate algorithm
    /// usable on a 3×3 stride-1 slot, and every tap-wise candidate
    /// actually Winograd (per-tap scales live on the transformed tile;
    /// an im2row candidate has no taps to scale).
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] for an empty space,
    /// [`WaError::UnsupportedAlgo`] for an unusable candidate or a
    /// per-tap im2row candidate.
    pub fn validate(&self) -> Result<(), WaError> {
        if self.candidates.is_empty() {
            return Err(WaError::invalid(
                "SearchSpace",
                "candidates",
                "search space must have at least one candidate",
            ));
        }
        for c in &self.candidates {
            wa_core::validate_algo_geometry(c.algo, 3, 1)?;
            if c.quant.transform == TapPolicy::PerTap && c.algo == ConvAlgo::Im2row {
                return Err(WaError::unsupported(
                    c.algo,
                    "per-tap quantization needs a Winograd domain; \
                     im2row candidates must stay per-layer",
                ));
            }
        }
        Ok(())
    }

    /// Number of candidates per layer.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the space is empty (never for built-ins).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wa_space_has_four_algorithms() {
        let s = SearchSpace::wa(BitWidth::INT8);
        assert_eq!(s.len(), 4);
        assert!(s
            .candidates
            .iter()
            .all(|c| c.quant.activations == BitWidth::INT8));
    }

    #[test]
    fn wa_q_space_is_cross_product() {
        let s = SearchSpace::wa_q();
        assert_eq!(s.len(), 12);
        let fp32 = s
            .candidates
            .iter()
            .filter(|c| c.quant.activations == BitWidth::FP32)
            .count();
        assert_eq!(fp32, 4);
    }

    #[test]
    fn flex_candidates_map_to_dense_latency() {
        let c = Candidate {
            algo: ConvAlgo::WinogradFlex { m: 4 },
            quant: QuantConfig::uniform(BitWidth::INT8),
        };
        assert_eq!(c.lat_algo(), LatAlgo::WinogradDense { m: 4 });
        assert_eq!(c.lat_dtype(), DType::Int8);
        let c16 = Candidate {
            algo: ConvAlgo::Im2row,
            quant: QuantConfig::uniform(BitWidth::INT16),
        };
        assert_eq!(c16.lat_dtype(), DType::Int16);
    }

    #[test]
    fn candidates_emit_valid_conv_specs() {
        let s = SearchSpace::wa(BitWidth::INT8);
        s.validate().unwrap();
        for (i, c) in s.candidates.iter().enumerate() {
            let spec = c.conv_spec(&format!("slot{i}"), 8, 16).unwrap();
            assert_eq!(spec.algo, c.algo);
            assert_eq!(spec.quant, c.quant);
            assert_eq!(
                (spec.in_channels, spec.out_channels, spec.kernel),
                (8, 16, 3)
            );
        }
    }

    #[test]
    fn invalid_candidate_fails_validation() {
        let mut s = SearchSpace::wa(BitWidth::INT8);
        s.candidates.push(Candidate {
            algo: ConvAlgo::Winograd { m: 5 },
            quant: QuantConfig::uniform(BitWidth::INT8),
        });
        assert!(matches!(s.validate(), Err(WaError::UnsupportedAlgo { .. })));
        let empty = SearchSpace {
            candidates: vec![],
            name: "empty".into(),
        };
        assert!(matches!(empty.validate(), Err(WaError::InvalidSpec { .. })));
    }

    #[test]
    fn display_is_figure9_style() {
        let c = Candidate {
            algo: ConvAlgo::WinogradFlex { m: 4 },
            quant: QuantConfig::uniform(BitWidth::INT8),
        };
        assert_eq!(c.to_string(), "F4-flex INT8");
        let t = Candidate {
            algo: ConvAlgo::WinogradFlex { m: 4 },
            quant: QuantConfig::per_tap(BitWidth::INT8),
        };
        assert_eq!(t.to_string(), "F4-flex INT8 per-tap");
    }

    #[test]
    fn tap_space_pairs_winograd_candidates_with_per_tap_variants() {
        let s = SearchSpace::wa_tap(BitWidth::INT8);
        s.validate().unwrap();
        assert_eq!(s.len(), 7, "im2row + {{F2,F4,F6}} × {{per-layer,per-tap}}");
        let per_tap: Vec<_> = s
            .candidates
            .iter()
            .filter(|c| c.quant.transform == TapPolicy::PerTap)
            .collect();
        assert_eq!(per_tap.len(), 3);
        assert!(per_tap.iter().all(|c| c.algo != ConvAlgo::Im2row));
        // per-tap candidates emit specs carrying the policy
        let spec = per_tap[0].conv_spec("slot0", 8, 8).unwrap();
        assert_eq!(spec.quant.transform, TapPolicy::PerTap);
    }

    #[test]
    fn per_tap_im2row_candidate_fails_validation() {
        let mut s = SearchSpace::wa(BitWidth::INT8);
        s.candidates.push(Candidate {
            algo: ConvAlgo::Im2row,
            quant: QuantConfig::per_tap(BitWidth::INT8),
        });
        assert!(matches!(s.validate(), Err(WaError::UnsupportedAlgo { .. })));
    }
}
