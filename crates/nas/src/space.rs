//! wiNAS search spaces (paper §4/§5.2, Figure 3).

use serde::{Deserialize, Serialize};
use wa_core::ConvAlgo;
use wa_latency::{DType, LatAlgo};
use wa_nn::QuantConfig;
use wa_quant::BitWidth;

/// One candidate operation for a conv slot: an algorithm at a precision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Candidate {
    /// Convolution algorithm (Winograd candidates are `-flex`, matching
    /// the paper's Winograd-aware layers with learned transforms).
    pub algo: ConvAlgo,
    /// Weight/activation precision.
    pub quant: QuantConfig,
}

impl Candidate {
    /// The latency-model algorithm for this candidate. Learned (`-flex`)
    /// transforms are dense, so they map to the Appendix A.2 penalized
    /// variant.
    pub fn lat_algo(&self) -> LatAlgo {
        match self.algo {
            ConvAlgo::Im2row => LatAlgo::Im2row,
            ConvAlgo::Winograd { m } => LatAlgo::Winograd { m },
            ConvAlgo::WinogradFlex { m } => LatAlgo::WinogradDense { m },
        }
    }

    /// The latency-model dtype for this candidate.
    pub fn lat_dtype(&self) -> DType {
        match self.quant.activations {
            BitWidth::Fp32 => DType::Fp32,
            BitWidth::Int(b) if b <= 8 => DType::Int8,
            BitWidth::Int(_) => DType::Int16,
        }
    }
}

impl std::fmt::Display for Candidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.algo, self.quant.activations)
    }
}

/// A wiNAS search space: which candidates each 3×3 conv may choose from.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Candidate set shared by every searchable layer.
    pub candidates: Vec<Candidate>,
    /// Space name for logs ("wiNAS-WA", "wiNAS-WA-Q").
    pub name: String,
}

impl SearchSpace {
    /// `wiNAS_WA`: {im2row, F2, F4, F6} at one fixed bit-width (§5.2).
    pub fn wa(bits: BitWidth) -> SearchSpace {
        let quant = QuantConfig::uniform(bits);
        SearchSpace {
            candidates: vec![
                Candidate { algo: ConvAlgo::Im2row, quant },
                Candidate { algo: ConvAlgo::WinogradFlex { m: 2 }, quant },
                Candidate { algo: ConvAlgo::WinogradFlex { m: 4 }, quant },
                Candidate { algo: ConvAlgo::WinogradFlex { m: 6 }, quant },
            ],
            name: format!("wiNAS-WA ({bits})"),
        }
    }

    /// `wiNAS_WA-Q`: each algorithm at each of FP32 / INT16 / INT8 —
    /// "introduces in the search space candidates of each operation
    /// quantized to FP32, INT16 and INT8" (§5.2).
    pub fn wa_q() -> SearchSpace {
        let algos = [
            ConvAlgo::Im2row,
            ConvAlgo::WinogradFlex { m: 2 },
            ConvAlgo::WinogradFlex { m: 4 },
            ConvAlgo::WinogradFlex { m: 6 },
        ];
        let precisions = [BitWidth::FP32, BitWidth::INT16, BitWidth::INT8];
        let mut candidates = Vec::with_capacity(algos.len() * precisions.len());
        for &algo in &algos {
            for &bits in &precisions {
                candidates.push(Candidate { algo, quant: QuantConfig::uniform(bits) });
            }
        }
        SearchSpace { candidates, name: "wiNAS-WA-Q".to_string() }
    }

    /// A reduced space for unit tests and small demos.
    pub fn small(bits: BitWidth) -> SearchSpace {
        let quant = QuantConfig::uniform(bits);
        SearchSpace {
            candidates: vec![
                Candidate { algo: ConvAlgo::Im2row, quant },
                Candidate { algo: ConvAlgo::WinogradFlex { m: 2 }, quant },
                Candidate { algo: ConvAlgo::WinogradFlex { m: 4 }, quant },
            ],
            name: format!("wiNAS-small ({bits})"),
        }
    }

    /// Number of candidates per layer.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the space is empty (never for built-ins).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wa_space_has_four_algorithms() {
        let s = SearchSpace::wa(BitWidth::INT8);
        assert_eq!(s.len(), 4);
        assert!(s.candidates.iter().all(|c| c.quant.activations == BitWidth::INT8));
    }

    #[test]
    fn wa_q_space_is_cross_product() {
        let s = SearchSpace::wa_q();
        assert_eq!(s.len(), 12);
        let fp32 = s.candidates.iter().filter(|c| c.quant.activations == BitWidth::FP32).count();
        assert_eq!(fp32, 4);
    }

    #[test]
    fn flex_candidates_map_to_dense_latency() {
        let c = Candidate {
            algo: ConvAlgo::WinogradFlex { m: 4 },
            quant: QuantConfig::uniform(BitWidth::INT8),
        };
        assert_eq!(c.lat_algo(), LatAlgo::WinogradDense { m: 4 });
        assert_eq!(c.lat_dtype(), DType::Int8);
        let c16 = Candidate {
            algo: ConvAlgo::Im2row,
            quant: QuantConfig::uniform(BitWidth::INT16),
        };
        assert_eq!(c16.lat_dtype(), DType::Int16);
    }

    #[test]
    fn display_is_figure9_style() {
        let c = Candidate {
            algo: ConvAlgo::WinogradFlex { m: 4 },
            quant: QuantConfig::uniform(BitWidth::INT8),
        };
        assert_eq!(c.to_string(), "F4-flex INT8");
    }
}
