//! # wa-nas
//!
//! **wiNAS**: the Winograd-aware neural architecture search of the paper's
//! §4 — a ProxylessNAS-style micro-architecture search that picks, per
//! 3×3 convolution, an algorithm from {im2row, F2, F4, F6} (and, in the
//! `WA-Q` space, a precision from {FP32, INT16, INT8}), jointly optimizing
//! accuracy and hardware latency:
//!
//! * `L_weights = CE + λ₀‖w‖²` (Eq. 2) — SGD + Nesterov on sampled paths;
//! * `L_arch = CE + λ₁‖a‖² + λ₂·E{latency}` (Eq. 3) — Adam (β₁ = 0) on
//!   architecture logits via the REINFORCE variant of the ProxylessNAS
//!   update, with latencies from the `wa-latency` Cortex-A73/A53 model.
//!
//! # Example
//!
//! ```
//! use wa_latency::Core;
//! use wa_nas::{MacroArch, SearchSpace, WiNas, WiNasConfig};
//! use wa_quant::BitWidth;
//! use wa_tensor::SeededRng;
//!
//! let mut rng = SeededRng::new(0);
//! let arch = MacroArch::tiny(10, 8, 8);
//! let space = SearchSpace::wa(BitWidth::INT8);
//! let nas = WiNas::new(&arch, space, WiNasConfig::default(), &mut rng)?;
//! assert!(nas.expected_latency_ms() > 0.0);
//! # Ok::<(), wa_nn::WaError>(())
//! ```

mod search;
mod space;
mod supernet;

pub use search::{SearchEpoch, WiNas, WiNasConfig};
pub use space::{Candidate, SearchSpace};
pub use supernet::{Bank, MacroArch, SuperNet};
