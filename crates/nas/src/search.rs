//! The two-stage wiNAS optimization loop (paper §4.1/§5.2).
//!
//! Alternates:
//!
//! 1. **Weight stage** — path-sampled training of the supernet weights
//!    with SGD + Nesterov momentum under `L_weights = CE + λ₀‖w‖²`
//!    (Eq. 2); only the sampled candidate per slot is evaluated/updated.
//! 2. **Architecture stage** — updates per-slot logits under
//!    `L_arch = CE + λ₁‖a‖² + λ₂·E{latency}` (Eq. 3) with Adam at β₁ = 0
//!    ("so the optimizer only updates paths that have been sampled").
//!    We implement the REINFORCE variant of ProxylessNAS's architecture
//!    update: sampled-path reward `CE_val + λ₂·latency(path)` whose
//!    expectation equals Eq. 3's objective, with an EMA baseline.

use wa_core::train_step;
use wa_latency::{conv_latency_ms, Core};
use wa_nn::{accuracy, Layer, RunningMean, Sgd, Tape, WaError};
use wa_tensor::{SeededRng, Tensor};

use crate::space::{Candidate, SearchSpace};
use crate::supernet::{MacroArch, SuperNet};

/// wiNAS hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WiNasConfig {
    /// Search epochs (paper: 100).
    pub epochs: usize,
    /// Weight-stage learning rate (SGD + Nesterov).
    pub weight_lr: f32,
    /// Weight-stage momentum.
    pub weight_momentum: f32,
    /// Weight decay λ₀ (Eq. 2).
    pub lambda0: f32,
    /// Architecture L2 λ₁ (Eq. 3).
    pub lambda1: f32,
    /// Latency weight λ₂ (Eq. 3; the paper sweeps 1e-3 … 0.1).
    pub lambda2: f32,
    /// Architecture-stage learning rate (Adam, β₁ = 0).
    pub arch_lr: f32,
    /// Target core for the latency term.
    pub core: Core,
    /// RNG seed for path sampling.
    pub seed: u64,
}

impl Default for WiNasConfig {
    fn default() -> Self {
        WiNasConfig {
            epochs: 10,
            weight_lr: 0.05,
            weight_momentum: 0.9,
            lambda0: 1e-4,
            lambda1: 1e-3,
            lambda2: 0.01,
            arch_lr: 0.1,
            core: Core::CortexA73,
            seed: 0,
        }
    }
}

/// Per-epoch search telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SearchEpoch {
    /// Epoch index.
    pub epoch: usize,
    /// Mean sampled-path training loss.
    pub train_loss: f64,
    /// Mean sampled-path validation accuracy (arch stage).
    pub val_acc: f64,
    /// Expected latency of the current architecture distribution (ms).
    pub expected_latency_ms: f64,
    /// Mean per-slot entropy of the architecture distribution (nats).
    pub entropy: f64,
}

/// The wiNAS searcher: supernet + architecture parameters.
pub struct WiNas {
    /// The over-parameterized network (public so callers can fine-tune
    /// the extracted architecture in place).
    pub supernet: SuperNet,
    space: SearchSpace,
    logits: Vec<Vec<f32>>,
    adam_v: Vec<Vec<f32>>,
    adam_t: u32,
    lat_table: Vec<Vec<f64>>,
    cfg: WiNasConfig,
    baseline: f64,
    baseline_init: bool,
    rng: SeededRng,
}

impl WiNas {
    /// Builds the searcher: instantiates the supernet and pre-computes the
    /// per-slot × per-candidate latency table from the analytical model
    /// (the paper's measured-lookup equivalent).
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] / [`WaError::UnsupportedAlgo`] if the
    /// macro-architecture or search space is invalid.
    pub fn new(
        arch: &MacroArch,
        space: SearchSpace,
        cfg: WiNasConfig,
        rng: &mut SeededRng,
    ) -> Result<WiNas, WaError> {
        let supernet = SuperNet::new(arch, &space, rng)?;
        let slots = arch.slot_count();
        let shapes = arch.slot_shapes();
        let lat_table = shapes
            .iter()
            .map(|&shape| {
                space
                    .candidates
                    .iter()
                    .map(|c| conv_latency_ms(cfg.core, c.lat_dtype(), c.lat_algo(), shape))
                    .collect()
            })
            .collect();
        Ok(WiNas {
            supernet,
            logits: vec![vec![0.0; space.len()]; slots],
            adam_v: vec![vec![0.0; space.len()]; slots],
            adam_t: 0,
            lat_table,
            space,
            cfg,
            baseline: 0.0,
            baseline_init: false,
            rng: rng.fork(0x77a5),
        })
    }

    /// Softmax over a slot's logits.
    pub fn probs(&self, slot: usize) -> Vec<f32> {
        softmax(&self.logits[slot])
    }

    /// Samples one candidate per slot from the current distribution.
    pub fn sample(&mut self) -> Vec<usize> {
        (0..self.logits.len())
            .map(|s| {
                let p = softmax(&self.logits[s]);
                let mut u = self.rng.uniform(0.0, 1.0);
                for (i, &pi) in p.iter().enumerate() {
                    if u < pi {
                        return i;
                    }
                    u -= pi;
                }
                p.len() - 1
            })
            .collect()
    }

    /// Expected latency of the architecture distribution:
    /// `Σ_slots Σ_cands p·lat` — the paper's `E{latency}` (§4.1).
    pub fn expected_latency_ms(&self) -> f64 {
        self.logits
            .iter()
            .enumerate()
            .map(|(s, l)| {
                softmax(l)
                    .iter()
                    .zip(&self.lat_table[s])
                    .map(|(&p, &lat)| p as f64 * lat)
                    .sum::<f64>()
            })
            .sum()
    }

    /// Latency of one concrete path.
    pub fn path_latency_ms(&self, selection: &[usize]) -> f64 {
        selection
            .iter()
            .enumerate()
            .map(|(s, &c)| self.lat_table[s][c])
            .sum()
    }

    /// Argmax architecture (the extracted result).
    pub fn extract(&self) -> Vec<Candidate> {
        self.logits
            .iter()
            .map(|l| {
                let best = l
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                self.space.candidates[best]
            })
            .collect()
    }

    /// Applies the argmax architecture to the supernet (after which it can
    /// be trained end-to-end like any model, §5.2).
    pub fn finalize(&mut self) {
        let sel: Vec<usize> = self
            .logits
            .iter()
            .map(|l| {
                l.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect();
        self.supernet.set_selection(&sel);
    }

    /// Runs the alternating two-stage search.
    pub fn search(
        &mut self,
        train_batches: &[(Tensor, Vec<usize>)],
        val_batches: &[(Tensor, Vec<usize>)],
    ) -> Vec<SearchEpoch> {
        let mut opt = Sgd::new(
            self.cfg.weight_lr,
            self.cfg.weight_momentum,
            true,
            self.cfg.lambda0,
        );
        let mut log = Vec::with_capacity(self.cfg.epochs);
        for epoch in 0..self.cfg.epochs {
            // ---- weight stage: path-sampled supernet training
            let mut train_loss = RunningMean::new();
            for (images, labels) in train_batches {
                let sel = self.sample();
                self.supernet.set_selection(&sel);
                let (l, _) = train_step(&mut self.supernet, &mut opt, images, labels);
                train_loss.add(l, labels.len() as f64);
            }

            // ---- architecture stage: REINFORCE on validation batches
            let mut val_acc = RunningMean::new();
            for (images, labels) in val_batches {
                let sel = self.sample();
                self.supernet.set_selection(&sel);
                let (ce, acc) = {
                    let mut tape = Tape::new();
                    let x = tape.leaf(images.clone());
                    let logits = self.supernet.forward(&mut tape, x, false);
                    let loss = tape.cross_entropy(logits, labels);
                    (
                        tape.value(loss).data()[0] as f64,
                        accuracy(tape.value(logits), labels),
                    )
                };
                val_acc.add(acc, labels.len() as f64);
                let reward = ce + self.cfg.lambda2 as f64 * self.path_latency_ms(&sel);
                self.arch_update(&sel, reward);
            }

            let entropy = self.mean_entropy();
            log.push(SearchEpoch {
                epoch,
                train_loss: train_loss.mean(),
                val_acc: val_acc.mean(),
                expected_latency_ms: self.expected_latency_ms(),
                entropy,
            });
        }
        log
    }

    /// One REINFORCE step on the architecture logits with Adam (β₁ = 0).
    fn arch_update(&mut self, selection: &[usize], reward: f64) {
        if !self.baseline_init {
            self.baseline = reward;
            self.baseline_init = true;
        }
        let advantage = (reward - self.baseline) as f32;
        self.baseline = 0.9 * self.baseline + 0.1 * reward;
        self.adam_t += 1;
        let beta2 = 0.999f32;
        let bc2 = 1.0 - beta2.powi(self.adam_t as i32);
        for (s, &c) in selection.iter().enumerate() {
            let p = softmax(&self.logits[s]);
            for (i, &pi) in p.iter().enumerate() {
                let onehot = if i == c { 1.0 } else { 0.0 };
                // ∇_α of the sampled-path surrogate + λ₁ L2 term
                let grad = advantage * (onehot - pi) + 2.0 * self.cfg.lambda1 * self.logits[s][i];
                let v = &mut self.adam_v[s][i];
                *v = beta2 * *v + (1.0 - beta2) * grad * grad;
                let vhat = *v / bc2;
                self.logits[s][i] -= self.cfg.arch_lr * grad / (vhat.sqrt() + 1e-8);
            }
        }
    }

    /// Mean per-slot entropy of the architecture distribution.
    pub fn mean_entropy(&self) -> f64 {
        let mut total = 0.0;
        for l in &self.logits {
            for &p in &softmax(l) {
                if p > 0.0 {
                    total -= (p as f64) * (p as f64).ln();
                }
            }
        }
        total / self.logits.len() as f64
    }

    /// The search space in use.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }
}

fn softmax(logits: &[f32]) -> Vec<f32> {
    let m = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - m).exp()).collect();
    let z: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / z).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_quant::BitWidth;

    fn toy_batches(
        rng: &mut SeededRng,
        n: usize,
        bs: usize,
        size: usize,
    ) -> Vec<(Tensor, Vec<usize>)> {
        let ds = wa_data::cifar10_like(2.max(n * bs / 10), size, 3);
        ds.shuffled_batches(bs, rng).into_iter().take(n).collect()
    }

    #[test]
    fn latency_table_matches_model() {
        let mut rng = SeededRng::new(0);
        let arch = MacroArch::tiny(4, 8, 8);
        let space = SearchSpace::small(BitWidth::FP32);
        let nas = WiNas::new(&arch, space, WiNasConfig::default(), &mut rng).unwrap();
        // expected latency with uniform logits = mean of candidate latencies
        let el = nas.expected_latency_ms();
        assert!(el > 0.0);
        let manual: f64 = arch
            .slot_shapes()
            .iter()
            .map(|&s| {
                let cands = &nas.space().candidates;
                cands
                    .iter()
                    .map(|c| conv_latency_ms(Core::CortexA73, c.lat_dtype(), c.lat_algo(), s))
                    .sum::<f64>()
                    / cands.len() as f64
            })
            .sum();
        assert!((el - manual).abs() / manual < 1e-5, "{} vs {}", el, manual);
    }

    #[test]
    fn sampling_follows_logits() {
        let mut rng = SeededRng::new(1);
        let arch = MacroArch::tiny(4, 8, 8);
        let space = SearchSpace::small(BitWidth::FP32);
        let mut nas = WiNas::new(&arch, space, WiNasConfig::default(), &mut rng).unwrap();
        // bias slot 0 hard toward candidate 2
        nas.logits[0] = vec![-10.0, -10.0, 10.0];
        let counts = (0..50).map(|_| nas.sample()[0]).filter(|&c| c == 2).count();
        assert!(
            counts >= 48,
            "sampling should respect logits, got {}/50",
            counts
        );
    }

    #[test]
    fn pure_latency_search_finds_fastest_path() {
        // with λ₂ huge the reward is dominated by latency → the search
        // must converge to the per-slot latency argmin.
        let mut rng = SeededRng::new(2);
        let arch = MacroArch::tiny(10, 16, 16);
        let space = SearchSpace::small(BitWidth::INT8);
        let cfg = WiNasConfig {
            epochs: 8,
            lambda2: 1000.0,
            arch_lr: 0.3,
            lambda1: 0.0,
            ..WiNasConfig::default()
        };
        let mut nas = WiNas::new(&arch, space, cfg, &mut rng).unwrap();
        let train = toy_batches(&mut rng, 2, 8, 16);
        let val = toy_batches(&mut rng, 4, 8, 16);
        let log = nas.search(&train, &val);
        // expected latency decreased over the search
        assert!(
            log.last().unwrap().expected_latency_ms < log[0].expected_latency_ms,
            "latency should fall: {:?}",
            log.iter()
                .map(|e| e.expected_latency_ms)
                .collect::<Vec<_>>()
        );
        // extraction matches the latency argmin in every slot
        let extracted = nas.extract();
        for (s, cand) in extracted.iter().enumerate() {
            let lat_best = nas.lat_table[s]
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(
                *cand,
                nas.space().candidates[lat_best],
                "slot {} should pick the fastest candidate",
                s
            );
        }
    }

    #[test]
    fn finalize_applies_argmax_to_supernet() {
        let mut rng = SeededRng::new(3);
        let arch = MacroArch::tiny(4, 8, 8);
        let space = SearchSpace::small(BitWidth::FP32);
        let mut nas = WiNas::new(&arch, space, WiNasConfig::default(), &mut rng).unwrap();
        nas.logits[0] = vec![0.0, 5.0, 0.0];
        nas.logits[1] = vec![0.0, 0.0, 5.0];
        nas.finalize();
        let algos = nas.supernet.active_algos();
        assert_eq!(algos[0], wa_core::ConvAlgo::WinogradFlex { m: 2 });
        assert_eq!(algos[1], wa_core::ConvAlgo::WinogradFlex { m: 4 });
    }

    #[test]
    fn entropy_decreases_as_distribution_sharpens() {
        let mut rng = SeededRng::new(4);
        let arch = MacroArch::tiny(4, 8, 8);
        let space = SearchSpace::small(BitWidth::FP32);
        let mut nas = WiNas::new(&arch, space, WiNasConfig::default(), &mut rng).unwrap();
        let e0 = nas.mean_entropy();
        nas.logits[0] = vec![0.0, 8.0, 0.0];
        assert!(nas.mean_entropy() < e0);
    }
}
