//! The over-parameterized search network.
//!
//! Following ProxylessNAS (Cai et al. 2019), every searchable 3×3 slot
//! holds one instantiation of *each* candidate operation (its own weights
//! and observers); path sampling activates a single candidate per batch,
//! so only sampled paths are evaluated and updated — "enabling the
//! allocation of the entire network on a single GPU" (paper §4.1).

use wa_core::{ConvAlgo, ConvLayer};
use wa_latency::LayerShape;
use wa_nn::{
    BatchNorm2d, BatchNormSpec, Conv2d, Conv2dSpec, Layer, Linear, LinearSpec, Param, QuantConfig,
    Tape, Var, WaError,
};
use wa_tensor::SeededRng;

use crate::space::SearchSpace;

/// Macro-architecture description: wiNAS keeps this fixed and only picks
/// per-layer convolution algorithms/precisions (paper §4: "without
/// modifying the network's macro-architecture").
#[derive(Clone, Debug, PartialEq)]
pub struct MacroArch {
    /// Output classes.
    pub classes: usize,
    /// Stem output channels (the stem itself is fixed to direct conv).
    pub stem_ch: usize,
    /// Stages: `(out_channels, blocks, downsample_first)`.
    pub stages: Vec<(usize, usize, bool)>,
    /// Input spatial size (square) — needed for latency lookups (§4.1:
    /// "introducing latency … requires knowing the shape of the input
    /// tensor at each layer").
    pub input_size: usize,
}

impl MacroArch {
    /// The paper's ResNet-18 CIFAR macro-architecture at a width
    /// multiplier.
    pub fn resnet18(classes: usize, width: f64, input_size: usize) -> MacroArch {
        let w = |c: usize| ((c as f64 * width).round() as usize).max(1);
        MacroArch {
            classes,
            stem_ch: w(32),
            stages: vec![
                (w(64), 2, false),
                (w(128), 2, true),
                (w(256), 2, true),
                (w(512), 2, true),
            ],
            input_size,
        }
    }

    /// A miniature macro-architecture for tests and demos.
    pub fn tiny(classes: usize, channels: usize, input_size: usize) -> MacroArch {
        MacroArch {
            classes,
            stem_ch: channels,
            stages: vec![(channels, 1, false)],
            input_size,
        }
    }

    /// Validates the macro-architecture.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] for zero classes/channels/input size or
    /// an empty stage list.
    pub fn validate(&self) -> Result<(), WaError> {
        if self.classes == 0 {
            return Err(WaError::invalid(
                "MacroArch",
                "classes",
                "need at least one class",
            ));
        }
        if self.stem_ch == 0 {
            return Err(WaError::invalid("MacroArch", "stem_ch", "must be nonzero"));
        }
        if self.input_size == 0 {
            return Err(WaError::invalid(
                "MacroArch",
                "input_size",
                "must be nonzero",
            ));
        }
        if self.stages.is_empty() || self.stages.iter().any(|&(c, b, _)| c == 0 || b == 0) {
            return Err(WaError::invalid(
                "MacroArch",
                "stages",
                "stages must be non-empty with nonzero channels and block counts",
            ));
        }
        Ok(())
    }

    /// Number of searchable conv slots (two per block).
    pub fn slot_count(&self) -> usize {
        2 * self.stages.iter().map(|&(_, b, _)| b).sum::<usize>()
    }

    /// Layer geometry per searchable slot, in forward order.
    pub fn slot_shapes(&self) -> Vec<LayerShape> {
        let mut shapes = Vec::with_capacity(self.slot_count());
        let mut in_ch = self.stem_ch;
        let mut size = self.input_size;
        for &(out_ch, blocks, downsample) in &self.stages {
            for b in 0..blocks {
                if downsample && b == 0 {
                    size /= 2;
                }
                shapes.push(LayerShape::square(in_ch, out_ch, size, 3));
                shapes.push(LayerShape::square(out_ch, out_ch, size, 3));
                in_ch = out_ch;
            }
        }
        shapes
    }
}

/// A slot's bank of candidate convolutions with one active path.
pub struct Bank {
    candidates: Vec<ConvLayer>,
    active: usize,
}

impl Bank {
    fn new(
        name: &str,
        in_ch: usize,
        out_ch: usize,
        space: &SearchSpace,
        rng: &mut SeededRng,
    ) -> Result<Bank, WaError> {
        let candidates = space
            .candidates
            .iter()
            .enumerate()
            .map(|(i, cand)| {
                let spec = cand.conv_spec(&format!("{name}.cand{i}"), in_ch, out_ch)?;
                ConvLayer::from_spec(&spec, rng)
            })
            .collect::<Result<Vec<_>, WaError>>()?;
        Ok(Bank {
            candidates,
            active: 0,
        })
    }

    /// Currently active candidate index.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Selects the active candidate.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set_active(&mut self, i: usize) {
        assert!(
            i < self.candidates.len(),
            "candidate {} out of {}",
            i,
            self.candidates.len()
        );
        self.active = i;
    }

    /// Algorithm of the active candidate.
    pub fn active_algo(&self) -> ConvAlgo {
        self.candidates[self.active].algo()
    }

    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        self.candidates[self.active].forward(tape, x, train)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for c in &mut self.candidates {
            c.visit_params(f);
        }
    }
}

struct SuperBlock {
    bank1: Bank,
    bn1: BatchNorm2d,
    bank2: Bank,
    bn2: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    downsample: bool,
}

/// The searchable network: fixed stem/shortcuts/head, candidate banks in
/// every 3×3 slot.
pub struct SuperNet {
    stem: Conv2d,
    stem_bn: BatchNorm2d,
    blocks: Vec<SuperBlock>,
    head: Linear,
    arch: MacroArch,
}

impl SuperNet {
    /// Instantiates the supernet for a macro-architecture and search
    /// space. All candidates start with independent Kaiming weights.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] / [`WaError::UnsupportedAlgo`] if the
    /// macro-architecture or any search-space candidate is invalid.
    pub fn new(
        arch: &MacroArch,
        space: &SearchSpace,
        rng: &mut SeededRng,
    ) -> Result<SuperNet, WaError> {
        arch.validate()?;
        space.validate()?;
        // fixed parts use the first candidate's precision (paper keeps
        // non-searched layers at the network-wide precision)
        let fixed_quant: QuantConfig = space.candidates[0].quant;
        let conv = |name: &str, in_ch: usize, out_ch: usize, k: usize, rng: &mut SeededRng| {
            let spec = Conv2dSpec::builder(name)
                .in_channels(in_ch)
                .out_channels(out_ch)
                .kernel(k)
                .quant(fixed_quant)
                .build()?;
            Conv2d::from_spec(&spec, rng)
        };
        let bn = |name: &str, ch: usize| {
            BatchNorm2d::from_spec(&BatchNormSpec::builder(name).channels(ch).build()?)
        };
        let stem = conv("stem", 3, arch.stem_ch, 3, rng)?;
        let stem_bn = bn("stem_bn", arch.stem_ch)?;
        let mut blocks = Vec::new();
        let mut in_ch = arch.stem_ch;
        for (si, &(out_ch, nblocks, downsample)) in arch.stages.iter().enumerate() {
            for b in 0..nblocks {
                let name = format!("s{si}b{b}");
                let shortcut = if in_ch != out_ch {
                    Some((
                        conv(&format!("{name}.proj"), in_ch, out_ch, 1, rng)?,
                        bn(&format!("{name}.proj_bn"), out_ch)?,
                    ))
                } else {
                    None
                };
                blocks.push(SuperBlock {
                    bank1: Bank::new(&format!("{name}.c1"), in_ch, out_ch, space, rng)?,
                    bn1: bn(&format!("{name}.bn1"), out_ch)?,
                    bank2: Bank::new(&format!("{name}.c2"), out_ch, out_ch, space, rng)?,
                    bn2: bn(&format!("{name}.bn2"), out_ch)?,
                    shortcut,
                    downsample: downsample && b == 0,
                });
                in_ch = out_ch;
            }
        }
        let head = Linear::from_spec(
            &LinearSpec::builder("fc")
                .in_features(in_ch)
                .out_features(arch.classes)
                .quant(fixed_quant)
                .build()?,
            rng,
        )?;
        Ok(SuperNet {
            stem,
            stem_bn,
            blocks,
            head,
            arch: arch.clone(),
        })
    }

    /// The macro-architecture this supernet was built for.
    pub fn arch(&self) -> &MacroArch {
        &self.arch
    }

    /// Applies a full path selection (one candidate index per slot).
    ///
    /// # Panics
    ///
    /// Panics if `selection.len() != slot_count`.
    pub fn set_selection(&mut self, selection: &[usize]) {
        let mut banks = self.banks_mut();
        assert_eq!(selection.len(), banks.len(), "selection length mismatch");
        for (bank, &s) in banks.iter_mut().zip(selection) {
            bank.set_active(s);
        }
    }

    /// The banks in slot order.
    pub fn banks_mut(&mut self) -> Vec<&mut Bank> {
        let mut out = Vec::with_capacity(2 * self.blocks.len());
        for b in &mut self.blocks {
            out.push(&mut b.bank1);
            out.push(&mut b.bank2);
        }
        out
    }

    /// Current per-slot active algorithms (Figure 9 readout).
    pub fn active_algos(&self) -> Vec<ConvAlgo> {
        let mut out = Vec::with_capacity(2 * self.blocks.len());
        for b in &self.blocks {
            out.push(b.bank1.active_algo());
            out.push(b.bank2.active_algo());
        }
        out
    }
}

impl Layer for SuperNet {
    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        let mut h = self.stem.forward(tape, x, train);
        h = self.stem_bn.forward(tape, h, train);
        h = tape.relu(h);
        for b in &mut self.blocks {
            let x_in = if b.downsample { tape.max_pool2d(h) } else { h };
            let mut m = b.bank1.forward(tape, x_in, train);
            m = b.bn1.forward(tape, m, train);
            m = tape.relu(m);
            m = b.bank2.forward(tape, m, train);
            m = b.bn2.forward(tape, m, train);
            let s = match &mut b.shortcut {
                Some((proj, bn)) => {
                    let p = proj.forward(tape, x_in, train);
                    bn.forward(tape, p, train)
                }
                None => x_in,
            };
            let sum = tape.add(m, s);
            h = tape.relu(sum);
        }
        let pooled = tape.global_avg_pool(h);
        self.head.forward(tape, pooled, train)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem.visit_params(f);
        self.stem_bn.visit_params(f);
        for b in &mut self.blocks {
            b.bank1.visit_params(f);
            b.bn1.visit_params(f);
            b.bank2.visit_params(f);
            b.bn2.visit_params(f);
            if let Some((proj, bn)) = &mut b.shortcut {
                proj.visit_params(f);
                bn.visit_params(f);
            }
        }
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_quant::BitWidth;

    #[test]
    fn macro_arch_slot_inventory() {
        let arch = MacroArch::resnet18(10, 1.0, 32);
        assert_eq!(arch.slot_count(), 16);
        let shapes = arch.slot_shapes();
        assert_eq!(shapes.len(), 16);
        assert_eq!(shapes[0], LayerShape::square(32, 64, 32, 3));
        assert_eq!(shapes[15], LayerShape::square(512, 512, 4, 3));
    }

    #[test]
    fn supernet_forward_and_selection() {
        let mut rng = SeededRng::new(0);
        let arch = MacroArch::tiny(4, 8, 8);
        let space = SearchSpace::small(BitWidth::FP32);
        let mut net = SuperNet::new(&arch, &space, &mut rng).unwrap();
        assert_eq!(net.banks_mut().len(), 2);

        net.set_selection(&[0, 2]);
        assert_eq!(net.active_algos()[1], ConvAlgo::WinogradFlex { m: 4 });

        let mut tape = Tape::new();
        let x = tape.leaf(rng.uniform_tensor(&[2, 3, 8, 8], -1.0, 1.0));
        let y = net.forward(&mut tape, x, true);
        assert_eq!(tape.value(y).shape(), &[2, 4]);
    }

    #[test]
    fn different_selections_give_different_outputs() {
        let mut rng = SeededRng::new(1);
        let arch = MacroArch::tiny(3, 8, 8);
        let space = SearchSpace::small(BitWidth::FP32);
        let mut net = SuperNet::new(&arch, &space, &mut rng).unwrap();
        let x = rng.uniform_tensor(&[1, 3, 8, 8], -1.0, 1.0);
        let run = |net: &mut SuperNet, sel: &[usize], x: &wa_tensor::Tensor| {
            net.set_selection(sel);
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let y = net.forward(&mut tape, xv, false);
            tape.value(y).clone()
        };
        let a = run(&mut net, &[0, 0], &x);
        let b = run(&mut net, &[1, 1], &x);
        assert_ne!(a.data(), b.data(), "candidates have independent weights");
    }

    #[test]
    #[should_panic(expected = "selection length mismatch")]
    fn wrong_selection_length_panics() {
        let mut rng = SeededRng::new(2);
        let arch = MacroArch::tiny(2, 4, 8);
        let space = SearchSpace::small(BitWidth::FP32);
        let mut net = SuperNet::new(&arch, &space, &mut rng).unwrap();
        net.set_selection(&[0]);
    }
}
