//! Benchmark sweep drivers that regenerate Figure 7 and Figure 8.

use crate::cores::{Core, DType};
use crate::model::{conv_latency, LatAlgo, LatencyBreakdown, LayerShape};

/// The channel configurations of Figure 7's columns.
pub const FIGURE7_CHANNELS: [(usize, usize); 5] =
    [(3, 32), (32, 64), (128, 192), (192, 256), (256, 512)];

/// The output widths of Figure 7's rows.
pub const FIGURE7_WIDTHS: [usize; 12] = [2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24];

/// The algorithms of Figure 7's sub-columns.
pub const FIGURE7_ALGOS: [LatAlgo; 4] = [
    LatAlgo::Im2row,
    LatAlgo::Winograd { m: 2 },
    LatAlgo::Winograd { m: 4 },
    LatAlgo::Winograd { m: 6 },
];

/// One cell of the Figure 7 grid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepCell {
    /// Output width/height.
    pub out_w: usize,
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Algorithm.
    pub algo: LatAlgo,
    /// Modeled latency in ms.
    pub latency_ms: f64,
}

/// Runs the dense Figure 7 sweep on one core/precision.
pub fn figure7_sweep(core: Core, dtype: DType) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for &(in_ch, out_ch) in &FIGURE7_CHANNELS {
        for &ow in &FIGURE7_WIDTHS {
            for &algo in &FIGURE7_ALGOS {
                let shape = LayerShape::square(in_ch, out_ch, ow, 3);
                cells.push(SweepCell {
                    out_w: ow,
                    in_ch,
                    out_ch,
                    algo,
                    latency_ms: conv_latency(core, dtype, algo, shape).total_ms(),
                });
            }
        }
    }
    cells
}

/// The three ResNet-18 layer shapes of Figure 8.
pub const FIGURE8_SHAPES: [LayerShape; 3] = [
    LayerShape {
        in_ch: 3,
        out_ch: 32,
        out_h: 32,
        out_w: 32,
        kernel: 3,
    },
    LayerShape {
        in_ch: 128,
        out_ch: 128,
        out_h: 16,
        out_w: 16,
        kernel: 3,
    },
    LayerShape {
        in_ch: 256,
        out_ch: 256,
        out_h: 8,
        out_w: 8,
        kernel: 3,
    },
];

/// One bar of Figure 8: an algorithm's stage breakdown normalized by the
/// im2row latency of the same shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NormalizedBar {
    /// Layer shape.
    pub shape: LayerShape,
    /// Algorithm.
    pub algo: LatAlgo,
    /// Stage breakdown (ms).
    pub breakdown: LatencyBreakdown,
    /// Total relative to im2row on the same shape.
    pub ratio_vs_im2row: f64,
}

/// Regenerates Figure 8's normalized stacked bars for one core (FP32 with
/// default transforms, as the paper measures).
pub fn figure8_bars(core: Core) -> Vec<NormalizedBar> {
    let algos = [
        LatAlgo::Im2row,
        LatAlgo::Im2col,
        LatAlgo::Winograd { m: 2 },
        LatAlgo::Winograd { m: 4 },
        LatAlgo::Winograd { m: 6 },
    ];
    let mut bars = Vec::new();
    for &shape in &FIGURE8_SHAPES {
        let base = conv_latency(core, DType::Fp32, LatAlgo::Im2row, shape).total_ms();
        for &algo in &algos {
            let breakdown = conv_latency(core, DType::Fp32, algo, shape);
            bars.push(NormalizedBar {
                shape,
                algo,
                breakdown,
                ratio_vs_im2row: breakdown.total_ms() / base,
            });
        }
    }
    bars
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_grid_is_complete() {
        let cells = figure7_sweep(Core::CortexA73, DType::Fp32);
        assert_eq!(cells.len(), 5 * 12 * 4);
        assert!(cells.iter().all(|c| c.latency_ms > 0.0));
    }

    #[test]
    fn figure7_latency_monotone_in_outw_for_fixed_algo() {
        let cells = figure7_sweep(Core::CortexA73, DType::Fp32);
        // within one channel config and algorithm, latency grows with outW
        // allowing small non-monotonicity from tile-waste boundaries
        for &(ic, oc) in &FIGURE7_CHANNELS {
            let series: Vec<f64> = FIGURE7_WIDTHS
                .iter()
                .map(|&w| {
                    cells
                        .iter()
                        .find(|c| {
                            c.in_ch == ic
                                && c.out_ch == oc
                                && c.out_w == w
                                && c.algo == LatAlgo::Im2row
                        })
                        .unwrap()
                        .latency_ms
                })
                .collect();
            for pair in series.windows(2) {
                assert!(
                    pair[1] >= pair[0] * 0.95,
                    "im2row series must grow: {:?}",
                    series
                );
            }
        }
    }

    #[test]
    fn figure8_has_15_bars_and_im2row_ratio_one() {
        let bars = figure8_bars(Core::CortexA73);
        assert_eq!(bars.len(), 15);
        for b in bars.iter().filter(|b| b.algo == LatAlgo::Im2row) {
            assert!((b.ratio_vs_im2row - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn figure8_winograd_stem_ratio_above_one_mid_below() {
        let bars = figure8_bars(Core::CortexA73);
        let get = |shape_idx: usize, algo: LatAlgo| {
            bars.iter()
                .find(|b| b.shape == FIGURE8_SHAPES[shape_idx] && b.algo == algo)
                .unwrap()
                .ratio_vs_im2row
        };
        // stem: Winograd worse than im2row
        assert!(get(0, LatAlgo::Winograd { m: 4 }) > 1.0);
        // 128-ch mid layer: F4 clearly better on A73
        assert!(get(1, LatAlgo::Winograd { m: 4 }) < 0.8);
    }
}
