//! Network-level latency: per-layer algorithm/precision assignments summed
//! over a model's layer shapes (the quantity Table 3 reports and wiNAS
//! optimizes).

use crate::cores::{Core, DType};
use crate::model::{conv_latency_ms, LatAlgo, LayerShape};

/// One layer's deployment choice.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayerChoice {
    /// Geometry.
    pub shape: LayerShape,
    /// Algorithm.
    pub algo: LatAlgo,
    /// Precision.
    pub dtype: DType,
}

/// Sums per-layer latencies for a whole network configuration.
pub fn network_latency_ms(core: Core, layers: &[LayerChoice]) -> f64 {
    layers
        .iter()
        .map(|l| conv_latency_ms(core, l.dtype, l.algo, l.shape))
        .sum()
}

/// The 3×3-convolution layer shapes of the paper's ResNet-18 CIFAR
/// variant (stem + 16 block convs) at a given width multiplier and input
/// resolution. The stem is first; Table 3 and wiNAS fix it to im2row.
///
/// Downsampling halves the spatial size entering stages 2–4, matching the
/// max-pool placement of `wa-models::ResNet18`.
pub fn resnet18_shapes(width: f64, input: usize) -> Vec<LayerShape> {
    let w = |c: usize| ((c as f64 * width).round() as usize).max(1);
    let mut shapes = vec![LayerShape::square(3, w(32), input, 3)];
    let stages = [
        (w(64), input),
        (w(128), input / 2),
        (w(256), input / 4),
        (w(512), input / 8),
    ];
    let mut in_ch = w(32);
    for &(out_ch, size) in &stages {
        for _ in 0..2 {
            // each BasicBlock has two 3×3 convs
            shapes.push(LayerShape::square(in_ch, out_ch, size, 3));
            shapes.push(LayerShape::square(out_ch, out_ch, size, 3));
            in_ch = out_ch;
        }
    }
    shapes
}

/// Uniform network configuration helper: stem on im2row, everything else
/// on `algo`, all at `dtype`. `pin_last_f2` pins the last `k` layers to
/// F2 as in the paper's WAF4/WAF6 configurations.
pub fn uniform_config(
    shapes: &[LayerShape],
    algo: LatAlgo,
    dtype: DType,
    pin_last_f2: usize,
) -> Vec<LayerChoice> {
    let n = shapes.len();
    shapes
        .iter()
        .enumerate()
        .map(|(i, &shape)| {
            let a = if i == 0 {
                LatAlgo::Im2row
            } else if i + pin_last_f2 >= n && algo.tile_m().map(|m| m > 2).unwrap_or(false) {
                match algo {
                    LatAlgo::WinogradDense { .. } => LatAlgo::WinogradDense { m: 2 },
                    _ => LatAlgo::Winograd { m: 2 },
                }
            } else {
                algo
            };
            LayerChoice {
                shape,
                algo: a,
                dtype,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_shape_inventory() {
        let shapes = resnet18_shapes(1.0, 32);
        assert_eq!(shapes.len(), 17); // stem + 16
        assert_eq!(shapes[0], LayerShape::square(3, 32, 32, 3));
        assert_eq!(shapes[1], LayerShape::square(32, 64, 32, 3));
        assert_eq!(shapes[16], LayerShape::square(512, 512, 4, 3));
    }

    #[test]
    fn table3_orderings_hold_network_level() {
        // Network-level Table 3 shape on the A73 at FP32:
        // im2col > im2row > WF2 > WF4
        let shapes = resnet18_shapes(1.0, 32);
        let lat = |algo: LatAlgo, dtype: DType| {
            network_latency_ms(Core::CortexA73, &uniform_config(&shapes, algo, dtype, 4))
        };
        let im2row = lat(LatAlgo::Im2row, DType::Fp32);
        let im2col = lat(LatAlgo::Im2col, DType::Fp32);
        let wf2 = lat(LatAlgo::Winograd { m: 2 }, DType::Fp32);
        let wf4 = lat(LatAlgo::Winograd { m: 4 }, DType::Fp32);
        assert!(im2col > im2row, "im2col {} vs im2row {}", im2col, im2row);
        assert!(im2row > wf2, "im2row {} vs WF2 {}", im2row, wf2);
        assert!(wf2 > wf4, "WF2 {} vs WF4 {}", wf2, wf4);
        // speedups in the right ballpark (paper: 1.52× and 1.85×)
        assert!(
            (1.2..2.2).contains(&(im2row / wf2)),
            "WF2 speedup {}",
            im2row / wf2
        );
        assert!(
            (1.4..2.6).contains(&(im2row / wf4)),
            "WF4 speedup {}",
            im2row / wf4
        );
    }

    #[test]
    fn int8_waf4_beats_fp32_im2row_by_large_margin_on_a73() {
        // Table 3: WAF4 INT8 (dense transforms) is 2.43× vs FP32 im2row
        let shapes = resnet18_shapes(1.0, 32);
        let base = network_latency_ms(
            Core::CortexA73,
            &uniform_config(&shapes, LatAlgo::Im2row, DType::Fp32, 0),
        );
        let waf4 = network_latency_ms(
            Core::CortexA73,
            &uniform_config(&shapes, LatAlgo::WinogradDense { m: 4 }, DType::Int8, 4),
        );
        let speedup = base / waf4;
        assert!(
            (1.8..3.2).contains(&speedup),
            "WAF4-INT8 speedup {}",
            speedup
        );
    }

    #[test]
    fn a53_f2_fp32_not_faster_than_im2row() {
        // Table 3 quirk: on the A53 at FP32, WF2 (126 ms) loses to
        // im2row (118 ms) — transforms are memory-bound on the little core.
        let shapes = resnet18_shapes(1.0, 32);
        let im2row = network_latency_ms(
            Core::CortexA53,
            &uniform_config(&shapes, LatAlgo::Im2row, DType::Fp32, 0),
        );
        let wf2 = network_latency_ms(
            Core::CortexA53,
            &uniform_config(&shapes, LatAlgo::Winograd { m: 2 }, DType::Fp32, 0),
        );
        assert!(
            wf2 > 0.9 * im2row,
            "A53 WF2 {} should not decisively beat im2row {}",
            wf2,
            im2row
        );
    }
}
