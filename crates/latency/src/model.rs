//! The analytical convolution latency model.
//!
//! Every algorithm is decomposed into the stages the paper instruments
//! (Figure 8): lowering/input transform, the main GEMM (element-wise GEMM
//! stage for Winograd), and output transform. Each stage pays an
//! arithmetic term (MACs over an efficiency-discounted peak), a memory
//! term (bytes over sustained bandwidth) and per-GEMM-call overhead, and
//! the slower of compute/memory dominates (roofline).

use crate::cores::{Core, DType};

/// One convolution layer's geometry (stride 1; the paper's Winograd
/// networks replace strides with pooling).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LayerShape {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
    /// Filter size `r` (3 or 5).
    pub kernel: usize,
}

impl LayerShape {
    /// Square-output helper.
    pub fn square(in_ch: usize, out_ch: usize, out: usize, kernel: usize) -> LayerShape {
        LayerShape {
            in_ch,
            out_ch,
            out_h: out,
            out_w: out,
            kernel,
        }
    }
}

/// Convolution algorithm whose latency is being modeled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LatAlgo {
    /// Row-lowering + one large GEMM.
    Im2row,
    /// Column-lowering (extra transposed copy; consistently slower than
    /// im2row in the paper's Table 3).
    Im2col,
    /// Winograd `F(m×m, r×r)` with sparse canonical transforms.
    Winograd {
        /// Output tile size.
        m: usize,
    },
    /// Winograd with dense *learned* transforms (the `-flex` deployment
    /// penalty of Appendix A.2).
    WinogradDense {
        /// Output tile size.
        m: usize,
    },
}

impl LatAlgo {
    /// Tile size if Winograd.
    pub fn tile_m(self) -> Option<usize> {
        match self {
            LatAlgo::Winograd { m } | LatAlgo::WinogradDense { m } => Some(m),
            _ => None,
        }
    }
}

impl std::fmt::Display for LatAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LatAlgo::Im2row => write!(f, "im2row"),
            LatAlgo::Im2col => write!(f, "im2col"),
            LatAlgo::Winograd { m } => write!(f, "F{}", m),
            LatAlgo::WinogradDense { m } => write!(f, "F{}†", m),
        }
    }
}

/// Per-stage latency decomposition in milliseconds (Figure 8's stacked
/// bars).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyBreakdown {
    /// Lowering (im2row/im2col) or Winograd input transform `BᵀdB`.
    pub input_stage_ms: f64,
    /// Main GEMM (im2row) or element-wise per-coordinate GEMM (Winograd).
    pub gemm_ms: f64,
    /// Winograd output transform `AᵀyA` (zero for lowering algorithms).
    pub output_stage_ms: f64,
}

impl LatencyBreakdown {
    /// Total latency.
    pub fn total_ms(&self) -> f64 {
        self.input_stage_ms + self.gemm_ms + self.output_stage_ms
    }

    /// Fraction of the total spent in transforms (the quantity the paper
    /// reports as 25–75%, §6.2).
    pub fn transform_fraction(&self) -> f64 {
        let t = self.total_ms();
        if t <= 0.0 {
            0.0
        } else {
            (self.input_stage_ms + self.output_stage_ms) / t
        }
    }
}

/// Work fraction of the canonical (sparse) transforms relative to dense:
/// Arm Compute Library's transform kernels skip the zero entries of the
/// published matrices, so canonical transforms execute only this share of
/// a dense transform's loads and multiplies.
fn canonical_density(m: usize) -> f64 {
    match m {
        2 => 0.55, // F2: Bᵀ 50% zeros, G 33%, Aᵀ 25%
        4 => 0.70,
        _ => 0.80,
    }
}

/// Stage-level factor for *learned* transforms, which are dense
/// (Appendix A.2): the whole transform stage — arithmetic, per-tile
/// overhead and traffic — grows by the inverse canonical density. The F2
/// penalty is the largest because its canonical transforms are binary and
/// very sparse, exactly as the paper notes.
fn dense_stage_factor(algo: LatAlgo, m: usize) -> f64 {
    match algo {
        LatAlgo::WinogradDense { .. } => 1.0 / canonical_density(m),
        _ => 1.0,
    }
}

/// Saturating GEMM efficiency in `(0, 1)`: small dimensions underfill the
/// SIMD lanes and register tiles.
fn gemm_eff(m: f64, k: f64, n: f64) -> f64 {
    let s = |x: f64, h: f64| x / (x + h);
    s(m, 6.0) * s(k, 6.0) * s(n, 8.0)
}

/// Latency of one convolution layer (batch 1) on `core` at `dtype` using
/// `algo`.
///
/// # Panics
///
/// Panics for Winograd tiles with `m == 0`.
pub fn conv_latency(
    core: Core,
    dtype: DType,
    algo: LatAlgo,
    shape: LayerShape,
) -> LatencyBreakdown {
    let spec = core.spec();
    let peak = core.peak_macs(dtype);
    let cycles_to_ms = 1.0 / (spec.clock_ghz * 1e6);
    let bytes = dtype.bytes();
    let (c, k, oh, ow, r) = (
        shape.in_ch as f64,
        shape.out_ch as f64,
        shape.out_h as f64,
        shape.out_w as f64,
        shape.kernel as f64,
    );

    match algo {
        LatAlgo::Im2row | LatAlgo::Im2col => {
            // lowering: write the M×K patch matrix, read the input
            let gm = oh * ow;
            let gk = c * r * r;
            let gn = k;
            let mut lower_bytes = bytes * (gm * gk + c * (oh + r) * (ow + r));
            if algo == LatAlgo::Im2col {
                // extra transposed copy of the patch matrix
                lower_bytes += 6.0 * bytes * gm * gk;
            }
            // strided patch writes run well below streaming bandwidth
            let lower_cycles = lower_bytes / (0.55 * spec.bytes_per_cycle);

            let macs = gm * gk * gn;
            let compute = macs / (peak * gemm_eff(gm, gk, gn));
            let traffic = bytes * (gm * gk + gk * gn + gm * gn) / spec.bytes_per_cycle;
            let gemm_cycles = compute.max(traffic) + spec.gemm_call_overhead;

            LatencyBreakdown {
                input_stage_ms: lower_cycles * cycles_to_ms,
                gemm_ms: gemm_cycles * cycles_to_ms,
                output_stage_ms: 0.0,
            }
        }
        LatAlgo::Winograd { m } | LatAlgo::WinogradDense { m } => {
            assert!(m > 0, "Winograd tile m must be positive");
            let n = (m + shape.kernel - 1) as f64;
            let tiles = (oh / m as f64).ceil() * (ow / m as f64).ceil();
            let density = canonical_density(m);
            let dense_factor = dense_stage_factor(algo, m);
            let tile_ovh = spec.tile_overhead * (0.4 + 0.6 * bytes / 4.0);

            // input transform: two one-sided n×n products per (tile, ch)
            let in_macs = tiles * c * 2.0 * n * n * n * density;
            let in_bytes = bytes * tiles * c * (3.0 * n * n);
            let in_cycles = ((in_macs / (peak * spec.transform_eff))
                .max(in_bytes / spec.bytes_per_cycle)
                + tiles * c * tile_ovh)
                * dense_factor;

            // element-wise GEMM stage: n² GEMMs of K×C · C×T
            let had_macs = n * n * k * c * tiles;
            let had_eff = gemm_eff(k, c, tiles);
            let had_compute = had_macs / (peak * had_eff);
            let had_bytes = bytes * n * n * (k * c + c * tiles + k * tiles);
            let had_cycles =
                had_compute.max(had_bytes / spec.bytes_per_cycle) + n * n * spec.gemm_call_overhead;

            // output transform: per (tile, K): Aᵀ·Y (m·n·n) then ·A (m·m·n)
            let out_macs = tiles * k * (m as f64 * n * n + m as f64 * m as f64 * n) * density;
            let out_bytes = bytes * tiles * k * (n * n + 2.0 * m as f64 * m as f64);
            let out_cycles = ((out_macs / (peak * spec.transform_eff))
                .max(out_bytes / spec.bytes_per_cycle)
                + tiles * k * tile_ovh)
                * dense_factor;

            LatencyBreakdown {
                input_stage_ms: in_cycles * cycles_to_ms,
                gemm_ms: had_cycles * cycles_to_ms,
                output_stage_ms: out_cycles * cycles_to_ms,
            }
        }
    }
}

/// Total latency in ms (convenience wrapper over [`conv_latency`]).
pub fn conv_latency_ms(core: Core, dtype: DType, algo: LatAlgo, shape: LayerShape) -> f64 {
    conv_latency(core, dtype, algo, shape).total_ms()
}

#[cfg(test)]
mod tests {
    use super::*;

    const A73: Core = Core::CortexA73;
    const A53: Core = Core::CortexA53;

    fn ms(core: Core, dtype: DType, algo: LatAlgo, shape: LayerShape) -> f64 {
        conv_latency_ms(core, dtype, algo, shape)
    }

    #[test]
    fn input_layer_favors_im2row() {
        // Figure 7 column 1 / §6.2: "Input layers do not benefit from
        // Winograd" — 3→32 channels at 32×32.
        let s = LayerShape::square(3, 32, 32, 3);
        let im2row = ms(A73, DType::Fp32, LatAlgo::Im2row, s);
        for m in [2usize, 4, 6] {
            let w = ms(A73, DType::Fp32, LatAlgo::Winograd { m }, s);
            assert!(
                im2row < w,
                "im2row {} must beat F{} {} on the stem",
                im2row,
                m,
                w
            );
        }
    }

    #[test]
    fn stem_transform_fraction_is_dominant() {
        // §6.2: transforms are up to 65% (A73) / 75% (A53) of the stem cost
        let s = LayerShape::square(3, 32, 32, 3);
        let b73 = conv_latency(A73, DType::Fp32, LatAlgo::Winograd { m: 4 }, s);
        assert!(
            b73.transform_fraction() > 0.5,
            "A73 stem tf {}",
            b73.transform_fraction()
        );
        let b53 = conv_latency(A53, DType::Fp32, LatAlgo::Winograd { m: 4 }, s);
        assert!(
            b53.transform_fraction() > 0.55,
            "A53 stem tf {}",
            b53.transform_fraction()
        );
    }

    #[test]
    fn mid_layer_winograd_wins_on_a73() {
        // 128→128 @16×16 (Figure 8 middle group): F2/F4 beat im2row on A73
        let s = LayerShape::square(128, 128, 16, 3);
        let im2row = ms(A73, DType::Fp32, LatAlgo::Im2row, s);
        let f2 = ms(A73, DType::Fp32, LatAlgo::Winograd { m: 2 }, s);
        let f4 = ms(A73, DType::Fp32, LatAlgo::Winograd { m: 4 }, s);
        assert!(f2 < im2row, "F2 {} vs im2row {}", f2, im2row);
        assert!(f4 < f2, "F4 {} vs F2 {}", f4, f2);
    }

    #[test]
    fn im2col_slower_than_im2row() {
        for core in [A73, A53] {
            let s = LayerShape::square(64, 64, 16, 3);
            assert!(
                ms(core, DType::Fp32, LatAlgo::Im2col, s)
                    > ms(core, DType::Fp32, LatAlgo::Im2row, s)
            );
        }
    }

    #[test]
    fn f6_wins_for_large_inputs() {
        // §6.2: "fades away as input dimensions exceed 40×40, where F6
        // consistently becomes the fastest"
        let s = LayerShape::square(64, 64, 48, 3);
        let f4 = ms(A73, DType::Fp32, LatAlgo::Winograd { m: 4 }, s);
        let f6 = ms(A73, DType::Fp32, LatAlgo::Winograd { m: 6 }, s);
        assert!(f6 < f4, "F6 {} must beat F4 {} at 48×48", f6, f4);
    }

    #[test]
    fn tile_waste_creates_f4_f6_alternation() {
        // §6.2: optimal m alternates with output width due to ceil
        // division. At outW=12 (divisible by 4 and 6) compare with
        // outW=14 (waste for both, worse for F6 which jumps to 18).
        let best = |ow: usize| -> usize {
            let s = LayerShape {
                in_ch: 64,
                out_ch: 64,
                out_h: ow,
                out_w: ow,
                kernel: 3,
            };
            [2usize, 4, 6]
                .into_iter()
                .min_by(|&a, &b| {
                    ms(A73, DType::Fp32, LatAlgo::Winograd { m: a }, s)
                        .partial_cmp(&ms(A73, DType::Fp32, LatAlgo::Winograd { m: b }, s))
                        .unwrap()
                })
                .unwrap()
        };
        // the winner must change somewhere across this sweep
        let winners: Vec<usize> = (6..=24).step_by(2).map(best).collect();
        let first = winners[0];
        assert!(
            winners.iter().any(|&w| w != first),
            "optimal m should alternate with output width, got {:?}",
            winners
        );
    }

    #[test]
    fn int8_speedup_larger_on_a73_than_a53() {
        // Table 3: im2row FP32→INT8 is 85→54 on A73 (1.57×) but
        // 118→117 on A53 (1.01×).
        let s = LayerShape::square(128, 128, 16, 3);
        let a73_gain =
            ms(A73, DType::Fp32, LatAlgo::Im2row, s) / ms(A73, DType::Int8, LatAlgo::Im2row, s);
        let a53_gain =
            ms(A53, DType::Fp32, LatAlgo::Im2row, s) / ms(A53, DType::Int8, LatAlgo::Im2row, s);
        assert!(a73_gain > 1.3, "A73 INT8 gain {}", a73_gain);
        assert!(
            a53_gain < a73_gain,
            "A53 gain {} must trail A73 {}",
            a53_gain,
            a73_gain
        );
    }

    #[test]
    fn dense_learned_transforms_cost_more() {
        // Appendix A.2: +17% (FP32) / +20% (INT8) worst case for WAF4
        let s = LayerShape::square(128, 128, 16, 3);
        for dtype in [DType::Fp32, DType::Int8] {
            let sparse = ms(A73, dtype, LatAlgo::Winograd { m: 4 }, s);
            let dense = ms(A73, dtype, LatAlgo::WinogradDense { m: 4 }, s);
            assert!(
                dense > sparse,
                "dense {} must exceed sparse {}",
                dense,
                sparse
            );
            assert!(
                dense / sparse < 1.6,
                "dense overhead too large: {}",
                dense / sparse
            );
        }
    }

    #[test]
    fn winograd_advantage_smaller_on_a53() {
        // §6.2: "On A53, the speedups from FP32 Winograd convolutions are
        // smaller than on A73"
        let s = LayerShape::square(128, 128, 16, 3);
        let gain = |core: Core| {
            ms(core, DType::Fp32, LatAlgo::Im2row, s)
                / ms(core, DType::Fp32, LatAlgo::Winograd { m: 4 }, s)
        };
        assert!(
            gain(A73) > gain(A53),
            "A73 {} vs A53 {}",
            gain(A73),
            gain(A53)
        );
    }

    #[test]
    fn tiny_outputs_prefer_im2row() {
        // Figure 7 outW=2 row: im2row 0.007ms < F2 0.008 < F4 < F6
        let s = LayerShape::square(32, 64, 2, 3);
        let i = ms(A73, DType::Fp32, LatAlgo::Im2row, s);
        let f2 = ms(A73, DType::Fp32, LatAlgo::Winograd { m: 2 }, s);
        let f6 = ms(A73, DType::Fp32, LatAlgo::Winograd { m: 6 }, s);
        assert!(i < f2 && f2 < f6, "{} {} {}", i, f2, f6);
    }

    #[test]
    fn latencies_scale_with_work() {
        let small = LayerShape::square(32, 32, 8, 3);
        let big = LayerShape::square(256, 256, 24, 3);
        for algo in [LatAlgo::Im2row, LatAlgo::Winograd { m: 4 }] {
            assert!(
                ms(A73, DType::Fp32, algo, big) > 10.0 * ms(A73, DType::Fp32, algo, small),
                "{:?}",
                algo
            );
        }
    }
}

#[cfg(test)]
mod calibration {
    use super::*;
    use crate::network::{network_latency_ms, resnet18_shapes, uniform_config};

    /// Prints the Table 3 analog for manual calibration:
    /// `cargo test -p wa-latency calibration_dump -- --ignored --nocapture`
    #[test]
    #[ignore = "manual calibration aid"]
    fn calibration_dump() {
        let shapes = resnet18_shapes(1.0, 32);
        for core in [Core::CortexA73, Core::CortexA53] {
            for dtype in [DType::Fp32, DType::Int8] {
                let lat = |algo: LatAlgo, pin: usize| {
                    network_latency_ms(core, &uniform_config(&shapes, algo, dtype, pin))
                };
                println!(
                    "{core} {dtype}: im2row {:7.1} im2col {:7.1} WF2 {:7.1} WF4 {:7.1} WF4d {:7.1} WF6 {:7.1}",
                    lat(LatAlgo::Im2row, 0),
                    lat(LatAlgo::Im2col, 0),
                    lat(LatAlgo::Winograd { m: 2 }, 0),
                    lat(LatAlgo::Winograd { m: 4 }, 4),
                    lat(LatAlgo::WinogradDense { m: 4 }, 4),
                    lat(LatAlgo::Winograd { m: 6 }, 4),
                );
            }
        }
        // stem breakdown
        let stem = LayerShape::square(3, 32, 32, 3);
        for core in [Core::CortexA73, Core::CortexA53] {
            let b = conv_latency(core, DType::Fp32, LatAlgo::Winograd { m: 4 }, stem);
            println!(
                "{core} stem F4: tf_frac {:.2} total {:.3}ms",
                b.transform_fraction(),
                b.total_ms()
            );
        }
    }
}
