//! Core descriptions and calibrated machine parameters.

/// The two HiKey 960 big.LITTLE cores the paper benchmarks (Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Core {
    /// High-performance out-of-order core: 2.4 GHz, 64 KB L1, 2048 KB L2.
    CortexA73,
    /// High-efficiency in-order core: 1.8 GHz, 32 KB L1, 512 KB L2.
    CortexA53,
}

/// Arithmetic precision of a deployed kernel. The paper measures FP32 and
/// INT8 ("INT16 measurements are not currently supported in Arm Compute
/// Library", §5.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit float.
    Fp32,
    /// 16-bit integer (not measurable in Arm Compute Library at the time
    /// of the paper, §5.3; modeled by interpolation for wiNAS-Q).
    Int16,
    /// 8-bit integer.
    Int8,
}

impl DType {
    /// Bytes per element.
    pub fn bytes(self) -> f64 {
        match self {
            DType::Fp32 => 4.0,
            DType::Int16 => 2.0,
            DType::Int8 => 1.0,
        }
    }
}

impl std::fmt::Display for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Core::CortexA73 => write!(f, "Cortex-A73"),
            Core::CortexA53 => write!(f, "Cortex-A53"),
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DType::Fp32 => write!(f, "FP32"),
            DType::Int16 => write!(f, "INT16"),
            DType::Int8 => write!(f, "INT8"),
        }
    }
}

/// Machine parameters of one core, calibrated against the paper's
/// published measurements (Figure 7/8, Table 3). See `DESIGN.md` for the
/// substitution rationale: we model, rather than measure, the HiKey 960.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoreSpec {
    /// Core name.
    pub name: &'static str,
    /// Clock in GHz (Table 2).
    pub clock_ghz: f64,
    /// L1 data cache in KiB (Table 2).
    pub l1_kb: usize,
    /// L2 cache in KiB (Table 2).
    pub l2_kb: usize,
    /// Peak FP32 multiply–accumulates per cycle (NEON width × issue).
    pub peak_macs_fp32: f64,
    /// Peak INT8 MACs per cycle. The A73 gains ~2× from 8-bit dot
    /// products; the in-order A53 is bandwidth-bound and gains little
    /// (Table 3: im2row 118 → 117 ms).
    pub peak_macs_int8: f64,
    /// Sustained memory bandwidth in bytes per cycle (drives transform
    /// and lowering stages, which are gather/scatter bound).
    pub bytes_per_cycle: f64,
    /// Fixed overhead per GEMM call in cycles (packing, dispatch). The
    /// per-coordinate formulation issues `n²` small GEMMs per Winograd
    /// layer, so this term penalizes large tiles at small spatial sizes —
    /// producing Figure 7's "im2row wins small outputs" region.
    pub gemm_call_overhead: f64,
    /// Efficiency factor for transform-stage arithmetic relative to peak
    /// (strided access patterns; "gather and scatter across a wide area
    /// of memory", Appendix A.2).
    pub transform_eff: f64,
    /// Fixed cycles per transformed tile-channel (index arithmetic plus
    /// the cache-miss cost of gathering/scattering one tile).
    pub tile_overhead: f64,
}

impl Core {
    /// Calibrated parameters for this core.
    pub fn spec(self) -> CoreSpec {
        match self {
            Core::CortexA73 => CoreSpec {
                name: "Cortex-A73",
                clock_ghz: 2.4,
                l1_kb: 64,
                l2_kb: 2048,
                peak_macs_fp32: 3.4,
                peak_macs_int8: 5.4,
                bytes_per_cycle: 8.0,
                gemm_call_overhead: 2500.0,
                transform_eff: 0.42,
                tile_overhead: 60.0,
            },
            Core::CortexA53 => CoreSpec {
                name: "Cortex-A53",
                clock_ghz: 1.8,
                l1_kb: 32,
                l2_kb: 512,
                peak_macs_fp32: 2.0,
                // A53 lacks wide 8-bit dot product issue; GEMM gains are
                // modest and the memory system dominates.
                peak_macs_int8: 2.05,
                bytes_per_cycle: 3.0,
                gemm_call_overhead: 3500.0,
                transform_eff: 0.30,
                tile_overhead: 420.0,
            },
        }
    }

    /// Peak MACs/cycle at a precision.
    pub fn peak_macs(self, dtype: DType) -> f64 {
        let s = self.spec();
        match dtype {
            DType::Fp32 => s.peak_macs_fp32,
            // 16-bit sits between the float and 8-bit pipelines
            DType::Int16 => 0.5 * (s.peak_macs_fp32 + s.peak_macs_int8),
            DType::Int8 => s.peak_macs_int8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_specs() {
        let a73 = Core::CortexA73.spec();
        assert_eq!(a73.clock_ghz, 2.4);
        assert_eq!((a73.l1_kb, a73.l2_kb), (64, 2048));
        let a53 = Core::CortexA53.spec();
        assert_eq!(a53.clock_ghz, 1.8);
        assert_eq!((a53.l1_kb, a53.l2_kb), (32, 512));
    }

    #[test]
    fn a73_outclasses_a53() {
        let (a73, a53) = (Core::CortexA73.spec(), Core::CortexA53.spec());
        assert!(a73.peak_macs_fp32 > a53.peak_macs_fp32);
        assert!(a73.bytes_per_cycle > a53.bytes_per_cycle);
    }

    #[test]
    fn int8_gain_larger_on_a73() {
        let gain_a73 =
            Core::CortexA73.peak_macs(DType::Int8) / Core::CortexA73.peak_macs(DType::Fp32);
        let gain_a53 =
            Core::CortexA53.peak_macs(DType::Int8) / Core::CortexA53.peak_macs(DType::Fp32);
        // calibrated to Table 3: im2row FP32→INT8 is 1.57× on A73, 1.01× on A53
        assert!(
            gain_a73 > 1.4 && gain_a53 < 1.2,
            "{} vs {}",
            gain_a73,
            gain_a53
        );
    }
}
