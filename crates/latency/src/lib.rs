//! # wa-latency
//!
//! An analytical latency model of GEMM-based convolutions on the Arm
//! Cortex-A73 and Cortex-A53 cores of the HiKey 960 board the paper
//! benchmarks (its §5.3/§6.2).
//!
//! **Substitution notice** (see `DESIGN.md`): the paper measures real
//! hardware; this environment has none, so we model it — a roofline per
//! pipeline stage (arithmetic vs memory traffic, plus per-GEMM-call
//! overheads), with parameters calibrated so the paper's published
//! *orderings and ratios* hold: im2row wins the input layer; F4/F6
//! alternate with output width via tile waste; F6 dominates ≥40×40;
//! transforms cost 25–75%; INT8 helps the A73 far more than the A53;
//! learned dense transforms add the Appendix A.2 penalty. wiNAS and
//! Table 3 consume exactly the interface the paper's measurements
//! provided: `(shape, algorithm, precision, core) → milliseconds`.
//!
//! # Example
//!
//! ```
//! use wa_latency::{conv_latency_ms, Core, DType, LatAlgo, LayerShape};
//!
//! let shape = LayerShape::square(128, 128, 16, 3);
//! let im2row = conv_latency_ms(Core::CortexA73, DType::Fp32, LatAlgo::Im2row, shape);
//! let f4 = conv_latency_ms(Core::CortexA73, DType::Fp32, LatAlgo::Winograd { m: 4 }, shape);
//! assert!(f4 < im2row); // Winograd wins mid-network layers on the A73
//! ```

mod cores;
mod model;
mod network;
mod sweep;

pub use cores::{Core, CoreSpec, DType};
pub use model::{conv_latency, conv_latency_ms, LatAlgo, LatencyBreakdown, LayerShape};
pub use network::{network_latency_ms, resnet18_shapes, uniform_config, LayerChoice};
pub use sweep::{
    figure7_sweep, figure8_bars, NormalizedBar, SweepCell, FIGURE7_ALGOS, FIGURE7_CHANNELS,
    FIGURE7_WIDTHS, FIGURE8_SHAPES,
};
