//! The workspace-wide fallible-construction error type.

use std::fmt;

/// Error type shared by every spec builder, fallible constructor and
/// checked forward path in the workspace.
///
/// A serving system must *reject* an invalid layer configuration with a
/// diagnosable error rather than abort the process, so every `*Spec`
/// builder (`Conv2dSpec`, `LinearSpec`, `BatchNormSpec`, `ConvSpec`,
/// `ModelSpec`) returns `Result<_, WaError>` and every paper constraint
/// (nonzero dims, Winograd ⇒ stride 1, odd kernel, supported tile sizes)
/// maps to a variant here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaError {
    /// A spec field has an invalid value (zero channels, even kernel for
    /// Winograd, non-positive width multiplier, …).
    InvalidSpec {
        /// Which spec type was being built (e.g. `"ConvSpec"`).
        spec: &'static str,
        /// The offending field.
        field: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// Tensor shapes disagree (checked forward paths, weight imports,
    /// per-layer assignment lists of the wrong length).
    ShapeMismatch {
        /// Where the mismatch was detected.
        context: String,
        /// The shape the operation required.
        expected: Vec<usize>,
        /// The shape it received.
        found: Vec<usize>,
    },
    /// The requested convolution algorithm is outside the supported set
    /// (e.g. a Winograd tile size the paper never uses).
    UnsupportedAlgo {
        /// Display form of the algorithm (e.g. `"F3-flex"`).
        algo: String,
        /// Why it is unsupported.
        reason: String,
    },
}

impl WaError {
    /// Convenience constructor for [`WaError::InvalidSpec`].
    pub fn invalid(spec: &'static str, field: &'static str, reason: impl Into<String>) -> WaError {
        WaError::InvalidSpec {
            spec,
            field,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`WaError::ShapeMismatch`].
    pub fn shape(context: impl Into<String>, expected: &[usize], found: &[usize]) -> WaError {
        WaError::ShapeMismatch {
            context: context.into(),
            expected: expected.to_vec(),
            found: found.to_vec(),
        }
    }

    /// Convenience constructor for [`WaError::UnsupportedAlgo`].
    pub fn unsupported(algo: impl fmt::Display, reason: impl Into<String>) -> WaError {
        WaError::UnsupportedAlgo {
            algo: algo.to_string(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for WaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaError::InvalidSpec {
                spec,
                field,
                reason,
            } => {
                write!(f, "invalid {spec}: field `{field}`: {reason}")
            }
            WaError::ShapeMismatch {
                context,
                expected,
                found,
            } => {
                write!(
                    f,
                    "shape mismatch in {context}: expected {expected:?}, found {found:?}"
                )
            }
            WaError::UnsupportedAlgo { algo, reason } => {
                write!(f, "unsupported algorithm {algo}: {reason}")
            }
        }
    }
}

impl std::error::Error for WaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = WaError::invalid("ConvSpec", "in_channels", "must be nonzero");
        assert_eq!(
            e.to_string(),
            "invalid ConvSpec: field `in_channels`: must be nonzero"
        );
    }

    #[test]
    fn display_shows_shapes() {
        let e = WaError::shape("Conv2d `c`", &[1, 3, 8, 8], &[1, 4, 8, 8]);
        assert!(e.to_string().contains("[1, 3, 8, 8]"));
        assert!(e.to_string().contains("[1, 4, 8, 8]"));
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(WaError::unsupported("F3", "m must be even"));
        assert!(e.to_string().contains("F3"));
    }
}
