//! The binary checkpoint container: a GGUF-style single-file format
//! that makes loading a model a read plus near-zero parse, instead of
//! millions of floats decoded from JSON text.
//!
//! # Wire layout
//!
//! All integers are little-endian. The file is one contiguous run of
//! four sections followed by a trailing checksum:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header      magic "WACK" (4) · version u32 (4)               │
//! ├──────────────────────────────────────────────────────────────┤
//! │ metadata    count u32, then per entry:                       │
//! │             key_len u32 · key (UTF-8) · val_len u32 · value  │
//! ├──────────────────────────────────────────────────────────────┤
//! │ blob table  count u32, then per blob:                        │
//! │             name_len u32 · name (UTF-8) · dtype u8           │
//! │             ndim u32 · dims u64 × ndim                       │
//! │             scale_count u32 · scales f32 × count             │
//! │             offset u64 (absolute, 64-aligned) · byte_len u64 │
//! ├──────────────────────────────────────────────────────────────┤
//! │ blob data   each blob starts on a 64-byte boundary;          │
//! │             gaps are zero padding                            │
//! ├──────────────────────────────────────────────────────────────┤
//! │ checksum    FNV-1a 64 over every preceding byte, u64         │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! # Dtype and alignment rules
//!
//! * dtype tag `0` = `f32` (4 bytes/element, **no** scales) — the
//!   lossless encoding of a [`Tensor`]'s values.
//! * dtype tag `1` = `i8` (1 byte/element) with **1** scale
//!   (per-tensor) or **`dims[0]`** scales (per-first-dimension);
//!   reading dequantizes to `f32` as `value × scale`.
//! * Every blob's `offset` is 64-byte aligned so a reader can map
//!   blobs straight into SIMD-friendly buffers, and `byte_len` must
//!   equal `Π dims × sizeof(dtype)` exactly.
//!
//! # Validation contract
//!
//! [`Container::from_bytes`] is a *bounded, fully-validated* parser:
//! every declared count and length is checked against the bytes that
//! actually remain **before** anything is allocated, so a malformed or
//! adversarial input yields a structured
//! [`CheckpointError::Container`] naming the offending field — never a
//! panic and never an allocation larger than the input itself. The
//! checksum is verified *after* structural validation so a corrupted
//! section reports its specific field, and flipped bytes inside blob
//! data (structurally invisible) still fail the whole-file checksum.

use std::collections::BTreeMap;

use wa_tensor::Tensor;

use crate::checkpoint::{quant_site_path, CheckpointError, FullCheckpoint, QuantSiteState};

/// The four magic bytes every container starts with.
pub const CONTAINER_MAGIC: [u8; 4] = *b"WACK";

/// The format version this module writes and reads.
pub const CONTAINER_VERSION: u32 = 1;

/// Blob data alignment: every blob's file offset is a multiple of this.
pub const CONTAINER_ALIGN: usize = 64;

/// Bytes of the trailing whole-file checksum.
const CHECKSUM_LEN: usize = 8;

/// Smallest possible blob-table entry (empty name, zero dims/scales):
/// name_len + dtype + ndim + scale_count + offset + byte_len.
const MIN_BLOB_ENTRY: usize = 4 + 1 + 4 + 4 + 8 + 8;

/// Smallest possible metadata entry (empty key and value).
const MIN_META_ENTRY: usize = 4 + 4;

/// FNV-1a 64 over `bytes` — the trailing whole-file checksum.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Element type of one stored blob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlobDtype {
    /// 32-bit float, 4 bytes per element, no scales.
    F32,
    /// Signed 8-bit integer with dequantization scales.
    I8,
}

impl BlobDtype {
    /// The on-disk tag byte.
    pub fn tag(self) -> u8 {
        match self {
            BlobDtype::F32 => 0,
            BlobDtype::I8 => 1,
        }
    }

    /// Bytes per element.
    pub fn size(self) -> usize {
        match self {
            BlobDtype::F32 => 4,
            BlobDtype::I8 => 1,
        }
    }

    fn from_tag(tag: u8) -> Option<BlobDtype> {
        match tag {
            0 => Some(BlobDtype::F32),
            1 => Some(BlobDtype::I8),
            _ => None,
        }
    }
}

/// Decoded values of one blob.
#[derive(Clone, Debug, PartialEq)]
pub enum BlobData {
    /// `f32` elements, row-major.
    F32(Vec<f32>),
    /// `i8` elements, row-major (see [`Blob::scales`]).
    I8(Vec<i8>),
}

/// One named tensor blob of a container.
#[derive(Clone, Debug, PartialEq)]
pub struct Blob {
    /// Parameter name (`conv1.weight`, …).
    pub name: String,
    /// Element type.
    pub dtype: BlobDtype,
    /// Row-major shape.
    pub shape: Vec<usize>,
    /// Dequantization scales: empty for `f32`, one per tensor or one
    /// per `shape[0]` slice for `i8`.
    pub scales: Vec<f32>,
    /// The element values.
    pub data: BlobData,
}

impl Blob {
    /// An `f32` blob holding a tensor's values losslessly.
    pub fn from_tensor(name: &str, t: &Tensor) -> Blob {
        Blob {
            name: name.to_string(),
            dtype: BlobDtype::F32,
            shape: t.shape().to_vec(),
            scales: Vec::new(),
            data: BlobData::F32(t.data().to_vec()),
        }
    }

    /// The blob as an `f32` [`Tensor`], dequantizing `i8` data through
    /// the stored scales (`value × scale`, per tensor or per
    /// first-dimension slice).
    pub fn to_tensor(&self) -> Tensor {
        match &self.data {
            BlobData::F32(values) => Tensor::from_vec(values.clone(), &self.shape),
            BlobData::I8(values) => {
                let rows = self.shape[0].max(1);
                let per_row = values.len() / rows;
                let dequantized = values
                    .iter()
                    .enumerate()
                    .map(|(i, &q)| {
                        let scale = if self.scales.len() == 1 {
                            self.scales[0]
                        } else {
                            self.scales[i / per_row.max(1)]
                        };
                        f32::from(q) * scale
                    })
                    .collect();
                Tensor::from_vec(dequantized, &self.shape)
            }
        }
    }

    fn byte_len(&self) -> usize {
        let n: usize = self.shape.iter().product();
        n * self.dtype.size()
    }
}

/// A decoded checkpoint container: string-keyed metadata plus named,
/// dtype-tagged tensor blobs. The metadata keys a [`FullCheckpoint`]
/// uses are `arch`, `spec` (compact spec JSON) and `quant` (compact
/// calibration-state JSON, present only when non-empty).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Container {
    /// Metadata entries in file order.
    pub meta: Vec<(String, String)>,
    /// Tensor blobs in file order.
    pub blobs: Vec<Blob>,
}

/// Whether `bytes` starts with the container magic — the format sniff
/// the registry and `wa-client` use to pick the JSON or binary reader.
pub fn is_container(bytes: &[u8]) -> bool {
    bytes.len() >= CONTAINER_MAGIC.len() && bytes[..CONTAINER_MAGIC.len()] == CONTAINER_MAGIC
}

/// Serializes a [`FullCheckpoint`] to container bytes.
pub fn write_checkpoint(doc: &FullCheckpoint) -> Vec<u8> {
    Container::from_checkpoint(doc).to_bytes()
}

/// Decodes container bytes back into a [`FullCheckpoint`].
///
/// # Errors
///
/// [`CheckpointError::Container`] naming the offending field for any
/// malformed input — the parser never panics and never allocates more
/// than the input's own size.
pub fn read_checkpoint(bytes: &[u8]) -> Result<FullCheckpoint, CheckpointError> {
    Container::from_bytes(bytes)?.to_checkpoint()
}

/// A structured [`CheckpointError::Container`] at `path`.
fn field_error(path: impl Into<String>, reason: impl Into<String>) -> CheckpointError {
    CheckpointError::Container {
        path: path.into(),
        reason: reason.into(),
    }
}

/// A bounds-checked little-endian cursor over the structural region of
/// a container (everything before the trailing checksum). Every read
/// validates against the remaining bytes first, so declared lengths can
/// never drive an out-of-bounds slice or an oversized allocation.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, path: &str) -> Result<&'a [u8], CheckpointError> {
        if n > self.remaining() {
            return Err(field_error(
                path,
                format!(
                    "needs {n} bytes but only {} remain before the checksum (truncated?)",
                    self.remaining()
                ),
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, path: &str) -> Result<u8, CheckpointError> {
        Ok(self.take(1, path)?[0])
    }

    fn u32(&mut self, path: &str) -> Result<u32, CheckpointError> {
        let b = self.take(4, path)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, path: &str) -> Result<u64, CheckpointError> {
        let b = self.take(8, path)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self, path: &str) -> Result<f32, CheckpointError> {
        let b = self.take(4, path)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// A length-prefixed UTF-8 string; the declared length is checked
    /// against the remaining bytes before anything is copied.
    fn string(&mut self, path: &str) -> Result<String, CheckpointError> {
        let len = self.u32(path)? as usize;
        let bytes = self.take(len, path)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| field_error(path, "is not valid UTF-8"))
    }

    /// Reads a section's entry count and rejects counts that could not
    /// possibly fit in the remaining bytes (each entry needs at least
    /// `min_entry` bytes), so a hostile count can never size a `Vec`.
    fn count(&mut self, path: &str, min_entry: usize) -> Result<usize, CheckpointError> {
        let declared = self.u32(path)? as usize;
        let fit = self.remaining() / min_entry;
        if declared > fit {
            return Err(field_error(
                path,
                format!(
                    "declares {declared} entries but at most {fit} fit in the {} \
                     bytes that remain",
                    self.remaining()
                ),
            ));
        }
        Ok(declared)
    }
}

/// One parsed blob-table row, before its data bytes are resolved.
struct BlobEntry {
    name: String,
    dtype: BlobDtype,
    shape: Vec<usize>,
    scales: Vec<f32>,
    offset: usize,
    byte_len: usize,
}

impl Container {
    /// Converts a [`FullCheckpoint`] into its container form: `arch`,
    /// `spec` and (when non-empty) `quant` ride as metadata JSON text;
    /// every parameter becomes a lossless `f32` blob.
    pub fn from_checkpoint(doc: &FullCheckpoint) -> Container {
        let mut meta = vec![
            ("arch".to_string(), doc.arch.clone()),
            ("spec".to_string(), doc.spec.to_string_compact()),
        ];
        if !doc.quant.is_empty() {
            let quant = wa_tensor::Json::Obj(
                doc.quant
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_json()))
                    .collect(),
            );
            meta.push(("quant".to_string(), quant.to_string_compact()));
        }
        let blobs = doc
            .params
            .params
            .iter()
            .map(|(name, tensor)| Blob::from_tensor(name, tensor))
            .collect();
        Container { meta, blobs }
    }

    /// Rebuilds the [`FullCheckpoint`] this container encodes.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Container`] when a required metadata key is
    /// missing or its embedded JSON does not parse; quant-section
    /// problems carry the same `quant.<site>.<field>` paths the JSON
    /// reader produces.
    pub fn to_checkpoint(&self) -> Result<FullCheckpoint, CheckpointError> {
        let meta = |key: &str| self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let arch = meta("arch")
            .ok_or_else(|| field_error("meta.arch", "missing (not a checkpoint container?)"))?
            .clone();
        let spec_text =
            meta("spec").ok_or_else(|| field_error("meta.spec", "missing spec document"))?;
        let spec = wa_tensor::Json::parse(spec_text)
            .map_err(|e| field_error("meta.spec", format!("embedded JSON: {}", e.message)))?;
        if spec.as_obj().is_none() {
            return Err(field_error("meta.spec", "must be a JSON object"));
        }
        let mut quant = BTreeMap::new();
        if let Some(text) = meta("quant") {
            let doc = wa_tensor::Json::parse(text)
                .map_err(|e| field_error("meta.quant", format!("embedded JSON: {}", e.message)))?;
            let sites = doc
                .as_obj()
                .ok_or_else(|| field_error("meta.quant", "must be an object of site → state"))?;
            for (name, state) in sites {
                let site = QuantSiteState::from_json(&quant_site_path(name), state)
                    .map_err(|e| field_error("meta.quant", e.message))?;
                quant.insert(name.clone(), site);
            }
        }
        let mut params = BTreeMap::new();
        for blob in &self.blobs {
            if params.insert(blob.name.clone(), blob.to_tensor()).is_some() {
                return Err(field_error(
                    format!("blobs.{}", blob.name),
                    "duplicate blob name",
                ));
            }
        }
        Ok(FullCheckpoint {
            arch,
            spec,
            quant,
            params: crate::checkpoint::Checkpoint { params },
        })
    }

    /// Serializes to the wire layout in the module docs: header,
    /// metadata, blob table, 64-aligned blob data, trailing checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        // pass 1: the table's byte size fixes where blob data starts
        let mut table = 4; // blob count
        for blob in &self.blobs {
            table += 4 + blob.name.len() + 1 + 4 + 8 * blob.shape.len();
            table += 4 + 4 * blob.scales.len() + 8 + 8;
        }
        let mut head = 4 + 4 + 4; // magic + version + meta count
        for (k, v) in &self.meta {
            head += 4 + k.len() + 4 + v.len();
        }
        let align = |pos: usize| pos.div_ceil(CONTAINER_ALIGN) * CONTAINER_ALIGN;
        let mut offsets = Vec::with_capacity(self.blobs.len());
        let mut cursor = head + table;
        for blob in &self.blobs {
            cursor = align(cursor);
            offsets.push(cursor);
            cursor += blob.byte_len();
        }

        let mut out = Vec::with_capacity(cursor + CHECKSUM_LEN);
        out.extend_from_slice(&CONTAINER_MAGIC);
        out.extend_from_slice(&CONTAINER_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.meta.len() as u32).to_le_bytes());
        for (k, v) in &self.meta {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v.as_bytes());
        }
        out.extend_from_slice(&(self.blobs.len() as u32).to_le_bytes());
        for (blob, &offset) in self.blobs.iter().zip(&offsets) {
            out.extend_from_slice(&(blob.name.len() as u32).to_le_bytes());
            out.extend_from_slice(blob.name.as_bytes());
            out.push(blob.dtype.tag());
            out.extend_from_slice(&(blob.shape.len() as u32).to_le_bytes());
            for &d in &blob.shape {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            out.extend_from_slice(&(blob.scales.len() as u32).to_le_bytes());
            for &s in &blob.scales {
                out.extend_from_slice(&s.to_le_bytes());
            }
            out.extend_from_slice(&(offset as u64).to_le_bytes());
            out.extend_from_slice(&(blob.byte_len() as u64).to_le_bytes());
        }
        for (blob, &offset) in self.blobs.iter().zip(&offsets) {
            out.resize(offset, 0); // zero padding up to the alignment
            match &blob.data {
                BlobData::F32(values) => {
                    for v in values {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
                BlobData::I8(values) => {
                    out.extend(values.iter().map(|&v| v as u8));
                }
            }
        }
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses container bytes with full validation (see the module-level
    /// validation contract).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Container`] naming the malformed field.
    pub fn from_bytes(bytes: &[u8]) -> Result<Container, CheckpointError> {
        let min = CONTAINER_MAGIC.len() + 4 + 4 + 4 + CHECKSUM_LEN;
        if bytes.len() < min {
            return Err(field_error(
                "header",
                format!(
                    "{} bytes is shorter than the {min}-byte minimum container",
                    bytes.len()
                ),
            ));
        }
        // structural region: everything before the trailing checksum
        let body = &bytes[..bytes.len() - CHECKSUM_LEN];
        let mut c = Cursor { buf: body, pos: 0 };
        let magic = c.take(CONTAINER_MAGIC.len(), "magic")?;
        if magic != CONTAINER_MAGIC {
            return Err(field_error(
                "magic",
                format!("expected {CONTAINER_MAGIC:?} (\"WACK\"), got {magic:?}"),
            ));
        }
        let version = c.u32("version")?;
        if version != CONTAINER_VERSION {
            return Err(field_error(
                "version",
                format!(
                    "unsupported version {version} (this reader understands {CONTAINER_VERSION})"
                ),
            ));
        }
        let meta_count = c.count("meta.count", MIN_META_ENTRY)?;
        let mut meta = Vec::with_capacity(meta_count);
        for i in 0..meta_count {
            let key = c.string(&format!("meta[{i}].key"))?;
            let value = c.string(&format!("meta[{i}].value"))?;
            if meta.iter().any(|(k, _)| *k == key) {
                return Err(field_error(format!("meta.{key}"), "duplicate metadata key"));
            }
            meta.push((key, value));
        }
        let blob_count = c.count("blobs.count", MIN_BLOB_ENTRY)?;
        let mut entries: Vec<BlobEntry> = Vec::with_capacity(blob_count);
        for i in 0..blob_count {
            let name = c.string(&format!("blobs[{i}].name"))?;
            let at = |field: &str| format!("blobs.{name}.{field}");
            if entries.iter().any(|e| e.name == name) {
                return Err(field_error(format!("blobs.{name}"), "duplicate blob name"));
            }
            let tag = c.u8(&at("dtype"))?;
            let dtype = BlobDtype::from_tag(tag)
                .ok_or_else(|| field_error(at("dtype"), format!("unknown dtype tag {tag}")))?;
            let ndim = c.count(&at("shape"), 8)?;
            if ndim == 0 {
                return Err(field_error(at("shape"), "must have at least one dimension"));
            }
            let mut shape = Vec::with_capacity(ndim);
            let mut numel = 1usize;
            for d in 0..ndim {
                let dim = c.u64(&at("shape"))?;
                let dim = usize::try_from(dim)
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or_else(|| {
                        field_error(at("shape"), format!("dimension {d} of {dim} is not usable"))
                    })?;
                numel = numel
                    .checked_mul(dim)
                    .ok_or_else(|| field_error(at("shape"), "element count overflows a usize"))?;
                shape.push(dim);
            }
            let scale_count = c.count(&at("scales"), 4)?;
            let mut scales = Vec::with_capacity(scale_count);
            for _ in 0..scale_count {
                let s = c.f32(&at("scales"))?;
                if !s.is_finite() {
                    return Err(field_error(
                        at("scales"),
                        format!("scale {s} is not finite"),
                    ));
                }
                scales.push(s);
            }
            match dtype {
                BlobDtype::F32 if !scales.is_empty() => {
                    return Err(field_error(
                        at("scales"),
                        format!("f32 blobs carry no scales, found {}", scales.len()),
                    ));
                }
                BlobDtype::I8 if scales.len() != 1 && scales.len() != shape[0] => {
                    return Err(field_error(
                        at("scales"),
                        format!(
                            "i8 blobs need 1 (per-tensor) or {} (per-slice) scales, found {}",
                            shape[0],
                            scales.len()
                        ),
                    ));
                }
                _ => {}
            }
            let offset = c.u64(&at("offset"))?;
            let byte_len = c.u64(&at("byte_len"))?;
            let want = numel
                .checked_mul(dtype.size())
                .ok_or_else(|| field_error(at("byte_len"), "byte size overflows a usize"))?;
            if byte_len != want as u64 {
                return Err(field_error(
                    at("byte_len"),
                    format!("declares {byte_len} bytes but dtype × shape imply {want}"),
                ));
            }
            let offset = usize::try_from(offset)
                .ok()
                .filter(|&o| o % CONTAINER_ALIGN == 0)
                .ok_or_else(|| {
                    field_error(
                        at("offset"),
                        format!("{offset} is not {CONTAINER_ALIGN}-byte aligned"),
                    )
                })?;
            let end = offset.checked_add(want).filter(|&e| e <= body.len());
            if end.is_none() {
                return Err(field_error(
                    at("offset"),
                    format!(
                        "blob [{offset}, {offset}+{want}) runs past the {}-byte data region",
                        body.len()
                    ),
                ));
            }
            entries.push(BlobEntry {
                name,
                dtype,
                shape,
                scales,
                offset,
                byte_len: want,
            });
        }
        let table_end = c.pos;
        // blobs must live after the table, not overlap, and leave no
        // room for trailing garbage beyond alignment padding
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by_key(|&i| entries[i].offset);
        let mut previous_end = table_end;
        for &i in &order {
            let e = &entries[i];
            if e.offset < previous_end {
                return Err(field_error(
                    format!("blobs.{}.offset", e.name),
                    format!(
                        "blob at {} overlaps the bytes ending at {previous_end}",
                        e.offset
                    ),
                ));
            }
            previous_end = e.offset + e.byte_len;
        }
        if body.len() - previous_end >= CONTAINER_ALIGN {
            return Err(field_error(
                "data",
                format!(
                    "{} trailing bytes after the last blob (corrupt table or appended data)",
                    body.len() - previous_end
                ),
            ));
        }
        // checksum last: structural corruption reports its field above;
        // flipped bytes anywhere (blob data included) are caught here
        let stored = u64::from_le_bytes(
            bytes[bytes.len() - CHECKSUM_LEN..]
                .try_into()
                .expect("checksum slice is 8 bytes"),
        );
        let computed = fnv1a64(body);
        if stored != computed {
            return Err(field_error(
                "checksum",
                format!("stored {stored:#018x} != computed {computed:#018x}"),
            ));
        }
        let blobs = entries
            .into_iter()
            .map(|e| {
                let raw = &body[e.offset..e.offset + e.byte_len];
                let data = match e.dtype {
                    BlobDtype::F32 => BlobData::F32(
                        raw.chunks_exact(4)
                            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                            .collect(),
                    ),
                    BlobDtype::I8 => BlobData::I8(raw.iter().map(|&b| b as i8).collect()),
                };
                Blob {
                    name: e.name,
                    dtype: e.dtype,
                    shape: e.shape,
                    scales: e.scales,
                    data,
                }
            })
            .collect();
        Ok(Container { meta, blobs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_tensor::Json;

    fn sample() -> Container {
        Container {
            meta: vec![
                ("arch".to_string(), "lenet".to_string()),
                ("spec".to_string(), "{\"classes\":10}".to_string()),
            ],
            blobs: vec![
                Blob::from_tensor("w", &Tensor::from_vec(vec![1.5, -2.0, 0.25, 9.0], &[2, 2])),
                Blob {
                    name: "q".to_string(),
                    dtype: BlobDtype::I8,
                    shape: vec![2, 3],
                    scales: vec![0.5, 0.25],
                    data: BlobData::I8(vec![1, -2, 4, 8, -8, 100]),
                },
            ],
        }
    }

    #[test]
    fn bytes_roundtrip_exactly() {
        let c = sample();
        let bytes = c.to_bytes();
        assert!(is_container(&bytes));
        let back = Container::from_bytes(&bytes).unwrap();
        assert_eq!(back, c);
    }

    /// Byte position of the first blob's stored `offset` field.
    fn first_offset_field(bytes: &[u8]) -> usize {
        let u32_at = |p: usize| u32::from_le_bytes(bytes[p..p + 4].try_into().unwrap()) as usize;
        let mut p = 8; // magic + version
        let meta = u32_at(p);
        p += 4;
        for _ in 0..meta {
            p += 4 + u32_at(p); // key
            p += 4 + u32_at(p); // value
        }
        p += 4; // blob count
        p += 4 + u32_at(p); // name
        p += 1; // dtype
        let ndim = u32_at(p);
        p += 4 + 8 * ndim;
        let scales = u32_at(p);
        p += 4 + 4 * scales;
        p
    }

    #[test]
    fn unaligned_blob_offsets_are_rejected() {
        let bytes = sample().to_bytes();
        let field = first_offset_field(&bytes);
        let offset = u64::from_le_bytes(bytes[field..field + 8].try_into().unwrap());
        assert_eq!(offset % CONTAINER_ALIGN as u64, 0, "writer must align");
        let mut mutated = bytes.clone();
        mutated[field..field + 8].copy_from_slice(&(offset + 1).to_le_bytes());
        let err = Container::from_bytes(&mutated).unwrap_err();
        assert!(err.to_string().contains("offset"), "{err}");
    }

    #[test]
    fn i8_blobs_dequantize_per_slice() {
        let c = sample();
        let t = c.blobs[1].to_tensor();
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.data(), &[0.5, -1.0, 2.0, 2.0, -2.0, 25.0]);
    }

    #[test]
    fn checkpoint_meta_survives() {
        let doc = FullCheckpoint {
            arch: "lenet".to_string(),
            spec: Json::obj([("classes", 10usize)]),
            quant: BTreeMap::new(),
            params: crate::checkpoint::Checkpoint {
                params: [("w".to_string(), Tensor::from_vec(vec![1.0, 2.0], &[2]))]
                    .into_iter()
                    .collect(),
            },
        };
        let back = read_checkpoint(&write_checkpoint(&doc)).unwrap();
        assert_eq!(back.arch, doc.arch);
        assert_eq!(back.spec, doc.spec);
        assert_eq!(back.params.params, doc.params.params);
    }

    #[test]
    fn empty_and_garbage_inputs_are_structured_errors() {
        for bad in [&b""[..], &b"WACK"[..], &[0u8; 23][..]] {
            let err = Container::from_bytes(bad).unwrap_err();
            assert!(matches!(err, CheckpointError::Container { .. }), "{err}");
        }
        let err = Container::from_bytes(&[0xFFu8; 64]).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }
}
