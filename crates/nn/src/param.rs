//! Trainable parameters.

use std::sync::atomic::{AtomicU64, Ordering};

use wa_tensor::Tensor;

use crate::tape::Var;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// A named, trainable tensor owned by a layer.
///
/// Parameters live *outside* the tape (which is rebuilt every forward
/// pass). Each forward, a layer registers its parameters on the tape with
/// [`crate::Tape::param`]; after `backward`, gradients are pulled back into
/// [`Param::grad`] with [`Param::absorb`]. Optimizers key their per-parameter
/// state on [`Param::id`], which is unique for the process lifetime.
///
/// Registration is zero-copy: tensor storage is copy-on-write, so the
/// tape leaf aliases [`Param::value`]'s buffer. In-place optimizer steps
/// go through `Tensor::data_mut`, which detaches from any still-live
/// tape leaves instead of corrupting them.
///
/// The paper's `-flex` configurations simply mark the Winograd transform
/// parameters `Aᵀ`, `G`, `Bᵀ` as `trainable`; static configurations keep
/// the same parameters with `trainable = false`.
#[derive(Debug)]
pub struct Param {
    /// Human-readable name (used in logs and serialization).
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass(es).
    pub grad: Option<Tensor>,
    /// Whether the optimizer may update this parameter.
    pub trainable: bool,
    id: u64,
    last_var: Option<(u64, Var)>,
}

fn fresh_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

impl Param {
    /// Creates a trainable parameter.
    pub fn new(name: impl Into<String>, value: Tensor) -> Param {
        Param {
            name: name.into(),
            value,
            grad: None,
            trainable: true,
            id: fresh_id(),
            last_var: None,
        }
    }

    /// Creates a frozen (non-trainable) parameter — e.g. static Winograd
    /// transforms.
    pub fn frozen(name: impl Into<String>, value: Tensor) -> Param {
        let mut p = Param::new(name, value);
        p.trainable = false;
        p
    }

    /// Process-unique identity, stable across forward passes.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The tape variable this parameter was registered as in the most
    /// recent forward pass.
    pub fn last_var(&self) -> Option<Var> {
        self.last_var.map(|(_, v)| v)
    }

    pub(crate) fn set_last_var(&mut self, tape_id: u64, v: Var) {
        self.last_var = Some((tape_id, v));
    }

    /// Pulls this parameter's gradient out of `grads`, **accumulating**
    /// into any existing gradient (so mini-batch gradient accumulation
    /// works). No-op if the parameter was not used in the forward pass
    /// that produced `grads` — in particular, a registration from an
    /// *older* tape is ignored rather than misread (stale `Var` indices
    /// would otherwise alias arbitrary nodes of the new tape).
    pub fn absorb(&mut self, grads: &crate::tape::Gradients) {
        let Some((tape_id, v)) = self.last_var else {
            return;
        };
        if tape_id != grads.tape_id() {
            return;
        }
        let Some(g) = grads.get(v) else { return };
        match &mut self.grad {
            Some(acc) => acc.add_assign(g),
            None => self.grad = Some(g.clone()),
        }
    }

    /// Clears the stored gradient.
    pub fn zero_grad(&mut self) {
        self.grad = None;
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}
