//! Typed, validated layer specifications.
//!
//! Every layer in the workspace is constructed from a `*Spec` built
//! through a builder that returns `Result<_, WaError>` instead of
//! panicking — the construction idiom the serving layer depends on:
//!
//! ```
//! use wa_nn::{Conv2d, Conv2dSpec, QuantConfig};
//! use wa_quant::BitWidth;
//! use wa_tensor::SeededRng;
//!
//! let spec = Conv2dSpec::builder("stem")
//!     .in_channels(3)
//!     .out_channels(32)
//!     .kernel(3)
//!     .quant(QuantConfig::uniform(BitWidth::INT8))
//!     .build()?;
//! let conv = Conv2d::from_spec(&spec, &mut SeededRng::new(0))?;
//! assert_eq!(conv.out_channels(), 32);
//! # Ok::<(), wa_nn::WaError>(())
//! ```

use crate::error::WaError;
use crate::layers::QuantConfig;

/// Validated configuration of a direct (im2row-lowered) convolution.
///
/// Build one with [`Conv2dSpec::builder`]; the `build()` step enforces
/// nonzero dimensions so a [`crate::Conv2d`] can always be constructed
/// from a `Conv2dSpec` without panicking.
#[derive(Clone, Debug, PartialEq)]
pub struct Conv2dSpec {
    /// Layer name (parameter-name prefix).
    pub name: String,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride (both dims).
    pub stride: usize,
    /// Zero padding (all sides).
    pub pad: usize,
    /// Whether the layer has a bias.
    pub bias: bool,
    /// Quantization of activations/weights.
    pub quant: QuantConfig,
}

impl Conv2dSpec {
    /// Starts a builder. Defaults: `kernel` 3, `stride` 1, "same" padding
    /// (`kernel / 2`), no bias, FP32.
    pub fn builder(name: impl Into<String>) -> Conv2dSpecBuilder {
        Conv2dSpecBuilder {
            name: name.into(),
            in_channels: 0,
            out_channels: 0,
            kernel: 3,
            stride: 1,
            pad: None,
            bias: false,
            quant: QuantConfig::FP32,
        }
    }

    /// Checks every constraint, as `build()` does (useful after mutating
    /// a spec in place).
    pub fn validate(&self) -> Result<(), WaError> {
        let nonzero = |field: &'static str, v: usize| {
            if v == 0 {
                Err(WaError::invalid("Conv2dSpec", field, "must be nonzero"))
            } else {
                Ok(())
            }
        };
        nonzero("in_channels", self.in_channels)?;
        nonzero("out_channels", self.out_channels)?;
        nonzero("kernel", self.kernel)?;
        nonzero("stride", self.stride)?;
        if let Some(reason) = self.quant.int8_incompatibility() {
            return Err(WaError::invalid("Conv2dSpec", "quant.execution", reason));
        }
        Ok(())
    }
}

/// Builder for [`Conv2dSpec`].
#[derive(Clone, Debug)]
pub struct Conv2dSpecBuilder {
    name: String,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: Option<usize>,
    bias: bool,
    quant: QuantConfig,
}

impl Conv2dSpecBuilder {
    /// Sets the input channel count (required).
    pub fn in_channels(mut self, c: usize) -> Self {
        self.in_channels = c;
        self
    }

    /// Sets the output channel count (required).
    pub fn out_channels(mut self, c: usize) -> Self {
        self.out_channels = c;
        self
    }

    /// Sets the square kernel size (default 3).
    pub fn kernel(mut self, k: usize) -> Self {
        self.kernel = k;
        self
    }

    /// Sets the stride (default 1).
    pub fn stride(mut self, s: usize) -> Self {
        self.stride = s;
        self
    }

    /// Sets the zero padding (default `kernel / 2`, i.e. "same" for
    /// odd kernels at stride 1).
    pub fn pad(mut self, p: usize) -> Self {
        self.pad = Some(p);
        self
    }

    /// Enables/disables the bias (default off).
    pub fn bias(mut self, b: bool) -> Self {
        self.bias = b;
        self
    }

    /// Sets the quantization config (default FP32).
    pub fn quant(mut self, q: QuantConfig) -> Self {
        self.quant = q;
        self
    }

    /// Validates and produces the spec.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] if any dimension is zero.
    pub fn build(self) -> Result<Conv2dSpec, WaError> {
        let spec = Conv2dSpec {
            pad: self.pad.unwrap_or(self.kernel / 2),
            name: self.name,
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            kernel: self.kernel,
            stride: self.stride,
            bias: self.bias,
            quant: self.quant,
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// Validated configuration of a fully connected layer.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearSpec {
    /// Layer name (parameter-name prefix).
    pub name: String,
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
    /// Quantization of activations/weights.
    pub quant: QuantConfig,
}

impl LinearSpec {
    /// Starts a builder (default FP32).
    pub fn builder(name: impl Into<String>) -> LinearSpecBuilder {
        LinearSpecBuilder {
            name: name.into(),
            in_features: 0,
            out_features: 0,
            quant: QuantConfig::FP32,
        }
    }

    /// Checks every constraint, as `build()` does.
    pub fn validate(&self) -> Result<(), WaError> {
        if self.in_features == 0 {
            return Err(WaError::invalid(
                "LinearSpec",
                "in_features",
                "must be nonzero",
            ));
        }
        if self.out_features == 0 {
            return Err(WaError::invalid(
                "LinearSpec",
                "out_features",
                "must be nonzero",
            ));
        }
        Ok(())
    }
}

/// Builder for [`LinearSpec`].
#[derive(Clone, Debug)]
pub struct LinearSpecBuilder {
    name: String,
    in_features: usize,
    out_features: usize,
    quant: QuantConfig,
}

impl LinearSpecBuilder {
    /// Sets the input feature count (required).
    pub fn in_features(mut self, n: usize) -> Self {
        self.in_features = n;
        self
    }

    /// Sets the output feature count (required).
    pub fn out_features(mut self, n: usize) -> Self {
        self.out_features = n;
        self
    }

    /// Sets the quantization config (default FP32).
    pub fn quant(mut self, q: QuantConfig) -> Self {
        self.quant = q;
        self
    }

    /// Validates and produces the spec.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] if either feature count is zero.
    pub fn build(self) -> Result<LinearSpec, WaError> {
        let spec = LinearSpec {
            name: self.name,
            in_features: self.in_features,
            out_features: self.out_features,
            quant: self.quant,
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// Validated configuration of a batch-normalization layer.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchNormSpec {
    /// Layer name (parameter-name prefix).
    pub name: String,
    /// Channel count.
    pub channels: usize,
    /// Running-statistics momentum in `(0, 1)`.
    pub momentum: f32,
    /// Variance epsilon.
    pub eps: f32,
}

impl BatchNormSpec {
    /// Starts a builder. Defaults: momentum 0.9, eps 1e-5.
    pub fn builder(name: impl Into<String>) -> BatchNormSpecBuilder {
        BatchNormSpecBuilder {
            name: name.into(),
            channels: 0,
            momentum: 0.9,
            eps: 1e-5,
        }
    }

    /// Checks every constraint, as `build()` does.
    pub fn validate(&self) -> Result<(), WaError> {
        if self.channels == 0 {
            return Err(WaError::invalid(
                "BatchNormSpec",
                "channels",
                "must be nonzero",
            ));
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(WaError::invalid(
                "BatchNormSpec",
                "momentum",
                format!("must be in [0, 1), got {}", self.momentum),
            ));
        }
        if self.eps <= 0.0 || !self.eps.is_finite() {
            return Err(WaError::invalid(
                "BatchNormSpec",
                "eps",
                format!("must be positive and finite, got {}", self.eps),
            ));
        }
        Ok(())
    }
}

/// Builder for [`BatchNormSpec`].
#[derive(Clone, Debug)]
pub struct BatchNormSpecBuilder {
    name: String,
    channels: usize,
    momentum: f32,
    eps: f32,
}

impl BatchNormSpecBuilder {
    /// Sets the channel count (required).
    pub fn channels(mut self, c: usize) -> Self {
        self.channels = c;
        self
    }

    /// Sets the running-statistics momentum (default 0.9).
    pub fn momentum(mut self, m: f32) -> Self {
        self.momentum = m;
        self
    }

    /// Sets the variance epsilon (default 1e-5).
    pub fn eps(mut self, e: f32) -> Self {
        self.eps = e;
        self
    }

    /// Validates and produces the spec.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] on zero channels, momentum outside
    /// `[0, 1)`, or a non-positive epsilon.
    pub fn build(self) -> Result<BatchNormSpec, WaError> {
        let spec = BatchNormSpec {
            name: self.name,
            channels: self.channels,
            momentum: self.momentum,
            eps: self.eps,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_defaults_are_same_padding() {
        let s = Conv2dSpec::builder("c")
            .in_channels(3)
            .out_channels(8)
            .build()
            .unwrap();
        assert_eq!((s.kernel, s.stride, s.pad, s.bias), (3, 1, 1, false));
        let s5 = Conv2dSpec::builder("c")
            .in_channels(1)
            .out_channels(1)
            .kernel(5)
            .build()
            .unwrap();
        assert_eq!(s5.pad, 2);
    }

    #[test]
    fn conv_zero_dims_are_rejected() {
        for (field, spec) in [
            (
                "in_channels",
                Conv2dSpec::builder("c").out_channels(8).build(),
            ),
            (
                "out_channels",
                Conv2dSpec::builder("c").in_channels(8).build(),
            ),
            (
                "kernel",
                Conv2dSpec::builder("c")
                    .in_channels(8)
                    .out_channels(8)
                    .kernel(0)
                    .build(),
            ),
            (
                "stride",
                Conv2dSpec::builder("c")
                    .in_channels(8)
                    .out_channels(8)
                    .stride(0)
                    .build(),
            ),
        ] {
            match spec {
                Err(WaError::InvalidSpec { field: f, .. }) => assert_eq!(f, field),
                other => panic!("{field}: expected InvalidSpec, got {other:?}"),
            }
        }
    }

    #[test]
    fn linear_and_batchnorm_validate() {
        assert!(LinearSpec::builder("l")
            .in_features(4)
            .out_features(2)
            .build()
            .is_ok());
        assert!(matches!(
            LinearSpec::builder("l").out_features(2).build(),
            Err(WaError::InvalidSpec {
                field: "in_features",
                ..
            })
        ));
        assert!(BatchNormSpec::builder("bn").channels(4).build().is_ok());
        assert!(matches!(
            BatchNormSpec::builder("bn")
                .channels(4)
                .momentum(1.5)
                .build(),
            Err(WaError::InvalidSpec {
                field: "momentum",
                ..
            })
        ));
        assert!(matches!(
            BatchNormSpec::builder("bn").channels(4).eps(0.0).build(),
            Err(WaError::InvalidSpec { field: "eps", .. })
        ));
    }
}
