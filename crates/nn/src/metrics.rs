//! Classification metrics.

use wa_tensor::Tensor;

/// Top-1 accuracy of `logits` `[N, K]` against integer `targets`.
///
/// # Panics
///
/// Panics if `logits` is not 2-D or lengths disagree.
///
/// # Example
///
/// ```
/// use wa_nn::accuracy;
/// use wa_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], &[2, 2]);
/// assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
/// assert_eq!(accuracy(&logits, &[1, 1]), 0.5);
/// ```
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f64 {
    assert_eq!(logits.ndim(), 2, "accuracy expects [N, K] logits");
    assert_eq!(logits.dim(0), targets.len(), "batch size mismatch");
    if targets.is_empty() {
        return 0.0;
    }
    let preds = logits.argmax_rows();
    let correct = preds.iter().zip(targets).filter(|(p, t)| p == t).count();
    correct as f64 / targets.len() as f64
}

/// Running average helper for epoch-level metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningMean {
    sum: f64,
    weight: f64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> RunningMean {
        RunningMean::default()
    }

    /// Adds an observation with the given weight (e.g. batch size).
    pub fn add(&mut self, value: f64, weight: f64) {
        self.sum += value * weight;
        self.weight += weight;
    }

    /// Weighted mean so far (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.weight == 0.0 {
            0.0
        } else {
            self.sum / self.weight
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]);
        assert_eq!(accuracy(&logits, &[0, 1, 1]), 2.0 / 3.0);
    }

    #[test]
    fn running_mean_weights() {
        let mut rm = RunningMean::new();
        rm.add(1.0, 1.0);
        rm.add(0.0, 3.0);
        assert!((rm.mean() - 0.25).abs() < 1e-12);
    }
}
