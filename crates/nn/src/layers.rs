//! Parameterized layers built on the tape.

use wa_quant::{BitWidth, Execution, Observer, TapPolicy, TapQuant};
use wa_tensor::{SeededRng, Tensor};

use crate::error::WaError;
use crate::executor::Infer;
use crate::param::Param;
use crate::spec::{BatchNormSpec, Conv2dSpec, LinearSpec};
use crate::tape::{Tape, Var};

/// Per-layer quantization configuration (symmetric uniform, as in
/// Krishnamoorthi 2018 / paper §5.1). `FP32` disables quantization.
///
/// Beyond the two bit-widths, [`QuantConfig::transform`] selects how the
/// layer's *Winograd-domain* sites (`BᵀdB`, `G·g·Gᵀ`) are scaled:
/// [`TapPolicy::PerLayer`] keeps one scale per site (the paper's scheme),
/// [`TapPolicy::PerTap`] calibrates one scale per tap position of the
/// transformed tile (Tap-Wise Quantization). Layers without a Winograd
/// domain ignore the policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QuantConfig {
    /// Precision of activations (and, in Winograd-aware layers, of every
    /// intermediate — paper Figure 2 default).
    pub activations: BitWidth,
    /// Precision of weights.
    pub weights: BitWidth,
    /// Transform-domain scaling policy for Winograd-aware layers.
    pub transform: TapPolicy,
    /// How the quantized layer *executes* at inference time: f32
    /// fake-quant simulation (the default, and always the training
    /// semantics) or the true integer path (i8 storage, i8×i8→i32
    /// GEMM, fixed-point requantization). Only convolution layers have
    /// an integer kernel; other layers ignore the mode.
    pub execution: Execution,
}

impl QuantConfig {
    /// Full precision (no quantization).
    pub const FP32: QuantConfig = QuantConfig {
        activations: BitWidth::Fp32,
        weights: BitWidth::Fp32,
        transform: TapPolicy::PerLayer,
        execution: Execution::FakeQuant,
    };

    /// Uniform precision for weights and activations, as the paper's
    /// INT8/INT10/INT16 experiments use (per-layer transform scales).
    pub fn uniform(bits: BitWidth) -> QuantConfig {
        QuantConfig {
            activations: bits,
            weights: bits,
            transform: TapPolicy::PerLayer,
            execution: Execution::FakeQuant,
        }
    }

    /// Uniform precision with **tap-wise** transform-domain scales: every
    /// Winograd-domain tap position gets its own calibrated scale.
    pub fn per_tap(bits: BitWidth) -> QuantConfig {
        QuantConfig::uniform(bits).with_transform(TapPolicy::PerTap)
    }

    /// Returns a copy with a different transform-domain policy.
    pub fn with_transform(mut self, transform: TapPolicy) -> QuantConfig {
        self.transform = transform;
        self
    }

    /// Returns a copy with a different inference execution mode.
    pub fn with_execution(mut self, execution: Execution) -> QuantConfig {
        self.execution = execution;
        self
    }

    /// Whether any quantization is active.
    pub fn is_quantized(&self) -> bool {
        !self.activations.is_float() || !self.weights.is_float()
    }

    /// Why this config cannot run on the true integer path, if it
    /// cannot: [`Execution::Int8`] needs *both* activations and weights
    /// at integer widths of at most 8 bits (values must fit `i8`
    /// storage and `pmaddwd`'s i16 operands). Returns `None` when the
    /// config is not int8 or is int8-compatible.
    pub fn int8_incompatibility(&self) -> Option<String> {
        if self.execution != Execution::Int8 {
            return None;
        }
        for (what, bits) in [("activations", self.activations), ("weights", self.weights)] {
            match bits {
                BitWidth::Fp32 => {
                    return Some(format!("int8 execution requires integer {what}, got FP32"))
                }
                b if b.qmax() > i8::MAX as i32 => {
                    return Some(format!(
                        "int8 execution requires {what} of at most 8 bits, got {b}"
                    ))
                }
                _ => {}
            }
        }
        None
    }
}

impl Default for QuantConfig {
    fn default() -> Self {
        QuantConfig::FP32
    }
}

/// Fake-quantizes `x` through `obs` at `bits`, updating the observer only
/// in training mode. FP32 passes through untouched.
///
/// This helper is the shared implementation of every `Qx` site in both the
/// direct and Winograd-aware layers.
pub fn observe_quant(
    tape: &mut Tape,
    x: Var,
    bits: BitWidth,
    obs: &mut Observer,
    train: bool,
) -> Var {
    if bits.is_float() {
        return x;
    }
    if train {
        obs.observe(tape.value(x));
    } else if obs.observations() == 0 {
        // Never warmed: fall back to observing once so eval is sane.
        obs.observe(tape.value(x));
    }
    let scale = obs.scale(bits);
    tape.fake_quant(x, bits, scale)
}

/// Read-only counterpart of [`observe_quant`] for the [`Infer`] path:
/// fake-quantizes `x` at the scale a *warm* observer has settled on
/// without ever mutating the observer.
///
/// A cold observer (zero observations) derives a one-off scale from the
/// tensor at hand — the same value the mutable path's one-shot fallback
/// would compute — so inference through an un-warmed model is still
/// well-defined. Note that "the tensor at hand" is the whole chunk in
/// batched execution, so a cold quantized model's outputs can vary with
/// the batch partition; warm the model (one training forward) for scales
/// that are stable and partition-independent.
pub fn infer_quant(tape: &mut Tape, x: Var, bits: BitWidth, obs: &Observer) -> Var {
    if bits.is_float() {
        return x;
    }
    let scale = if obs.observations() > 0 {
        obs.scale(bits)
    } else {
        // clone keeps the frozen flag, matching observe_quant's fallback
        // (a frozen cold observer stays at the tiny safe scale)
        let mut tmp = obs.clone();
        tmp.observe(tape.value(x));
        tmp.scale(bits)
    };
    tape.fake_quant(x, bits, scale)
}

/// Tap-wise counterpart of [`observe_quant`]: fake-quantizes a
/// Winograd-domain tensor (taps along the last axis) through per-tap
/// scales, updating the per-tap ranges only in training mode. A site
/// whose effective bit-widths are all FP32 passes through untouched.
pub fn observe_quant_taps(
    tape: &mut Tape,
    x: Var,
    bits: BitWidth,
    taps: &mut TapQuant,
    train: bool,
) -> Var {
    if bits.is_float() && taps.bit_overrides().is_none() {
        return x;
    }
    if train {
        taps.observe(tape.value(x));
    } else if taps.observations() == 0 {
        // Never warmed: fall back to observing once so eval is sane.
        taps.observe(tape.value(x));
    }
    let eff = taps.effective_bits(bits);
    let scales = taps.scales_for(&eff);
    tape.fake_quant_taps(x, &eff, &scales)
}

/// Read-only counterpart of [`observe_quant_taps`] for the [`Infer`]
/// path, mirroring [`infer_quant`]: a warm site quantizes at its
/// calibrated per-tap scales without mutating them; a cold site derives
/// one-off per-tap scales from the tensor at hand (the same values the
/// mutable path's one-shot fallback would compute).
pub fn infer_quant_taps(tape: &mut Tape, x: Var, bits: BitWidth, taps: &TapQuant) -> Var {
    if bits.is_float() && taps.bit_overrides().is_none() {
        return x;
    }
    let eff = taps.effective_bits(bits);
    let scales = if taps.observations() > 0 {
        taps.scales_for(&eff)
    } else {
        // clone keeps the frozen flag, matching observe_quant_taps's
        // fallback (a frozen cold site stays at the tiny safe scales)
        let mut tmp = taps.clone();
        tmp.observe(tape.value(x));
        tmp.scales_for(&eff)
    };
    tape.fake_quant_taps(x, &eff, &scales)
}

/// Mutable view of one quantization-calibration site, yielded by
/// [`Layer::visit_quant_state`].
///
/// This is the state [`Layer::reset_statistics`] clears and the `quant`
/// section of a [`FullCheckpoint`](crate::FullCheckpoint) persists: the
/// range observers behind every `Qx` point, the per-tap calibration of
/// tap-wise sites, and batch-norm running moments (which are calibration
/// statistics too — they must travel with a served model for its eval
/// path to reproduce).
pub enum QuantStateMut<'a> {
    /// A per-tensor range observer (one scale per site).
    Observer(&'a mut Observer),
    /// A tap-wise site (one scale per Winograd-domain tap).
    Taps(&'a mut TapQuant),
    /// Batch-norm running statistics.
    BatchNorm {
        /// Per-channel running mean.
        mean: &'a mut [f32],
        /// Per-channel running variance.
        var: &'a mut [f32],
    },
}

/// Anything with trainable parameters and a tape-level forward.
pub trait Layer {
    /// Runs the layer, appending ops to `tape`. `train` selects batch-stat
    /// behaviour (batch norm) and observer updates (quantizers).
    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var;

    /// Shape-checked forward: validates the input against the layer's
    /// expectations and returns [`WaError::ShapeMismatch`] instead of
    /// panicking — the path a serving system uses on untrusted requests.
    ///
    /// The default implementation performs no checks; leaf layers with
    /// shape requirements override it. Composite layers inherit the
    /// default and rely on their first leaf to reject bad input.
    ///
    /// # Errors
    ///
    /// [`WaError::ShapeMismatch`] when the input cannot be consumed by
    /// this layer.
    fn try_forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Result<Var, WaError> {
        Ok(self.forward(tape, x, train))
    }

    /// Visits every parameter (for optimizers, serialization, counting).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Clears learned *statistics* (batch-norm running estimates,
    /// quantization range observers) without touching weights. Called
    /// before a post-training swap so the warm-up re-estimates every
    /// moving average from scratch (paper Table 1 procedure). Layers
    /// without statistics keep the default no-op; composite layers must
    /// forward the call to children.
    fn reset_statistics(&mut self) {}

    /// Visits every named calibration site ([`QuantStateMut`]) of the
    /// layer — the serializable counterpart of [`Layer::reset_statistics`],
    /// used to persist calibrated quantization ranges (and batch-norm
    /// running moments) in the `quant` section of a
    /// [`FullCheckpoint`](crate::FullCheckpoint). Names follow the
    /// parameter convention: `<layer>.q.<site>` for observers,
    /// `<layer>.bn` for batch-norm moments. Layers without statistics
    /// keep the default no-op; composite layers must forward the call to
    /// children.
    fn visit_quant_state(&mut self, _f: &mut dyn FnMut(&str, QuantStateMut<'_>)) {}

    /// Total trainable scalar count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| {
            if p.trainable {
                n += p.len()
            }
        });
        n
    }
}

/// Standard 2-D convolution lowered via `im2row` + GEMM — the paper's
/// baseline algorithm ("im2row, one of the most widely used optimized
/// convolution implementations").
///
/// Supports optional fake-quantization of input activations, weights and
/// outputs (the INT8 `im2row` rows of Table 3).
#[derive(Debug)]
pub struct Conv2d {
    /// Weight `[K, C, kh, kw]`.
    pub weight: Param,
    /// Optional bias `[K]`.
    pub bias: Option<Param>,
    /// Stride (both dims).
    pub stride: usize,
    /// Zero padding (all sides).
    pub pad: usize,
    /// Quantization of activations/weights.
    pub quant: QuantConfig,
    obs_in: Observer,
    obs_w: Observer,
    obs_out: Observer,
    /// Memoized prepacked `i8` weight for the [`Execution::Int8`] path,
    /// tagged with the [`QuantConfig`] it was quantized under. Weights
    /// are constant across a batch, so the [`Infer`] path quantizes once
    /// and shares the buffer (an `Arc` bump per chunk) across every
    /// [`crate::BatchExecutor`] worker. Invalidated by every `&mut self`
    /// path that can change the derivation, like the Winograd layer's
    /// filter cache.
    qweight_cache: std::sync::Mutex<Option<(QuantConfig, std::sync::Arc<wa_quant::QTensor>)>>,
}

impl Conv2d {
    /// Creates a conv layer from a validated spec, with Kaiming-normal
    /// weights.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] if the spec was mutated into an invalid
    /// state after building.
    pub fn from_spec(spec: &Conv2dSpec, rng: &mut SeededRng) -> Result<Conv2d, WaError> {
        spec.validate()?;
        let name = &spec.name;
        let weight = Param::new(
            format!("{name}.weight"),
            rng.kaiming_tensor(&[
                spec.out_channels,
                spec.in_channels,
                spec.kernel,
                spec.kernel,
            ]),
        );
        let bias = spec
            .bias
            .then(|| Param::new(format!("{name}.bias"), Tensor::zeros(&[spec.out_channels])));
        Ok(Conv2d {
            weight,
            bias,
            stride: spec.stride,
            pad: spec.pad,
            quant: spec.quant,
            obs_in: Observer::default(),
            obs_w: Observer::default(),
            obs_out: Observer::default(),
            qweight_cache: std::sync::Mutex::new(None),
        })
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weight.value.dim(0)
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.weight.value.dim(1)
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.weight.value.dim(2)
    }

    /// Freezes/unfreezes the layer's range observers (eval vs train).
    pub fn set_observers_frozen(&mut self, frozen: bool) {
        for o in [&mut self.obs_in, &mut self.obs_w, &mut self.obs_out] {
            if frozen {
                o.freeze()
            } else {
                o.unfreeze()
            }
        }
        self.invalidate_qweight_cache();
    }

    /// Drops the memoized prepacked `i8` weight. Called internally by
    /// every `&mut self` path of the [`Layer`] API; only needed
    /// explicitly after mutating the public `weight` field or observers
    /// outside that API.
    pub fn invalidate_qweight_cache(&mut self) {
        *self
            .qweight_cache
            .get_mut()
            .expect("qweight cache lock poisoned") = None;
    }

    /// The prepacked `i8` weight for the current weights/quant config,
    /// quantized once and memoized (shared handle per caller).
    fn cached_qweight(&self) -> std::sync::Arc<wa_quant::QTensor> {
        let mut guard = self
            .qweight_cache
            .lock()
            .expect("qweight cache lock poisoned");
        if let Some((q, t)) = &*guard {
            if *q == self.quant {
                return t.clone();
            }
        }
        let s_w = crate::int8::observer_scale(&self.obs_w, self.quant.weights, &self.weight.value);
        let qt = std::sync::Arc::new(wa_quant::QTensor::quantize(
            &self.weight.value,
            self.quant.weights,
            s_w,
        ));
        *guard = Some((self.quant, qt.clone()));
        qt
    }

    /// The integer forward: quantize → `gemm_i8` → requantize, inserted
    /// into the tape as a constant leaf (the [`Infer`] path records no
    /// gradients, so eager evaluation is equivalent).
    fn infer_int8(&self, tape: &mut Tape, x: Var) -> Result<Var, WaError> {
        if let Some(reason) = self.quant.int8_incompatibility() {
            return Err(WaError::invalid(
                "Conv2d",
                "quant.execution",
                format!("`{}`: {reason}", self.weight.name),
            ));
        }
        let xt = tape.value(x).clone();
        let abits = self.quant.activations;
        let s_in = crate::int8::observer_scale(&self.obs_in, abits, &xt);
        let qw = self.cached_qweight();
        let y = crate::int8::conv2d_int8(
            &xt,
            &qw,
            self.bias.as_ref().map(|b| &b.value),
            self.stride,
            self.pad,
            s_in,
            abits,
            &self.obs_out,
        );
        Ok(tape.leaf(y))
    }
}

/// The three quantization points of the direct (im2row) convolution.
#[derive(Clone, Copy)]
enum ConvSite {
    /// Input activations.
    In,
    /// Weights.
    Weight,
    /// Output activations.
    Out,
}

/// Static geometry of one direct convolution, copied out of the layer so
/// the shared pipeline below borrows neither the layer nor its observers.
#[derive(Clone, Copy)]
struct ConvGeom {
    out_ch: usize,
    in_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
}

/// The im2row + GEMM pipeline shared by [`Layer::forward`] (mutable
/// observers, training) and [`Infer::infer`] (read-only observers): the
/// `quant` callback realizes each `Qx` site for its caller.
fn conv2d_pipeline(
    tape: &mut Tape,
    x: Var,
    wv: Var,
    bias: Option<Var>,
    geom: ConvGeom,
    quant: &mut dyn FnMut(&mut Tape, Var, ConvSite) -> Var,
) -> Var {
    let (n, h, w) = {
        let v = tape.value(x);
        assert_eq!(
            v.ndim(),
            4,
            "Conv2d expects NCHW input, got {:?}",
            v.shape()
        );
        (v.dim(0), v.dim(2), v.dim(3))
    };
    let k = geom.out_ch;
    let (kh, kw) = (geom.kernel, geom.kernel);
    let oh = (h + 2 * geom.pad - kh) / geom.stride + 1;
    let ow = (w + 2 * geom.pad - kw) / geom.stride + 1;

    let (xq, wq) = {
        let _span = wa_obs::stage_span!("fake_quant");
        (
            quant(tape, x, ConvSite::In),
            quant(tape, wv, ConvSite::Weight),
        )
    };

    let rows = {
        let _span = wa_obs::stage_span!("im2row");
        let xp = tape.pad(xq, geom.pad);
        tape.im2row(xp, kh, kw, geom.stride)
    };
    let out = {
        let _span = wa_obs::stage_span!("im2row.gemm");
        let wmat = tape.reshape(wq, &[k, geom.in_ch * kh * kw]);
        let mut out = tape.matmul_nt(rows, wmat); // [N·oh·ow, K]
        if let Some(bv) = bias {
            out = tape.add_bias_rows(out, bv);
        }
        out
    };
    // [N, oh·ow, K] -> [N, K, oh·ow] -> NCHW
    let p = tape.permute3(out, [n, oh * ow, k], [0, 2, 1]);
    let y = tape.reshape(p, &[n, k, oh, ow]);
    let _span = wa_obs::stage_span!("fake_quant");
    quant(tape, y, ConvSite::Out)
}

impl Conv2d {
    fn geom(&self) -> ConvGeom {
        ConvGeom {
            out_ch: self.out_channels(),
            in_ch: self.in_channels(),
            kernel: self.kernel(),
            stride: self.stride,
            pad: self.pad,
        }
    }

    fn check_input(&self, shape: &[usize]) -> Result<(), WaError> {
        let k = self.kernel();
        if shape.len() != 4 || shape[1] != self.in_channels() {
            return Err(WaError::shape(
                format!("Conv2d `{}` input", self.weight.name),
                &[0, self.in_channels(), 0, 0],
                shape,
            ));
        }
        if shape[2] + 2 * self.pad < k || shape[3] + 2 * self.pad < k {
            return Err(WaError::shape(
                format!("Conv2d `{}` spatial extent vs kernel", self.weight.name),
                &[k, k],
                &shape[2..],
            ));
        }
        Ok(())
    }
}

impl Layer for Conv2d {
    fn try_forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Result<Var, WaError> {
        self.check_input(tape.value(x).shape())?;
        Ok(self.forward(tape, x, train))
    }

    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        self.invalidate_qweight_cache();
        let geom = self.geom();
        let wv = tape.param(&mut self.weight);
        let bias = self.bias.as_mut().map(|b| tape.param(b));
        let q = self.quant;
        let (oi, ow, oo) = (&mut self.obs_in, &mut self.obs_w, &mut self.obs_out);
        conv2d_pipeline(tape, x, wv, bias, geom, &mut |t, v, site| match site {
            ConvSite::In => observe_quant(t, v, q.activations, oi, train),
            ConvSite::Weight => observe_quant(t, v, q.weights, ow, train),
            ConvSite::Out => observe_quant(t, v, q.activations, oo, train),
        })
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.invalidate_qweight_cache();
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn reset_statistics(&mut self) {
        self.invalidate_qweight_cache();
        self.obs_in.reset();
        self.obs_w.reset();
        self.obs_out.reset();
    }

    fn visit_quant_state(&mut self, f: &mut dyn FnMut(&str, QuantStateMut<'_>)) {
        self.invalidate_qweight_cache();
        let prefix = self.weight.name.trim_end_matches(".weight").to_string();
        f(
            &format!("{prefix}.q.input"),
            QuantStateMut::Observer(&mut self.obs_in),
        );
        f(
            &format!("{prefix}.q.weight"),
            QuantStateMut::Observer(&mut self.obs_w),
        );
        f(
            &format!("{prefix}.q.output"),
            QuantStateMut::Observer(&mut self.obs_out),
        );
    }
}

impl Infer for Conv2d {
    fn infer(&self, tape: &mut Tape, x: Var) -> Result<Var, WaError> {
        self.check_input(tape.value(x).shape())?;
        if self.quant.execution == Execution::Int8 {
            return self.infer_int8(tape, x);
        }
        let geom = self.geom();
        let wv = tape.param_ref(&self.weight);
        let bias = self.bias.as_ref().map(|b| tape.param_ref(b));
        let q = self.quant;
        Ok(conv2d_pipeline(
            tape,
            x,
            wv,
            bias,
            geom,
            &mut |t, v, site| match site {
                ConvSite::In => infer_quant(t, v, q.activations, &self.obs_in),
                ConvSite::Weight => infer_quant(t, v, q.weights, &self.obs_w),
                ConvSite::Out => infer_quant(t, v, q.activations, &self.obs_out),
            },
        ))
    }
}

/// Fully connected layer `y = x·Wᵀ + b` with optional quantization.
#[derive(Debug)]
pub struct Linear {
    /// Weight `[out, in]`.
    pub weight: Param,
    /// Bias `[out]`.
    pub bias: Param,
    /// Quantization of activations/weights.
    pub quant: QuantConfig,
    obs_in: Observer,
    obs_w: Observer,
}

impl Linear {
    /// Creates a linear layer from a validated spec, with Kaiming-normal
    /// weights and zero bias.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] if the spec was mutated into an invalid
    /// state after building.
    pub fn from_spec(spec: &LinearSpec, rng: &mut SeededRng) -> Result<Linear, WaError> {
        spec.validate()?;
        let name = &spec.name;
        Ok(Linear {
            weight: Param::new(
                format!("{name}.weight"),
                rng.kaiming_tensor(&[spec.out_features, spec.in_features]),
            ),
            bias: Param::new(format!("{name}.bias"), Tensor::zeros(&[spec.out_features])),
            quant: spec.quant,
            obs_in: Observer::default(),
            obs_w: Observer::default(),
        })
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.dim(1)
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.dim(0)
    }
}

impl Layer for Linear {
    fn try_forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Result<Var, WaError> {
        let shape = tape.value(x).shape().to_vec();
        if shape.len() != 2 || shape[1] != self.in_features() {
            return Err(WaError::shape(
                format!("Linear `{}` input", self.weight.name),
                &[0, self.in_features()],
                &shape,
            ));
        }
        Ok(self.forward(tape, x, train))
    }

    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        let xq = observe_quant(tape, x, self.quant.activations, &mut self.obs_in, train);
        let wv = tape.param(&mut self.weight);
        let wq = observe_quant(tape, wv, self.quant.weights, &mut self.obs_w, train);
        let bv = tape.param(&mut self.bias);
        let y = tape.matmul_nt(xq, wq);
        tape.add_bias_rows(y, bv)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn reset_statistics(&mut self) {
        self.obs_in.reset();
        self.obs_w.reset();
    }

    fn visit_quant_state(&mut self, f: &mut dyn FnMut(&str, QuantStateMut<'_>)) {
        let prefix = self.weight.name.trim_end_matches(".weight").to_string();
        f(
            &format!("{prefix}.q.input"),
            QuantStateMut::Observer(&mut self.obs_in),
        );
        f(
            &format!("{prefix}.q.weight"),
            QuantStateMut::Observer(&mut self.obs_w),
        );
    }
}

impl Infer for Linear {
    fn infer(&self, tape: &mut Tape, x: Var) -> Result<Var, WaError> {
        let shape = tape.value(x).shape().to_vec();
        if shape.len() != 2 || shape[1] != self.in_features() {
            return Err(WaError::shape(
                format!("Linear `{}` input", self.weight.name),
                &[0, self.in_features()],
                &shape,
            ));
        }
        let xq = infer_quant(tape, x, self.quant.activations, &self.obs_in);
        let wv = tape.param_ref(&self.weight);
        let wq = infer_quant(tape, wv, self.quant.weights, &self.obs_w);
        let bv = tape.param_ref(&self.bias);
        let y = tape.matmul_nt(xq, wq);
        Ok(tape.add_bias_rows(y, bv))
    }
}

/// Batch normalization over NCHW with learnable affine and running
/// statistics.
#[derive(Debug)]
pub struct BatchNorm2d {
    /// Scale `[C]`.
    pub gamma: Param,
    /// Shift `[C]`.
    pub beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer from a validated spec.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] if the spec was mutated into an invalid
    /// state after building.
    pub fn from_spec(spec: &BatchNormSpec) -> Result<BatchNorm2d, WaError> {
        spec.validate()?;
        let name = &spec.name;
        Ok(BatchNorm2d {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(&[spec.channels])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[spec.channels])),
            running_mean: vec![0.0; spec.channels],
            running_var: vec![1.0; spec.channels],
            momentum: spec.momentum,
            eps: spec.eps,
        })
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.running_mean.len()
    }

    /// Current running mean (for tests/serialization).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Current running variance.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn try_forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Result<Var, WaError> {
        let shape = tape.value(x).shape().to_vec();
        if shape.len() != 4 || shape[1] != self.channels() {
            return Err(WaError::shape(
                format!("BatchNorm2d `{}` input", self.gamma.name),
                &[0, self.channels(), 0, 0],
                &shape,
            ));
        }
        Ok(self.forward(tape, x, train))
    }

    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        let g = tape.param(&mut self.gamma);
        let b = tape.param(&mut self.beta);
        let (y, mean, var) = tape.batch_norm(
            x,
            g,
            b,
            crate::BnRunning {
                mean: &self.running_mean,
                var: &self.running_var,
                eps: self.eps,
            },
            train,
        );
        if train {
            for c in 0..self.running_mean.len() {
                self.running_mean[c] =
                    self.momentum * self.running_mean[c] + (1.0 - self.momentum) * mean[c];
                self.running_var[c] =
                    self.momentum * self.running_var[c] + (1.0 - self.momentum) * var[c];
            }
        }
        y
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn reset_statistics(&mut self) {
        self.running_mean.fill(0.0);
        self.running_var.fill(1.0);
    }

    fn visit_quant_state(&mut self, f: &mut dyn FnMut(&str, QuantStateMut<'_>)) {
        let prefix = self.gamma.name.trim_end_matches(".gamma").to_string();
        f(
            &format!("{prefix}.bn"),
            QuantStateMut::BatchNorm {
                mean: &mut self.running_mean,
                var: &mut self.running_var,
            },
        );
    }
}

impl Infer for BatchNorm2d {
    fn infer(&self, tape: &mut Tape, x: Var) -> Result<Var, WaError> {
        let shape = tape.value(x).shape().to_vec();
        if shape.len() != 4 || shape[1] != self.channels() {
            return Err(WaError::shape(
                format!("BatchNorm2d `{}` input", self.gamma.name),
                &[0, self.channels(), 0, 0],
                &shape,
            ));
        }
        let g = tape.param_ref(&self.gamma);
        let b = tape.param_ref(&self.beta);
        let (y, _, _) = tape.batch_norm(
            x,
            g,
            b,
            crate::BnRunning {
                mean: &self.running_mean,
                var: &self.running_var,
                eps: self.eps,
            },
            false,
        );
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(name: &str, in_ch: usize, out_ch: usize, bias: bool, q: QuantConfig) -> Conv2dSpec {
        Conv2dSpec::builder(name)
            .in_channels(in_ch)
            .out_channels(out_ch)
            .bias(bias)
            .quant(q)
            .build()
            .unwrap()
    }

    #[test]
    fn conv2d_shapes_and_param_count() {
        let mut rng = SeededRng::new(0);
        let mut c = Conv2d::from_spec(&conv("c", 3, 8, true, QuantConfig::FP32), &mut rng).unwrap();
        assert_eq!(c.param_count(), 8 * 3 * 9 + 8);
        let mut tape = Tape::new();
        let x = tape.leaf(rng.uniform_tensor(&[2, 3, 8, 8], -1.0, 1.0));
        let y = c.try_forward(&mut tape, x, true).unwrap();
        assert_eq!(tape.value(y).shape(), &[2, 8, 8, 8]);
    }

    #[test]
    fn conv2d_stride_two_shape() {
        let mut rng = SeededRng::new(1);
        let spec = Conv2dSpec::builder("c")
            .in_channels(2)
            .out_channels(4)
            .stride(2)
            .build()
            .unwrap();
        let mut conv = Conv2d::from_spec(&spec, &mut rng).unwrap();
        let mut tape = Tape::new();
        let x = tape.leaf(rng.uniform_tensor(&[1, 2, 8, 8], -1.0, 1.0));
        let y = conv.forward(&mut tape, x, true);
        assert_eq!(tape.value(y).shape(), &[1, 4, 4, 4]);
    }

    #[test]
    fn try_forward_rejects_wrong_channels_and_tiny_input() {
        let mut rng = SeededRng::new(9);
        let mut c =
            Conv2d::from_spec(&conv("c", 3, 8, false, QuantConfig::FP32), &mut rng).unwrap();
        let mut tape = Tape::new();
        let x = tape.leaf(rng.uniform_tensor(&[1, 4, 8, 8], -1.0, 1.0));
        assert!(matches!(
            c.try_forward(&mut tape, x, false),
            Err(WaError::ShapeMismatch { .. })
        ));
        // one-pixel input with pad 1 still fits a 3×3 kernel; zero-size
        // spatial input cannot occur in a [N, C, H, W] tensor, so probe a
        // pad-0 layer instead
        let spec = Conv2dSpec::builder("p0")
            .in_channels(1)
            .out_channels(1)
            .pad(0)
            .build()
            .unwrap();
        let mut p0 = Conv2d::from_spec(&spec, &mut rng).unwrap();
        let tiny = tape.leaf(rng.uniform_tensor(&[1, 1, 2, 2], -1.0, 1.0));
        assert!(matches!(
            p0.try_forward(&mut tape, tiny, false),
            Err(WaError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn conv2d_matches_direct_reference() {
        let mut rng = SeededRng::new(2);
        let mut conv =
            Conv2d::from_spec(&conv("c", 3, 5, true, QuantConfig::FP32), &mut rng).unwrap();
        let x = rng.uniform_tensor(&[2, 3, 6, 7], -1.0, 1.0);
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let y = conv.forward(&mut tape, xv, false);
        let want = wa_tensor::conv2d_direct(
            &x,
            &conv.weight.value,
            conv.bias.as_ref().map(|b| &b.value),
            1,
            1,
        );
        let got = tape.value(y);
        assert_eq!(got.shape(), want.shape());
        for (a, b) in got.data().iter().zip(want.data()) {
            assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
        }
    }

    #[test]
    fn quantized_conv_differs_but_is_close() {
        let mut rng = SeededRng::new(3);
        let mut conv_fp =
            Conv2d::from_spec(&conv("c", 2, 4, false, QuantConfig::FP32), &mut rng).unwrap();
        let mut conv_q = Conv2d::from_spec(
            &conv("q", 2, 4, false, QuantConfig::uniform(BitWidth::INT8)),
            &mut rng,
        )
        .unwrap();
        conv_q.weight.value = conv_fp.weight.value.clone();
        let x = rng.uniform_tensor(&[1, 2, 6, 6], -1.0, 1.0);
        let mut t1 = Tape::new();
        let x1 = t1.leaf(x.clone());
        let y1 = conv_fp.forward(&mut t1, x1, true);
        let mut t2 = Tape::new();
        let x2 = t2.leaf(x);
        let y2 = conv_q.forward(&mut t2, x2, true);
        let (a, b) = (t1.value(y1), t2.value(y2));
        assert_ne!(a.data(), b.data(), "INT8 must differ from FP32");
        let mut max_err = 0.0f32;
        for (p, q) in a.data().iter().zip(b.data()) {
            max_err = max_err.max((p - q).abs());
        }
        assert!(max_err < 0.2, "INT8 error should be moderate: {}", max_err);
    }

    #[test]
    fn linear_forward_values() {
        let mut rng = SeededRng::new(4);
        let spec = LinearSpec::builder("l")
            .in_features(3)
            .out_features(2)
            .build()
            .unwrap();
        let mut lin = Linear::from_spec(&spec, &mut rng).unwrap();
        lin.weight.value = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0], &[2, 3]);
        lin.bias.value = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]));
        let y = lin.forward(&mut tape, x, true);
        assert_eq!(tape.value(y).data(), &[1.5, 1.5]);
    }

    #[test]
    fn batchnorm_normalizes_in_train_mode() {
        let mut bn =
            BatchNorm2d::from_spec(&BatchNormSpec::builder("bn").channels(2).build().unwrap())
                .unwrap();
        let mut rng = SeededRng::new(5);
        let mut tape = Tape::new();
        let x = tape.leaf(rng.uniform_tensor(&[4, 2, 5, 5], 3.0, 5.0));
        let y = bn.forward(&mut tape, x, true);
        let yv = tape.value(y);
        // per-channel mean ≈ 0, var ≈ 1
        let (n, c, h, w) = (4, 2, 5, 5);
        for ch in 0..c {
            let mut mean = 0.0f64;
            let mut count = 0;
            for img in 0..n {
                let base = (img * c + ch) * h * w;
                for i in base..base + h * w {
                    mean += yv.data()[i] as f64;
                    count += 1;
                }
            }
            mean /= count as f64;
            assert!(mean.abs() < 1e-4, "channel {} mean {}", ch, mean);
        }
        // running stats moved toward batch stats
        assert!(bn.running_mean()[0] > 0.0);
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn =
            BatchNorm2d::from_spec(&BatchNormSpec::builder("bn").channels(1).build().unwrap())
                .unwrap();
        let mut rng = SeededRng::new(6);
        // Train several batches to move running stats
        for _ in 0..20 {
            let mut tape = Tape::new();
            let x = tape.leaf(rng.uniform_tensor(&[8, 1, 4, 4], 1.0, 3.0));
            let _ = bn.forward(&mut tape, x, true);
        }
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::full(&[1, 1, 2, 2], 2.0));
        let y = bn.forward(&mut tape, x, false);
        // running mean ≈ 2, so output ≈ 0
        for &v in tape.value(y).data() {
            assert!(v.abs() < 0.6, "eval output {}", v);
        }
    }
}
