//! # wa-nn
//!
//! A compact define-by-run neural-network stack: tape-based reverse-mode
//! autodiff ([`Tape`]), layers ([`Conv2d`], [`Linear`], [`BatchNorm2d`]),
//! optimizers ([`Sgd`], [`Adam`], [`CosineAnnealing`]) and metrics.
//!
//! Built from scratch so that the Winograd-aware convolution of
//! *Searching for Winograd-aware Quantized Networks* (MLSys 2020) can be
//! expressed op-by-op — matmuls, tile gathers/scatters, per-coordinate
//! batched GEMM and straight-through fake-quantization — with gradients
//! flowing through **every** stage, including the transform matrices
//! `Aᵀ`, `G`, `Bᵀ` when they are trainable (`-flex`).
//!
//! Layers are constructed from typed specs built through fallible
//! builders ([`Conv2dSpec`], [`LinearSpec`], [`BatchNormSpec`]): invalid
//! configurations surface as [`WaError`] values instead of panics, and
//! [`Layer::try_forward`] gives a shape-checked forward path for serving.
//!
//! Serving-side throughput comes from the [`executor`] module: the
//! read-only [`Infer`] trait (the `&self` half of [`Layer::forward`])
//! lets one model be shared across threads, and [`BatchExecutor`] shards
//! an input batch across `std::thread::scope` workers — each with its
//! own [`Tape`] — with outputs identical to the sequential per-sample
//! loop.
//!
//! # Example
//!
//! ```
//! use wa_nn::{accuracy, Layer, Linear, LinearSpec, Optimizer, Sgd, Tape};
//! use wa_tensor::{SeededRng, Tensor};
//!
//! // learn y = argmax over a linear map of 2-D points
//! let mut rng = SeededRng::new(7);
//! let spec = LinearSpec::builder("clf").in_features(2).out_features(2).build().unwrap();
//! let mut model = Linear::from_spec(&spec, &mut rng).unwrap();
//! let mut opt = Sgd::new(0.5, 0.0, false, 0.0);
//! for _ in 0..200 {
//!     let xs = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
//!     let mut tape = Tape::new();
//!     let x = tape.leaf(xs);
//!     let logits = model.forward(&mut tape, x, true);
//!     let loss = tape.cross_entropy(logits, &[0, 1]);
//!     let grads = tape.backward(loss);
//!     model.visit_params(&mut |p| {
//!         p.absorb(&grads);
//!         opt.update(p);
//!     });
//! }
//! let mut tape = Tape::new();
//! let x = tape.leaf(Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]));
//! let logits = model.forward(&mut tape, x, false);
//! assert_eq!(accuracy(tape.value(logits), &[0, 1]), 1.0);
//! ```

mod checkpoint;
pub mod container;
mod error;
pub mod executor;
pub(crate) mod int8;
mod layers;
mod metrics;
mod optim;
mod param;
mod spec;
mod tape;

pub use checkpoint::{
    export_params, export_quant_state, import_params, import_quant_state, Checkpoint,
    CheckpointError, FullCheckpoint, QuantSiteState,
};
pub use container::{
    is_container, read_checkpoint, write_checkpoint, Blob, BlobData, BlobDtype, Container,
};
pub use error::WaError;
pub use executor::{BatchExecutor, ExecutorConfig, ExecutorStats, Infer};
pub use layers::{
    infer_quant, infer_quant_taps, observe_quant, observe_quant_taps, BatchNorm2d, Conv2d, Layer,
    Linear, QuantConfig, QuantStateMut,
};
pub use metrics::{accuracy, RunningMean};
pub use optim::{Adam, CosineAnnealing, Optimizer, Sgd};
pub use param::Param;
pub use spec::{
    BatchNormSpec, BatchNormSpecBuilder, Conv2dSpec, Conv2dSpecBuilder, LinearSpec,
    LinearSpecBuilder,
};
pub use tape::{BnRunning, Gradients, Tape, Var};
