//! Parameter checkpointing: export/import every parameter of a model as
//! a name-keyed JSON document.
//!
//! This is how experiments persist trained models — including learned
//! Winograd transforms, whose matrices ride along as ordinary parameters
//! (`<layer>.at`, `<layer>.g`, `<layer>.bt`).
//!
//! Two document shapes exist:
//!
//! * [`Checkpoint`] — just the parameters (`{"params": {...}}`), enough
//!   when the receiving side already has the model built.
//! * [`FullCheckpoint`] — architecture name + model-spec document +
//!   parameters in **one** JSON file, so a serving node can reconstruct
//!   the model from nothing but the document. The spec half is kept as an
//!   opaque [`Json`] here (wa-nn doesn't know about whole-model specs);
//!   `wa_models::ZooModel` interprets it.

use std::collections::BTreeMap;

use wa_quant::BitWidth;
use wa_tensor::{Json, JsonError, Tensor};

use crate::layers::{Layer, QuantStateMut};

/// Prefixes a [`JsonError`]'s message with the key path it was found
/// under, so load failures reported over a wire are diagnosable
/// ("`params.conv1.weight`: …" instead of a bare offset).
fn at_path(path: &str, e: JsonError) -> JsonError {
    JsonError {
        offset: e.offset,
        message: format!("`{path}`: {}", e.message),
    }
}

/// A [`JsonError`] for a missing/mistyped key at `path` (offset 0: the
/// problem is structural, not lexical).
fn path_error(path: &str, message: impl Into<String>) -> JsonError {
    JsonError {
        offset: 0,
        message: format!("`{path}`: {}", message.into()),
    }
}

/// The canonical error path of one calibration site's state
/// (`quant.<site>`), shared by the JSON reader and the binary container
/// reader so both formats diagnose a broken quant section identically.
pub(crate) fn quant_site_path(site: &str) -> String {
    format!("quant.{site}")
}

/// A serialized set of parameters, keyed by parameter name.
#[derive(Clone, Debug, Default)]
pub struct Checkpoint {
    /// Parameter values in model-visit order, keyed by name.
    pub params: BTreeMap<String, Tensor>,
}

impl Checkpoint {
    /// Serializes as a JSON document (`{"params": {name: tensor, …}}`).
    pub fn to_json(&self) -> Json {
        Json::obj([(
            "params",
            Json::Obj(
                self.params
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_json()))
                    .collect(),
            ),
        )])
    }

    /// Reads a checkpoint back from its [`Checkpoint::to_json`] encoding.
    ///
    /// # Errors
    ///
    /// [`JsonError`] if the text is not valid JSON or lacks the expected
    /// structure; structural errors carry the offending key path (e.g.
    /// `` `params.conv1.weight` ``) in the message.
    pub fn from_json_str(text: &str) -> Result<Checkpoint, JsonError> {
        let doc = Json::parse(text)?;
        Checkpoint::from_json(&doc)
    }

    /// Reads a checkpoint out of an already-parsed document (the
    /// key-path-carrying core of [`Checkpoint::from_json_str`]).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the offending key path in the message.
    pub fn from_json(doc: &Json) -> Result<Checkpoint, JsonError> {
        let params = doc
            .get("params")
            .ok_or_else(|| path_error("params", "checkpoint JSON needs a `params` object"))?
            .as_obj()
            .ok_or_else(|| path_error("params", "must be an object of name → tensor"))?;
        let mut out = BTreeMap::new();
        for (name, tensor) in params {
            let t = Tensor::from_json(tensor).map_err(|e| at_path(&format!("params.{name}"), e))?;
            out.insert(name.clone(), t);
        }
        Ok(Checkpoint { params: out })
    }
}

/// One calibration site's serialized state — an entry of the `quant`
/// section of a [`FullCheckpoint`]. See [`Layer::visit_quant_state`] for
/// what a site is; this is the state a served model needs beyond its
/// parameters for its quantized inference path to be bit-identical to
/// the exporting process.
#[derive(Clone, Debug, PartialEq)]
pub enum QuantSiteState {
    /// A per-tensor range observer: `{"range", "seen", "frozen"}`.
    Observer {
        /// Calibrated dynamic range (max |x|).
        range: f32,
        /// Batches observed.
        seen: u64,
        /// Whether range updates were frozen.
        frozen: bool,
    },
    /// A tap-wise site: `{"ranges", "seen", "frozen", "bits"?}`.
    Taps {
        /// Calibrated per-tap ranges (`n²` values over the tile grid).
        ranges: Vec<f32>,
        /// Per-tap bit-width overrides, if any were installed.
        bits: Option<Vec<BitWidth>>,
        /// Batches observed.
        seen: u64,
        /// Whether range updates were frozen.
        frozen: bool,
    },
    /// Batch-norm running moments: `{"mean", "var"}`.
    BatchNorm {
        /// Per-channel running mean.
        mean: Vec<f32>,
        /// Per-channel running variance.
        var: Vec<f32>,
    },
}

impl QuantSiteState {
    /// Serializes this site's state as a JSON object.
    pub fn to_json(&self) -> Json {
        let f32s = |xs: &[f32]| Json::Arr(xs.iter().map(|&v| Json::from(v as f64)).collect());
        match self {
            QuantSiteState::Observer {
                range,
                seen,
                frozen,
            } => Json::obj([
                ("range", Json::from(*range as f64)),
                ("seen", Json::from(*seen as f64)),
                ("frozen", Json::from(*frozen)),
            ]),
            QuantSiteState::Taps {
                ranges,
                bits,
                seen,
                frozen,
            } => {
                let mut fields = vec![
                    ("ranges".to_string(), f32s(ranges)),
                    ("seen".to_string(), Json::from(*seen as f64)),
                    ("frozen".to_string(), Json::from(*frozen)),
                ];
                if let Some(b) = bits {
                    fields.push((
                        "bits".to_string(),
                        Json::Arr(b.iter().map(|w| Json::from(w.to_string())).collect()),
                    ));
                }
                Json::Obj(fields)
            }
            QuantSiteState::BatchNorm { mean, var } => {
                Json::obj([("mean", f32s(mean)), ("var", f32s(var))])
            }
        }
    }

    /// Reads a site state back from its [`QuantSiteState::to_json`]
    /// encoding. `path` is the key path (`quant.<site>`) reported in
    /// errors.
    ///
    /// # Errors
    ///
    /// [`JsonError`] carrying `path` for a missing/mistyped field.
    pub fn from_json(path: &str, doc: &Json) -> Result<QuantSiteState, JsonError> {
        if doc.as_obj().is_none() {
            return Err(path_error(path, "quant-site state must be an object"));
        }
        let f32_list = |key: &str| -> Result<Vec<f32>, JsonError> {
            let sub = format!("{path}.{key}");
            doc.get(key)
                .ok_or_else(|| path_error(&sub, "missing"))?
                .as_arr()
                .ok_or_else(|| path_error(&sub, "must be an array of numbers"))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .map(|x| x as f32)
                        .ok_or_else(|| path_error(&sub, format!("expected a number, got {v}")))
                })
                .collect()
        };
        let seen = |()| -> Result<u64, JsonError> {
            let sub = format!("{path}.seen");
            doc.get("seen")
                .ok_or_else(|| path_error(&sub, "missing"))?
                .as_f64()
                .filter(|x| *x >= 0.0 && x.fract() == 0.0)
                .map(|x| x as u64)
                .ok_or_else(|| path_error(&sub, "must be a non-negative integer"))
        };
        let frozen = |()| -> Result<bool, JsonError> {
            let sub = format!("{path}.frozen");
            doc.get("frozen")
                .ok_or_else(|| path_error(&sub, "missing"))?
                .as_bool()
                .ok_or_else(|| path_error(&sub, "must be a boolean"))
        };
        if doc.get("ranges").is_some() {
            let bits = match doc.get("bits") {
                None => None,
                Some(list) => {
                    let sub = format!("{path}.bits");
                    let items = list
                        .as_arr()
                        .ok_or_else(|| path_error(&sub, "must be an array of precisions"))?;
                    let mut out = Vec::with_capacity(items.len());
                    for item in items {
                        let s = item.as_str().ok_or_else(|| {
                            path_error(&sub, format!("expected a precision string, got {item}"))
                        })?;
                        out.push(
                            s.parse::<BitWidth>()
                                .map_err(|e| path_error(&sub, e.to_string()))?,
                        );
                    }
                    Some(out)
                }
            };
            return Ok(QuantSiteState::Taps {
                ranges: f32_list("ranges")?,
                bits,
                seen: seen(())?,
                frozen: frozen(())?,
            });
        }
        if doc.get("mean").is_some() || doc.get("var").is_some() {
            return Ok(QuantSiteState::BatchNorm {
                mean: f32_list("mean")?,
                var: f32_list("var")?,
            });
        }
        if doc.get("range").is_some() {
            let sub = format!("{path}.range");
            let range = doc
                .get("range")
                .and_then(|v| v.as_f64())
                .map(|x| x as f32)
                .ok_or_else(|| path_error(&sub, "must be a number"))?;
            return Ok(QuantSiteState::Observer {
                range,
                seen: seen(())?,
                frozen: frozen(())?,
            });
        }
        Err(path_error(
            path,
            "expected a `range` (observer), `ranges` (taps) or `mean`/`var` (batch-norm) state",
        ))
    }
}

/// A one-document serving checkpoint: everything needed to reconstruct a
/// runnable model — the architecture name, the model-spec document, the
/// calibration state, and every parameter value.
///
/// ```json
/// {
///   "arch": "lenet",
///   "spec": { "classes": 10, "input_size": 28, "algo": "F2", ... },
///   "quant": { "conv1.q.bdb": { "ranges": [...], ... }, ... },
///   "params": { "conv1.weight": ..., ... }
/// }
/// ```
///
/// The `spec` document is opaque at this level; `wa_models::ZooModel`
/// validates it (as a `ModelSpec`) and rebuilds the architecture `arch`
/// names, then imports `params` atomically. The `quant` section is
/// optional (older documents omit it): calibrated quantization ranges —
/// including tap-wise per-tap scales — plus batch-norm running moments,
/// keyed by site name ([`Layer::visit_quant_state`]).
#[derive(Clone, Debug)]
pub struct FullCheckpoint {
    /// Architecture identifier (e.g. `"lenet"`, `"resnet18"`).
    pub arch: String,
    /// The model-spec document (a `ModelSpec` in JSON form).
    pub spec: Json,
    /// Calibration state by site name; empty when the document carries
    /// none (a cold model re-derives one-off scales at inference).
    pub quant: BTreeMap<String, QuantSiteState>,
    /// The parameter values.
    pub params: Checkpoint,
}

impl FullCheckpoint {
    /// Serializes as one JSON document
    /// (`{"arch", "spec", "quant"?, "params"}`); the `quant` key is
    /// omitted when no calibration state is present.
    pub fn to_json(&self) -> Json {
        let Json::Obj(param_fields) = self.params.to_json() else {
            unreachable!("Checkpoint::to_json always returns an object")
        };
        let mut fields = vec![
            ("arch".to_string(), Json::from(self.arch.as_str())),
            ("spec".to_string(), self.spec.clone()),
        ];
        if !self.quant.is_empty() {
            fields.push((
                "quant".to_string(),
                Json::Obj(
                    self.quant
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ));
        }
        fields.extend(param_fields);
        Json::Obj(fields)
    }

    /// Reads a full checkpoint back from its [`FullCheckpoint::to_json`]
    /// encoding.
    ///
    /// # Errors
    ///
    /// [`JsonError`] if the text is not valid JSON or lacks the expected
    /// structure; structural errors carry the offending key path.
    pub fn from_json_str(text: &str) -> Result<FullCheckpoint, JsonError> {
        let doc = Json::parse(text)?;
        FullCheckpoint::from_json(&doc)
    }

    /// Reads a full checkpoint out of an already-parsed document.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the offending key path in the message.
    pub fn from_json(doc: &Json) -> Result<FullCheckpoint, JsonError> {
        let arch = doc
            .get("arch")
            .ok_or_else(|| path_error("arch", "full checkpoint needs an `arch` string"))?
            .as_str()
            .ok_or_else(|| path_error("arch", "must be a string"))?
            .to_string();
        let spec = doc
            .get("spec")
            .ok_or_else(|| path_error("spec", "full checkpoint needs a `spec` object"))?;
        if spec.as_obj().is_none() {
            return Err(path_error("spec", "must be an object"));
        }
        let mut quant = BTreeMap::new();
        if let Some(section) = doc.get("quant") {
            let sites = section
                .as_obj()
                .ok_or_else(|| path_error("quant", "must be an object of site → state"))?;
            for (name, state) in sites {
                let path = quant_site_path(name);
                quant.insert(name.clone(), QuantSiteState::from_json(&path, state)?);
            }
        }
        let params = Checkpoint::from_json(doc)?;
        Ok(FullCheckpoint {
            arch,
            spec: spec.clone(),
            quant,
            params,
        })
    }
}

/// Errors raised when applying a checkpoint.
#[derive(Debug, PartialEq)]
pub enum CheckpointError {
    /// The model has a parameter the checkpoint lacks.
    Missing(String),
    /// A stored tensor's shape disagrees with the model's parameter.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape in the model.
        expected: Vec<usize>,
        /// Shape in the checkpoint.
        found: Vec<usize>,
    },
    /// Two parameters in the model share one name (checkpoints require
    /// unique names).
    DuplicateName(String),
    /// A calibration-state entry cannot be applied to the model's site
    /// of that name (wrong kind, wrong tap/channel count, or missing).
    QuantState {
        /// Site name (`<layer>.q.<site>` / `<layer>.bn`).
        name: String,
        /// Why the entry does not fit.
        reason: String,
    },
    /// A binary checkpoint container could not be decoded (bad magic,
    /// truncated section, out-of-bounds blob, checksum mismatch, …).
    /// See [`crate::container`].
    Container {
        /// The container field the problem was found at
        /// (`blobs.<name>.offset`, `meta.arch`, `checksum`, …).
        path: String,
        /// What is wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Missing(n) => write!(f, "checkpoint is missing parameter `{}`", n),
            CheckpointError::ShapeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "shape mismatch for `{}`: model {:?} vs checkpoint {:?}",
                name, expected, found
            ),
            CheckpointError::DuplicateName(n) => {
                write!(f, "model contains duplicate parameter name `{}`", n)
            }
            CheckpointError::QuantState { name, reason } => {
                write!(f, "quant state `{}`: {}", name, reason)
            }
            CheckpointError::Container { path, reason } => {
                write!(f, "container field `{}`: {}", path, reason)
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Snapshots every parameter of `model`.
///
/// # Errors
///
/// Returns [`CheckpointError::DuplicateName`] if two parameters share a
/// name (names must be unique for the checkpoint to round-trip).
pub fn export_params(model: &mut dyn Layer) -> Result<Checkpoint, CheckpointError> {
    let mut params = BTreeMap::new();
    let mut dup = None;
    model.visit_params(&mut |p| {
        if params.insert(p.name.clone(), p.value.clone()).is_some() && dup.is_none() {
            dup = Some(p.name.clone());
        }
    });
    match dup {
        Some(n) => Err(CheckpointError::DuplicateName(n)),
        None => Ok(Checkpoint { params }),
    }
}

/// Loads a checkpoint into `model`, returning how many parameters were
/// updated. Extra entries in the checkpoint are ignored (so a full-model
/// checkpoint can initialize a sub-model).
///
/// # Errors
///
/// Fails without modifying *any* parameter if a model parameter is
/// missing from the checkpoint or shapes disagree.
pub fn import_params(model: &mut dyn Layer, ckpt: &Checkpoint) -> Result<usize, CheckpointError> {
    // validate first — import must be all-or-nothing
    let mut problem = None;
    model.visit_params(&mut |p| {
        if problem.is_some() {
            return;
        }
        match ckpt.params.get(&p.name) {
            None => problem = Some(CheckpointError::Missing(p.name.clone())),
            Some(t) if t.shape() != p.value.shape() => {
                problem = Some(CheckpointError::ShapeMismatch {
                    name: p.name.clone(),
                    expected: p.value.shape().to_vec(),
                    found: t.shape().to_vec(),
                })
            }
            Some(_) => {}
        }
    });
    if let Some(e) = problem {
        return Err(e);
    }
    let mut count = 0;
    model.visit_params(&mut |p| {
        if let Some(t) = ckpt.params.get(&p.name) {
            // O(1): the param aliases the checkpoint's buffer until the
            // first in-place update detaches it (COW storage)
            p.value = t.clone();
            p.grad = None;
            count += 1;
        }
    });
    Ok(count)
}

/// Snapshots every calibration site of `model` ([`Layer::visit_quant_state`])
/// — the `quant` section of a [`FullCheckpoint`]. Empty for models whose
/// layers carry no calibration state.
///
/// # Errors
///
/// [`CheckpointError::DuplicateName`] if two sites share a name.
pub fn export_quant_state(
    model: &mut dyn Layer,
) -> Result<BTreeMap<String, QuantSiteState>, CheckpointError> {
    let mut out = BTreeMap::new();
    let mut dup = None;
    model.visit_quant_state(&mut |name, site| {
        let state = match site {
            QuantStateMut::Observer(obs) => QuantSiteState::Observer {
                range: obs.range(),
                seen: obs.observations(),
                frozen: obs.is_frozen(),
            },
            QuantStateMut::Taps(taps) => QuantSiteState::Taps {
                ranges: taps.ranges().to_vec(),
                bits: taps.bit_overrides().map(|b| b.to_vec()),
                seen: taps.observations(),
                frozen: taps.is_frozen(),
            },
            QuantStateMut::BatchNorm { mean, var } => QuantSiteState::BatchNorm {
                mean: mean.to_vec(),
                var: var.to_vec(),
            },
        };
        if out.insert(name.to_string(), state).is_some() && dup.is_none() {
            dup = Some(name.to_string());
        }
    });
    match dup {
        Some(n) => Err(CheckpointError::DuplicateName(n)),
        None => Ok(out),
    }
}

/// Checks one checkpoint entry against a model site without mutating it;
/// `Err` is the human-readable incompatibility.
fn check_quant_entry(site: &QuantStateMut<'_>, state: &QuantSiteState) -> Result<(), String> {
    match (site, state) {
        (QuantStateMut::Observer(_), QuantSiteState::Observer { .. }) => Ok(()),
        // a per-layer range broadcasts onto a tap grid (uniform taps)
        (QuantStateMut::Taps(_), QuantSiteState::Observer { .. }) => Ok(()),
        (QuantStateMut::Taps(taps), QuantSiteState::Taps { ranges, bits, .. }) => {
            if ranges.len() != taps.taps() {
                return Err(format!(
                    "has {} tap ranges, model site has {} taps",
                    ranges.len(),
                    taps.taps()
                ));
            }
            if let Some(b) = bits {
                if b.len() != taps.taps() {
                    return Err(format!(
                        "has {} tap bit-widths, model site has {} taps",
                        b.len(),
                        taps.taps()
                    ));
                }
            }
            Ok(())
        }
        (QuantStateMut::Observer(_), QuantSiteState::Taps { .. }) => Err(
            "holds per-tap calibration, but the model quantizes this site per-layer \
             (a per-tap grid cannot be narrowed to one scale)"
                .to_string(),
        ),
        (QuantStateMut::BatchNorm { mean, .. }, QuantSiteState::BatchNorm { mean: m, var: v }) => {
            if m.len() != mean.len() || v.len() != mean.len() {
                return Err(format!(
                    "has {} channels, model site has {}",
                    m.len(),
                    mean.len()
                ));
            }
            Ok(())
        }
        (QuantStateMut::BatchNorm { .. }, _) | (_, QuantSiteState::BatchNorm { .. }) => {
            Err("batch-norm moments and quantizer state are not interchangeable".to_string())
        }
    }
}

/// Loads a [`FullCheckpoint`]'s `quant` section into `model`, returning
/// how many sites were updated. An **empty** map is a no-op (older
/// checkpoints carry no calibration; the model keeps cold observers).
/// A non-empty map must cover every site the model exposes; extra
/// entries are ignored. A per-layer [`QuantSiteState::Observer`] entry
/// applied to a tap-wise site broadcasts its range to every tap — the
/// uniform-tap state that reproduces the per-layer scales bit-for-bit.
///
/// # Errors
///
/// Fails without modifying *any* site if an entry is missing or cannot
/// be applied ([`CheckpointError::QuantState`] naming the site).
pub fn import_quant_state(
    model: &mut dyn Layer,
    state: &BTreeMap<String, QuantSiteState>,
) -> Result<usize, CheckpointError> {
    if state.is_empty() {
        return Ok(0);
    }
    // validate first — import must be all-or-nothing
    let mut problem = None;
    model.visit_quant_state(&mut |name, site| {
        if problem.is_some() {
            return;
        }
        match state.get(name) {
            None => {
                problem = Some(CheckpointError::QuantState {
                    name: name.to_string(),
                    reason: "missing from the checkpoint's `quant` section".to_string(),
                })
            }
            Some(entry) => {
                if let Err(reason) = check_quant_entry(&site, entry) {
                    problem = Some(CheckpointError::QuantState {
                        name: name.to_string(),
                        reason,
                    });
                }
            }
        }
    });
    if let Some(e) = problem {
        return Err(e);
    }
    let mut count = 0;
    model.visit_quant_state(&mut |name, site| {
        let Some(entry) = state.get(name) else {
            return;
        };
        match (site, entry) {
            (
                QuantStateMut::Observer(obs),
                QuantSiteState::Observer {
                    range,
                    seen,
                    frozen,
                },
            ) => obs.restore(*range, *seen, *frozen),
            (
                QuantStateMut::Taps(taps),
                QuantSiteState::Observer {
                    range,
                    seen,
                    frozen,
                },
            ) => {
                taps.set_uniform_range(*range);
                taps.set_bit_overrides(None).expect("clearing always fits");
                taps.restore(*seen, *frozen);
            }
            (
                QuantStateMut::Taps(taps),
                QuantSiteState::Taps {
                    ranges,
                    bits,
                    seen,
                    frozen,
                },
            ) => {
                taps.set_ranges(ranges).expect("validated above");
                taps.set_bit_overrides(bits.clone())
                    .expect("validated above");
                taps.restore(*seen, *frozen);
            }
            (
                QuantStateMut::BatchNorm { mean, var },
                QuantSiteState::BatchNorm { mean: m, var: v },
            ) => {
                mean.copy_from_slice(m);
                var.copy_from_slice(v);
            }
            _ => unreachable!("validated above"),
        }
        count += 1;
    });
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::spec::LinearSpec;
    use wa_tensor::SeededRng;

    fn linear(name: &str, inf: usize, outf: usize, rng: &mut SeededRng) -> Linear {
        let spec = LinearSpec::builder(name)
            .in_features(inf)
            .out_features(outf)
            .build()
            .unwrap();
        Linear::from_spec(&spec, rng).unwrap()
    }

    #[test]
    fn roundtrip_restores_values() {
        let mut rng = SeededRng::new(0);
        let mut a = linear("l", 4, 3, &mut rng);
        let ckpt = export_params(&mut a).unwrap();
        let mut b = linear("l", 4, 3, &mut rng);
        assert_ne!(a.weight.value, b.weight.value);
        let n = import_params(&mut b, &ckpt).unwrap();
        assert_eq!(n, 2);
        assert_eq!(a.weight.value, b.weight.value);
        assert_eq!(a.bias.value, b.bias.value);
    }

    #[test]
    fn json_serialization_roundtrip() {
        let mut rng = SeededRng::new(1);
        let mut a = linear("l", 2, 2, &mut rng);
        let ckpt = export_params(&mut a).unwrap();
        let json = ckpt.to_json().to_string_pretty();
        let back = Checkpoint::from_json_str(&json).unwrap();
        assert_eq!(ckpt.params, back.params);
    }

    #[test]
    fn missing_param_fails_atomically() {
        let mut rng = SeededRng::new(2);
        let mut model = linear("l", 2, 2, &mut rng);
        let before = model.weight.value.clone();
        let empty = Checkpoint::default();
        let err = import_params(&mut model, &empty).unwrap_err();
        assert!(matches!(err, CheckpointError::Missing(_)));
        assert_eq!(model.weight.value, before, "failed import must not mutate");
    }

    #[test]
    fn shape_mismatch_detected() {
        let mut rng = SeededRng::new(3);
        let mut a = linear("l", 2, 2, &mut rng);
        let ckpt = export_params(&mut a).unwrap();
        let mut b = linear("l", 3, 2, &mut rng);
        let err = import_params(&mut b, &ckpt).unwrap_err();
        assert!(
            matches!(err, CheckpointError::ShapeMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn error_display_is_meaningful() {
        let e = CheckpointError::Missing("fc.weight".into());
        assert!(e.to_string().contains("fc.weight"));
    }

    #[test]
    fn parse_errors_carry_the_offending_key_path() {
        // not an object under `params`
        let e = Checkpoint::from_json_str("{\"params\": 3}").unwrap_err();
        assert!(e.message.contains("`params`"), "{e}");
        // a tensor that fails to decode names its parameter
        let e = Checkpoint::from_json_str("{\"params\": {\"fc.weight\": {\"shape\": [2]}}}")
            .unwrap_err();
        assert!(e.message.contains("`params.fc.weight`"), "{e}");
    }

    #[test]
    fn full_checkpoint_roundtrips_with_spec_and_arch() {
        let mut rng = SeededRng::new(4);
        let mut model = linear("l", 3, 2, &mut rng);
        let full = FullCheckpoint {
            arch: "lenet".to_string(),
            spec: Json::obj([("classes", 10usize)]),
            quant: export_quant_state(&mut model).unwrap(),
            params: export_params(&mut model).unwrap(),
        };
        let text = full.to_json().to_string_pretty();
        let back = FullCheckpoint::from_json_str(&text).unwrap();
        assert_eq!(back.arch, "lenet");
        assert_eq!(back.spec, full.spec);
        assert_eq!(back.params.params, full.params.params);
    }

    #[test]
    fn full_checkpoint_structural_errors_name_their_key() {
        let e = FullCheckpoint::from_json_str("{\"spec\": {}, \"params\": {}}").unwrap_err();
        assert!(e.message.contains("`arch`"), "{e}");
        let e = FullCheckpoint::from_json_str("{\"arch\": \"lenet\", \"params\": {}}").unwrap_err();
        assert!(e.message.contains("`spec`"), "{e}");
        let e = FullCheckpoint::from_json_str("{\"arch\": \"lenet\", \"spec\": {}}").unwrap_err();
        assert!(e.message.contains("`params`"), "{e}");
    }
}
