//! Parameter checkpointing: export/import every parameter of a model as
//! a name-keyed JSON document.
//!
//! This is how experiments persist trained models — including learned
//! Winograd transforms, whose matrices ride along as ordinary parameters
//! (`<layer>.at`, `<layer>.g`, `<layer>.bt`).

use std::collections::BTreeMap;

use wa_tensor::{Json, JsonError, Tensor};

use crate::layers::Layer;

/// A serialized set of parameters, keyed by parameter name.
#[derive(Clone, Debug, Default)]
pub struct Checkpoint {
    /// Parameter values in model-visit order, keyed by name.
    pub params: BTreeMap<String, Tensor>,
}

impl Checkpoint {
    /// Serializes as a JSON document (`{"params": {name: tensor, …}}`).
    pub fn to_json(&self) -> Json {
        Json::obj([(
            "params",
            Json::Obj(
                self.params
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_json()))
                    .collect(),
            ),
        )])
    }

    /// Reads a checkpoint back from its [`Checkpoint::to_json`] encoding.
    ///
    /// # Errors
    ///
    /// [`JsonError`] if the text is not valid JSON or lacks the expected
    /// structure.
    pub fn from_json_str(text: &str) -> Result<Checkpoint, JsonError> {
        let doc = Json::parse(text)?;
        let params = doc
            .get("params")
            .and_then(|p| p.as_obj())
            .ok_or_else(|| JsonError {
                offset: 0,
                message: "checkpoint JSON needs a `params` object".to_string(),
            })?;
        let mut out = BTreeMap::new();
        for (name, tensor) in params {
            out.insert(name.clone(), Tensor::from_json(tensor)?);
        }
        Ok(Checkpoint { params: out })
    }
}

/// Errors raised when applying a checkpoint.
#[derive(Debug, PartialEq)]
pub enum CheckpointError {
    /// The model has a parameter the checkpoint lacks.
    Missing(String),
    /// A stored tensor's shape disagrees with the model's parameter.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape in the model.
        expected: Vec<usize>,
        /// Shape in the checkpoint.
        found: Vec<usize>,
    },
    /// Two parameters in the model share one name (checkpoints require
    /// unique names).
    DuplicateName(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Missing(n) => write!(f, "checkpoint is missing parameter `{}`", n),
            CheckpointError::ShapeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "shape mismatch for `{}`: model {:?} vs checkpoint {:?}",
                name, expected, found
            ),
            CheckpointError::DuplicateName(n) => {
                write!(f, "model contains duplicate parameter name `{}`", n)
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Snapshots every parameter of `model`.
///
/// # Errors
///
/// Returns [`CheckpointError::DuplicateName`] if two parameters share a
/// name (names must be unique for the checkpoint to round-trip).
pub fn export_params(model: &mut dyn Layer) -> Result<Checkpoint, CheckpointError> {
    let mut params = BTreeMap::new();
    let mut dup = None;
    model.visit_params(&mut |p| {
        if params.insert(p.name.clone(), p.value.clone()).is_some() && dup.is_none() {
            dup = Some(p.name.clone());
        }
    });
    match dup {
        Some(n) => Err(CheckpointError::DuplicateName(n)),
        None => Ok(Checkpoint { params }),
    }
}

/// Loads a checkpoint into `model`, returning how many parameters were
/// updated. Extra entries in the checkpoint are ignored (so a full-model
/// checkpoint can initialize a sub-model).
///
/// # Errors
///
/// Fails without modifying *any* parameter if a model parameter is
/// missing from the checkpoint or shapes disagree.
pub fn import_params(model: &mut dyn Layer, ckpt: &Checkpoint) -> Result<usize, CheckpointError> {
    // validate first — import must be all-or-nothing
    let mut problem = None;
    model.visit_params(&mut |p| {
        if problem.is_some() {
            return;
        }
        match ckpt.params.get(&p.name) {
            None => problem = Some(CheckpointError::Missing(p.name.clone())),
            Some(t) if t.shape() != p.value.shape() => {
                problem = Some(CheckpointError::ShapeMismatch {
                    name: p.name.clone(),
                    expected: p.value.shape().to_vec(),
                    found: t.shape().to_vec(),
                })
            }
            Some(_) => {}
        }
    });
    if let Some(e) = problem {
        return Err(e);
    }
    let mut count = 0;
    model.visit_params(&mut |p| {
        if let Some(t) = ckpt.params.get(&p.name) {
            p.value = t.clone();
            p.grad = None;
            count += 1;
        }
    });
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::spec::LinearSpec;
    use wa_tensor::SeededRng;

    fn linear(name: &str, inf: usize, outf: usize, rng: &mut SeededRng) -> Linear {
        let spec = LinearSpec::builder(name)
            .in_features(inf)
            .out_features(outf)
            .build()
            .unwrap();
        Linear::from_spec(&spec, rng).unwrap()
    }

    #[test]
    fn roundtrip_restores_values() {
        let mut rng = SeededRng::new(0);
        let mut a = linear("l", 4, 3, &mut rng);
        let ckpt = export_params(&mut a).unwrap();
        let mut b = linear("l", 4, 3, &mut rng);
        assert_ne!(a.weight.value, b.weight.value);
        let n = import_params(&mut b, &ckpt).unwrap();
        assert_eq!(n, 2);
        assert_eq!(a.weight.value, b.weight.value);
        assert_eq!(a.bias.value, b.bias.value);
    }

    #[test]
    fn json_serialization_roundtrip() {
        let mut rng = SeededRng::new(1);
        let mut a = linear("l", 2, 2, &mut rng);
        let ckpt = export_params(&mut a).unwrap();
        let json = ckpt.to_json().to_string_pretty();
        let back = Checkpoint::from_json_str(&json).unwrap();
        assert_eq!(ckpt.params, back.params);
    }

    #[test]
    fn missing_param_fails_atomically() {
        let mut rng = SeededRng::new(2);
        let mut model = linear("l", 2, 2, &mut rng);
        let before = model.weight.value.clone();
        let empty = Checkpoint::default();
        let err = import_params(&mut model, &empty).unwrap_err();
        assert!(matches!(err, CheckpointError::Missing(_)));
        assert_eq!(model.weight.value, before, "failed import must not mutate");
    }

    #[test]
    fn shape_mismatch_detected() {
        let mut rng = SeededRng::new(3);
        let mut a = linear("l", 2, 2, &mut rng);
        let ckpt = export_params(&mut a).unwrap();
        let mut b = linear("l", 3, 2, &mut rng);
        let err = import_params(&mut b, &ckpt).unwrap_err();
        assert!(
            matches!(err, CheckpointError::ShapeMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn error_display_is_meaningful() {
        let e = CheckpointError::Missing("fc.weight".into());
        assert!(e.to_string().contains("fc.weight"));
    }
}
