//! Parameter checkpointing: export/import every parameter of a model as
//! a name-keyed JSON document.
//!
//! This is how experiments persist trained models — including learned
//! Winograd transforms, whose matrices ride along as ordinary parameters
//! (`<layer>.at`, `<layer>.g`, `<layer>.bt`).
//!
//! Two document shapes exist:
//!
//! * [`Checkpoint`] — just the parameters (`{"params": {...}}`), enough
//!   when the receiving side already has the model built.
//! * [`FullCheckpoint`] — architecture name + model-spec document +
//!   parameters in **one** JSON file, so a serving node can reconstruct
//!   the model from nothing but the document. The spec half is kept as an
//!   opaque [`Json`] here (wa-nn doesn't know about whole-model specs);
//!   `wa_models::ZooModel` interprets it.

use std::collections::BTreeMap;

use wa_tensor::{Json, JsonError, Tensor};

use crate::layers::Layer;

/// Prefixes a [`JsonError`]'s message with the key path it was found
/// under, so load failures reported over a wire are diagnosable
/// ("`params.conv1.weight`: …" instead of a bare offset).
fn at_path(path: &str, e: JsonError) -> JsonError {
    JsonError {
        offset: e.offset,
        message: format!("`{path}`: {}", e.message),
    }
}

/// A [`JsonError`] for a missing/mistyped key at `path` (offset 0: the
/// problem is structural, not lexical).
fn path_error(path: &str, message: impl Into<String>) -> JsonError {
    JsonError {
        offset: 0,
        message: format!("`{path}`: {}", message.into()),
    }
}

/// A serialized set of parameters, keyed by parameter name.
#[derive(Clone, Debug, Default)]
pub struct Checkpoint {
    /// Parameter values in model-visit order, keyed by name.
    pub params: BTreeMap<String, Tensor>,
}

impl Checkpoint {
    /// Serializes as a JSON document (`{"params": {name: tensor, …}}`).
    pub fn to_json(&self) -> Json {
        Json::obj([(
            "params",
            Json::Obj(
                self.params
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_json()))
                    .collect(),
            ),
        )])
    }

    /// Reads a checkpoint back from its [`Checkpoint::to_json`] encoding.
    ///
    /// # Errors
    ///
    /// [`JsonError`] if the text is not valid JSON or lacks the expected
    /// structure; structural errors carry the offending key path (e.g.
    /// `` `params.conv1.weight` ``) in the message.
    pub fn from_json_str(text: &str) -> Result<Checkpoint, JsonError> {
        let doc = Json::parse(text)?;
        Checkpoint::from_json(&doc)
    }

    /// Reads a checkpoint out of an already-parsed document (the
    /// key-path-carrying core of [`Checkpoint::from_json_str`]).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the offending key path in the message.
    pub fn from_json(doc: &Json) -> Result<Checkpoint, JsonError> {
        let params = doc
            .get("params")
            .ok_or_else(|| path_error("params", "checkpoint JSON needs a `params` object"))?
            .as_obj()
            .ok_or_else(|| path_error("params", "must be an object of name → tensor"))?;
        let mut out = BTreeMap::new();
        for (name, tensor) in params {
            let t = Tensor::from_json(tensor).map_err(|e| at_path(&format!("params.{name}"), e))?;
            out.insert(name.clone(), t);
        }
        Ok(Checkpoint { params: out })
    }
}

/// A one-document serving checkpoint: everything needed to reconstruct a
/// runnable model — the architecture name, the model-spec document, and
/// every parameter value.
///
/// ```json
/// {
///   "arch": "lenet",
///   "spec": { "classes": 10, "input_size": 28, "algo": "F2", ... },
///   "params": { "conv1.weight": ..., ... }
/// }
/// ```
///
/// The `spec` document is opaque at this level; `wa_models::ZooModel`
/// validates it (as a `ModelSpec`) and rebuilds the architecture `arch`
/// names, then imports `params` atomically.
#[derive(Clone, Debug)]
pub struct FullCheckpoint {
    /// Architecture identifier (e.g. `"lenet"`, `"resnet18"`).
    pub arch: String,
    /// The model-spec document (a `ModelSpec` in JSON form).
    pub spec: Json,
    /// The parameter values.
    pub params: Checkpoint,
}

impl FullCheckpoint {
    /// Serializes as one JSON document (`{"arch", "spec", "params"}`).
    pub fn to_json(&self) -> Json {
        let Json::Obj(param_fields) = self.params.to_json() else {
            unreachable!("Checkpoint::to_json always returns an object")
        };
        let mut fields = vec![
            ("arch".to_string(), Json::from(self.arch.as_str())),
            ("spec".to_string(), self.spec.clone()),
        ];
        fields.extend(param_fields);
        Json::Obj(fields)
    }

    /// Reads a full checkpoint back from its [`FullCheckpoint::to_json`]
    /// encoding.
    ///
    /// # Errors
    ///
    /// [`JsonError`] if the text is not valid JSON or lacks the expected
    /// structure; structural errors carry the offending key path.
    pub fn from_json_str(text: &str) -> Result<FullCheckpoint, JsonError> {
        let doc = Json::parse(text)?;
        FullCheckpoint::from_json(&doc)
    }

    /// Reads a full checkpoint out of an already-parsed document.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the offending key path in the message.
    pub fn from_json(doc: &Json) -> Result<FullCheckpoint, JsonError> {
        let arch = doc
            .get("arch")
            .ok_or_else(|| path_error("arch", "full checkpoint needs an `arch` string"))?
            .as_str()
            .ok_or_else(|| path_error("arch", "must be a string"))?
            .to_string();
        let spec = doc
            .get("spec")
            .ok_or_else(|| path_error("spec", "full checkpoint needs a `spec` object"))?;
        if spec.as_obj().is_none() {
            return Err(path_error("spec", "must be an object"));
        }
        let params = Checkpoint::from_json(doc)?;
        Ok(FullCheckpoint {
            arch,
            spec: spec.clone(),
            params,
        })
    }
}

/// Errors raised when applying a checkpoint.
#[derive(Debug, PartialEq)]
pub enum CheckpointError {
    /// The model has a parameter the checkpoint lacks.
    Missing(String),
    /// A stored tensor's shape disagrees with the model's parameter.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape in the model.
        expected: Vec<usize>,
        /// Shape in the checkpoint.
        found: Vec<usize>,
    },
    /// Two parameters in the model share one name (checkpoints require
    /// unique names).
    DuplicateName(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Missing(n) => write!(f, "checkpoint is missing parameter `{}`", n),
            CheckpointError::ShapeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "shape mismatch for `{}`: model {:?} vs checkpoint {:?}",
                name, expected, found
            ),
            CheckpointError::DuplicateName(n) => {
                write!(f, "model contains duplicate parameter name `{}`", n)
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Snapshots every parameter of `model`.
///
/// # Errors
///
/// Returns [`CheckpointError::DuplicateName`] if two parameters share a
/// name (names must be unique for the checkpoint to round-trip).
pub fn export_params(model: &mut dyn Layer) -> Result<Checkpoint, CheckpointError> {
    let mut params = BTreeMap::new();
    let mut dup = None;
    model.visit_params(&mut |p| {
        if params.insert(p.name.clone(), p.value.clone()).is_some() && dup.is_none() {
            dup = Some(p.name.clone());
        }
    });
    match dup {
        Some(n) => Err(CheckpointError::DuplicateName(n)),
        None => Ok(Checkpoint { params }),
    }
}

/// Loads a checkpoint into `model`, returning how many parameters were
/// updated. Extra entries in the checkpoint are ignored (so a full-model
/// checkpoint can initialize a sub-model).
///
/// # Errors
///
/// Fails without modifying *any* parameter if a model parameter is
/// missing from the checkpoint or shapes disagree.
pub fn import_params(model: &mut dyn Layer, ckpt: &Checkpoint) -> Result<usize, CheckpointError> {
    // validate first — import must be all-or-nothing
    let mut problem = None;
    model.visit_params(&mut |p| {
        if problem.is_some() {
            return;
        }
        match ckpt.params.get(&p.name) {
            None => problem = Some(CheckpointError::Missing(p.name.clone())),
            Some(t) if t.shape() != p.value.shape() => {
                problem = Some(CheckpointError::ShapeMismatch {
                    name: p.name.clone(),
                    expected: p.value.shape().to_vec(),
                    found: t.shape().to_vec(),
                })
            }
            Some(_) => {}
        }
    });
    if let Some(e) = problem {
        return Err(e);
    }
    let mut count = 0;
    model.visit_params(&mut |p| {
        if let Some(t) = ckpt.params.get(&p.name) {
            // O(1): the param aliases the checkpoint's buffer until the
            // first in-place update detaches it (COW storage)
            p.value = t.clone();
            p.grad = None;
            count += 1;
        }
    });
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::spec::LinearSpec;
    use wa_tensor::SeededRng;

    fn linear(name: &str, inf: usize, outf: usize, rng: &mut SeededRng) -> Linear {
        let spec = LinearSpec::builder(name)
            .in_features(inf)
            .out_features(outf)
            .build()
            .unwrap();
        Linear::from_spec(&spec, rng).unwrap()
    }

    #[test]
    fn roundtrip_restores_values() {
        let mut rng = SeededRng::new(0);
        let mut a = linear("l", 4, 3, &mut rng);
        let ckpt = export_params(&mut a).unwrap();
        let mut b = linear("l", 4, 3, &mut rng);
        assert_ne!(a.weight.value, b.weight.value);
        let n = import_params(&mut b, &ckpt).unwrap();
        assert_eq!(n, 2);
        assert_eq!(a.weight.value, b.weight.value);
        assert_eq!(a.bias.value, b.bias.value);
    }

    #[test]
    fn json_serialization_roundtrip() {
        let mut rng = SeededRng::new(1);
        let mut a = linear("l", 2, 2, &mut rng);
        let ckpt = export_params(&mut a).unwrap();
        let json = ckpt.to_json().to_string_pretty();
        let back = Checkpoint::from_json_str(&json).unwrap();
        assert_eq!(ckpt.params, back.params);
    }

    #[test]
    fn missing_param_fails_atomically() {
        let mut rng = SeededRng::new(2);
        let mut model = linear("l", 2, 2, &mut rng);
        let before = model.weight.value.clone();
        let empty = Checkpoint::default();
        let err = import_params(&mut model, &empty).unwrap_err();
        assert!(matches!(err, CheckpointError::Missing(_)));
        assert_eq!(model.weight.value, before, "failed import must not mutate");
    }

    #[test]
    fn shape_mismatch_detected() {
        let mut rng = SeededRng::new(3);
        let mut a = linear("l", 2, 2, &mut rng);
        let ckpt = export_params(&mut a).unwrap();
        let mut b = linear("l", 3, 2, &mut rng);
        let err = import_params(&mut b, &ckpt).unwrap_err();
        assert!(
            matches!(err, CheckpointError::ShapeMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn error_display_is_meaningful() {
        let e = CheckpointError::Missing("fc.weight".into());
        assert!(e.to_string().contains("fc.weight"));
    }

    #[test]
    fn parse_errors_carry_the_offending_key_path() {
        // not an object under `params`
        let e = Checkpoint::from_json_str("{\"params\": 3}").unwrap_err();
        assert!(e.message.contains("`params`"), "{e}");
        // a tensor that fails to decode names its parameter
        let e = Checkpoint::from_json_str("{\"params\": {\"fc.weight\": {\"shape\": [2]}}}")
            .unwrap_err();
        assert!(e.message.contains("`params.fc.weight`"), "{e}");
    }

    #[test]
    fn full_checkpoint_roundtrips_with_spec_and_arch() {
        let mut rng = SeededRng::new(4);
        let mut model = linear("l", 3, 2, &mut rng);
        let full = FullCheckpoint {
            arch: "lenet".to_string(),
            spec: Json::obj([("classes", 10usize)]),
            params: export_params(&mut model).unwrap(),
        };
        let text = full.to_json().to_string_pretty();
        let back = FullCheckpoint::from_json_str(&text).unwrap();
        assert_eq!(back.arch, "lenet");
        assert_eq!(back.spec, full.spec);
        assert_eq!(back.params.params, full.params.params);
    }

    #[test]
    fn full_checkpoint_structural_errors_name_their_key() {
        let e = FullCheckpoint::from_json_str("{\"spec\": {}, \"params\": {}}").unwrap_err();
        assert!(e.message.contains("`arch`"), "{e}");
        let e = FullCheckpoint::from_json_str("{\"arch\": \"lenet\", \"params\": {}}").unwrap_err();
        assert!(e.message.contains("`spec`"), "{e}");
        let e = FullCheckpoint::from_json_str("{\"arch\": \"lenet\", \"spec\": {}}").unwrap_err();
        assert!(e.message.contains("`params`"), "{e}");
    }
}
