//! Batched parallel inference: shard an `[N, C, H, W]` batch across
//! worker threads, each replaying the model on its own [`Tape`].
//!
//! The tape is a single-threaded structure — every forward pass appends
//! nodes to one `Vec` — so throughput-oriented serving cannot run a large
//! batch as one tape without serializing everything behind it. The
//! executor instead splits the batch into fixed-size chunks, gives every
//! worker its own tape, and reads the model through the shared-reference
//! [`Infer`] trait (parameters are only *read* during inference, so one
//! model can serve any number of workers simultaneously).
//!
//! Determinism: the chunk partition depends only on
//! [`ExecutorConfig::chunk`], never on thread scheduling, and every
//! per-sample computation is independent, so — for FP32 models and for
//! quantized models whose range observers are warm — the stitched output
//! is identical for any `threads` or `chunk` value, and identical to
//! running the samples one at a time through [`Infer::infer`]. The one
//! carve-out is a quantized model that was never warmed: its cold
//! observers derive scales from the tensor at hand (see
//! [`crate::infer_quant`]), which in batched execution is the whole
//! chunk, so outputs can vary with the batch partition until the model
//! is warmed. The parity suite in `tests/executor_parity.rs` pins the
//! contract.
//!
//! # Example
//!
//! ```
//! use wa_nn::{BatchExecutor, ExecutorConfig, Infer, Linear, LinearSpec, Tape, Var, WaError};
//! use wa_tensor::{SeededRng, Tensor};
//!
//! // A [N, F] model: Infer is the &self (read-only) forward.
//! let mut rng = SeededRng::new(0);
//! let spec = LinearSpec::builder("clf").in_features(4).out_features(3).build()?;
//! let model = Linear::from_spec(&spec, &mut rng)?;
//!
//! let batch = rng.uniform_tensor(&[10, 4], -1.0, 1.0);
//! let exec = BatchExecutor::new(ExecutorConfig { threads: 2, chunk: 3 })?;
//! let logits = exec.run(&model, &batch)?;
//! assert_eq!(logits.shape(), &[10, 3]);
//!
//! // Bit-identical to the sequential per-sample loop:
//! for i in 0..10 {
//!     let one = model.infer_tensor(&batch.slice_dim0(i, i + 1))?;
//!     assert_eq!(one.data(), &logits.data()[i * 3..(i + 1) * 3]);
//! }
//! # Ok::<(), WaError>(())
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use wa_tensor::Tensor;

use crate::error::WaError;
use crate::tape::{Tape, Var};

/// Cached handles into the global metrics registry (registration is the
/// cold path; each run records through relaxed atomics only).
struct ExecMetrics {
    runs: Arc<wa_obs::Counter>,
    chunks: Arc<wa_obs::Counter>,
    samples: Arc<wa_obs::Counter>,
    params_cloned: Arc<wa_obs::Counter>,
    fanout: Arc<wa_obs::Histogram>,
}

fn exec_metrics() -> &'static ExecMetrics {
    static M: OnceLock<ExecMetrics> = OnceLock::new();
    M.get_or_init(|| ExecMetrics {
        runs: wa_obs::counter("wa_executor_runs_total", "Batch executor runs."),
        chunks: wa_obs::counter(
            "wa_executor_chunks_total",
            "Chunks dispatched to executor workers.",
        ),
        samples: wa_obs::counter(
            "wa_executor_samples_total",
            "Samples pushed through the batch executor.",
        ),
        params_cloned: wa_obs::counter(
            "wa_executor_params_cloned_bytes_total",
            "Bytes deep-copied by copy-on-write detaches during executor runs \
             (the zero-copy parameter-sharing contract pins this at 0).",
        ),
        fanout: wa_obs::histogram(
            "wa_executor_chunk_fanout",
            "Chunks per executor run (the worker fan-out).",
        ),
    })
}

/// Inference-only forward over a shared reference.
///
/// [`crate::Layer::forward`] takes `&mut self` because training mutates
/// layer state (range observers, batch-norm running statistics, parameter
/// registration for the backward pass). Serving needs none of that: this
/// trait is the *read-only* half — it must not mutate the model, which is
/// what lets [`BatchExecutor`] share one model across worker threads.
///
/// Implementations mirror their layer's eval-mode (`train = false`)
/// forward. The one divergence: a *cold* quantization observer (zero
/// observations) derives a one-off scale from the tensor at hand instead
/// of memorizing it, so repeated inference never drifts; warm the model
/// with one training forward for serving scales that are stable and
/// independent of how a batch is partitioned.
pub trait Infer {
    /// Runs the model on `x`, appending ops to `tape`, without mutating
    /// `self`.
    ///
    /// # Errors
    ///
    /// [`WaError::ShapeMismatch`] when the input cannot be consumed.
    fn infer(&self, tape: &mut Tape, x: Var) -> Result<Var, WaError>;

    /// Convenience wrapper: runs [`Infer::infer`] on a fresh tape and
    /// returns the output tensor.
    ///
    /// # Errors
    ///
    /// Propagates [`Infer::infer`] errors.
    fn infer_tensor(&self, x: &Tensor) -> Result<Tensor, WaError> {
        let mut tape = Tape::new();
        let v = tape.leaf(x.clone());
        let y = self.infer(&mut tape, v)?;
        Ok(tape.value(y).clone())
    }

    /// Runs a batch (leading dimension = samples) through a
    /// [`BatchExecutor`], sharding the samples across `cfg.threads`
    /// workers and returning the outputs in input order.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] for an invalid `cfg`,
    /// [`WaError::ShapeMismatch`] for an unusable batch.
    fn try_forward_batch(&self, batch: &Tensor, cfg: ExecutorConfig) -> Result<Tensor, WaError>
    where
        Self: Sized + Sync,
    {
        BatchExecutor::new(cfg)?.run(self, batch)
    }
}

/// Hard cap on worker threads (beyond this a config is a typo, not a
/// deployment).
const MAX_THREADS: usize = 1024;

/// Hard cap on samples per chunk.
const MAX_CHUNK: usize = 65_536;

/// How a [`BatchExecutor`] shards work.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ExecutorConfig {
    /// Worker thread count (each worker owns one [`Tape`] at a time).
    pub threads: usize,
    /// Samples per shard. Smaller chunks balance load better; larger
    /// chunks amortize per-tape overhead and feed the GEMM larger
    /// matrices. The output never depends on this value for FP32 models
    /// or warmed quantized models (cold observers derive scales from the
    /// chunk at hand — see [`crate::infer_quant`]).
    pub chunk: usize,
}

impl ExecutorConfig {
    /// Creates a validated config.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] for zero or absurd values.
    pub fn new(threads: usize, chunk: usize) -> Result<ExecutorConfig, WaError> {
        let cfg = ExecutorConfig { threads, chunk };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Re-checks the invariants (the fields are public and may have been
    /// mutated after construction).
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] naming the offending field.
    pub fn validate(&self) -> Result<(), WaError> {
        if self.threads == 0 || self.threads > MAX_THREADS {
            return Err(WaError::invalid(
                "ExecutorConfig",
                "threads",
                format!("threads must be in 1..={MAX_THREADS}, got {}", self.threads),
            ));
        }
        if self.chunk == 0 || self.chunk > MAX_CHUNK {
            return Err(WaError::invalid(
                "ExecutorConfig",
                "chunk",
                format!("chunk must be in 1..={MAX_CHUNK}, got {}", self.chunk),
            ));
        }
        Ok(())
    }
}

impl Default for ExecutorConfig {
    /// One thread per available core, 8 samples per chunk. The executor
    /// divides the machine between the two parallel layers at run time:
    /// with `w` workers each worker's *inner* GEMM threading is capped at
    /// `⌊cores/w⌋`, so worker-level and GEMM-level parallelism never
    /// multiply into oversubscription (see [`BatchExecutor::run`]).
    fn default() -> Self {
        ExecutorConfig {
            threads: available_cores(),
            chunk: 8,
        }
    }
}

/// Cores the scheduler can actually run on (1 if unknown).
fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Counters for one [`BatchExecutor::run_with_stats`] pass.
///
/// The headline number is [`ExecutorStats::params_cloned_bytes`]: tensor
/// storage is copy-on-write (`wa_tensor`), so worker tapes registering
/// model parameters via [`Tape::param_ref`] *alias* the model's buffers.
/// On the read-only inference path nothing ever writes to a shared
/// buffer, so the counter must stay **0** — each worker shares one set
/// of parameter tensors instead of deep-copying ~every weight per chunk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Chunks the batch was partitioned into.
    pub chunks: usize,
    /// Samples in the batch.
    pub samples: usize,
    /// Bytes deep-copied by copy-on-write detaches during the run
    /// (difference of [`wa_tensor::cow_detach_bytes`] snapshots). The
    /// counter is process-wide, so concurrent tensor mutation elsewhere
    /// (a training loop, another executor) is attributed to whichever
    /// run observes it; on a quiesced inference server it is exactly the
    /// parameter bytes the run cloned — which the zero-copy contract
    /// pins at 0.
    pub params_cloned_bytes: u64,
}

/// Shards an input batch across `std::thread::scope` workers and stitches
/// the outputs back in input order. See the [module docs](self) for the
/// determinism contract and an example.
#[derive(Clone, Debug)]
pub struct BatchExecutor {
    cfg: ExecutorConfig,
}

impl BatchExecutor {
    /// Creates an executor from a validated config.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] if the config is invalid.
    pub fn new(cfg: ExecutorConfig) -> Result<BatchExecutor, WaError> {
        cfg.validate()?;
        Ok(BatchExecutor { cfg })
    }

    /// The active configuration.
    pub fn config(&self) -> ExecutorConfig {
        self.cfg
    }

    /// Runs `model` over `batch` (any tensor whose first dimension is the
    /// sample dimension; CNNs take `[N, C, H, W]`) and returns the outputs
    /// concatenated along dimension 0 in input order.
    ///
    /// # Errors
    ///
    /// [`WaError::ShapeMismatch`] for an empty batch, a model error on any
    /// chunk (the first failing chunk's error, in chunk order), or a model
    /// that returns outputs whose leading dimension is not the chunk's
    /// sample count.
    pub fn run<M: Infer + Sync + ?Sized>(
        &self,
        model: &M,
        batch: &Tensor,
    ) -> Result<Tensor, WaError> {
        self.run_with_stats(model, batch).map(|(out, _)| out)
    }

    /// Like [`BatchExecutor::run`], additionally returning the run's
    /// [`ExecutorStats`] — chiefly the copy-on-write detach byte count,
    /// which the zero-copy parameter-sharing contract pins at 0 for the
    /// inference path.
    ///
    /// # Errors
    ///
    /// Identical to [`BatchExecutor::run`].
    pub fn run_with_stats<M: Infer + Sync + ?Sized>(
        &self,
        model: &M,
        batch: &Tensor,
    ) -> Result<(Tensor, ExecutorStats), WaError> {
        let _run_span = wa_obs::stage_span!("executor.run");
        let detach_before = wa_tensor::cow_detach_bytes();
        let shape = batch.shape();
        if shape.is_empty() || shape[0] == 0 {
            return Err(WaError::shape(
                "BatchExecutor input (needs a nonempty sample dimension)",
                &[1],
                shape,
            ));
        }
        let n = shape[0];
        let chunk = self.cfg.chunk.min(n);
        let n_chunks = n.div_ceil(chunk);
        // `cfg.threads` is a ceiling, not a spawn count: workers beyond
        // the chunk count would idle, and workers beyond the core count
        // would time-slice one core for pure context-switch overhead
        // (the old behaviour that made thread scaling *inverted* on small
        // machines). The chunk partition — and therefore the output —
        // never depends on the worker count.
        let avail = available_cores();
        let threads = self.cfg.threads.min(n_chunks).min(avail);

        let mut slots: Vec<Option<Result<Tensor, WaError>>> = (0..n_chunks).map(|_| None).collect();
        if threads <= 1 {
            // a single worker keeps the GEMM's own inner threading: large
            // chunks still use every core
            for (ci, slot) in slots.iter_mut().enumerate() {
                *slot = Some(run_chunk(
                    model,
                    batch,
                    ci * chunk,
                    ((ci + 1) * chunk).min(n),
                ));
            }
        } else {
            let next = AtomicUsize::new(0);
            let shared = Mutex::new(&mut slots);
            // Divide the cores between the two parallel layers: `threads`
            // workers each cap their inner GEMM threading at
            // `⌊cores/threads⌋`, so total parallelism stays ≈ the core
            // count at every worker count instead of `threads` workers ×
            // the GEMM's own pool oversubscribing multiplicatively. The
            // cap never changes results (whole-row GEMM splits).
            let inner_cap = (avail / threads).max(1);
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| {
                        wa_tensor::with_gemm_thread_cap(inner_cap, || loop {
                            let ci = next.fetch_add(1, Ordering::Relaxed);
                            if ci >= n_chunks {
                                return;
                            }
                            let out =
                                run_chunk(model, batch, ci * chunk, ((ci + 1) * chunk).min(n));
                            shared.lock().expect("executor worker panicked")[ci] = Some(out);
                        })
                    });
                }
            });
        }

        let mut parts = Vec::with_capacity(n_chunks);
        for (ci, slot) in slots.into_iter().enumerate() {
            let part = slot.expect("every chunk index was dispatched")?;
            let rows = ((ci + 1) * chunk).min(n) - ci * chunk;
            if part.ndim() == 0 || part.dim(0) != rows {
                return Err(WaError::shape(
                    "BatchExecutor model output (leading dim must be the \
                     chunk's sample count)",
                    &[rows],
                    part.shape(),
                ));
            }
            if ci > 0 {
                let first: &Tensor = &parts[0];
                if part.shape()[1..] != first.shape()[1..] {
                    return Err(WaError::shape(
                        "BatchExecutor model output (per-sample shape must \
                         be identical across chunks)",
                        &first.shape()[1..],
                        &part.shape()[1..],
                    ));
                }
            }
            parts.push(part);
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        let out = Tensor::concat_dim0(&refs);
        let stats = ExecutorStats {
            chunks: n_chunks,
            samples: n,
            params_cloned_bytes: wa_tensor::cow_detach_bytes() - detach_before,
        };
        let m = exec_metrics();
        m.runs.inc();
        m.chunks.add(stats.chunks as u64);
        m.samples.add(stats.samples as u64);
        m.params_cloned.add(stats.params_cloned_bytes);
        m.fanout.record(stats.chunks as u64);
        Ok((out, stats))
    }
}

/// One worker step: slice `[start, end)` samples, replay the model on a
/// fresh tape, detach the output.
fn run_chunk<M: Infer + ?Sized>(
    model: &M,
    batch: &Tensor,
    start: usize,
    end: usize,
) -> Result<Tensor, WaError> {
    let _span = wa_obs::stage_span!("executor.chunk");
    let part = batch.slice_dim0(start, end);
    let mut tape = Tape::new();
    let x = tape.leaf(part);
    let y = model.infer(&mut tape, x)?;
    Ok(tape.value(y).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Layer, Linear};
    use crate::spec::LinearSpec;
    use wa_tensor::SeededRng;

    fn model(rng: &mut SeededRng) -> Linear {
        let spec = LinearSpec::builder("l")
            .in_features(3)
            .out_features(2)
            .build()
            .unwrap();
        Linear::from_spec(&spec, rng).unwrap()
    }

    #[test]
    fn config_validation_rejects_zeroes() {
        assert!(matches!(
            ExecutorConfig::new(0, 4),
            Err(WaError::InvalidSpec {
                field: "threads",
                ..
            })
        ));
        assert!(matches!(
            ExecutorConfig::new(2, 0),
            Err(WaError::InvalidSpec { field: "chunk", .. })
        ));
        assert!(ExecutorConfig::new(2, 4).is_ok());
        assert!(ExecutorConfig::default().validate().is_ok());
    }

    #[test]
    fn mutated_config_is_recaught_by_executor() {
        let mut cfg = ExecutorConfig::new(2, 4).unwrap();
        cfg.threads = 0;
        assert!(BatchExecutor::new(cfg).is_err());
    }

    #[test]
    fn run_matches_sequential_and_all_thread_counts_agree() {
        let mut rng = SeededRng::new(1);
        let m = model(&mut rng);
        let batch = rng.uniform_tensor(&[7, 3], -1.0, 1.0);
        let seq: Vec<Tensor> = (0..7)
            .map(|i| m.infer_tensor(&batch.slice_dim0(i, i + 1)).unwrap())
            .collect();
        let seq_refs: Vec<&Tensor> = seq.iter().collect();
        let want = Tensor::concat_dim0(&seq_refs);
        for threads in [1, 2, 4] {
            let exec = BatchExecutor::new(ExecutorConfig { threads, chunk: 2 }).unwrap();
            let got = exec.run(&m, &batch).unwrap();
            assert_eq!(got.shape(), want.shape());
            assert_eq!(got.data(), want.data(), "threads = {threads}");
        }
    }

    #[test]
    fn chunk_size_does_not_change_output() {
        let mut rng = SeededRng::new(2);
        let m = model(&mut rng);
        let batch = rng.uniform_tensor(&[9, 3], -1.0, 1.0);
        let a = BatchExecutor::new(ExecutorConfig {
            threads: 2,
            chunk: 1,
        })
        .unwrap()
        .run(&m, &batch)
        .unwrap();
        let b = BatchExecutor::new(ExecutorConfig {
            threads: 3,
            chunk: 4,
        })
        .unwrap()
        .run(&m, &batch)
        .unwrap();
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn empty_batch_is_rejected() {
        let mut rng = SeededRng::new(3);
        let m = model(&mut rng);
        let exec = BatchExecutor::new(ExecutorConfig {
            threads: 2,
            chunk: 2,
        })
        .unwrap();
        let empty = Tensor::zeros(&[0, 3]);
        assert!(matches!(
            exec.run(&m, &empty),
            Err(WaError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn model_error_surfaces_from_worker_threads() {
        let mut rng = SeededRng::new(4);
        let m = model(&mut rng);
        // wrong feature count: every chunk fails; the first chunk's error
        // must come back intact through the thread boundary
        let bad = rng.uniform_tensor(&[6, 5], -1.0, 1.0);
        let exec = BatchExecutor::new(ExecutorConfig {
            threads: 3,
            chunk: 2,
        })
        .unwrap();
        assert!(matches!(
            exec.run(&m, &bad),
            Err(WaError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn infer_matches_eval_forward() {
        let mut rng = SeededRng::new(5);
        let mut m = model(&mut rng);
        let x = rng.uniform_tensor(&[4, 3], -1.0, 1.0);
        let want = {
            let mut tape = Tape::new();
            let v = tape.leaf(x.clone());
            let y = m.forward(&mut tape, v, false);
            tape.value(y).clone()
        };
        let got = m.infer_tensor(&x).unwrap();
        assert_eq!(got.data(), want.data());
    }
}
