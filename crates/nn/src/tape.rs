//! The reverse-mode autodiff tape.
//!
//! Define-by-run: every operation executes eagerly, appending a node with
//! its inputs and just enough saved state to compute the vector-Jacobian
//! product. [`Tape::backward`] then walks the nodes in reverse creation
//! order (a valid topological order by construction).
//!
//! The Winograd-aware layer (paper Figure 2) is expressed purely in these
//! ops — matmuls, tile permutations, gathers/scatters and fake-quant — so
//! "the numerical inaccuracies introduced by the Winograd transformations
//! are exposed to the learning of the model parameters" exactly as in the
//! paper, including gradients into `Aᵀ`, `G`, `Bᵀ` when they are trainable.

// Index-based loops are deliberate in the kernel code below: most walk
// several parallel buffers with differing strides, where iterator zips
// obscure the math.
#![allow(clippy::needless_range_loop)]

use wa_quant::{fake_quant_scale, fake_quant_taps, ste_mask, ste_mask_taps, BitWidth};
use wa_tensor::{col2im, gemm, gemm_batched, im2row, pad_nchw, unpad_nchw, Tensor, Transpose};
use wa_winograd::TileGeometry;

use crate::param::Param;

static NEXT_TAPE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Handle to a tensor on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// Saved state for batch-norm backward.
#[derive(Clone, Debug)]
struct BnSaved {
    /// 1/√(var + ε) per channel.
    invstd: Vec<f32>,
    /// Normalized activations x̂ (same shape as input).
    xhat: Tensor,
    /// Whether batch statistics were used (training) — controls which
    /// backward formula applies.
    batch_stats: bool,
}

#[derive(Clone, Debug)]
enum Op {
    Leaf,
    Add(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    AddBiasRows(Var, Var),
    AddBiasChan(Var, Var),
    Matmul(Var, Var),
    MatmulNT(Var, Var),
    Bmm {
        a: Var,
        b: Var,
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    },
    Reshape(Var),
    TileTranspose {
        x: Var,
        rows: usize,
        cols: usize,
    },
    Permute3 {
        x: Var,
        dims: [usize; 3],
        perm: [usize; 3],
    },
    Relu(Var),
    MaxPool2d {
        x: Var,
        indices: Vec<u32>,
    },
    Gap(Var),
    SqSum(Var),
    AddN(Vec<Var>),
    CrossEntropy {
        logits: Var,
        probs: Tensor,
        targets: Vec<usize>,
    },
    FakeQuant {
        x: Var,
        bits: BitWidth,
        scale: f32,
    },
    FakeQuantTaps {
        x: Var,
        bits: Vec<BitWidth>,
        scales: Vec<f32>,
    },
    Pad {
        x: Var,
        pad: usize,
    },
    PadTiles {
        x: Var,
        geom: TileGeometry,
    },
    GatherTiles {
        x: Var,
        geom: TileGeometry,
        batch: usize,
        ch: usize,
    },
    AssembleOut {
        x: Var,
        geom: TileGeometry,
    },
    Im2Row {
        x: Var,
        kh: usize,
        kw: usize,
        stride: usize,
    },
    BatchNorm {
        x: Var,
        gamma: Var,
        beta: Var,
        saved: BnSaved,
    },
    SliceChan {
        x: Var,
        from: usize,
        to: usize,
    },
    ConcatChan(Vec<Var>),
}

struct Node {
    value: Tensor,
    op: Op,
    needs_grad: bool,
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
    tape_id: u64,
}

impl Gradients {
    /// Gradient of the loss w.r.t. `v`, if `v` influences the loss and
    /// requires grad.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Identity of the tape that produced these gradients. Parameters
    /// registered on a *different* tape must not consume them (their
    /// `Var` indices would be stale) — see [`Param::absorb`].
    pub fn tape_id(&self) -> u64 {
        self.tape_id
    }
}

/// Running statistics handed to [`Tape::batch_norm`]: the per-channel
/// running mean/variance used in eval mode, plus the variance epsilon.
pub struct BnRunning<'a> {
    /// Per-channel running mean.
    pub mean: &'a [f32],
    /// Per-channel running variance.
    pub var: &'a [f32],
    /// Variance epsilon.
    pub eps: f32,
}

/// A define-by-run computation tape.
///
/// # Example
///
/// ```
/// use wa_nn::Tape;
/// use wa_tensor::Tensor;
///
/// let mut tape = Tape::new();
/// let x = tape.leaf_grad(Tensor::from_vec(vec![3.0], &[1]));
/// let y = tape.mul(x, x); // y = x²
/// let grads = tape.backward(y);
/// assert_eq!(grads.get(x).unwrap().data(), &[6.0]); // dy/dx = 2x
/// ```
pub struct Tape {
    nodes: Vec<Node>,
    id: u64,
}

impl Default for Tape {
    fn default() -> Self {
        Tape::new()
    }
}

impl Tape {
    /// Creates an empty tape with a process-unique identity.
    pub fn new() -> Tape {
        Tape {
            nodes: Vec::new(),
            id: NEXT_TAPE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Process-unique identity of this tape.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The value of a variable.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Tensor, op: Op, needs_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            op,
            needs_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn ng(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    /// Registers a constant input (no gradient).
    ///
    /// Zero-copy: `Tensor` storage is copy-on-write, so handing a clone
    /// to this method shares the buffer with the caller rather than
    /// duplicating it (tape values are never mutated after creation).
    pub fn leaf(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf, false)
    }

    /// Registers an input that requires gradient.
    pub fn leaf_grad(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf, true)
    }

    /// Registers a [`Param`], remembering the variable on the parameter so
    /// its gradient can be pulled after `backward`. Non-trainable params
    /// become constant leaves. Like [`Tape::param_ref`], the registered
    /// leaf shares the parameter's buffer (copy-on-write) — the
    /// optimizer's later in-place step detaches rather than corrupting
    /// the recorded forward value.
    pub fn param(&mut self, p: &mut Param) -> Var {
        let v = if p.trainable {
            self.leaf_grad(p.value.clone())
        } else {
            self.leaf(p.value.clone())
        };
        p.set_last_var(self.id, v);
        v
    }

    /// Registers a [`Param`] as a constant leaf **without** recording the
    /// variable on the parameter — the read-only registration used by the
    /// shared-reference inference path ([`crate::Infer`]), where many
    /// worker tapes read one set of parameters concurrently and nobody
    /// will ever pull gradients.
    ///
    /// Genuinely zero-copy: the leaf *aliases* the parameter's buffer
    /// (an O(1) copy-on-write clone), so N worker tapes share one set of
    /// parameter tensors instead of each deep-copying ~every weight per
    /// chunk. The aliasing is safe because tape values are read-only and
    /// any later in-place update of the parameter (optimizer step,
    /// checkpoint import) detaches through `Tensor::data_mut` without
    /// touching the registered leaf.
    pub fn param_ref(&mut self, p: &Param) -> Var {
        self.leaf(p.value.clone())
    }

    // ---- elementwise ----------------------------------------------------

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        let g = self.ng(a) || self.ng(b);
        self.push(v, Op::Add(a, b), g)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        let g = self.ng(a) || self.ng(b);
        self.push(v, Op::Mul(a, b), g)
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).scale(s);
        let g = self.ng(a);
        self.push(v, Op::Scale(a, s), g)
    }

    /// Adds a `[C]` bias to every row of a `[R, C]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn add_bias_rows(&mut self, x: Var, b: Var) -> Var {
        let xv = self.value(x);
        let bv = self.value(b);
        assert_eq!(xv.ndim(), 2, "add_bias_rows expects a matrix");
        let (r, c) = (xv.dim(0), xv.dim(1));
        assert_eq!(
            bv.shape(),
            &[c],
            "bias must be [{}], got {:?}",
            c,
            bv.shape()
        );
        // deliberate eager copy: the whole buffer is rewritten below, and
        // tape values are shared (COW) — see Tensor::deep_clone
        let mut out = xv.deep_clone();
        {
            let bd = bv.data().to_vec();
            let od = out.data_mut();
            for i in 0..r {
                for j in 0..c {
                    od[i * c + j] += bd[j];
                }
            }
        }
        let g = self.ng(x) || self.ng(b);
        self.push(out, Op::AddBiasRows(x, b), g)
    }

    /// Adds a `[C]` bias per channel of an NCHW tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn add_bias_chan(&mut self, x: Var, b: Var) -> Var {
        let xv = self.value(x);
        let bv = self.value(b);
        assert_eq!(xv.ndim(), 4, "add_bias_chan expects NCHW");
        let (n, c, h, w) = (xv.dim(0), xv.dim(1), xv.dim(2), xv.dim(3));
        assert_eq!(
            bv.shape(),
            &[c],
            "bias must be [{}], got {:?}",
            c,
            bv.shape()
        );
        let mut out = xv.deep_clone();
        {
            let bd = bv.data().to_vec();
            let od = out.data_mut();
            for img in 0..n {
                for ch in 0..c {
                    let base = (img * c + ch) * h * w;
                    for v in &mut od[base..base + h * w] {
                        *v += bd[ch];
                    }
                }
            }
        }
        let g = self.ng(x) || self.ng(b);
        self.push(out, Op::AddBiasChan(x, b), g)
    }

    // ---- linear algebra --------------------------------------------------

    /// Matrix product `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = gemm(self.value(a), Transpose::No, self.value(b), Transpose::No);
        let g = self.ng(a) || self.ng(b);
        self.push(v, Op::Matmul(a, b), g)
    }

    /// Matrix product `a · bᵀ` (the workhorse for applying transform
    /// matrices from the right).
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let v = gemm(self.value(a), Transpose::No, self.value(b), Transpose::Yes);
        let g = self.ng(a) || self.ng(b);
        self.push(v, Op::MatmulNT(a, b), g)
    }

    /// Batched matrix product of `a` `[batch, m, k]` and `b` `[batch, k, n]`
    /// (flattened 3-D shapes) — the per-coordinate GEMM stage `M_uv = U_uv ·
    /// V_uv` of the Winograd pipeline.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the stated dimensions.
    pub fn bmm(&mut self, a: Var, b: Var, batch: usize, m: usize, k: usize, n: usize) -> Var {
        let av = self.value(a);
        let bv = self.value(b);
        assert_eq!(av.len(), batch * m * k, "bmm lhs length mismatch");
        assert_eq!(bv.len(), batch * k * n, "bmm rhs length mismatch");
        let mut out = Tensor::zeros(&[batch, m, n]);
        // The n² per-coordinate products run as one packed batched GEMM,
        // split across threads under the ambient gemm thread cap.
        gemm_batched(av.data(), bv.data(), out.data_mut(), batch, m, k, n);
        let g = self.ng(a) || self.ng(b);
        self.push(
            out,
            Op::Bmm {
                a,
                b,
                batch,
                m,
                k,
                n,
            },
            g,
        )
    }

    // ---- shape ------------------------------------------------------------

    /// Reshape (element count preserved).
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshape(&mut self, x: Var, shape: &[usize]) -> Var {
        let v = self.value(x).reshape(shape);
        let g = self.ng(x);
        self.push(v, Op::Reshape(x), g)
    }

    /// Transposes each `rows × cols` block stored as a row of a
    /// `[R, rows·cols]` matrix, yielding `[R, cols·rows]`.
    ///
    /// # Panics
    ///
    /// Panics if the row length is not `rows·cols`.
    pub fn tile_transpose(&mut self, x: Var, rows: usize, cols: usize) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.ndim(), 2, "tile_transpose expects a matrix");
        assert_eq!(
            xv.dim(1),
            rows * cols,
            "row length {} != {}x{}",
            xv.dim(1),
            rows,
            cols
        );
        let r = xv.dim(0);
        let mut out = Tensor::zeros(&[r, cols * rows]);
        {
            let src = xv.data();
            let dst = out.data_mut();
            for t in 0..r {
                let s0 = t * rows * cols;
                for i in 0..rows {
                    for j in 0..cols {
                        dst[s0 + j * rows + i] = src[s0 + i * cols + j];
                    }
                }
            }
        }
        let g = self.ng(x);
        self.push(out, Op::TileTranspose { x, rows, cols }, g)
    }

    /// Permutes a tensor interpreted as 3-D `dims`, producing the
    /// permuted-contiguous result (2-D output shape `[d_perm0, d_perm1 ·
    /// d_perm2]` is *not* imposed; the output keeps 3-D shape).
    ///
    /// # Panics
    ///
    /// Panics if `x` length differs from the product of `dims` or `perm`
    /// is not a permutation of `{0,1,2}`.
    pub fn permute3(&mut self, x: Var, dims: [usize; 3], perm: [usize; 3]) -> Var {
        let xv = self.value(x);
        assert_eq!(
            xv.len(),
            dims[0] * dims[1] * dims[2],
            "permute3 length mismatch"
        );
        {
            let mut sorted = perm;
            sorted.sort_unstable();
            assert_eq!(sorted, [0, 1, 2], "perm must be a permutation of 0..3");
        }
        let out = permute3_tensor(xv, dims, perm);
        let g = self.ng(x);
        self.push(out, Op::Permute3 { x, dims, perm }, g)
    }

    // ---- nonlinearities and pooling ---------------------------------------

    /// Rectified linear unit.
    pub fn relu(&mut self, x: Var) -> Var {
        let v = self.value(x).map(|a| a.max(0.0));
        let g = self.ng(x);
        self.push(v, Op::Relu(x), g)
    }

    /// 2×2 max-pooling with stride 2 on NCHW (the paper replaces stride-2
    /// convolutions with max-pool + dense conv, §5.1).
    ///
    /// # Panics
    ///
    /// Panics unless the input is 4-D with even spatial dims.
    pub fn max_pool2d(&mut self, x: Var) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.ndim(), 4, "max_pool2d expects NCHW");
        let (n, c, h, w) = (xv.dim(0), xv.dim(1), xv.dim(2), xv.dim(3));
        assert!(
            h % 2 == 0 && w % 2 == 0,
            "max_pool2d needs even dims, got {}x{}",
            h,
            w
        );
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut indices = vec![0u32; n * c * oh * ow];
        {
            let src = xv.data();
            let dst = out.data_mut();
            for img in 0..n * c {
                let s0 = img * h * w;
                let d0 = img * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let idx = s0 + (oy * 2 + dy) * w + ox * 2 + dx;
                                if src[idx] > best {
                                    best = src[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        dst[d0 + oy * ow + ox] = best;
                        indices[d0 + oy * ow + ox] = best_idx as u32;
                    }
                }
            }
        }
        let g = self.ng(x);
        self.push(out, Op::MaxPool2d { x, indices }, g)
    }

    /// Global average pooling NCHW → `[N, C]`.
    ///
    /// # Panics
    ///
    /// Panics unless the input is 4-D.
    pub fn global_avg_pool(&mut self, x: Var) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.ndim(), 4, "global_avg_pool expects NCHW");
        let (n, c, h, w) = (xv.dim(0), xv.dim(1), xv.dim(2), xv.dim(3));
        let mut out = Tensor::zeros(&[n, c]);
        {
            let src = xv.data();
            let dst = out.data_mut();
            let inv = 1.0 / (h * w) as f32;
            for i in 0..n * c {
                let s: f32 = src[i * h * w..(i + 1) * h * w].iter().sum();
                dst[i] = s * inv;
            }
        }
        let g = self.ng(x);
        self.push(out, Op::Gap(x), g)
    }

    // ---- reductions and losses ---------------------------------------------

    /// Sum of squares → scalar `[1]` (L2 regularization terms of Eq. 2/3).
    pub fn sq_sum(&mut self, x: Var) -> Var {
        let v = Tensor::from_vec(vec![self.value(x).sq_norm() as f32], &[1]);
        let g = self.ng(x);
        self.push(v, Op::SqSum(x), g)
    }

    /// Sum of several scalars → scalar `[1]` (total loss assembly).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or any operand is not shape `[1]`.
    pub fn add_n(&mut self, xs: &[Var]) -> Var {
        assert!(!xs.is_empty(), "add_n needs at least one operand");
        let mut acc = 0.0f32;
        for &v in xs {
            assert_eq!(
                self.value(v).shape(),
                &[1],
                "add_n operands must be scalars"
            );
            acc += self.value(v).data()[0];
        }
        let g = xs.iter().any(|&v| self.ng(v));
        self.push(Tensor::from_vec(vec![acc], &[1]), Op::AddN(xs.to_vec()), g)
    }

    /// Softmax cross-entropy loss (mean over the batch) → scalar `[1]`.
    ///
    /// `logits` is `[N, K]`; `targets` are class indices.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != N` or any target is out of range.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[usize]) -> Var {
        let lv = self.value(logits);
        assert_eq!(lv.ndim(), 2, "cross_entropy expects [N, K] logits");
        let (n, k) = (lv.dim(0), lv.dim(1));
        assert_eq!(
            targets.len(),
            n,
            "targets length {} != batch {}",
            targets.len(),
            n
        );
        let mut probs = Tensor::zeros(&[n, k]);
        let mut loss = 0.0f64;
        {
            let src = lv.data();
            let dst = probs.data_mut();
            for i in 0..n {
                assert!(targets[i] < k, "target {} out of range {}", targets[i], k);
                let row = &src[i * k..(i + 1) * k];
                let maxv = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let mut z = 0.0f32;
                for j in 0..k {
                    let e = (row[j] - maxv).exp();
                    dst[i * k + j] = e;
                    z += e;
                }
                for j in 0..k {
                    dst[i * k + j] /= z;
                }
                loss -= (dst[i * k + targets[i]].max(1e-12) as f64).ln();
            }
        }
        let v = Tensor::from_vec(vec![(loss / n as f64) as f32], &[1]);
        let g = self.ng(logits);
        self.push(
            v,
            Op::CrossEntropy {
                logits,
                probs,
                targets: targets.to_vec(),
            },
            g,
        )
    }

    // ---- quantization --------------------------------------------------------

    /// Fake-quantization with straight-through-estimator gradients at a
    /// fixed scale. FP32 is the identity (no node state). This is the `Qx`
    /// box of the paper's Figure 2.
    pub fn fake_quant(&mut self, x: Var, bits: BitWidth, scale: f32) -> Var {
        let v = fake_quant_scale(self.value(x), bits, scale);
        let g = self.ng(x);
        self.push(v, Op::FakeQuant { x, bits, scale }, g)
    }

    /// Tap-wise fake-quantization with straight-through-estimator
    /// gradients: the element at flat index `i` is snapped to the grid of
    /// tap `i % bits.len()` (one `(bits, scale)` pair per tap position of
    /// an `n×n` Winograd tile). With every tap at one shared pair this is
    /// bit-for-bit [`Tape::fake_quant`].
    ///
    /// # Panics
    ///
    /// Panics if `bits`/`scales` disagree in length or do not divide the
    /// tensor's length.
    pub fn fake_quant_taps(&mut self, x: Var, bits: &[BitWidth], scales: &[f32]) -> Var {
        let v = fake_quant_taps(self.value(x), bits, scales);
        let g = self.ng(x);
        self.push(
            v,
            Op::FakeQuantTaps {
                x,
                bits: bits.to_vec(),
                scales: scales.to_vec(),
            },
            g,
        )
    }

    // ---- convolution plumbing -------------------------------------------------

    /// Symmetric zero-padding of an NCHW tensor.
    pub fn pad(&mut self, x: Var, pad: usize) -> Var {
        let v = pad_nchw(self.value(x), pad);
        let g = self.ng(x);
        self.push(v, Op::Pad { x, pad }, g)
    }

    /// Winograd padding: `geom.pad` plus the extra bottom/right zeros the
    /// tile grid needs (see [`TileGeometry::pad_input`]).
    pub fn pad_tiles(&mut self, x: Var, geom: TileGeometry) -> Var {
        let v = geom.pad_input(self.value(x));
        let g = self.ng(x);
        self.push(v, Op::PadTiles { x, geom }, g)
    }

    /// Gathers overlapping Winograd input tiles (see
    /// [`TileGeometry::gather_tiles`]).
    pub fn gather_tiles(&mut self, x: Var, geom: TileGeometry) -> Var {
        let xv = self.value(x);
        let (batch, ch) = (xv.dim(0), xv.dim(1));
        let v = geom.gather_tiles(xv);
        let g = self.ng(x);
        self.push(v, Op::GatherTiles { x, geom, batch, ch }, g)
    }

    /// Assembles `m×m` output tiles into NCHW, cropping tile overrun (see
    /// [`TileGeometry::assemble_output`]).
    pub fn assemble_output(&mut self, x: Var, geom: TileGeometry, batch: usize, ch: usize) -> Var {
        let v = geom.assemble_output(self.value(x), batch, ch);
        let g = self.ng(x);
        self.push(v, Op::AssembleOut { x, geom }, g)
    }

    /// Lowers a padded NCHW input to im2row patch rows (the paper's
    /// `im2row` baseline algorithm).
    pub fn im2row(&mut self, x: Var, kh: usize, kw: usize, stride: usize) -> Var {
        let v = im2row(self.value(x), kh, kw, stride);
        let g = self.ng(x);
        self.push(v, Op::Im2Row { x, kh, kw, stride }, g)
    }

    /// Slices channels `[from, to)` of an NCHW tensor (for grouped
    /// convolutions à la ResNeXt).
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid.
    pub fn slice_chan(&mut self, x: Var, from: usize, to: usize) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.ndim(), 4, "slice_chan expects NCHW");
        let (n, c, h, w) = (xv.dim(0), xv.dim(1), xv.dim(2), xv.dim(3));
        assert!(
            from < to && to <= c,
            "invalid channel range {}..{} of {}",
            from,
            to,
            c
        );
        let cs = to - from;
        let mut out = Tensor::zeros(&[n, cs, h, w]);
        {
            let src = xv.data();
            let dst = out.data_mut();
            for img in 0..n {
                for ch in 0..cs {
                    let s0 = ((img * c) + from + ch) * h * w;
                    let d0 = ((img * cs) + ch) * h * w;
                    dst[d0..d0 + h * w].copy_from_slice(&src[s0..s0 + h * w]);
                }
            }
        }
        let g = self.ng(x);
        self.push(out, Op::SliceChan { x, from, to }, g)
    }

    /// Concatenates NCHW tensors along the channel dimension.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or batch/spatial dims disagree.
    pub fn concat_chan(&mut self, xs: &[Var]) -> Var {
        assert!(!xs.is_empty(), "concat_chan needs at least one input");
        let (n, h, w) = {
            let v = self.value(xs[0]);
            assert_eq!(v.ndim(), 4, "concat_chan expects NCHW");
            (v.dim(0), v.dim(2), v.dim(3))
        };
        let mut total_c = 0;
        for &x in xs {
            let v = self.value(x);
            assert_eq!(
                (v.dim(0), v.dim(2), v.dim(3)),
                (n, h, w),
                "concat_chan dims disagree"
            );
            total_c += v.dim(1);
        }
        let mut out = Tensor::zeros(&[n, total_c, h, w]);
        {
            let dst = out.data_mut();
            let mut c0 = 0;
            for &x in xs {
                let v = self.value(x);
                let c = v.dim(1);
                let src = v.data();
                for img in 0..n {
                    let s0 = img * c * h * w;
                    let d0 = (img * total_c + c0) * h * w;
                    dst[d0..d0 + c * h * w].copy_from_slice(&src[s0..s0 + c * h * w]);
                }
                c0 += c;
            }
        }
        let g = xs.iter().any(|&x| self.ng(x));
        self.push(out, Op::ConcatChan(xs.to_vec()), g)
    }

    // ---- normalization ----------------------------------------------------------

    /// Batch normalization over NCHW with affine parameters.
    ///
    /// In training mode uses batch statistics and returns the per-channel
    /// `(mean, var)` actually used so the layer can maintain running
    /// statistics; in eval mode uses the provided running statistics.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn batch_norm(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        running: BnRunning<'_>,
        training: bool,
    ) -> (Var, Vec<f32>, Vec<f32>) {
        let BnRunning {
            mean: running_mean,
            var: running_var,
            eps,
        } = running;
        let xv = self.value(x).clone();
        assert_eq!(xv.ndim(), 4, "batch_norm expects NCHW");
        let (n, c, h, w) = (xv.dim(0), xv.dim(1), xv.dim(2), xv.dim(3));
        assert_eq!(self.value(gamma).shape(), &[c], "gamma must be [{}]", c);
        assert_eq!(self.value(beta).shape(), &[c], "beta must be [{}]", c);
        assert_eq!(running_mean.len(), c, "running_mean must be [{}]", c);
        assert_eq!(running_var.len(), c, "running_var must be [{}]", c);

        let m = (n * h * w) as f32;
        let (mean, var) = if training {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            let src = xv.data();
            for img in 0..n {
                for ch in 0..c {
                    let base = (img * c + ch) * h * w;
                    for &v in &src[base..base + h * w] {
                        mean[ch] += v;
                    }
                }
            }
            for ch in 0..c {
                mean[ch] /= m;
            }
            for img in 0..n {
                for ch in 0..c {
                    let base = (img * c + ch) * h * w;
                    for &v in &src[base..base + h * w] {
                        let d = v - mean[ch];
                        var[ch] += d * d;
                    }
                }
            }
            for ch in 0..c {
                var[ch] /= m;
            }
            (mean, var)
        } else {
            (running_mean.to_vec(), running_var.to_vec())
        };

        let invstd: Vec<f32> = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        let mut xhat = Tensor::zeros(xv.shape());
        let mut out = Tensor::zeros(xv.shape());
        {
            let src = xv.data();
            let xh = xhat.data_mut();
            let gm = self.value(gamma).data().to_vec();
            let bt = self.value(beta).data().to_vec();
            let od = out.data_mut();
            for img in 0..n {
                for ch in 0..c {
                    let base = (img * c + ch) * h * w;
                    let (mu, is) = (mean[ch], invstd[ch]);
                    for i in base..base + h * w {
                        let nh = (src[i] - mu) * is;
                        xh[i] = nh;
                        od[i] = gm[ch] * nh + bt[ch];
                    }
                }
            }
        }
        let g = self.ng(x) || self.ng(gamma) || self.ng(beta);
        let saved = BnSaved {
            invstd,
            xhat,
            batch_stats: training,
        };
        let v = self.push(
            out,
            Op::BatchNorm {
                x,
                gamma,
                beta,
                saved,
            },
            g,
        );
        (v, mean, var)
    }

    // ---- backward --------------------------------------------------------------

    /// Reverse-mode sweep from a scalar `loss` variable.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not shape `[1]`.
    pub fn backward(&mut self, loss: Var) -> Gradients {
        assert_eq!(
            self.value(loss).shape(),
            &[1],
            "backward requires a scalar loss"
        );
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::ones(&[1]));

        for idx in (0..self.nodes.len()).rev() {
            if !self.nodes[idx].needs_grad {
                grads[idx] = None;
                continue;
            }
            let Some(g) = grads[idx].take() else { continue };
            self.backprop_node(idx, &g, &mut grads);
            // keep the gradient available for callers (params, inputs)
            grads[idx] = Some(g);
        }
        Gradients {
            grads,
            tape_id: self.id,
        }
    }

    fn accumulate(grads: &mut [Option<Tensor>], v: Var, g: Tensor) {
        match &mut grads[v.0] {
            Some(acc) => acc.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    fn backprop_node(&self, idx: usize, g: &Tensor, grads: &mut [Option<Tensor>]) {
        let node = &self.nodes[idx];
        match &node.op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                if self.ng(*a) {
                    Self::accumulate(grads, *a, g.clone());
                }
                if self.ng(*b) {
                    Self::accumulate(grads, *b, g.clone());
                }
            }
            Op::Mul(a, b) => {
                if self.ng(*a) {
                    Self::accumulate(grads, *a, g.mul(self.value(*b)));
                }
                if self.ng(*b) {
                    Self::accumulate(grads, *b, g.mul(self.value(*a)));
                }
            }
            Op::Scale(a, s) => {
                if self.ng(*a) {
                    Self::accumulate(grads, *a, g.scale(*s));
                }
            }
            Op::AddBiasRows(x, b) => {
                if self.ng(*x) {
                    Self::accumulate(grads, *x, g.clone());
                }
                if self.ng(*b) {
                    let (r, c) = (g.dim(0), g.dim(1));
                    let mut db = Tensor::zeros(&[c]);
                    let gd = g.data();
                    let dd = db.data_mut();
                    for i in 0..r {
                        for j in 0..c {
                            dd[j] += gd[i * c + j];
                        }
                    }
                    Self::accumulate(grads, *b, db);
                }
            }
            Op::AddBiasChan(x, b) => {
                if self.ng(*x) {
                    Self::accumulate(grads, *x, g.clone());
                }
                if self.ng(*b) {
                    let (n, c, h, w) = (g.dim(0), g.dim(1), g.dim(2), g.dim(3));
                    let mut db = Tensor::zeros(&[c]);
                    let gd = g.data();
                    let dd = db.data_mut();
                    for img in 0..n {
                        for ch in 0..c {
                            let base = (img * c + ch) * h * w;
                            dd[ch] += gd[base..base + h * w].iter().sum::<f32>();
                        }
                    }
                    Self::accumulate(grads, *b, db);
                }
            }
            Op::Matmul(a, b) => {
                // c = a·b : da = g·bᵀ, db = aᵀ·g
                if self.ng(*a) {
                    Self::accumulate(
                        grads,
                        *a,
                        gemm(g, Transpose::No, self.value(*b), Transpose::Yes),
                    );
                }
                if self.ng(*b) {
                    Self::accumulate(
                        grads,
                        *b,
                        gemm(self.value(*a), Transpose::Yes, g, Transpose::No),
                    );
                }
            }
            Op::MatmulNT(a, b) => {
                // c = a·bᵀ : da = g·b, db = gᵀ·a
                if self.ng(*a) {
                    Self::accumulate(
                        grads,
                        *a,
                        gemm(g, Transpose::No, self.value(*b), Transpose::No),
                    );
                }
                if self.ng(*b) {
                    Self::accumulate(
                        grads,
                        *b,
                        gemm(g, Transpose::Yes, self.value(*a), Transpose::No),
                    );
                }
            }
            Op::Bmm {
                a,
                b,
                batch,
                m,
                k,
                n,
            } => {
                let (batch, m, k, n) = (*batch, *m, *k, *n);
                let gd = g.data();
                if self.ng(*a) {
                    // da[s] = g[s] · b[s]ᵀ
                    let bd = self.value(*b).data();
                    let mut da = Tensor::zeros(self.value(*a).shape());
                    let dd = da.data_mut();
                    for s in 0..batch {
                        let gb = &gd[s * m * n..(s + 1) * m * n];
                        let bb = &bd[s * k * n..(s + 1) * k * n];
                        let ab = &mut dd[s * m * k..(s + 1) * m * k];
                        for i in 0..m {
                            for p in 0..k {
                                let mut acc = 0.0f32;
                                for j in 0..n {
                                    acc += gb[i * n + j] * bb[p * n + j];
                                }
                                ab[i * k + p] += acc;
                            }
                        }
                    }
                    Self::accumulate(grads, *a, da);
                }
                if self.ng(*b) {
                    // db[s] = a[s]ᵀ · g[s]
                    let ad = self.value(*a).data();
                    let mut db = Tensor::zeros(self.value(*b).shape());
                    let dd = db.data_mut();
                    for s in 0..batch {
                        let gb = &gd[s * m * n..(s + 1) * m * n];
                        let ab = &ad[s * m * k..(s + 1) * m * k];
                        let bb = &mut dd[s * k * n..(s + 1) * k * n];
                        for i in 0..m {
                            for p in 0..k {
                                let aval = ab[i * k + p];
                                if aval != 0.0 {
                                    let grow = &gb[i * n..(i + 1) * n];
                                    let brow = &mut bb[p * n..(p + 1) * n];
                                    for j in 0..n {
                                        brow[j] += aval * grow[j];
                                    }
                                }
                            }
                        }
                    }
                    Self::accumulate(grads, *b, db);
                }
            }
            Op::Reshape(x) => {
                if self.ng(*x) {
                    Self::accumulate(grads, *x, g.reshape(self.value(*x).shape()));
                }
            }
            Op::TileTranspose { x, rows, cols } => {
                if self.ng(*x) {
                    // adjoint of per-tile transpose is per-tile transpose
                    // with swapped dims
                    let r = g.dim(0);
                    let mut out = Tensor::zeros(&[r, rows * cols]);
                    let src = g.data();
                    let dst = out.data_mut();
                    for t in 0..r {
                        let s0 = t * rows * cols;
                        for i in 0..*cols {
                            for j in 0..*rows {
                                dst[s0 + j * cols + i] = src[s0 + i * rows + j];
                            }
                        }
                    }
                    Self::accumulate(grads, *x, out);
                }
            }
            Op::Permute3 { x, dims, perm } => {
                if self.ng(*x) {
                    // inverse permutation
                    let mut inv = [0usize; 3];
                    for (i, &p) in perm.iter().enumerate() {
                        inv[p] = i;
                    }
                    let pdims = [dims[perm[0]], dims[perm[1]], dims[perm[2]]];
                    let out = permute3_tensor(g, pdims, inv);
                    Self::accumulate(grads, *x, out.reshape(self.value(*x).shape()));
                }
            }
            Op::Relu(x) => {
                if self.ng(*x) {
                    let mask = node.value.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    Self::accumulate(grads, *x, g.mul(&mask));
                }
            }
            Op::MaxPool2d { x, indices } => {
                if self.ng(*x) {
                    let mut dx = Tensor::zeros(self.value(*x).shape());
                    let dd = dx.data_mut();
                    for (o, &src_idx) in indices.iter().enumerate() {
                        dd[src_idx as usize] += g.data()[o];
                    }
                    Self::accumulate(grads, *x, dx);
                }
            }
            Op::Gap(x) => {
                if self.ng(*x) {
                    let xs = self.value(*x).shape();
                    let (n, c, h, w) = (xs[0], xs[1], xs[2], xs[3]);
                    let inv = 1.0 / (h * w) as f32;
                    let mut dx = Tensor::zeros(xs);
                    let dd = dx.data_mut();
                    for i in 0..n * c {
                        let gv = g.data()[i] * inv;
                        for v in &mut dd[i * h * w..(i + 1) * h * w] {
                            *v = gv;
                        }
                    }
                    Self::accumulate(grads, *x, dx);
                }
            }
            Op::SqSum(x) => {
                if self.ng(*x) {
                    let s = 2.0 * g.data()[0];
                    Self::accumulate(grads, *x, self.value(*x).scale(s));
                }
            }
            Op::AddN(xs) => {
                for &v in xs {
                    if self.ng(v) {
                        Self::accumulate(grads, v, g.clone());
                    }
                }
            }
            Op::CrossEntropy {
                logits,
                probs,
                targets,
            } => {
                if self.ng(*logits) {
                    let (n, k) = (probs.dim(0), probs.dim(1));
                    let mut dl = probs.deep_clone();
                    {
                        let dd = dl.data_mut();
                        for (i, &t) in targets.iter().enumerate() {
                            dd[i * k + t] -= 1.0;
                        }
                        let s = g.data()[0] / n as f32;
                        for v in dd.iter_mut() {
                            *v *= s;
                        }
                    }
                    Self::accumulate(grads, *logits, dl);
                }
            }
            Op::FakeQuant { x, bits, scale } => {
                if self.ng(*x) {
                    let mask = ste_mask(self.value(*x), *bits, *scale);
                    Self::accumulate(grads, *x, g.mul(&mask));
                }
            }
            Op::FakeQuantTaps { x, bits, scales } => {
                if self.ng(*x) {
                    let mask = ste_mask_taps(self.value(*x), bits, scales);
                    Self::accumulate(grads, *x, g.mul(&mask));
                }
            }
            Op::Pad { x, pad } => {
                if self.ng(*x) {
                    Self::accumulate(grads, *x, unpad_nchw(g, *pad));
                }
            }
            Op::PadTiles { x, geom } => {
                if self.ng(*x) {
                    Self::accumulate(grads, *x, geom.unpad_input(g));
                }
            }
            Op::GatherTiles { x, geom, batch, ch } => {
                if self.ng(*x) {
                    Self::accumulate(grads, *x, geom.scatter_tiles(g, *batch, *ch));
                }
            }
            Op::AssembleOut { x, geom, .. } => {
                if self.ng(*x) {
                    Self::accumulate(grads, *x, geom.disassemble_output(g));
                }
            }
            Op::Im2Row { x, kh, kw, stride } => {
                if self.ng(*x) {
                    let xs = self.value(*x).shape();
                    Self::accumulate(
                        grads,
                        *x,
                        col2im(g, [xs[0], xs[1], xs[2], xs[3]], (*kh, *kw), *stride),
                    );
                }
            }
            Op::SliceChan { x, from, to } => {
                if self.ng(*x) {
                    let xs = self.value(*x).shape();
                    let (n, c, h, w) = (xs[0], xs[1], xs[2], xs[3]);
                    let cs = to - from;
                    let mut dx = Tensor::zeros(xs);
                    let src = g.data();
                    let dst = dx.data_mut();
                    for img in 0..n {
                        for ch in 0..cs {
                            let d0 = ((img * c) + from + ch) * h * w;
                            let s0 = ((img * cs) + ch) * h * w;
                            dst[d0..d0 + h * w].copy_from_slice(&src[s0..s0 + h * w]);
                        }
                    }
                    Self::accumulate(grads, *x, dx);
                }
            }
            Op::ConcatChan(xs) => {
                let gs = g.shape();
                let (n, total_c, h, w) = (gs[0], gs[1], gs[2], gs[3]);
                let src = g.data();
                let mut c0 = 0;
                for &x in xs {
                    let c = self.value(x).dim(1);
                    if self.ng(x) {
                        let mut dx = Tensor::zeros(self.value(x).shape());
                        let dst = dx.data_mut();
                        for img in 0..n {
                            let s0 = (img * total_c + c0) * h * w;
                            let d0 = img * c * h * w;
                            dst[d0..d0 + c * h * w].copy_from_slice(&src[s0..s0 + c * h * w]);
                        }
                        Self::accumulate(grads, x, dx);
                    }
                    c0 += c;
                }
            }
            Op::BatchNorm {
                x,
                gamma,
                beta,
                saved,
            } => {
                let gs = g.shape();
                let (n, c, h, w) = (gs[0], gs[1], gs[2], gs[3]);
                let m = (n * h * w) as f32;
                let gd = g.data();
                let xh = saved.xhat.data();
                // per-channel reductions
                let mut dbeta = vec![0.0f32; c];
                let mut dgamma = vec![0.0f32; c];
                for img in 0..n {
                    for ch in 0..c {
                        let base = (img * c + ch) * h * w;
                        for i in base..base + h * w {
                            dbeta[ch] += gd[i];
                            dgamma[ch] += gd[i] * xh[i];
                        }
                    }
                }
                if self.ng(*beta) {
                    Self::accumulate(grads, *beta, Tensor::from_vec(dbeta.clone(), &[c]));
                }
                if self.ng(*gamma) {
                    Self::accumulate(grads, *gamma, Tensor::from_vec(dgamma.clone(), &[c]));
                }
                if self.ng(*x) {
                    let gm = self.value(*gamma).data();
                    let mut dx = Tensor::zeros(g.shape());
                    let dd = dx.data_mut();
                    if saved.batch_stats {
                        for img in 0..n {
                            for ch in 0..c {
                                let base = (img * c + ch) * h * w;
                                let k = gm[ch] * saved.invstd[ch] / m;
                                for i in base..base + h * w {
                                    dd[i] = k * (m * gd[i] - dbeta[ch] - xh[i] * dgamma[ch]);
                                }
                            }
                        }
                    } else {
                        for img in 0..n {
                            for ch in 0..c {
                                let base = (img * c + ch) * h * w;
                                let k = gm[ch] * saved.invstd[ch];
                                for i in base..base + h * w {
                                    dd[i] = k * gd[i];
                                }
                            }
                        }
                    }
                    Self::accumulate(grads, *x, dx);
                }
            }
        }
    }
}

/// Contiguous 3-D permutation helper.
fn permute3_tensor(x: &Tensor, dims: [usize; 3], perm: [usize; 3]) -> Tensor {
    let out_dims = [dims[perm[0]], dims[perm[1]], dims[perm[2]]];
    let mut out = Tensor::zeros(&out_dims);
    let src = x.data();
    let dst = out.data_mut();
    let strides = [dims[1] * dims[2], dims[2], 1];
    let s = [strides[perm[0]], strides[perm[1]], strides[perm[2]]];
    let mut o = 0usize;
    for i in 0..out_dims[0] {
        for j in 0..out_dims[1] {
            let base = i * s[0] + j * s[1];
            for k in 0..out_dims[2] {
                dst[o] = src[base + k * s[2]];
                o += 1;
            }
        }
    }
    out
}
