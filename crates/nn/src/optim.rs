//! Optimizers and learning-rate schedules.
//!
//! The paper trains Winograd-aware networks with Adam (§5.1) and runs the
//! wiNAS weight stage with SGD + Nesterov momentum and the architecture
//! stage with Adam at β₁ = 0 ("so the optimizer only updates paths that
//! have been sampled"), both under cosine-annealing schedules (§5.2).

use std::collections::HashMap;

use wa_tensor::Tensor;

use crate::param::Param;

/// A parameter-wise optimizer.
pub trait Optimizer {
    /// Applies one update to `p` from `p.grad` (no-op if absent or frozen)
    /// and clears the gradient.
    fn update(&mut self, p: &mut Param);

    /// Sets the learning rate (driven by a schedule).
    fn set_lr(&mut self, lr: f32);

    /// Current learning rate.
    fn lr(&self) -> f32;
}

/// Mini-batch SGD with (optionally Nesterov) momentum and L2 weight decay.
///
/// Matches the PyTorch update rule: `v ← μ·v + (g + λw)`; step is
/// `g + μ·v` for Nesterov, `v` otherwise.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    /// Momentum coefficient μ.
    pub momentum: f32,
    /// Use the Nesterov variant.
    pub nesterov: bool,
    /// L2 penalty λ (the `λ₀‖w‖²` of the paper's Eq. 2 enters the update
    /// as `λ·w`).
    pub weight_decay: f32,
    velocity: HashMap<u64, Tensor>,
}

impl Sgd {
    /// Creates SGD with the given hyper-parameters.
    pub fn new(lr: f32, momentum: f32, nesterov: bool, weight_decay: f32) -> Sgd {
        Sgd {
            lr,
            momentum,
            nesterov,
            weight_decay,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, p: &mut Param) {
        if !p.trainable {
            p.zero_grad();
            return;
        }
        let Some(grad) = p.grad.take() else { return };
        let mut g = grad;
        if self.weight_decay != 0.0 {
            g.add_scaled_assign(&p.value, self.weight_decay);
        }
        let step = if self.momentum != 0.0 {
            let v = self
                .velocity
                .entry(p.id())
                .or_insert_with(|| Tensor::zeros(p.value.shape()));
            // v = μ·v + g
            *v = v.scale(self.momentum);
            v.add_assign(&g);
            if self.nesterov {
                let mut s = g;
                s.add_scaled_assign(v, self.momentum);
                s
            } else {
                v.clone()
            }
        } else {
            g
        };
        p.value.add_scaled_assign(&step, -self.lr);
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba 2015). Setting `beta1 = 0` disables the first-moment
/// EMA, the configuration wiNAS uses for architecture parameters.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical stabilizer ε.
    pub eps: f32,
    /// Decoupled L2 weight decay λ.
    pub weight_decay: f32,
    state: HashMap<u64, AdamState>,
}

#[derive(Debug)]
struct AdamState {
    m: Tensor,
    v: Tensor,
    t: u32,
}

impl Adam {
    /// Creates Adam with standard defaults `β₁ = 0.9, β₂ = 0.999, ε = 1e-8`.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            state: HashMap::new(),
        }
    }

    /// Adam with explicit β₁ (wiNAS architecture stage uses β₁ = 0).
    pub fn with_beta1(lr: f32, beta1: f32) -> Adam {
        Adam {
            beta1,
            ..Adam::new(lr)
        }
    }
}

impl Optimizer for Adam {
    fn update(&mut self, p: &mut Param) {
        if !p.trainable {
            p.zero_grad();
            return;
        }
        let Some(grad) = p.grad.take() else { return };
        let mut g = grad;
        if self.weight_decay != 0.0 {
            g.add_scaled_assign(&p.value, self.weight_decay);
        }
        let st = self.state.entry(p.id()).or_insert_with(|| AdamState {
            m: Tensor::zeros(p.value.shape()),
            v: Tensor::zeros(p.value.shape()),
            t: 0,
        });
        st.t += 1;
        // m = β₁m + (1−β₁)g ; v = β₂v + (1−β₂)g²
        st.m = st.m.scale(self.beta1);
        st.m.add_scaled_assign(&g, 1.0 - self.beta1);
        let g2 = g.mul(&g);
        st.v = st.v.scale(self.beta2);
        st.v.add_scaled_assign(&g2, 1.0 - self.beta2);
        let bc1 = 1.0 - self.beta1.powi(st.t as i32);
        let bc2 = 1.0 - self.beta2.powi(st.t as i32);
        let lr = self.lr;
        let eps = self.eps;
        let update = st.m.zip_map(&st.v, |m, v| {
            let mhat = if bc1 > 0.0 { m / bc1 } else { m };
            let vhat = v / bc2;
            lr * mhat / (vhat.sqrt() + eps)
        });
        p.value.add_scaled_assign(&update, -1.0);
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Cosine-annealing learning-rate schedule (Loshchilov & Hutter 2017,
/// without restarts): `lr(t) = lr_min + ½(lr_max − lr_min)(1 + cos(πt/T))`.
#[derive(Clone, Copy, Debug)]
pub struct CosineAnnealing {
    /// Peak learning rate (epoch 0).
    pub lr_max: f32,
    /// Floor learning rate (epoch T).
    pub lr_min: f32,
    /// Total epochs T.
    pub total_epochs: usize,
}

impl CosineAnnealing {
    /// Creates a schedule decaying from `lr_max` to `lr_min` over
    /// `total_epochs`.
    ///
    /// # Panics
    ///
    /// Panics if `total_epochs == 0`.
    pub fn new(lr_max: f32, lr_min: f32, total_epochs: usize) -> CosineAnnealing {
        assert!(total_epochs > 0, "schedule needs at least one epoch");
        CosineAnnealing {
            lr_max,
            lr_min,
            total_epochs,
        }
    }

    /// Learning rate at the given epoch (clamped to the horizon).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        let t = epoch.min(self.total_epochs) as f32 / self.total_epochs as f32;
        self.lr_min + 0.5 * (self.lr_max - self.lr_min) * (1.0 + (std::f32::consts::PI * t).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_param(x0: f32) -> Param {
        Param::new("w", Tensor::from_vec(vec![x0], &[1]))
    }

    /// Minimize f(w) = w² with analytic gradient 2w.
    fn descend(opt: &mut dyn Optimizer, steps: usize, x0: f32) -> f32 {
        let mut p = quad_param(x0);
        for _ in 0..steps {
            p.grad = Some(p.value.scale(2.0));
            opt.update(&mut p);
        }
        p.value.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0, false, 0.0);
        assert!(descend(&mut opt, 50, 3.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_and_nesterov_converge() {
        let mut m = Sgd::new(0.05, 0.9, false, 0.0);
        assert!(descend(&mut m, 200, 3.0).abs() < 1e-2);
        let mut n = Sgd::new(0.05, 0.9, true, 0.0);
        assert!(descend(&mut n, 200, 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        assert!(descend(&mut opt, 300, 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_beta1_zero_converges() {
        let mut opt = Adam::with_beta1(0.1, 0.0);
        assert!(descend(&mut opt, 300, 3.0).abs() < 1e-2);
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient_signal() {
        let mut opt = Sgd::new(0.1, 0.0, false, 0.5);
        let mut p = quad_param(2.0);
        p.grad = Some(Tensor::zeros(&[1]));
        opt.update(&mut p);
        // w ← w − lr·λ·w = 2 − 0.1·0.5·2
        assert!((p.value.data()[0] - 1.9).abs() < 1e-6);
    }

    #[test]
    fn frozen_params_are_not_updated() {
        let mut opt = Sgd::new(0.1, 0.0, false, 0.0);
        let mut p = quad_param(1.0);
        p.trainable = false;
        p.grad = Some(Tensor::ones(&[1]));
        opt.update(&mut p);
        assert_eq!(p.value.data()[0], 1.0);
        assert!(p.grad.is_none(), "frozen update must still clear grads");
    }

    #[test]
    fn cosine_schedule_endpoints_and_midpoint() {
        let s = CosineAnnealing::new(1.0, 0.0, 100);
        assert!((s.lr_at(0) - 1.0).abs() < 1e-6);
        assert!((s.lr_at(50) - 0.5).abs() < 1e-6);
        assert!(s.lr_at(100) < 1e-6);
        assert!(s.lr_at(1000) < 1e-6, "clamps past horizon");
    }
}
