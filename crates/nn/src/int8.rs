//! Eager integer kernels for the [`Execution::Int8`] inference path of
//! the direct (im2row) convolution.
//!
//! [`Execution::Int8`]: wa_quant::Execution::Int8
//!
//! The fake-quant reference computes `Qout(im2row(Qin(x)) · Qw(w)ᵀ + b)`
//! in f32; this module computes the same pipeline with the quantize →
//! `gemm_i8` → requantize recipe: inputs are quantized to `i8` on the
//! observers' grids, the GEMM accumulates exactly in `i32`, and the
//! accumulator is rescaled onto the output grid with a fixed-point
//! [`Requantizer`] (bias folded in as `round(b/(s_in·s_w))`). The only
//! divergences from the reference are the f32 GEMM's accumulation
//! rounding and the ±1 fixed-point sliver, both sub-quantum — per
//! element the result is within 1 ulp-of-scale (`s_out`) of the
//! reference (the tolerance contract asserted by `tests/int8_parity.rs`
//! and documented in `docs/quantization.md`).

use wa_quant::{quantize_i8, BitWidth, Observer, QTensor, Requantizer};
use wa_tensor::{gemm_i8, Tensor, Transpose};

/// The scale a read-only int8 site quantizes through: a warm observer's
/// settled scale, or the one-off fallback a cold observer would derive
/// from the tensor at hand (mirroring `infer_quant`, including its
/// batch-partition caveat for cold models).
pub(crate) fn observer_scale(obs: &Observer, bits: BitWidth, x: &Tensor) -> f32 {
    if obs.observations() > 0 {
        obs.scale(bits)
    } else {
        let mut tmp = obs.clone();
        tmp.observe(x);
        tmp.scale(bits)
    }
}

/// Pad + im2row over `i8` data: lowers quantized NCHW input (logical
/// shape `[n, c, h, w]`, zero padding `pad`) to patch rows
/// `[n·oh·ow, c·kh·kw]` with exactly the layout of the f32
/// `wa_tensor::im2row` (rows spatial-major, columns channel-major then
/// `ky`, `kx`). Padding is implicit: out-of-bounds taps read 0, which
/// is also what zero-padding the f32 input and quantizing produces.
#[allow(clippy::too_many_arguments)] // the flattened conv geometry
pub(crate) fn im2row_i8(
    src: &[i8],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Vec<i8> {
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;
    let patch = c * kh * kw;
    let mut rows = vec![0i8; n * oh * ow * patch];
    for img in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = &mut rows[((img * oh + oy) * ow + ox) * patch..][..patch];
                for ch in 0..c {
                    let plane = &src[(img * c + ch) * h * w..][..h * w];
                    for ky in 0..kh {
                        let y = oy * stride + ky;
                        if y < pad || y >= h + pad {
                            continue; // stays zero
                        }
                        let sy = y - pad;
                        for kx in 0..kw {
                            let x = ox * stride + kx;
                            if x < pad || x >= w + pad {
                                continue;
                            }
                            row[(ch * kh + ky) * kw + kx] = plane[sy * w + (x - pad)];
                        }
                    }
                }
            }
        }
    }
    rows
}

/// One direct convolution on the integer path:
/// quantize → `gemm_i8` → requantize, returning the f32 NCHW output on
/// the `s_out` grid (`q·s_out`, exactly like the reference's output-site
/// fake-quant).
///
/// `qw` is the prepacked weight (`[K, C, kh, kw]`, per-layer scale);
/// `bias` is the f32 bias, folded into the accumulator as
/// `round(b/(s_in·s_w))`. The output scale comes from `obs_out` when it
/// is warm; a cold observer derives a one-off scale from the dequantized
/// pre-quant output, mirroring `infer_quant`'s cold fallback.
#[allow(clippy::too_many_arguments)] // the flattened conv geometry
pub(crate) fn conv2d_int8(
    xt: &Tensor,
    qw: &QTensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    s_in: f32,
    abits: BitWidth,
    obs_out: &Observer,
) -> Tensor {
    let (n, c, h, w) = (xt.dim(0), xt.dim(1), xt.dim(2), xt.dim(3));
    let (k_out, kh, kw) = (qw.shape()[0], qw.shape()[2], qw.shape()[3]);
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;
    let patch = c * kh * kw;
    let m = n * oh * ow;
    let s_w = qw.scale();

    let rows = {
        let _span = wa_obs::stage_span!("int8.quantize");
        let qx = quantize_i8(xt, abits, s_in);
        let _span = wa_obs::stage_span!("int8.im2row");
        im2row_i8(&qx, n, c, h, w, kh, kw, stride, pad)
    };

    let mut acc = vec![0i32; m * k_out];
    {
        let _span = wa_obs::stage_span!("int8.gemm");
        gemm_i8(
            &rows,
            Transpose::No,
            qw.data(),
            Transpose::Yes,
            m,
            patch,
            k_out,
            &mut acc,
        );
    }

    let _span = wa_obs::stage_span!("int8.requantize");
    let sq = s_in as f64 * s_w as f64;
    let bias_q: Vec<i32> = match bias {
        Some(b) => b
            .data()
            .iter()
            .map(|&v| {
                ((v as f64 / sq).round() as i64).clamp(i32::MIN as i64, i32::MAX as i64) as i32
            })
            .collect(),
        None => vec![0; k_out],
    };
    let ohw = oh * ow;
    let s_out = if obs_out.observations() > 0 {
        obs_out.scale(abits)
    } else {
        // cold one-off: dequantize the accumulator back to f32 and let a
        // scratch observer derive the range, like infer_quant would from
        // the f32 conv output
        let mut y_pre = Tensor::zeros(&[n, k_out, oh, ow]);
        let yd = y_pre.data_mut();
        for img in 0..n {
            for kc in 0..k_out {
                let dst = &mut yd[(img * k_out + kc) * ohw..][..ohw];
                for (s, d) in dst.iter_mut().enumerate() {
                    let a = acc[(img * ohw + s) * k_out + kc].saturating_add(bias_q[kc]);
                    *d = (a as f64 * sq) as f32;
                }
            }
        }
        let mut tmp = obs_out.clone();
        tmp.observe(&y_pre);
        tmp.scale(abits)
    };
    let requant = Requantizer::new(sq / s_out as f64);
    let qmax = abits.qmax();

    // acc is [N·oh·ow, K]; emit NCHW [N, K, oh, ow] on the s_out grid
    let mut out = Tensor::zeros(&[n, k_out, oh, ow]);
    {
        let od = out.data_mut();
        for img in 0..n {
            for kc in 0..k_out {
                let bq = bias_q[kc];
                let dst = &mut od[(img * k_out + kc) * ohw..][..ohw];
                for (s, d) in dst.iter_mut().enumerate() {
                    let a = acc[(img * ohw + s) * k_out + kc].saturating_add(bq);
                    *d = requant.apply_clamped(a, qmax) as f32 * s_out;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_tensor::{im2row, pad_nchw, SeededRng};

    #[test]
    fn im2row_i8_matches_f32_layout() {
        let mut rng = SeededRng::new(5);
        let (n, c, h, w, k, stride, pad) = (2usize, 3, 6, 5, 3, 2, 1);
        let x = Tensor::from_fn(&[n, c, h, w], |_| rng.uniform(-100.0, 100.0).round());
        let qx: Vec<i8> = x.data().iter().map(|&v| v as i8).collect();
        let got = im2row_i8(&qx, n, c, h, w, k, k, stride, pad);
        let want = im2row(&pad_nchw(&x, pad), k, k, stride);
        assert_eq!(got.len(), want.len());
        for (g, f) in got.iter().zip(want.data()) {
            assert_eq!(*g as f32, *f);
        }
    }
}
