//! Property-style tests for the autograd engine, driven by deterministic
//! seeded sweeps.

use wa_nn::Tape;
use wa_tensor::{SeededRng, Tensor};

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = SeededRng::new(seed);
    rng.uniform_tensor(shape, -1.0, 1.0)
}

fn dot(a: &Tensor, b: &Tensor) -> f64 {
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x as f64) * (y as f64))
        .sum()
}

/// Linearity of the gradient: ∇(αf) = α∇f for a matmul-chain loss.
#[test]
fn gradient_scales_linearly() {
    let mut rng = SeededRng::new(0x3001);
    for case in 0..32 {
        let m = 1 + rng.below(4);
        let k = 1 + rng.below(4);
        let alpha = rng.uniform(0.1, 3.0);
        let a = rand_tensor(&[m, k], 100 + case);
        let b = rand_tensor(&[k, m], 101 + case);
        let grad_of = |scale: f32| {
            let mut tape = Tape::new();
            let av = tape.leaf_grad(a.clone());
            let bv = tape.leaf(b.clone());
            let c = tape.matmul(av, bv);
            let s = tape.sq_sum(c);
            let loss = tape.scale(s, scale);
            let grads = tape.backward(loss);
            grads.get(av).unwrap().clone()
        };
        let g1 = grad_of(1.0);
        let ga = grad_of(alpha);
        for (x, y) in g1.data().iter().zip(ga.data()) {
            assert!(
                (alpha * x - y).abs() < 1e-3 * (1.0 + y.abs()),
                "{} vs {}",
                alpha * x,
                y
            );
        }
    }
}

/// The gradient of ⟨w, x⟩ w.r.t. w is x — for any shape, through a
/// reshape round-trip.
#[test]
fn inner_product_gradient_is_other_factor() {
    let mut rng = SeededRng::new(0x3002);
    for case in 0..32 {
        let n = 1 + rng.below(29);
        let w = rand_tensor(&[n], 200 + case);
        let x = rand_tensor(&[n], 207 + case);
        let mut tape = Tape::new();
        let wv = tape.leaf_grad(w.clone());
        let xv = tape.leaf(x.clone());
        let wr = tape.reshape(wv, &[1, n]);
        let xr = tape.reshape(xv, &[1, n]);
        let prod = tape.mul(wr, xr);
        // sum via matmul with a ones vector
        let ones = tape.leaf(Tensor::ones(&[n, 1]));
        let s = tape.matmul(prod, ones); // [1,1]
        let loss = tape.reshape(s, &[1]);
        let grads = tape.backward(loss);
        let g = grads.get(wv).unwrap();
        for (a, b) in g.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}

/// Backward of a linear op L is its adjoint: ⟨L(x), y⟩ = ⟨x, Lᵀ(y)⟩,
/// checked through the tape for the tile-transpose op.
#[test]
fn tape_linear_ops_are_adjoint() {
    let mut rng = SeededRng::new(0x3003);
    for case in 0..32 {
        let rows = 1 + rng.below(3);
        let a = 2 + rng.below(3);
        let b = 2 + rng.below(3);
        let x = rand_tensor(&[rows, a * b], 300 + case);
        let y = rand_tensor(&[rows, b * a], 303 + case);
        // forward L(x)
        let mut tape = Tape::new();
        let xv = tape.leaf_grad(x.clone());
        let lx = tape.tile_transpose(xv, a, b);
        // loss = <L(x), y>: backward gives Lᵀ(y)
        let yv = tape.leaf(y.clone());
        let prod = tape.mul(lx, yv);
        let flat = tape.reshape(prod, &[rows * a * b]);
        let ones = tape.leaf(Tensor::ones(&[rows * a * b, 1]));
        let row = tape.reshape(flat, &[1, rows * a * b]);
        let s = tape.matmul(row, ones);
        let loss = tape.reshape(s, &[1]);
        let lx_val = tape.value(lx).clone();
        let grads = tape.backward(loss);
        let lt_y = grads.get(xv).unwrap();
        assert!((dot(&lx_val, &y) - dot(&x, lt_y)).abs() < 1e-3);
    }
}

/// Cross-entropy loss is non-negative and its logit gradients sum to
/// zero per row (softmax shift invariance).
#[test]
fn cross_entropy_invariants() {
    let mut rng = SeededRng::new(0x3004);
    for case in 0..32 {
        let n = 1 + rng.below(4);
        let k = 2 + rng.below(4);
        let logits = rand_tensor(&[n, k], 400 + case);
        let targets: Vec<usize> = (0..n).map(|i| (i * 31 + case as usize) % k).collect();
        let mut tape = Tape::new();
        let lv = tape.leaf_grad(logits);
        let loss = tape.cross_entropy(lv, &targets);
        assert!(tape.value(loss).data()[0] >= 0.0);
        let grads = tape.backward(loss);
        let g = grads.get(lv).unwrap();
        for i in 0..n {
            let row_sum: f64 = g.data()[i * k..(i + 1) * k].iter().map(|&v| v as f64).sum();
            assert!(row_sum.abs() < 1e-5, "row {i} grad sum {row_sum}");
        }
    }
}

/// Fake-quant STE: the op's output is on the quantization grid and
/// the gradient mask is binary.
#[test]
fn fake_quant_grid_and_mask() {
    use wa_quant::BitWidth;
    let mut rng = SeededRng::new(0x3005);
    for case in 0..32 {
        let n = 1 + rng.below(19);
        let scale = rng.uniform(0.01, 0.5);
        let x = rand_tensor(&[n], 500 + case).scale(3.0);
        let mut tape = Tape::new();
        let xv = tape.leaf_grad(x.clone());
        let q = tape.fake_quant(xv, BitWidth::INT8, scale);
        for &v in tape.value(q).data() {
            let steps = v / scale;
            assert!(
                (steps - steps.round()).abs() < 1e-3,
                "{v} not on grid {scale}"
            );
        }
        let loss = tape.sq_sum(q);
        let grads = tape.backward(loss);
        let g = grads.get(xv).unwrap();
        let qv = tape.value(q);
        for (i, (&gi, &xi)) in g.data().iter().zip(x.data()).enumerate() {
            let saturated = xi.abs() > 127.0 * scale;
            if saturated {
                assert!(gi == 0.0, "elem {i}: saturated but grad {gi}");
            } else {
                // unsaturated STE passes 2·q through
                assert!((gi - 2.0 * qv.data()[i]).abs() < 1e-4);
            }
        }
    }
}
