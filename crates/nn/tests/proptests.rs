//! Property-based tests for the autograd engine.

use proptest::prelude::*;
use wa_nn::Tape;
use wa_tensor::{SeededRng, Tensor};

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = SeededRng::new(seed);
    rng.uniform_tensor(shape, -1.0, 1.0)
}

fn dot(a: &Tensor, b: &Tensor) -> f64 {
    a.data().iter().zip(b.data()).map(|(&x, &y)| (x as f64) * (y as f64)).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Linearity of the gradient: ∇(αf) = α∇f for a matmul-chain loss.
    #[test]
    fn gradient_scales_linearly(
        m in 1usize..5,
        k in 1usize..5,
        alpha in 0.1f32..3.0,
        seed in 0u64..500,
    ) {
        let a = rand_tensor(&[m, k], seed);
        let b = rand_tensor(&[k, m], seed + 1);
        let grad_of = |scale: f32| {
            let mut tape = Tape::new();
            let av = tape.leaf_grad(a.clone());
            let bv = tape.leaf(b.clone());
            let c = tape.matmul(av, bv);
            let s = tape.sq_sum(c);
            let loss = tape.scale(s, scale);
            let grads = tape.backward(loss);
            grads.get(av).unwrap().clone()
        };
        let g1 = grad_of(1.0);
        let ga = grad_of(alpha);
        for (x, y) in g1.data().iter().zip(ga.data()) {
            prop_assert!((alpha * x - y).abs() < 1e-3 * (1.0 + y.abs()), "{} vs {}", alpha * x, y);
        }
    }

    /// The gradient of ⟨w, x⟩ w.r.t. w is x — for any shape, through a
    /// reshape round-trip.
    #[test]
    fn inner_product_gradient_is_other_factor(
        n in 1usize..30,
        seed in 0u64..500,
    ) {
        let w = rand_tensor(&[n], seed);
        let x = rand_tensor(&[n], seed + 7);
        let mut tape = Tape::new();
        let wv = tape.leaf_grad(w.clone());
        let xv = tape.leaf(x.clone());
        let wr = tape.reshape(wv, &[1, n]);
        let xr = tape.reshape(xv, &[1, n]);
        let prod = tape.mul(wr, xr);
        // sum via sq_sum of sqrt is awkward; use matmul with ones instead
        let ones = tape.leaf(Tensor::ones(&[n, 1]));
        let s = tape.matmul(prod, ones); // [1,1]
        let loss = tape.reshape(s, &[1]);
        let grads = tape.backward(loss);
        let g = grads.get(wv).unwrap();
        for (a, b) in g.data().iter().zip(x.data()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// Backward of a linear op L is its adjoint: ⟨L(x), y⟩ = ⟨x, Lᵀ(y)⟩,
    /// checked through the tape for the tile-transpose op.
    #[test]
    fn tape_linear_ops_are_adjoint(
        rows in 1usize..4,
        a in 2usize..5,
        b in 2usize..5,
        seed in 0u64..500,
    ) {
        let x = rand_tensor(&[rows, a * b], seed);
        let y = rand_tensor(&[rows, b * a], seed + 3);
        // forward L(x)
        let mut tape = Tape::new();
        let xv = tape.leaf_grad(x.clone());
        let lx = tape.tile_transpose(xv, a, b);
        // loss = <L(x), y>: backward gives Lᵀ(y)
        let yv = tape.leaf(y.clone());
        let prod = tape.mul(lx, yv);
        let flat = tape.reshape(prod, &[rows * a * b]);
        let ones = tape.leaf(Tensor::ones(&[rows * a * b, 1]));
        let row = tape.reshape(flat, &[1, rows * a * b]);
        let s = tape.matmul(row, ones);
        let loss = tape.reshape(s, &[1]);
        let lx_val = tape.value(lx).clone();
        let grads = tape.backward(loss);
        let lt_y = grads.get(xv).unwrap();
        prop_assert!((dot(&lx_val, &y) - dot(&x, lt_y)).abs() < 1e-3);
    }

    /// Cross-entropy loss is non-negative and its logit gradients sum to
    /// zero per row (softmax shift invariance).
    #[test]
    fn cross_entropy_invariants(
        n in 1usize..5,
        k in 2usize..6,
        seed in 0u64..500,
    ) {
        let logits = rand_tensor(&[n, k], seed);
        let targets: Vec<usize> = (0..n).map(|i| (i * 31 + seed as usize) % k).collect();
        let mut tape = Tape::new();
        let lv = tape.leaf_grad(logits);
        let loss = tape.cross_entropy(lv, &targets);
        prop_assert!(tape.value(loss).data()[0] >= 0.0);
        let grads = tape.backward(loss);
        let g = grads.get(lv).unwrap();
        for i in 0..n {
            let row_sum: f64 = g.data()[i * k..(i + 1) * k].iter().map(|&v| v as f64).sum();
            prop_assert!(row_sum.abs() < 1e-5, "row {} grad sum {}", i, row_sum);
        }
    }

    /// Fake-quant STE: the op's output is on the quantization grid and
    /// the gradient mask is binary.
    #[test]
    fn fake_quant_grid_and_mask(
        n in 1usize..20,
        scale in 0.01f32..0.5,
        seed in 0u64..500,
    ) {
        use wa_quant::BitWidth;
        let x = rand_tensor(&[n], seed).scale(3.0);
        let mut tape = Tape::new();
        let xv = tape.leaf_grad(x.clone());
        let q = tape.fake_quant(xv, BitWidth::INT8, scale);
        for &v in tape.value(q).data() {
            let steps = v / scale;
            prop_assert!((steps - steps.round()).abs() < 1e-3, "{} not on grid {}", v, scale);
        }
        let loss = tape.sq_sum(q);
        let grads = tape.backward(loss);
        let g = grads.get(xv).unwrap();
        let qv = tape.value(q);
        for (i, (&gi, &xi)) in g.data().iter().zip(x.data()).enumerate() {
            let saturated = xi.abs() > 127.0 * scale;
            if saturated {
                prop_assert!(gi == 0.0, "elem {}: saturated but grad {}", i, gi);
            } else {
                // unsaturated STE passes 2·q through
                prop_assert!((gi - 2.0 * qv.data()[i]).abs() < 1e-4);
            }
        }
    }
}
