//! Finite-difference gradient checks for every tape operation.
//!
//! Each case builds a scalar loss from small random inputs, compares the
//! tape's reverse-mode gradients against central differences, and thereby
//! certifies the vector-Jacobian products used by the Winograd-aware
//! training pipeline.

use wa_nn::{Tape, Var};
use wa_tensor::{SeededRng, Tensor};
use wa_winograd::TileGeometry;

/// Central-difference gradient check of `f` (graph builder) at `inputs`.
///
/// `f` must be deterministic and smooth at the chosen inputs.
fn grad_check(inputs: &[Tensor], f: impl Fn(&mut Tape, &[Var]) -> Var, tol: f64) {
    // analytic gradients
    let mut tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|t| tape.leaf_grad(t.clone())).collect();
    let loss = f(&mut tape, &vars);
    assert_eq!(tape.value(loss).shape(), &[1], "loss must be scalar");
    let grads = tape.backward(loss);

    let eval = |mod_idx: usize, elem: usize, delta: f32| -> f64 {
        let mut tape = Tape::new();
        let vars: Vec<Var> = inputs
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut t = t.clone();
                if i == mod_idx {
                    t.data_mut()[elem] += delta;
                }
                tape.leaf(t)
            })
            .collect();
        let loss = f(&mut tape, &vars);
        tape.value(loss).data()[0] as f64
    };

    let eps = 1e-2f32;
    for (i, t) in inputs.iter().enumerate() {
        let g = grads
            .get(vars[i])
            .unwrap_or_else(|| panic!("missing gradient for input {}", i));
        assert_eq!(
            g.shape(),
            t.shape(),
            "gradient shape mismatch for input {}",
            i
        );
        for e in 0..t.len() {
            let fd = (eval(i, e, eps) - eval(i, e, -eps)) / (2.0 * eps as f64);
            let an = g.data()[e] as f64;
            let err = (fd - an).abs();
            let scale = 1.0 + fd.abs().max(an.abs());
            assert!(
                err / scale < tol,
                "input {} elem {}: analytic {} vs numeric {} (err {})",
                i,
                e,
                an,
                fd,
                err
            );
        }
    }
}

fn rng() -> SeededRng {
    SeededRng::new(20260610)
}

#[test]
fn add_mul_scale() {
    let mut r = rng();
    let a = r.uniform_tensor(&[3, 2], -1.0, 1.0);
    let b = r.uniform_tensor(&[3, 2], -1.0, 1.0);
    grad_check(
        &[a, b],
        |t, v| {
            let s = t.add(v[0], v[1]);
            let m = t.mul(s, v[1]);
            let sc = t.scale(m, 0.7);
            t.sq_sum(sc)
        },
        2e-2,
    );
}

#[test]
fn matmul_both_sides() {
    let mut r = rng();
    let a = r.uniform_tensor(&[3, 4], -1.0, 1.0);
    let b = r.uniform_tensor(&[4, 2], -1.0, 1.0);
    grad_check(
        &[a, b],
        |t, v| {
            let c = t.matmul(v[0], v[1]);
            t.sq_sum(c)
        },
        2e-2,
    );
}

#[test]
fn matmul_nt_both_sides() {
    let mut r = rng();
    let a = r.uniform_tensor(&[3, 4], -1.0, 1.0);
    let b = r.uniform_tensor(&[2, 4], -1.0, 1.0);
    grad_check(
        &[a, b],
        |t, v| {
            let c = t.matmul_nt(v[0], v[1]);
            t.sq_sum(c)
        },
        2e-2,
    );
}

#[test]
fn bmm_both_sides() {
    let mut r = rng();
    let a = r.uniform_tensor(&[2, 3, 2], -1.0, 1.0); // batch 2, 3x2
    let b = r.uniform_tensor(&[2, 2, 4], -1.0, 1.0); // batch 2, 2x4
    grad_check(
        &[a, b],
        |t, v| {
            let c = t.bmm(v[0], v[1], 2, 3, 2, 4);
            t.sq_sum(c)
        },
        2e-2,
    );
}

#[test]
fn bias_rows_and_chan() {
    let mut r = rng();
    let x = r.uniform_tensor(&[4, 3], -1.0, 1.0);
    let b = r.uniform_tensor(&[3], -1.0, 1.0);
    grad_check(
        &[x, b],
        |t, v| {
            let y = t.add_bias_rows(v[0], v[1]);
            t.sq_sum(y)
        },
        2e-2,
    );

    let x4 = r.uniform_tensor(&[2, 3, 2, 2], -1.0, 1.0);
    let b4 = r.uniform_tensor(&[3], -1.0, 1.0);
    grad_check(
        &[x4, b4],
        |t, v| {
            let y = t.add_bias_chan(v[0], v[1]);
            t.sq_sum(y)
        },
        2e-2,
    );
}

#[test]
fn shape_ops_composite() {
    let mut r = rng();
    let x = r.uniform_tensor(&[2, 12], -1.0, 1.0); // rows of 3x4 tiles
    grad_check(
        &[x],
        |t, v| {
            let tt = t.tile_transpose(v[0], 3, 4); // -> rows of 4x3
            let rs = t.reshape(tt, &[24]);
            let p = t.permute3(rs, [2, 3, 4], [2, 0, 1]);
            t.sq_sum(p)
        },
        2e-2,
    );
}

#[test]
fn relu_away_from_kink() {
    let mut r = rng();
    // keep |x| > 0.1 so finite differences don't straddle the kink
    let x = Tensor::from_fn(&[10], |_| {
        let v = r.uniform(0.15, 1.0);
        if r.chance(0.5) {
            v
        } else {
            -v
        }
    });
    grad_check(
        &[x],
        |t, v| {
            let y = t.relu(v[0]);
            t.sq_sum(y)
        },
        2e-2,
    );
}

#[test]
fn max_pool() {
    let mut r = rng();
    // distinct values so the argmax is stable under perturbation
    let mut vals: Vec<f32> = (0..16).map(|i| i as f32 * 0.13 - 1.0).collect();
    r.shuffle(&mut vals);
    let x = Tensor::from_vec(vals, &[1, 1, 4, 4]);
    grad_check(
        &[x],
        |t, v| {
            let y = t.max_pool2d(v[0]);
            t.sq_sum(y)
        },
        2e-2,
    );
}

#[test]
fn global_avg_pool() {
    let mut r = rng();
    let x = r.uniform_tensor(&[2, 3, 2, 2], -1.0, 1.0);
    grad_check(
        &[x],
        |t, v| {
            let y = t.global_avg_pool(v[0]);
            t.sq_sum(y)
        },
        2e-2,
    );
}

#[test]
fn cross_entropy_loss() {
    let mut r = rng();
    let logits = r.uniform_tensor(&[4, 3], -1.0, 1.0);
    grad_check(&[logits], |t, v| t.cross_entropy(v[0], &[0, 2, 1, 2]), 2e-2);
}

#[test]
fn add_n_scalars() {
    let mut r = rng();
    let a = r.uniform_tensor(&[4], -1.0, 1.0);
    let b = r.uniform_tensor(&[4], -1.0, 1.0);
    grad_check(
        &[a, b],
        |t, v| {
            let sa = t.sq_sum(v[0]);
            let sb = t.sq_sum(v[1]);
            let sb2 = t.scale(sb, 0.3);
            t.add_n(&[sa, sb2])
        },
        2e-2,
    );
}

#[test]
fn pad_and_im2row() {
    let mut r = rng();
    let x = r.uniform_tensor(&[1, 2, 4, 4], -1.0, 1.0);
    let w = r.uniform_tensor(&[3, 2 * 9], -1.0, 1.0);
    grad_check(
        &[x, w],
        |t, v| {
            let xp = t.pad(v[0], 1);
            let rows = t.im2row(xp, 3, 3, 1);
            let y = t.matmul_nt(rows, v[1]);
            t.sq_sum(y)
        },
        2e-2,
    );
}

#[test]
fn winograd_plumbing_composite() {
    // pad_tiles -> gather_tiles -> (transform via matmul_nt) -> assemble
    let geom = TileGeometry::for_conv(5, 5, 2, 3, 1);
    let mut r = rng();
    let x = r.uniform_tensor(&[1, 2, 5, 5], -1.0, 1.0);
    let bt = r.uniform_tensor(&[4, 4], -0.5, 0.5);
    grad_check(
        &[x, bt],
        move |t, v| {
            let xp = t.pad_tiles(v[0], geom);
            let tiles = t.gather_tiles(xp, geom); // [T*2, 16]
            let rows = tiles;
            let nrows = t.value(rows).dim(0);
            let as_rows = t.reshape(rows, &[nrows * 4, 4]);
            let z = t.matmul_nt(as_rows, v[1]); // x·Bᵀᵀ per tile row-block
            let back = t.reshape(z, &[nrows, 16]);
            // fold channels by just summing squares (plumbing check, not full conv)
            t.sq_sum(back)
        },
        2e-2,
    );

    // assemble/disassemble path with output-tile overrun
    let geom2 = TileGeometry::for_conv(3, 3, 2, 3, 1);
    let tiles = r.uniform_tensor(&[geom2.tiles() * 2, 4], -1.0, 1.0);
    grad_check(
        &[tiles],
        move |t, v| {
            let y = t.assemble_output(v[0], geom2, 1, 2);
            t.sq_sum(y)
        },
        2e-2,
    );
}

#[test]
fn batch_norm_train_mode() {
    let mut r = rng();
    let x = r.uniform_tensor(&[3, 2, 2, 2], -1.0, 1.0);
    let gamma = r.uniform_tensor(&[2], 0.5, 1.5);
    let beta = r.uniform_tensor(&[2], -0.5, 0.5);
    grad_check(
        &[x, gamma, beta],
        |t, v| {
            let bn = wa_nn::BnRunning {
                mean: &[0.0, 0.0],
                var: &[1.0, 1.0],
                eps: 1e-5,
            };
            let (y, _, _) = t.batch_norm(v[0], v[1], v[2], bn, true);
            // weight the squared output so per-element grads are asymmetric
            let w = t.leaf(Tensor::from_fn(&[3, 2, 2, 2], |i| 0.1 + 0.07 * i as f32));
            let yw = t.mul(y, w);
            t.sq_sum(yw)
        },
        3e-2,
    );
}

#[test]
fn batch_norm_eval_mode() {
    let mut r = rng();
    let x = r.uniform_tensor(&[2, 2, 2, 2], -1.0, 1.0);
    let gamma = r.uniform_tensor(&[2], 0.5, 1.5);
    let beta = r.uniform_tensor(&[2], -0.5, 0.5);
    grad_check(
        &[x, gamma, beta],
        |t, v| {
            let bn = wa_nn::BnRunning {
                mean: &[0.1, -0.2],
                var: &[0.9, 1.1],
                eps: 1e-5,
            };
            let (y, _, _) = t.batch_norm(v[0], v[1], v[2], bn, false);
            t.sq_sum(y)
        },
        2e-2,
    );
}

/// End-to-end: a miniature Winograd-aware convolution (paper Fig. 2,
/// without quantization) expressed in tape ops, with gradients flowing to
/// the input, the filter, *and all three transform matrices* — the `-flex`
/// configuration.
#[test]
fn winograd_aware_conv_full_gradient() {
    let m = 2usize;
    let rr = 3usize;
    let n = m + rr - 1;
    let geom = TileGeometry::for_conv(4, 4, m, rr, 1);
    let (in_ch, out_ch, batch) = (2usize, 2usize, 1usize);
    let total_tiles = batch * geom.tiles();

    let t0 = wa_winograd::WinogradTransform::canonical(m, rr);
    let mut r = rng();
    let x = r.uniform_tensor(&[batch, in_ch, 4, 4], -1.0, 1.0);
    let w = r.uniform_tensor(&[out_ch, in_ch, rr, rr], -1.0, 1.0);
    let at = t0.at().clone();
    let g = t0.g().clone();
    let bt = t0.bt().clone();

    grad_check(
        &[x, w, at, g, bt],
        move |t, v| {
            let (x, w, at, g, bt) = (v[0], v[1], v[2], v[3], v[4]);
            // ---- input transform: BᵀdB per tile
            let xp = t.pad_tiles(x, geom);
            let tiles = t.gather_tiles(xp, geom); // [B·T·C, n²]
            let rows = t.value(tiles).dim(0);
            let t1 = t.reshape(tiles, &[rows * n, n]);
            let t2 = t.matmul_nt(t1, bt); // X·B
            let t3 = t.reshape(t2, &[rows, n * n]);
            let t4 = t.tile_transpose(t3, n, n);
            let t5 = t.reshape(t4, &[rows * n, n]);
            let t6 = t.matmul_nt(t5, bt);
            let t7 = t.reshape(t6, &[rows, n * n]);
            let v_rows = t.tile_transpose(t7, n, n); // BᵀdB rows

            // ---- weight transform: GgGᵀ per filter
            let wrows = out_ch * in_ch;
            let w1 = t.reshape(w, &[wrows * rr, rr]);
            let w2 = t.matmul_nt(w1, g); // g·Gᵀ
            let w3 = t.reshape(w2, &[wrows, rr * n]);
            let w4 = t.tile_transpose(w3, rr, n);
            let w5 = t.reshape(w4, &[wrows * n, rr]);
            let w6 = t.matmul_nt(w5, g);
            let w7 = t.reshape(w6, &[wrows, n * n]);
            let u_rows = t.tile_transpose(w7, n, n); // GgGᵀ rows

            // ---- per-coordinate GEMM
            let v_p = t.permute3(v_rows, [total_tiles, in_ch, n * n], [2, 1, 0]); // [n², C, T]
            let u_p = t.permute3(u_rows, [out_ch, in_ch, n * n], [2, 0, 1]); // [n², K, C]
            let mm = t.bmm(u_p, v_p, n * n, out_ch, in_ch, total_tiles); // [n², K, T]

            // ---- output transform: AᵀyA per (tile, k)
            let m_rows3 = t.permute3(mm, [n * n, out_ch, total_tiles], [2, 1, 0]); // [T, K, n²]
            let orows = total_tiles * out_ch;
            let m_rows = t.reshape(m_rows3, &[orows, n * n]);
            let o1 = t.reshape(m_rows, &[orows * n, n]);
            let o2 = t.matmul_nt(o1, at); // Y·A
            let o3 = t.reshape(o2, &[orows, n * m]);
            let o4 = t.tile_transpose(o3, n, m);
            let o5 = t.reshape(o4, &[orows * m, n]);
            let o6 = t.matmul_nt(o5, at);
            let o7 = t.reshape(o6, &[orows, m * m]);
            let y_rows = t.tile_transpose(o7, m, m);

            let y = t.assemble_output(y_rows, geom, batch, out_ch);
            t.sq_sum(y)
        },
        3e-2,
    );
}

#[test]
fn slice_and_concat_chan() {
    let mut r = rng();
    let a = r.uniform_tensor(&[2, 3, 2, 2], -1.0, 1.0);
    let b = r.uniform_tensor(&[2, 2, 2, 2], -1.0, 1.0);
    grad_check(
        &[a, b],
        |t, v| {
            let s = t.slice_chan(v[0], 1, 3); // 2 channels
            let m = t.mul(s, v[1]);
            let cat = t.concat_chan(&[m, v[1]]);
            t.sq_sum(cat)
        },
        2e-2,
    );
}
