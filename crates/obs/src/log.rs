//! Structured leveled logging: one JSON object per line on stderr.
//!
//! The threshold comes from `WA_LOG` (`off`, `error`, `warn`, `info`
//! — the default — `debug`, `trace`) and can be overridden in-process
//! with [`set_max_level`]. A call below the threshold costs one relaxed
//! atomic load. Every emitted line also bumps
//! `wa_log_lines_total{level=...}`, so a scrape can prove a run was
//! error-free without parsing stderr.

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::metrics::{counter_with, Counter};
use crate::trace::TraceId;

/// Log severity. `Off` is only meaningful as a threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Disables all logging (threshold only).
    Off = 0,
    /// The run is broken or losing data.
    Error = 1,
    /// Degraded but proceeding (deadline drops, refusals).
    Warn = 2,
    /// Lifecycle events: startup, model load, batch flush.
    Info = 3,
    /// Per-request detail: access log lines.
    Debug = 4,
    /// Per-stage firehose.
    Trace = 5,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_env(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

const UNINIT: u8 = u8::MAX;
static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

fn max_level() -> u8 {
    let v = MAX_LEVEL.load(Ordering::Relaxed);
    if v != UNINIT {
        return v;
    }
    let level = std::env::var("WA_LOG")
        .ok()
        .and_then(|s| Level::from_env(&s))
        .unwrap_or(Level::Info);
    // Racing first calls may both read the env; they agree on the value.
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
    level as u8
}

/// Overrides the `WA_LOG` threshold for this process (tests, CLIs).
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether a message at `level` would currently be emitted.
pub fn log_enabled(level: Level) -> bool {
    level != Level::Off && (level as u8) <= max_level()
}

/// A typed field value for a structured log line.
pub enum LogValue {
    /// A string (JSON-escaped on output).
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for LogValue {
    fn from(v: &str) -> LogValue {
        LogValue::Str(v.to_string())
    }
}

impl From<String> for LogValue {
    fn from(v: String) -> LogValue {
        LogValue::Str(v)
    }
}

impl From<&String> for LogValue {
    fn from(v: &String) -> LogValue {
        LogValue::Str(v.clone())
    }
}

impl From<u64> for LogValue {
    fn from(v: u64) -> LogValue {
        LogValue::U64(v)
    }
}

impl From<u32> for LogValue {
    fn from(v: u32) -> LogValue {
        LogValue::U64(v as u64)
    }
}

impl From<usize> for LogValue {
    fn from(v: usize) -> LogValue {
        LogValue::U64(v as u64)
    }
}

impl From<i64> for LogValue {
    fn from(v: i64) -> LogValue {
        LogValue::I64(v)
    }
}

impl From<f64> for LogValue {
    fn from(v: f64) -> LogValue {
        LogValue::F64(v)
    }
}

impl From<bool> for LogValue {
    fn from(v: bool) -> LogValue {
        LogValue::Bool(v)
    }
}

impl From<TraceId> for LogValue {
    fn from(v: TraceId) -> LogValue {
        LogValue::Str(v.to_string())
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn line_counter(level: Level) -> Arc<Counter> {
    static COUNTERS: OnceLock<[Arc<Counter>; 5]> = OnceLock::new();
    let all = COUNTERS.get_or_init(|| {
        let make = |lvl: Level| {
            counter_with(
                "wa_log_lines_total",
                "Structured log lines emitted, by level.",
                &[("level", lvl.as_str())],
            )
        };
        [
            make(Level::Error),
            make(Level::Warn),
            make(Level::Info),
            make(Level::Debug),
            make(Level::Trace),
        ]
    });
    Arc::clone(&all[(level as usize) - 1])
}

/// Emits one structured log line:
/// `{"ts_ms":...,"level":"info","target":"...","msg":"...",<fields>}`.
/// No-op (one relaxed load) below the current threshold.
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, LogValue)]) {
    if level == Level::Off || !log_enabled(level) {
        return;
    }
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut line = String::with_capacity(128);
    let _ = write!(
        line,
        "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",",
        level.as_str()
    );
    line.push_str("\"target\":");
    push_json_string(&mut line, target);
    line.push_str(",\"msg\":");
    push_json_string(&mut line, msg);
    for (key, value) in fields {
        line.push(',');
        push_json_string(&mut line, key);
        line.push(':');
        match value {
            LogValue::Str(s) => push_json_string(&mut line, s),
            LogValue::U64(v) => {
                let _ = write!(line, "{v}");
            }
            LogValue::I64(v) => {
                let _ = write!(line, "{v}");
            }
            LogValue::F64(v) => {
                if v.is_finite() {
                    let _ = write!(line, "{v}");
                } else {
                    line.push_str("null");
                }
            }
            LogValue::Bool(v) => {
                let _ = write!(line, "{v}");
            }
        }
    }
    line.push('}');
    line_counter(level).inc();
    // One write_all per line keeps concurrent lines unspliced.
    line.push('\n');
    let _ = std::io::stderr().lock().write_all(line.as_bytes());
}

/// Logs at [`Level::Error`].
pub fn error(target: &str, msg: &str, fields: &[(&str, LogValue)]) {
    log(Level::Error, target, msg, fields);
}

/// Logs at [`Level::Warn`].
pub fn warn(target: &str, msg: &str, fields: &[(&str, LogValue)]) {
    log(Level::Warn, target, msg, fields);
}

/// Logs at [`Level::Info`].
pub fn info(target: &str, msg: &str, fields: &[(&str, LogValue)]) {
    log(Level::Info, target, msg, fields);
}

/// Logs at [`Level::Debug`].
pub fn debug(target: &str, msg: &str, fields: &[(&str, LogValue)]) {
    log(Level::Debug, target, msg, fields);
}

/// Logs at [`Level::Trace`].
pub fn trace(target: &str, msg: &str, fields: &[(&str, LogValue)]) {
    log(Level::Trace, target, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_filters_and_counts() {
        set_max_level(Level::Warn);
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        assert!(!log_enabled(Level::Off));

        let warns = line_counter(Level::Warn);
        let infos = line_counter(Level::Info);
        let (w0, i0) = (warns.get(), infos.get());
        warn("wa_obs::test", "something degraded", &[("n", 3u64.into())]);
        info("wa_obs::test", "suppressed", &[]);
        assert_eq!(warns.get(), w0 + 1);
        assert_eq!(infos.get(), i0);
        set_max_level(Level::Info);
    }

    #[test]
    fn json_string_escaping_is_lossless_for_control_chars() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn level_parsing_accepts_common_spellings() {
        assert_eq!(Level::from_env("OFF"), Some(Level::Off));
        assert_eq!(Level::from_env(" warning "), Some(Level::Warn));
        assert_eq!(Level::from_env("Trace"), Some(Level::Trace));
        assert_eq!(Level::from_env("bogus"), None);
    }
}
