//! Log-linear (HDR-style) histogram bucketing, shared by the
//! single-threaded [`LogHistogram`] (load generators, snapshots) and the
//! atomic [`Histogram`](crate::Histogram) (live metrics).

/// Sub-buckets per power of two: ~3% relative error per recorded value.
pub(crate) const SUBS: u64 = 32;

/// Number of log-linear buckets (covers the full `u64` range).
pub(crate) const BUCKETS: usize = (64 - 5) * SUBS as usize + SUBS as usize;

/// The bucket a value falls in: exact below [`SUBS`], log-linear (top
/// five significant bits) above.
pub(crate) fn bucket_index(value: u64) -> usize {
    if value < SUBS {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros() as u64; // >= 5 here
    ((octave - 4) * SUBS + ((value >> (octave - 5)) & (SUBS - 1))) as usize
}

/// The lower edge of a bucket (what quantiles report).
pub(crate) fn bucket_lower_edge(index: usize) -> u64 {
    let index = index as u64;
    if index < SUBS {
        return index;
    }
    let octave = index / SUBS + 4;
    let sub = index % SUBS;
    (1u64 << octave) | (sub << (octave - 5))
}

/// The *inclusive* upper edge of a bucket: one below the next bucket's
/// lower edge (values are integers), saturating at `u64::MAX` for the
/// final bucket.
pub(crate) fn bucket_upper_edge(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_lower_edge(index + 1) - 1
}

/// One non-empty histogram bucket, as exposed to renderers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistBucket {
    /// Inclusive upper edge of the bucket (`le` in Prometheus terms).
    pub le: u64,
    /// Values recorded into this bucket (non-cumulative).
    pub count: u64,
}

/// An HDR-style latency histogram: fixed memory, log-linear buckets
/// (32 per power of two, so every quantile is accurate to ~3%),
/// mergeable across load-generator threads.
///
/// This is the *single-threaded* flavor (`&mut self` to record), used by
/// `wa-bench`'s load generator and as the snapshot type of the atomic
/// [`Histogram`](crate::Histogram).
#[derive(Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.total)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Rebuilds a histogram from raw bucket counts (the atomic
    /// histogram's snapshot path). `counts` beyond [`BUCKETS`] are
    /// ignored; the total is derived from the buckets so count and
    /// bucket sums agree by construction.
    pub(crate) fn from_parts(counts: Vec<u64>, sum: u64, max: u64) -> LogHistogram {
        let mut h = LogHistogram::new();
        let n = counts.len().min(BUCKETS);
        h.counts[..n].copy_from_slice(&counts[..n]);
        h.total = h.counts.iter().sum();
        h.sum = sum;
        h.max = max;
        h
    }

    /// Records one value (any unit; callers here use microseconds).
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of the recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// The largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket lower edge, or
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_lower_edge(i));
            }
        }
        Some(self.max)
    }

    /// The non-empty buckets in increasing order, each with its
    /// *inclusive* upper edge — what a Prometheus `_bucket` series (or a
    /// textual distribution dump) needs.
    pub fn buckets(&self) -> impl Iterator<Item = HistBucket> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| HistBucket {
                le: bucket_upper_edge(i),
                count: *c,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_close_over_a_wide_range() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.quantile(0.5).unwrap() as f64;
        let p99 = h.quantile(0.99).unwrap() as f64;
        // log-linear buckets: within ~4% of the exact rank values
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.04, "p50 = {p50}");
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.04, "p99 = {p99}");
        assert_eq!(h.max(), 10_000);
        assert!((h.mean() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_merge_matches_recording_everything_in_one() {
        let (mut a, mut b, mut all) = (
            LogHistogram::new(),
            LogHistogram::new(),
            LogHistogram::new(),
        );
        for v in [3u64, 17, 450, 12_345, 999_999] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 80, 6_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUBS {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(SUBS - 1));
    }

    #[test]
    fn bucket_edges_are_monotone_and_roundtrip() {
        let mut last = 0;
        for i in 1..BUCKETS {
            let edge = bucket_lower_edge(i);
            assert!(edge > last, "bucket {i}: {edge} <= {last}");
            last = edge;
        }
        // indexing round-trips into [lower, upper] of its own bucket
        for v in [0u64, 1, 31, 32, 33, 1000, 65_537, u64::MAX / 2, u64::MAX] {
            let idx = bucket_index(v);
            assert!(bucket_lower_edge(idx) <= v);
            assert!(v <= bucket_upper_edge(idx));
        }
        assert_eq!(bucket_upper_edge(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn buckets_iterator_is_cumulative_consistent() {
        let mut h = LogHistogram::new();
        for v in [1u64, 1, 5, 900, 900, 900, 1_000_000] {
            h.record(v);
        }
        let total: u64 = h.buckets().map(|b| b.count).sum();
        assert_eq!(total, h.count());
        let mut last_le = None;
        for b in h.buckets() {
            assert!(last_le.is_none_or(|le| b.le > le), "le not increasing");
            last_le = Some(b.le);
        }
    }
}
