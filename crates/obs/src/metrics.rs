//! The process-wide metrics registry and its typed series handles.
//!
//! Registration (name + help + labels) happens under a mutex and is the
//! cold path; the returned [`Counter`] / [`Gauge`] / [`Histogram`]
//! handles record through relaxed atomics and never lock.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::expo;
use crate::hist::{bucket_index, LogHistogram, BUCKETS};

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depth, loaded models, bytes).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Replaces the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The concurrent flavor of [`LogHistogram`]: identical log-linear
/// buckets, but `record` takes `&self` and is a pair of relaxed atomic
/// adds, so many worker threads can feed one series.
///
/// A scrape racing a record may miss the very latest event, but can
/// never observe torn state: the exposition derives `_count` from the
/// bucket counts themselves.
pub struct Histogram {
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish_non_exhaustive()
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram. Standalone instances (not registered in any
    /// registry) are valid — `wa-serve` keeps per-model histograms on
    /// the model entry and renders them itself at scrape time.
    pub fn new() -> Histogram {
        Histogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (any unit; the stage spans use microseconds).
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy as a single-threaded [`LogHistogram`]
    /// (quantiles, mean, bucket iteration).
    pub fn snapshot(&self) -> LogHistogram {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        LogHistogram::from_parts(
            counts,
            self.sum.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }

    /// Number of recorded values (derived from the buckets, so it always
    /// agrees with a bucket-wise sum).
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile of a snapshot, or `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    name: String,
    help: String,
    kind: &'static str,
}

struct Series {
    name: String,
    labels: Vec<(String, String)>,
    metric: Metric,
}

struct Inner {
    families: Vec<Family>,
    series: Vec<Series>,
}

/// A set of named metric series. One process-wide instance is reachable
/// via [`global()`]; tests can build private ones to avoid cross-test
/// interference.
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

static GLOBAL: MetricsRegistry = MetricsRegistry::new();

/// The process-wide registry every crate in the workspace reports into.
pub fn global() -> &'static MetricsRegistry {
    &GLOBAL
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub const fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: Mutex::new(Inner {
                families: Vec::new(),
                series: Vec::new(),
            }),
        }
    }

    fn get_or_register<F>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: &'static str,
        make: F,
    ) -> Metric
    where
        F: FnOnce() -> Metric,
    {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        let mut inner = self.inner.lock().unwrap();
        match inner.families.iter().find(|f| f.name == name) {
            Some(f) => assert_eq!(
                f.kind, kind,
                "metric `{name}` registered as {} but requested as {kind}",
                f.kind
            ),
            None => inner.families.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                kind,
            }),
        }
        if let Some(s) = inner
            .series
            .iter()
            .find(|s| s.name == name && s.labels == labels)
        {
            return match &s.metric {
                Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
                Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
                Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
            };
        }
        let metric = make();
        let clone = match &metric {
            Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
            Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
            Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
        };
        inner.series.push(Series {
            name: name.to_string(),
            labels,
            metric,
        });
        clone
    }

    /// Gets or registers an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Gets or registers a counter with labels. Same `(name, labels)`
    /// always returns the same underlying series.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_register(name, help, labels, "counter", || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Gets or registers an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Gets or registers a gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_register(name, help, labels, "gauge", || {
            Metric::Gauge(Arc::new(Gauge::new()))
        }) {
            Metric::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Gets or registers an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Gets or registers a histogram with labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.get_or_register(name, help, labels, "histogram", || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Renders every registered series as Prometheus-style exposition
    /// text (families in registration order, `# HELP` / `# TYPE`
    /// comments, cumulative histogram buckets).
    pub fn render(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        for family in &inner.families {
            expo::write_help(&mut out, &family.name, &family.help, family.kind);
            for series in inner.series.iter().filter(|s| s.name == family.name) {
                let labels: Vec<(&str, &str)> = series
                    .labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                match &series.metric {
                    Metric::Counter(c) => {
                        expo::write_sample(&mut out, &series.name, &labels, c.get() as f64)
                    }
                    Metric::Gauge(g) => {
                        expo::write_sample(&mut out, &series.name, &labels, g.get() as f64)
                    }
                    Metric::Histogram(h) => {
                        expo::write_histogram(&mut out, &series.name, &labels, &h.snapshot())
                    }
                }
            }
        }
        out
    }
}

/// Gets or registers an unlabeled counter in the [`global()`] registry.
pub fn counter(name: &str, help: &str) -> Arc<Counter> {
    global().counter(name, help)
}

/// Gets or registers a labeled counter in the [`global()`] registry.
pub fn counter_with(name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    global().counter_with(name, help, labels)
}

/// Gets or registers an unlabeled gauge in the [`global()`] registry.
pub fn gauge(name: &str, help: &str) -> Arc<Gauge> {
    global().gauge(name, help)
}

/// Gets or registers a labeled gauge in the [`global()`] registry.
pub fn gauge_with(name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
    global().gauge_with(name, help, labels)
}

/// Gets or registers an unlabeled histogram in the [`global()`] registry.
pub fn histogram(name: &str, help: &str) -> Arc<Histogram> {
    global().histogram(name, help)
}

/// Gets or registers a labeled histogram in the [`global()`] registry.
pub fn histogram_with(name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    global().histogram_with(name, help, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_one_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("requests_total", "Requests.", &[("code", "200")]);
        let b = reg.counter_with("requests_total", "Requests.", &[("code", "200")]);
        let other = reg.counter_with("requests_total", "Requests.", &[("code", "500")]);
        a.inc();
        b.add(2);
        other.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(other.get(), 1);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("x_total", "X.", &[("a", "1"), ("b", "2")]);
        let b = reg.counter_with("x_total", "X.", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("confused_metric", "A counter.");
        reg.gauge("confused_metric", "Now a gauge?");
    }

    #[test]
    fn atomic_histogram_snapshot_matches_single_threaded() {
        let h = Histogram::new();
        let mut expect = LogHistogram::new();
        for v in [1u64, 7, 300, 4_000, 123_456] {
            h.record(v);
            expect.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), expect.count());
        assert_eq!(snap.sum(), expect.sum());
        assert_eq!(snap.max(), expect.max());
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), expect.quantile(q));
        }
    }

    #[test]
    fn render_emits_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("hits_total", "Hits.").add(5);
        reg.gauge("depth", "Queue depth.").set(-2);
        reg.histogram_with("latency_microseconds", "Latency.", &[("stage", "gemm")])
            .record(100);
        let text = reg.render();
        assert!(text.contains("# HELP hits_total Hits."));
        assert!(text.contains("# TYPE hits_total counter"));
        assert!(text.contains("hits_total 5\n"));
        assert!(text.contains("depth -2\n"));
        assert!(text.contains("# TYPE latency_microseconds histogram"));
        assert!(text.contains("latency_microseconds_bucket{stage=\"gemm\",le=\""));
        assert!(text.contains("latency_microseconds_sum{stage=\"gemm\"} 100"));
        assert!(text.contains("latency_microseconds_count{stage=\"gemm\"} 1"));
    }

    #[test]
    fn global_registry_is_shared() {
        let c = counter("obs_unit_test_global_total", "Unit-test counter.");
        let before = c.get();
        counter("obs_unit_test_global_total", "Unit-test counter.").inc();
        assert_eq!(c.get(), before + 1);
    }
}
