//! Prometheus text-exposition helpers.
//!
//! Both [`MetricsRegistry::render`](crate::MetricsRegistry::render) and
//! `wa-serve`'s per-model collector (which keeps its histograms on the
//! model entry rather than in the global registry) write through these,
//! so there is exactly one implementation of the format.

use std::fmt::Write;

use crate::hist::LogHistogram;

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

fn write_label_set(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
}

fn fmt_value(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 9.0e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// Writes the `# HELP` / `# TYPE` preamble for a metric family.
pub fn write_help(out: &mut String, name: &str, help: &str, kind: &str) {
    let help = help.replace('\\', "\\\\").replace('\n', "\\n");
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Writes one `name{labels} value` sample line.
pub fn write_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    write_label_set(out, labels);
    out.push(' ');
    out.push_str(&fmt_value(value));
    out.push('\n');
}

/// Writes a histogram as cumulative `_bucket{le=...}` lines plus `_sum`
/// and `_count`. Only non-empty buckets are emitted (the log-linear
/// layout has 1920 of them), plus the mandatory `le="+Inf"` terminator;
/// `_count` equals the `+Inf` bucket by construction.
pub fn write_histogram(out: &mut String, name: &str, labels: &[(&str, &str)], h: &LogHistogram) {
    let bucket_name = format!("{name}_bucket");
    let mut cumulative = 0u64;
    for b in h.buckets() {
        cumulative += b.count;
        if b.le == u64::MAX {
            // folded into the mandatory +Inf terminator below (emitting
            // it here too would duplicate the le="+Inf" series)
            continue;
        }
        let le = b.le.to_string();
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", &le));
        write_sample(out, &bucket_name, &with_le, cumulative as f64);
    }
    let mut inf: Vec<(&str, &str)> = labels.to_vec();
    inf.push(("le", "+Inf"));
    write_sample(out, &bucket_name, &inf, cumulative as f64);
    write_sample(out, &format!("{name}_sum"), labels, h.sum() as f64);
    write_sample(out, &format!("{name}_count"), labels, cumulative as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn sample_lines_have_no_trailing_decimals_for_integers() {
        let mut out = String::new();
        write_sample(&mut out, "x_total", &[("k", "v")], 42.0);
        write_sample(&mut out, "ratio", &[], 0.5);
        assert_eq!(out, "x_total{k=\"v\"} 42\nratio 0.5\n");
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_terminated() {
        let mut h = LogHistogram::new();
        for v in [1u64, 1, 40, 5_000] {
            h.record(v);
        }
        let mut out = String::new();
        write_histogram(&mut out, "lat", &[("stage", "gemm")], &h);
        let lines: Vec<&str> = out.lines().collect();
        // last three lines: +Inf bucket, _sum, _count
        let inf = lines[lines.len() - 3];
        assert!(
            inf.starts_with("lat_bucket{stage=\"gemm\",le=\"+Inf\"} 4"),
            "{inf}"
        );
        assert_eq!(
            lines[lines.len() - 2],
            format!("lat_sum{{stage=\"gemm\"}} {}", h.sum())
        );
        assert_eq!(lines[lines.len() - 1], "lat_count{stage=\"gemm\"} 4");
        // bucket counts strictly increase (cumulative)
        let mut last = 0u64;
        for line in lines.iter().filter(|l| l.starts_with("lat_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }
}
