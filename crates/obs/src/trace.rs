//! Request trace IDs.
//!
//! A [`TraceId`] is minted at the serving edge (or supplied by the
//! client as an opaque string), carried on the scheduler job, and logged
//! at every hop so one request's life — admission, batch flush,
//! executor chunk, response — is reconstructable from the logs.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// A 64-bit request trace ID, printed as 16 hex digits. Never zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl TraceId {
    /// Mints a fresh ID from wall-clock nanoseconds, a process-wide
    /// counter, and ASLR entropy, mixed through splitmix64. Collisions
    /// across processes are possible but irrelevant at log-correlation
    /// granularity; within a process IDs are unique by the counter.
    pub fn mint() -> TraceId {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let aslr = &SEQ as *const AtomicU64 as u64;
        let mut id = splitmix64(nanos ^ aslr.rotate_left(32)) ^ splitmix64(seq);
        if id == 0 {
            id = 1;
        }
        TraceId(id)
    }

    /// The raw 64-bit value.
    pub fn as_u64(&self) -> u64 {
        self.0
    }

    /// Parses the 16-hex-digit form produced by `Display`.
    pub fn parse(s: &str) -> Option<TraceId> {
        let v = u64::from_str_radix(s, 16).ok()?;
        if v == 0 {
            return None;
        }
        Some(TraceId(v))
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Whether a client-supplied trace ID is acceptable on the wire:
/// 1–64 characters from `[0-9a-zA-Z_.-]`. The server treats valid IDs
/// as opaque and echoes them; anything else is rejected at parse time
/// so log lines stay one-line JSON.
pub fn is_valid_trace_id(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_distinct_nonzero_and_roundtrip() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        assert_ne!(a.as_u64(), 0);
        let s = a.to_string();
        assert_eq!(s.len(), 16);
        assert_eq!(TraceId::parse(&s), Some(a));
    }

    #[test]
    fn validation_accepts_the_wire_charset_only() {
        assert!(is_valid_trace_id("00c0ffee00c0ffee"));
        assert!(is_valid_trace_id("bench-run.42_a"));
        assert!(!is_valid_trace_id(""));
        assert!(!is_valid_trace_id("has space"));
        assert!(!is_valid_trace_id("quote\"inside"));
        assert!(!is_valid_trace_id(&"x".repeat(65)));
    }
}
