//! # wa-obs
//!
//! The workspace's observability layer: a process-wide metrics registry
//! (typed counters, gauges and log-linear histograms), a span API for
//! per-stage wall-time attribution, structured leveled JSON logging, and
//! trace-ID minting — all dependency-free and cheap on the hot path.
//!
//! Every other crate can depend on this one (it depends on nothing), so
//! the GEMM kernel, the conv pipelines, the batch executor and the
//! serving edge all report into one [`MetricsRegistry`] that
//! `wa-serve` exposes as Prometheus-style text at `GET /v1/metrics`.
//!
//! # Design rules
//!
//! * **Registration is the cold path, recording is the hot path.** The
//!   registry dedupes series by `(name, labels)` under a mutex; the
//!   returned [`Counter`] / [`Gauge`] / [`Histogram`] handles are plain
//!   relaxed atomics, lock-free to record into. Hot call sites cache
//!   their handle in a `OnceLock` (the [`stage_span!`] macro does this
//!   per call site).
//! * **Cheap when disabled.** Spans check one relaxed [`AtomicBool`]
//!   (see [`set_spans_enabled`]) before touching the clock; log calls
//!   below the `WA_LOG` threshold cost one relaxed load.
//! * **Telemetry, not synchronization.** Every atomic here is
//!   `Ordering::Relaxed`; a scrape racing a record may be one event
//!   stale, never torn (histogram `_count` is derived from the bucket
//!   counts themselves, so bucket sums and counts always agree).
//!
//! # Example
//!
//! ```
//! use wa_obs::{counter, stage_span};
//!
//! let hits = counter("doc_example_hits_total", "Times the doctest ran.");
//! hits.inc();
//! {
//!     let _span = stage_span!("doc_example.work"); // records on drop
//!     // ... the stage being timed ...
//! }
//! let text = wa_obs::global().render();
//! assert!(text.contains("doc_example_hits_total"));
//! assert!(text.contains("stage=\"doc_example.work\""));
//! ```
//!
//! [`AtomicBool`]: std::sync::atomic::AtomicBool

mod hist;
mod log;
mod metrics;
mod span;
mod trace;

pub mod expo;

pub use hist::{HistBucket, LogHistogram};
pub use log::{
    debug, error, info, log, log_enabled, set_max_level, trace as trace_log, warn, Level, LogValue,
};
pub use metrics::{
    counter, counter_with, gauge, gauge_with, global, histogram, histogram_with, Counter, Gauge,
    Histogram, MetricsRegistry,
};
pub use span::{set_spans_enabled, span, spans_enabled, stage_histogram, Span, STAGE_HISTOGRAM};
pub use trace::{is_valid_trace_id, TraceId};
