//! Per-stage wall-time spans.
//!
//! A [`Span`] is a drop guard: it snapshots [`Instant::now`] when
//! created and records the elapsed microseconds into a stage-labeled
//! histogram when dropped. Hot pipeline code uses the [`stage_span!`](crate::stage_span)
//! macro, which caches the histogram handle in a per-call-site
//! `OnceLock` so the steady-state cost is one relaxed bool load, two
//! clock reads, and two relaxed atomic adds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::metrics::{histogram_with, Histogram};

/// The histogram family every stage span records into, labeled by
/// `stage` (e.g. `stage="winograd.input_transform"`).
pub const STAGE_HISTOGRAM: &str = "wa_stage_duration_microseconds";

const STAGE_HELP: &str = "Wall time per pipeline stage in microseconds, labeled by stage.";

static SPANS_ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether spans currently record (default: on).
pub fn spans_enabled() -> bool {
    SPANS_ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off process-wide. With spans off a span
/// never reads the clock — this is the knob the overhead benchmark
/// flips to isolate instrumentation cost.
pub fn set_spans_enabled(enabled: bool) {
    SPANS_ENABLED.store(enabled, Ordering::Relaxed);
}

/// The `stage`-labeled duration histogram for one pipeline stage, in
/// the global registry. Call sites that run per-layer should cache the
/// handle ([`stage_span!`](crate::stage_span) does).
pub fn stage_histogram(stage: &str) -> Arc<Histogram> {
    histogram_with(STAGE_HISTOGRAM, STAGE_HELP, &[("stage", stage)])
}

/// A drop guard timing one stage. Created by [`span`] or
/// [`stage_span!`](crate::stage_span); records on drop.
pub struct Span {
    start: Option<Instant>,
    hist: Option<Arc<Histogram>>,
}

impl Span {
    /// A live span over the given histogram (starts timing now).
    pub fn started(hist: Arc<Histogram>) -> Span {
        Span {
            start: Some(Instant::now()),
            hist: Some(hist),
        }
    }

    /// A no-op span (spans disabled): never reads the clock.
    pub fn disabled() -> Span {
        Span {
            start: None,
            hist: None,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(start), Some(hist)) = (self.start, self.hist.take()) {
            hist.record(start.elapsed().as_micros() as u64);
        }
    }
}

/// Times a stage by name, looking the histogram up in the registry on
/// every call. Fine for per-request code; per-layer hot loops should
/// use [`stage_span!`](crate::stage_span), which caches the handle.
pub fn span(stage: &str) -> Span {
    if !spans_enabled() {
        return Span::disabled();
    }
    Span::started(stage_histogram(stage))
}

/// Times a stage with a per-call-site cached histogram handle.
///
/// ```
/// let _span = wa_obs::stage_span!("doc.stage");
/// // ... work ...
/// // records into wa_stage_duration_microseconds{stage="doc.stage"} on drop
/// ```
#[macro_export]
macro_rules! stage_span {
    ($stage:expr) => {{
        if $crate::spans_enabled() {
            static HIST: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
                ::std::sync::OnceLock::new();
            $crate::Span::started(::std::sync::Arc::clone(
                HIST.get_or_init(|| $crate::stage_histogram($stage)),
            ))
        } else {
            $crate::Span::disabled()
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_its_stage_histogram() {
        let hist = stage_histogram("obs_unit_test.span");
        let before = hist.count();
        {
            let _span = span("obs_unit_test.span");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(hist.count(), before + 1);
        assert!(hist.sum() >= 1_000, "expected >= 1ms recorded");
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let hist = stage_histogram("obs_unit_test.disabled");
        set_spans_enabled(false);
        {
            let _span = stage_span!("obs_unit_test.disabled");
        }
        set_spans_enabled(true);
        assert_eq!(hist.count(), 0);
    }

    #[test]
    fn macro_caches_and_records() {
        let hist = stage_histogram("obs_unit_test.macro");
        for _ in 0..3 {
            let _span = stage_span!("obs_unit_test.macro");
        }
        assert_eq!(hist.count(), 3);
    }
}
