//! Registry memory budget end-to-end: boot real servers with
//! `--max-model-bytes`-style budgets and assert LRU eviction order,
//! busy refusals when nothing can be evicted, hot reload with zero
//! dropped in-flight requests, and server-side binary-container loads.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use wa_models::{ModelKind, ModelSpec, ZooModel};
use wa_nn::FullCheckpoint;
use wa_serve::{
    checkpoint_resident_bytes, Client, ClientError, SchedulerConfig, Server, ServerConfig,
    ServerHandle,
};
use wa_tensor::{Json, SeededRng, Tensor};

/// Boots a server with the given resident-bytes budget on an ephemeral
/// port.
fn boot(max_model_bytes: Option<u64>) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let cfg = ServerConfig {
        max_model_bytes,
        scheduler: SchedulerConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(1),
            ..SchedulerConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("binding an ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run failed"));
    (addr, handle, join)
}

fn lenet_ckpt(seed: u64) -> FullCheckpoint {
    let spec = ModelSpec::builder()
        .classes(10)
        .input_size(12)
        .build()
        .expect("static spec");
    let mut model = ZooModel::from_spec(ModelKind::LeNet, &spec, &mut SeededRng::new(seed))
        .expect("static spec");
    model.to_full_checkpoint().expect("export")
}

/// The loaded model names, from `list_models`.
fn loaded_names(client: &mut Client) -> Vec<String> {
    client
        .list_models()
        .expect("list")
        .as_arr()
        .expect("rows")
        .iter()
        .map(|r| r.get("name").and_then(|n| n.as_str()).unwrap().to_string())
        .collect()
}

/// One model's stats row from the `stats` op.
fn stats_row(client: &mut Client, name: &str) -> Json {
    let stats = client.stats().expect("stats");
    stats
        .get("models")
        .and_then(|m| m.as_arr())
        .expect("rows")
        .iter()
        .find(|r| r.get("name").and_then(|n| n.as_str()) == Some(name))
        .cloned()
        .unwrap_or(Json::Null)
}

#[test]
fn budget_evicts_least_recently_used_idle_model_first() {
    let ckpt = lenet_ckpt(70);
    let one = checkpoint_resident_bytes(&ckpt);
    let (addr, handle, join) = boot(Some(2 * one));
    let mut client = Client::connect(addr).expect("connect");

    client.load_model("a", &ckpt).expect("load a");
    client.load_model("b", &ckpt).expect("load b");
    // make `a` the most recently used so `b` becomes the LRU victim
    let x = SeededRng::new(71).uniform_tensor(&[1, 1, 12, 12], -1.0, 1.0);
    client.infer("a", &x).expect("infer a");

    client.load_model("c", &ckpt).expect("load c evicts b");
    let names = loaded_names(&mut client);
    assert!(names.contains(&"a".to_string()), "loaded: {names:?}");
    assert!(names.contains(&"c".to_string()), "loaded: {names:?}");
    assert!(
        !names.contains(&"b".to_string()),
        "the LRU model `b` must be evicted, loaded: {names:?}"
    );
    // an evicted model answers unknown_model, not a stale response
    match client.infer("b", &x) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "unknown_model"),
        other => panic!("inferring against an evicted model: {other:?}"),
    }
    // the stats memory block accounts exactly two resident models
    let stats = client.stats().expect("stats");
    let memory = stats.get("memory").expect("memory block");
    assert_eq!(
        memory.get("max_model_bytes").and_then(Json::as_f64),
        Some(2.0 * one as f64)
    );
    assert_eq!(
        memory.get("resident_bytes").and_then(Json::as_f64),
        Some(2.0 * one as f64)
    );

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn load_is_refused_busy_when_nothing_fits_or_nothing_is_idle() {
    let ckpt = lenet_ckpt(72);
    let one = checkpoint_resident_bytes(&ckpt);

    // a checkpoint bigger than the whole budget is refused outright
    let (addr, handle, join) = boot(Some(one - 1));
    let mut client = Client::connect(addr).expect("connect");
    match client.load_model("big", &ckpt) {
        Err(ClientError::Server { kind, message }) => {
            assert_eq!(kind, "busy", "{message}");
            assert!(message.contains("max-model-bytes"), "{message}");
        }
        other => panic!("oversized load: {other:?}"),
    }
    assert!(loaded_names(&mut client).is_empty());
    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn hot_reload_drops_no_in_flight_requests_and_keeps_logits_bit_identical() {
    let ckpt = lenet_ckpt(73);
    let (addr, handle, join) = boot(None);
    let mut client = Client::connect(addr).expect("connect");
    client.load_model("m", &ckpt).expect("load");

    // the ground truth every response must match, before/during/after
    let x = SeededRng::new(74).uniform_tensor(&[2, 1, 12, 12], -1.0, 1.0);
    let want: Tensor = client.infer("m", &x).expect("baseline infer");

    let stop = AtomicBool::new(false);
    let reloads = 5usize;
    std::thread::scope(|s| {
        // three clients hammer the model across the reload window
        let workers: Vec<_> = (0..3)
            .map(|_| {
                s.spawn(|| {
                    let mut c = Client::connect(addr).expect("connect");
                    let mut served = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let got = c.infer("m", &x).expect("no request may be dropped");
                        assert_eq!(
                            got.data(),
                            want.data(),
                            "logits drifted during a hot reload"
                        );
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        // … while the same checkpoint is hot-swapped in repeatedly
        let mut loader = Client::connect(addr).expect("connect");
        for _ in 0..reloads {
            loader.load_model("m", &ckpt).expect("hot reload");
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
        let total: usize = workers.into_iter().map(|w| w.join().expect("worker")).sum();
        assert!(total > 0, "workers never got a request through");
    });

    let row = stats_row(&mut client, "m");
    let lifecycle = row.get("lifecycle").expect("lifecycle block");
    assert_eq!(
        lifecycle.get("loads").and_then(Json::as_f64),
        Some(1.0 + reloads as f64)
    );
    assert_eq!(
        lifecycle.get("reloads").and_then(Json::as_f64),
        Some(reloads as f64)
    );
    assert_eq!(lifecycle.get("evictions").and_then(Json::as_f64), Some(0.0));

    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn server_loads_binary_containers_from_a_path_and_reports_provenance() {
    let ckpt = lenet_ckpt(75);
    let dir = std::env::temp_dir().join(format!("wa-evict-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bin_path = dir.join("lenet.wack");
    let json_path = dir.join("lenet.json");
    std::fs::write(&bin_path, wa_nn::write_checkpoint(&ckpt)).expect("write container");
    std::fs::write(&json_path, ckpt.to_json().to_string_pretty()).expect("write JSON");

    let (addr, handle, join) = boot(None);
    let mut client = Client::connect(addr).expect("connect");

    let resp = client
        .load_model_path("bin", bin_path.to_str().unwrap())
        .expect("binary path load");
    assert_eq!(resp.get("format").and_then(|f| f.as_str()), Some("binary"));
    assert!(resp.get("load_micros").and_then(Json::as_f64).unwrap() > 0.0);
    let resp = client
        .load_model_path("json", json_path.to_str().unwrap())
        .expect("JSON path load");
    assert_eq!(resp.get("format").and_then(|f| f.as_str()), Some("json"));

    // both load routes serve identical logits
    let x = SeededRng::new(76).uniform_tensor(&[2, 1, 12, 12], -1.0, 1.0);
    let from_bin = client.infer("bin", &x).expect("infer bin");
    let from_json = client.infer("json", &x).expect("infer json");
    assert_eq!(from_bin.data(), from_json.data());

    // the stats rows carry the provenance too
    let row = stats_row(&mut client, "bin");
    assert_eq!(row.get("format").and_then(|f| f.as_str()), Some("binary"));
    assert!(row.get("resident_bytes").and_then(Json::as_f64).unwrap() > 0.0);

    // a corrupt container is a structured error that names the file
    let broken = dir.join("broken.wack");
    let mut bytes = wa_nn::write_checkpoint(&ckpt);
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&broken, &bytes).expect("write broken");
    match client.load_model_path("bad", broken.to_str().unwrap()) {
        Err(ClientError::Server { kind, message }) => {
            assert_eq!(kind, "bad_request", "{message}");
            assert!(message.contains("checksum"), "{message}");
        }
        other => panic!("corrupt path load: {other:?}"),
    }

    handle.shutdown();
    join.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}
