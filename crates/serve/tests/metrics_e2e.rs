//! End-to-end observability: boot a real server with both front-ends,
//! drive batched inference through the im2row *and* Winograd pipelines,
//! and assert the `/v1/metrics` exposition is well-formed, internally
//! consistent (histogram `_count` equals its `+Inf` bucket), monotone
//! across scrapes, and in exact agreement with the `stats` op — plus
//! the health endpoints and trace-id echo that ride the same edge.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use wa_bench::HttpClient;
use wa_core::ConvAlgo;
use wa_models::{ModelKind, ModelSpec, ZooModel};
use wa_serve::{
    read_frame, write_frame, Scheduler, SchedulerConfig, Server, ServerConfig, ServerHandle,
    DEFAULT_MAX_FRAME,
};
use wa_tensor::{Json, SeededRng};

/// Boots a server with socket + HTTP listeners on ephemeral ports.
fn boot() -> (
    SocketAddr,
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<()>,
) {
    let cfg = ServerConfig {
        scheduler: SchedulerConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(1),
            ..SchedulerConfig::default()
        },
        ..ServerConfig::default()
    };
    let server =
        Server::bind_with_http("127.0.0.1:0", "127.0.0.1:0", cfg).expect("binding ephemeral ports");
    let addr = server.local_addr();
    let http = server.http_addr().expect("an HTTP listener was requested");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run failed"));
    (addr, http, handle, join)
}

/// A small LeNet checkpoint with the given uniform conv algorithm.
fn lenet_ckpt(algo: ConvAlgo, seed: u64) -> Json {
    let spec = ModelSpec::builder()
        .classes(10)
        .input_size(12)
        .algo(algo)
        .build()
        .expect("static spec");
    let mut rng = SeededRng::new(seed);
    let mut model = ZooModel::from_spec(ModelKind::LeNet, &spec, &mut rng).expect("static spec");
    model.to_full_checkpoint().expect("export").to_json()
}

fn http_load(http: &mut HttpClient, name: &str, ckpt: &Json) {
    let body =
        Json::obj([("name", Json::from(name)), ("checkpoint", ckpt.clone())]).to_string_compact();
    let reply = http.post("/v1/models/load", &body).expect("POST load");
    assert_eq!(reply.status, 200, "load failed: {}", reply.body);
}

/// Fires `n` single-sample infers at `model`, asserting 200s, and
/// returns the last response document.
fn infer_n(http: &mut HttpClient, model: &str, n: usize, trace: Option<&str>) -> Json {
    let mut rng = SeededRng::new(7);
    let mut last = Json::Null;
    for _ in 0..n {
        let input = rng.uniform_tensor(&[1, 1, 12, 12], -1.0, 1.0);
        let mut fields = vec![
            ("model".to_string(), Json::from(model)),
            ("input".to_string(), input.to_json()),
        ];
        if let Some(t) = trace {
            fields.push(("trace_id".to_string(), Json::from(t)));
        }
        let reply = http
            .post("/v1/infer", &Json::Obj(fields).to_string_compact())
            .expect("POST infer");
        assert_eq!(reply.status, 200, "infer failed: {}", reply.body);
        last = Json::parse(&reply.body).expect("infer body is JSON");
    }
    last
}

/// The value of one fully-qualified series (`name{labels}`), if present.
fn sample_value(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        line.strip_prefix(series)?
            .strip_prefix(' ')?
            .parse::<f64>()
            .ok()
    })
}

/// Splits a sample line into its series (name + labels) and value.
fn split_sample(line: &str) -> (&str, f64) {
    let (series, value) = line.rsplit_once(' ').expect("sample lines have a value");
    (
        series,
        value.parse().unwrap_or_else(|_| {
            panic!("unparsable sample value in line `{line}`");
        }),
    )
}

/// Every non-comment line must be `series value` with a numeric value
/// and a plausible metric name.
fn assert_well_formed(text: &str) {
    for line in text.lines() {
        if line.starts_with("# ") {
            continue;
        }
        assert!(!line.trim().is_empty(), "blank line in exposition");
        let (series, _) = split_sample(line);
        let name = series.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "malformed metric name in line `{line}`"
        );
        if series.contains('{') {
            assert!(series.ends_with('}'), "unterminated label set: `{line}`");
        }
    }
}

/// For every histogram on the page, `_count` must equal the `+Inf`
/// bucket — the never-tears invariant the renderer guarantees.
fn assert_histograms_consistent(text: &str) {
    let mut checked = 0;
    for line in text.lines().filter(|l| l.contains("le=\"+Inf\"")) {
        let (series, inf_value) = split_sample(line);
        let brace = series.find('{').expect("+Inf lines carry labels");
        let (name, labels) = series.split_at(brace);
        let base = name
            .strip_suffix("_bucket")
            .expect("only _bucket series carry le");
        let rest: Vec<&str> = labels
            .trim_start_matches('{')
            .trim_end_matches('}')
            .split(',')
            .filter(|pair| !pair.starts_with("le="))
            .collect();
        let count_series = if rest.is_empty() {
            format!("{base}_count")
        } else {
            format!("{base}_count{{{}}}", rest.join(","))
        };
        assert_eq!(
            sample_value(text, &count_series),
            Some(inf_value),
            "{count_series} disagrees with its +Inf bucket"
        );
        checked += 1;
    }
    assert!(checked > 0, "no histograms found on the page");
}

#[test]
fn metrics_exposition_is_consistent_monotone_and_matches_stats() {
    let (addr, http_addr, _handle, join) = boot();
    let mut http = HttpClient::connect(http_addr, None).expect("http connect");
    http_load(&mut http, "lenet-direct", &lenet_ckpt(ConvAlgo::Im2row, 41));
    http_load(
        &mut http,
        "lenet-wino",
        &lenet_ckpt(ConvAlgo::Winograd { m: 2 }, 42),
    );

    // health endpoints answer before any traffic
    let alive = http.get("/v1/healthz").expect("GET healthz");
    assert_eq!(alive.status, 200);
    let alive = Json::parse(&alive.body).expect("healthz is JSON");
    assert_eq!(
        alive.get("status").and_then(|s| s.as_str()),
        Some("alive"),
        "healthz body: {alive:?}"
    );
    let ready = http.get("/v1/readyz").expect("GET readyz");
    assert_eq!(ready.status, 200);
    let ready = Json::parse(&ready.body).expect("readyz is JSON");
    assert_eq!(ready.get("ready"), Some(&Json::Bool(true)));
    assert_eq!(ready.get("models_loaded").and_then(Json::as_f64), Some(2.0));

    // traffic through both conv pipelines, one request explicitly traced
    infer_n(&mut http, "lenet-direct", 3, None);
    let traced = infer_n(&mut http, "lenet-wino", 3, Some("e2e-trace.1"));
    assert_eq!(
        traced.get("trace_id").and_then(|t| t.as_str()),
        Some("e2e-trace.1"),
        "the server must echo a caller-supplied trace id"
    );

    let scrape1 = http.get("/v1/metrics").expect("GET metrics");
    assert_eq!(scrape1.status, 200);
    let page1 = scrape1.body;
    assert_well_formed(&page1);
    assert_histograms_consistent(&page1);

    // the edge counter saw all six requests (other tests in this
    // process may add more — the floor is what is deterministic)
    let edge = sample_value(&page1, "wa_infer_requests_total").expect("edge counter");
    assert!(edge >= 6.0, "wa_infer_requests_total = {edge}");

    // both pipelines left their stage spans behind
    for stage in [
        "im2row",
        "im2row.gemm",
        "winograd.input_transform",
        "winograd.gemm",
        "winograd.output_transform",
        "executor.run",
    ] {
        let series = format!("wa_stage_duration_microseconds_count{{stage=\"{stage}\"}}");
        let count = sample_value(&page1, &series);
        assert!(
            count.unwrap_or(0.0) > 0.0,
            "no samples for stage `{stage}` (series `{series}`)"
        );
    }

    // the Prometheus view and the stats op read the same atomics
    let stats = http.get("/v1/stats").expect("GET stats");
    let stats = Json::parse(&stats.body).expect("stats is JSON");
    let rows = stats
        .get("models")
        .and_then(|m| m.as_arr())
        .expect("stats rows");
    assert_eq!(rows.len(), 2);
    for row in rows {
        let name = row.get("name").and_then(|n| n.as_str()).expect("name");
        let from_stats = row
            .get("stats")
            .and_then(|s| s.get("requests"))
            .and_then(Json::as_f64)
            .expect("requests");
        let from_metrics = sample_value(
            &page1,
            &format!("wa_model_requests_total{{model=\"{name}\"}}"),
        )
        .expect("per-model counter");
        assert_eq!(
            from_stats, from_metrics,
            "stats and metrics disagree on `{name}`"
        );
        assert_eq!(from_stats, 3.0, "`{name}` answered 3 requests");
    }

    // more traffic, then every *_total series must be monotone
    infer_n(&mut http, "lenet-direct", 2, None);
    let page2 = http.get("/v1/metrics").expect("GET metrics").body;
    for line in page1.lines() {
        if line.starts_with("# ") || !line.split('{').next().unwrap().ends_with("_total") {
            continue;
        }
        let (series, before) = split_sample(line);
        let after = sample_value(&page2, series)
            .unwrap_or_else(|| panic!("series `{series}` vanished between scrapes"));
        assert!(
            after >= before,
            "counter `{series}` went backwards: {before} -> {after}"
        );
    }
    let edge2 = sample_value(&page2, "wa_infer_requests_total").expect("edge counter");
    assert!(edge2 >= edge + 2.0, "edge counter did not advance");

    // the socket `metrics` op renders the same exposition
    let mut socket = TcpStream::connect(addr).expect("socket connect");
    write_frame(&mut socket, &Json::obj([("op", Json::from("metrics"))])).expect("write frame");
    let doc = read_frame(&mut socket, DEFAULT_MAX_FRAME).expect("read frame");
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    let text = doc
        .get("metrics")
        .and_then(|m| m.as_str())
        .expect("metrics op returns the exposition text");
    assert!(text.contains("wa_infer_requests_total"));
    assert_well_formed(text);

    // readiness flips once shutdown begins (asked over a connection that
    // predates the stop, since the accept loop is gone afterwards)
    let reply = http.post("/v1/shutdown", "").expect("POST shutdown");
    assert_eq!(reply.status, 200);
    join.join().expect("server thread");
    let mut late = HttpClient::connect(http_addr, Some(Duration::from_millis(500)));
    if let Ok(conn) = late.as_mut() {
        // a racing accept may still answer; if it does, it must say 503
        if let Ok(r) = conn.get("/v1/readyz") {
            assert_eq!(r.status, 503, "readyz after shutdown: {}", r.body);
        }
    }
}

#[test]
fn scheduler_validation_is_unaffected_by_instrumentation() {
    // a zero max_batch must still be rejected before any thread spawns
    let bad = SchedulerConfig {
        max_batch: 0,
        ..SchedulerConfig::default()
    };
    assert!(Scheduler::start(bad).is_err());
}
