//! `wa-serve` — the serving daemon.
//!
//! ```text
//! wa-serve [--addr 127.0.0.1:7878] [--http-port PORT] [--threads N]
//!          [--chunk N] [--max-batch N] [--max-delay-ms N]
//!          [--max-frame-mb N] [--max-conns N] [--max-queue N]
//!          [--max-inflight-flushes N] [--max-model-bytes N]
//! ```
//!
//! Binds, prints `wa-serve listening on <addr>` (scripts wait for that
//! line; with `--http-port` a second `wa-serve http listening on
//! <addr>` line follows), and serves until a `shutdown` request
//! arrives. Models are loaded over the wire (`load_model` with a
//! one-document checkpoint, or a server-side path to a JSON or binary
//! container file) — typically via `wa-client` or `POST
//! /v1/models/load`. `--max-model-bytes` caps resident parameter bytes
//! across all models; over the cap, idle models are evicted LRU-first
//! (see `docs/checkpoints.md`).

use std::time::Duration;

use wa_serve::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: wa-serve [--addr HOST:PORT] [--http-port PORT] [--threads N] \
         [--chunk N] [--max-batch N] [--max-delay-ms N] [--max-frame-mb N] \
         [--max-conns N] [--max-queue N] [--max-inflight-flushes N] \
         [--max-model-bytes N]"
    );
    std::process::exit(2);
}

fn main() -> std::io::Result<()> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut http_port: Option<u16> = None;
    let mut cfg = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        let parse = |v: String| v.parse::<usize>().unwrap_or_else(|_| usage());
        match flag.as_str() {
            "--addr" => addr = value(),
            "--http-port" => http_port = Some(value().parse::<u16>().unwrap_or_else(|_| usage())),
            "--threads" => cfg.scheduler.exec.threads = parse(value()),
            "--chunk" => cfg.scheduler.exec.chunk = parse(value()),
            "--max-batch" => cfg.scheduler.max_batch = parse(value()),
            "--max-delay-ms" => {
                cfg.scheduler.max_delay = Duration::from_millis(parse(value()) as u64)
            }
            "--max-frame-mb" => cfg.max_frame = parse(value()) << 20,
            "--max-conns" => cfg.max_conns = parse(value()),
            "--max-queue" => cfg.scheduler.max_queue = parse(value()),
            "--max-inflight-flushes" => cfg.scheduler.max_inflight_flushes = parse(value()),
            "--max-model-bytes" => cfg.max_model_bytes = Some(parse(value()) as u64),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let server = match http_port {
        // the HTTP listener binds the same host as the socket listener
        Some(port) => {
            let host = addr.rsplit_once(':').map(|(h, _)| h).unwrap_or("127.0.0.1");
            Server::bind_with_http(addr.as_str(), format!("{host}:{port}").as_str(), cfg)?
        }
        None => Server::bind(addr.as_str(), cfg)?,
    };
    // scripts wait for these exact stdout lines — keep them as-is; the
    // structured startup record goes to the leveled log on stderr
    println!("wa-serve listening on {}", server.local_addr());
    if let Some(http) = server.http_addr() {
        println!("wa-serve http listening on {http}");
    }
    wa_obs::info(
        "wa_serve",
        "server started",
        &[
            ("addr", server.local_addr().to_string().into()),
            (
                "http_addr",
                server
                    .http_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_default()
                    .into(),
            ),
        ],
    );
    server.run()
}
