//! `wa-serve` — the serving daemon.
//!
//! ```text
//! wa-serve [--addr 127.0.0.1:7878] [--threads N] [--chunk N]
//!          [--max-batch N] [--max-delay-ms N] [--max-frame-mb N]
//!          [--max-conns N] [--max-inflight-flushes N]
//! ```
//!
//! Binds, prints `wa-serve listening on <addr>` (scripts wait for that
//! line), and serves until a `shutdown` request arrives. Models are
//! loaded over the wire (`load_model` with a one-document checkpoint) —
//! typically via `wa-client`.

use std::time::Duration;

use wa_serve::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: wa-serve [--addr HOST:PORT] [--threads N] [--chunk N] \
         [--max-batch N] [--max-delay-ms N] [--max-frame-mb N] \
         [--max-conns N] [--max-inflight-flushes N]"
    );
    std::process::exit(2);
}

fn main() -> std::io::Result<()> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut cfg = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        let parse = |v: String| v.parse::<usize>().unwrap_or_else(|_| usage());
        match flag.as_str() {
            "--addr" => addr = value(),
            "--threads" => cfg.scheduler.exec.threads = parse(value()),
            "--chunk" => cfg.scheduler.exec.chunk = parse(value()),
            "--max-batch" => cfg.scheduler.max_batch = parse(value()),
            "--max-delay-ms" => {
                cfg.scheduler.max_delay = Duration::from_millis(parse(value()) as u64)
            }
            "--max-frame-mb" => cfg.max_frame = parse(value()) << 20,
            "--max-conns" => cfg.max_conns = parse(value()),
            "--max-inflight-flushes" => cfg.scheduler.max_inflight_flushes = parse(value()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let server = Server::bind(addr.as_str(), cfg)?;
    println!("wa-serve listening on {}", server.local_addr());
    server.run()
}
