//! The `/v1/metrics` collector: one function that renders everything a
//! scrape should see.
//!
//! Two sources feed the page:
//!
//! 1. The process-global [`wa_obs`] registry — counters, gauges and
//!    stage histograms recorded by every crate in the pipeline. Gauges
//!    that mirror live server state (uptime, open connections, in-flight
//!    flushes, loaded models) are refreshed here, at scrape time, so
//!    they are exact rather than sampled.
//! 2. Per-model series rendered from each [`ServedModel`]'s
//!    [`ModelStats`](crate::registry::ModelStats) with a `model` label.
//!    Those counters live on the registry entry (not in the global
//!    registry) so every `Registry` instance starts from zero; the
//!    collector is where they meet the exposition format.
//!
//! The `stats` op reads the *same* [`ModelStats`] atomics, so the JSON
//! and Prometheus views cannot drift: they are two renderings of one
//! set of counters.

use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};

use wa_obs::expo;

use crate::server::Shared;

/// Process-state gauges refreshed on every scrape.
struct ScrapeGauges {
    uptime: Arc<wa_obs::Gauge>,
    connections: Arc<wa_obs::Gauge>,
    in_flight: Arc<wa_obs::Gauge>,
    inflight_flushes: Arc<wa_obs::Gauge>,
    models_loaded: Arc<wa_obs::Gauge>,
    resident_bytes: Arc<wa_obs::Gauge>,
    scrapes: Arc<wa_obs::Counter>,
}

fn scrape_gauges() -> &'static ScrapeGauges {
    static G: OnceLock<ScrapeGauges> = OnceLock::new();
    G.get_or_init(|| ScrapeGauges {
        uptime: wa_obs::gauge("wa_uptime_seconds", "Seconds since the server started."),
        connections: wa_obs::gauge(
            "wa_connections_open",
            "Currently-open client connections (socket and HTTP pooled).",
        ),
        in_flight: wa_obs::gauge(
            "wa_requests_in_flight",
            "Requests read off a connection but not yet answered.",
        ),
        inflight_flushes: wa_obs::gauge(
            "wa_scheduler_inflight_flushes",
            "Batch flushes currently executing.",
        ),
        models_loaded: wa_obs::gauge("wa_models_loaded", "Models currently loaded."),
        resident_bytes: wa_obs::gauge(
            "wa_registry_resident_bytes",
            "Parameter bytes resident across all loaded models (--max-model-bytes unit).",
        ),
        scrapes: wa_obs::counter(
            "wa_metrics_scrapes_total",
            "Renders of the metrics exposition (HTTP scrapes and socket `metrics` ops).",
        ),
    })
}

/// Renders the full Prometheus text exposition for this server: the
/// global registry (with live gauges refreshed first) followed by the
/// per-model families.
pub(crate) fn metrics_text(shared: &Shared) -> String {
    let g = scrape_gauges();
    g.scrapes.inc();
    g.uptime.set(shared.started.elapsed().as_secs() as i64);
    g.connections
        .set(shared.conns.load(Ordering::SeqCst) as i64);
    g.in_flight
        .set(shared.in_flight.load(Ordering::SeqCst) as i64);
    g.inflight_flushes
        .set(shared.scheduler.inflight_flushes() as i64);
    g.models_loaded.set(shared.registry.len() as i64);
    g.resident_bytes
        .set(shared.registry.resident_bytes_total() as i64);
    let mut out = wa_obs::global().render();
    render_model_series(&mut out, shared);
    out
}

/// Per-model counter and histogram families, one sample per loaded
/// model, labelled `model="<name>"`.
fn render_model_series(out: &mut String, shared: &Shared) {
    // Lifecycle families are keyed by model *name* and outlive the
    // entry, so an evicted model's eviction count stays scrapeable.
    let lifecycles = shared.registry.lifecycle_entries();
    if !lifecycles.is_empty() {
        struct LifecycleFamily {
            name: &'static str,
            help: &'static str,
            read: fn(&crate::registry::ModelLifecycle) -> u64,
        }
        let families: &[LifecycleFamily] = &[
            LifecycleFamily {
                name: "wa_model_lifecycle_loads_total",
                help: "Checkpoints loaded under this model name (reloads included).",
                read: |l| l.loads.load(Ordering::Relaxed),
            },
            LifecycleFamily {
                name: "wa_model_lifecycle_reloads_total",
                help: "Loads that hot-replaced a live model of the same name.",
                read: |l| l.reloads.load(Ordering::Relaxed),
            },
            LifecycleFamily {
                name: "wa_model_lifecycle_evictions_total",
                help: "Times the --max-model-bytes budget evicted this model name.",
                read: |l| l.evictions.load(Ordering::Relaxed),
            },
        ];
        for fam in families {
            expo::write_help(out, fam.name, fam.help, "counter");
            for (name, lc) in &lifecycles {
                expo::write_sample(
                    out,
                    fam.name,
                    &[("model", name.as_str())],
                    (fam.read)(lc) as f64,
                );
            }
        }
    }
    let entries = shared.registry.entries();
    if entries.is_empty() {
        return;
    }
    expo::write_help(
        out,
        "wa_model_resident_bytes",
        "Parameter bytes this model keeps resident, per loaded model.",
        "gauge",
    );
    for m in &entries {
        expo::write_sample(
            out,
            "wa_model_resident_bytes",
            &[("model", m.name.as_str())],
            m.resident_bytes as f64,
        );
    }
    struct CounterFamily {
        name: &'static str,
        help: &'static str,
        read: fn(&crate::registry::ModelStats) -> u64,
    }
    // `queued_samples` is a level, not a total: exposed as a gauge below
    let counters: &[CounterFamily] = &[
        CounterFamily {
            name: "wa_model_requests_total",
            help: "Inference requests answered, per model.",
            read: |s| s.requests.load(Ordering::Relaxed),
        },
        CounterFamily {
            name: "wa_model_samples_total",
            help: "Samples pushed through the model.",
            read: |s| s.samples.load(Ordering::Relaxed),
        },
        CounterFamily {
            name: "wa_model_batches_total",
            help: "Executor batches formed (less than requests means coalescing).",
            read: |s| s.batches.load(Ordering::Relaxed),
        },
        CounterFamily {
            name: "wa_model_busy_microseconds_total",
            help: "Time spent inside the executor, per model.",
            read: |s| s.busy_micros.load(Ordering::Relaxed),
        },
        CounterFamily {
            name: "wa_model_deadline_expired_total",
            help: "Requests answered with deadline_exceeded instead of running.",
            read: |s| s.deadline_expired.load(Ordering::Relaxed),
        },
        CounterFamily {
            name: "wa_model_rejected_busy_total",
            help: "Requests refused with busy by the admission-control queue cap.",
            read: |s| s.rejected_busy.load(Ordering::Relaxed),
        },
    ];
    for fam in counters {
        expo::write_help(out, fam.name, fam.help, "counter");
        for m in &entries {
            expo::write_sample(
                out,
                fam.name,
                &[("model", m.name.as_str())],
                (fam.read)(&m.stats) as f64,
            );
        }
    }
    expo::write_help(
        out,
        "wa_model_queued_samples",
        "Samples admitted to the scheduler but not yet answered, per model.",
        "gauge",
    );
    for m in &entries {
        expo::write_sample(
            out,
            "wa_model_queued_samples",
            &[("model", m.name.as_str())],
            m.stats.queued_samples.load(Ordering::Relaxed) as f64,
        );
    }
    expo::write_help(
        out,
        "wa_model_batch_latency_microseconds",
        "Flushed-batch executor latency, per model (full history since load).",
        "histogram",
    );
    for m in &entries {
        expo::write_histogram(
            out,
            "wa_model_batch_latency_microseconds",
            &[("model", m.name.as_str())],
            &m.stats.latency_snapshot(),
        );
    }
}
