//! The HTTP/1.1 front-end: the same registry, scheduler and structured
//! errors as the socket protocol, reachable with nothing but `curl`.
//!
//! Dependency-free like everything else in the workspace: a bounded
//! HTTP/1.1 request parser (request line + headers + `Content-Length`
//! body) over `std::net`, one thread per connection drawn from the same
//! `--max-conns` pool as the socket listener, keep-alive by default.
//!
//! # Endpoints
//!
//! | method & path | body | semantics |
//! |---|---|---|
//! | `POST /v1/infer` | `{"model", "input", "deadline_ms"?}` | batched inference (socket `infer`) |
//! | `GET /v1/models` | — | enumerate loaded models (socket `list_models`) |
//! | `GET /v1/stats` | — | server + per-model counters (socket `stats`) |
//! | `POST /v1/models/load` | `{"name", "checkpoint"}` | install a checkpoint (socket `load_model`) |
//! | `POST /v1/models/unload` | `{"name"}` | remove a model (socket `unload`) |
//! | `POST /v1/shutdown` | — | graceful drain + exit (socket `shutdown`) |
//! | `GET /v1/metrics` | — | Prometheus text exposition (socket `metrics`) |
//! | `GET /v1/healthz` | — | liveness: `200` whenever the process can answer |
//! | `GET /v1/readyz` | — | readiness: `200` until shutdown begins, then `503` |
//!
//! Every response body is the same JSON document the socket protocol
//! would produce (`{"ok": true, ...}` / `{"ok": false, "error":
//! {"kind", "message"}}`); the HTTP status code is derived from the
//! error kind (see [`status_for_kind`]), so HTTP-native clients can
//! dispatch on the status line and protocol-aware clients on `kind`.
//!
//! Transport errors mirror the socket rules: a malformed request head
//! or an oversized body (over the `--max-frame-mb` cap) is answered
//! with a structured error and then the connection closes, because the
//! stream can no longer be trusted to be in sync; request-content
//! problems keep the connection serving.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use wa_tensor::Json;

use crate::protocol::{error_response, ok_response, ErrorBody, ErrorKind, Request};
use crate::server::{dispatch, request_stop, CountGuard, Shared};

/// Cap on one header line (request line included), in bytes.
const MAX_HEADER_LINE: usize = 16 << 10;

/// Cap on the number of header lines of one request.
const MAX_HEADERS: usize = 128;

/// The HTTP status code a failed request of this kind maps to.
pub fn status_for_kind(kind: ErrorKind) -> u16 {
    match kind {
        ErrorKind::BadFrame => 400,
        ErrorKind::BadRequest => 400,
        ErrorKind::UnknownModel => 404,
        ErrorKind::InvalidSpec => 400,
        ErrorKind::ShapeMismatch => 400,
        ErrorKind::UnsupportedAlgo => 400,
        ErrorKind::Busy => 429,
        ErrorKind::DeadlineExceeded => 504,
        ErrorKind::ShuttingDown => 503,
        ErrorKind::Internal => 500,
    }
}

/// The standard reason phrase for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// One parsed request head + body.
struct HttpRequest {
    method: String,
    path: String,
    /// Lower-cased header names.
    headers: Vec<(String, String)>,
    body: Vec<u8>,
    /// Whether the connection may carry another request after this one.
    keep_alive: bool,
}

impl HttpRequest {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
enum HttpReadError {
    /// Clean EOF before the first byte of a request (normal end).
    Closed,
    /// Transport failure, including mid-request EOF.
    Io,
    /// The request head is not parseable HTTP/1.1; the stream is out of
    /// sync, so the connection must close after the error response.
    Malformed(String),
    /// The declared body length exceeds the configured cap; the body was
    /// never read, so the connection must close after the response.
    BodyTooLarge { declared: usize, max: usize },
    /// A framing the parser does not implement (chunked bodies).
    Unsupported(String),
}

/// Reads one `\r\n`-terminated line, capped, without consuming past it.
fn read_line(r: &mut impl BufRead) -> Result<Option<String>, HttpReadError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpReadError::Io);
            }
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(HttpReadError::Io),
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map(Some)
                .map_err(|_| HttpReadError::Malformed("header line is not UTF-8".to_string()));
        }
        line.push(byte[0]);
        if line.len() > MAX_HEADER_LINE {
            return Err(HttpReadError::Malformed(format!(
                "header line exceeds {MAX_HEADER_LINE} bytes"
            )));
        }
    }
}

/// Reads one full request (head + body) off the connection.
fn read_request(
    r: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<HttpRequest, HttpReadError> {
    let request_line = match read_line(r)? {
        None => return Err(HttpReadError::Closed),
        Some(line) => line,
    };
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_string(), p.to_string(), v.to_string()),
        _ => {
            return Err(HttpReadError::Malformed(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpReadError::Malformed(format!(
            "unsupported protocol version `{version}`"
        )));
    }
    let mut headers = Vec::new();
    loop {
        let line = match read_line(r)? {
            None => return Err(HttpReadError::Io),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpReadError::Malformed(format!(
                "malformed header line `{line}`"
            )));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        if headers.len() > MAX_HEADERS {
            return Err(HttpReadError::Malformed(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
    }
    let mut request = HttpRequest {
        method,
        path,
        headers,
        body: Vec::new(),
        keep_alive: version == "HTTP/1.1",
    };
    match request.header("connection").map(str::to_ascii_lowercase) {
        Some(c) if c == "close" => request.keep_alive = false,
        Some(c) if c == "keep-alive" => request.keep_alive = true,
        _ => {}
    }
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpReadError::Unsupported(
            "chunked request bodies are not supported; send Content-Length".to_string(),
        ));
    }
    let declared = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .trim()
            .parse::<usize>()
            .map_err(|_| HttpReadError::Malformed(format!("unparsable Content-Length `{v}`")))?,
    };
    if declared > max_body {
        return Err(HttpReadError::BodyTooLarge {
            declared,
            max: max_body,
        });
    }
    let mut body = vec![0u8; declared];
    r.read_exact(&mut body).map_err(|_| HttpReadError::Io)?;
    request.body = body;
    Ok(request)
}

/// A response body: structured JSON (the common case) or preformatted
/// text with its own media type (`/v1/metrics`).
enum Content {
    Json(Json),
    Text { mime: &'static str, text: String },
}

impl Content {
    fn mime(&self) -> &'static str {
        match self {
            Content::Json(_) => "application/json",
            Content::Text { mime, .. } => mime,
        }
    }

    fn bytes(&self) -> Vec<u8> {
        match self {
            Content::Json(doc) => doc.to_string_compact().into_bytes(),
            Content::Text { text, .. } => text.clone().into_bytes(),
        }
    }
}

/// Writes one response with the framing headers HTTP/1.1 requires.
fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content: &Content,
    keep_alive: bool,
) -> std::io::Result<()> {
    let body = content.bytes();
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        reason(status),
        content.mime(),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&body)?;
    stream.flush()
}

/// A routed outcome: status + body, plus connection directives.
struct Routed {
    status: u16,
    body: Content,
    /// Ask the server to begin its graceful drain after responding.
    stop: bool,
}

impl Routed {
    fn err(status: u16, kind: ErrorKind, message: impl Into<String>) -> Routed {
        Routed {
            status,
            body: Content::Json(error_response(None, &ErrorBody::new(kind, message))),
            stop: false,
        }
    }
}

/// The HTTP status of a dispatch response document (200 for `ok: true`,
/// the error kind's mapping otherwise).
fn status_of_response(doc: &Json) -> u16 {
    if doc.get("ok") == Some(&Json::Bool(true)) {
        return 200;
    }
    let code = doc
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(|k| k.as_str())
        .unwrap_or("internal");
    match code {
        "bad_frame" | "bad_request" | "invalid_spec" | "shape_mismatch" | "unsupported_algo" => 400,
        "unknown_model" => 404,
        "busy" => 429,
        "deadline_exceeded" => 504,
        "shutting_down" => 503,
        _ => 500,
    }
}

/// Parses the body as a JSON object and re-frames it as a protocol
/// request with the given `op`, reusing every socket-side validation.
fn body_as_op(op: &str, body: &[u8]) -> Result<Request, ErrorBody> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ErrorBody::new(ErrorKind::BadFrame, "request body is not UTF-8"))?;
    let doc = if text.trim().is_empty() {
        Json::Obj(Vec::new())
    } else {
        Json::parse(text)
            .map_err(|e| ErrorBody::new(ErrorKind::BadFrame, format!("invalid JSON body: {e}")))?
    };
    let Some(fields) = doc.as_obj() else {
        return Err(ErrorBody::new(
            ErrorKind::BadRequest,
            "request body must be a JSON object",
        ));
    };
    let mut framed = vec![("op".to_string(), Json::from(op))];
    framed.extend(fields.iter().cloned());
    Request::from_json(&Json::Obj(framed))
}

/// Routes one parsed request to the shared dispatch.
fn route(req: &HttpRequest, shared: &Shared) -> Routed {
    // the observability endpoints answer directly — they have no socket
    // op to re-frame into (metrics does, but its text body bypasses the
    // JSON envelope) and must stay cheap and dependency-free
    if let Some(routed) = route_observability(req, shared) {
        return routed;
    }
    // method → op table; a known path with the wrong method is 405, an
    // unknown path 404 — both structured JSON like every other error
    let no_body: &[u8] = &[];
    let (want_method, op, body): (&str, &str, &[u8]) = match req.path.as_str() {
        "/v1/infer" => ("POST", "infer", &req.body),
        "/v1/models" => ("GET", "list_models", no_body),
        "/v1/stats" => ("GET", "stats", no_body),
        "/v1/models/load" => ("POST", "load_model", &req.body),
        "/v1/models/unload" => ("POST", "unload", &req.body),
        "/v1/shutdown" => ("POST", "shutdown", no_body),
        other => {
            return Routed::err(
                404,
                ErrorKind::BadRequest,
                format!(
                    "no endpoint `{other}` (have /v1/infer, /v1/models, /v1/stats, \
                     /v1/models/load, /v1/models/unload, /v1/shutdown, /v1/metrics, \
                     /v1/healthz, /v1/readyz)"
                ),
            );
        }
    };
    if req.method != want_method {
        return Routed::err(
            405,
            ErrorKind::BadRequest,
            format!("`{}` requires {want_method}, got {}", req.path, req.method),
        );
    }
    let request = match body_as_op(op, body) {
        Ok(request) => request,
        Err(e) => {
            return Routed {
                status: status_for_kind(e.kind),
                body: Content::Json(error_response(None, &e)),
                stop: false,
            };
        }
    };
    if matches!(request, Request::Shutdown) {
        // answer first, stop after the response is on the wire (the
        // caller handles the flag) — same ordering as the socket path
        return Routed {
            status: 200,
            body: Content::Json(ok_response(
                None,
                vec![("stopping".to_string(), Json::Bool(true))],
            )),
            stop: true,
        };
    }
    let response = dispatch(request, shared, None);
    Routed {
        status: status_of_response(&response),
        body: Content::Json(response),
        stop: false,
    }
}

/// The observability endpoints: `/v1/metrics`, `/v1/healthz`,
/// `/v1/readyz`. Returns `None` for every other path.
fn route_observability(req: &HttpRequest, shared: &Shared) -> Option<Routed> {
    let path = req.path.as_str();
    if !matches!(path, "/v1/metrics" | "/v1/healthz" | "/v1/readyz") {
        return None;
    }
    if req.method != "GET" {
        return Some(Routed::err(
            405,
            ErrorKind::BadRequest,
            format!("`{path}` requires GET, got {}", req.method),
        ));
    }
    Some(match path {
        "/v1/metrics" => Routed {
            status: 200,
            body: Content::Text {
                mime: "text/plain; version=0.0.4",
                text: crate::metrics::metrics_text(shared),
            },
            stop: false,
        },
        "/v1/healthz" => Routed {
            // liveness: reachable-and-answering is the whole check
            status: 200,
            body: Content::Json(Json::obj([
                ("ok", Json::Bool(true)),
                ("status", Json::from("alive")),
                (
                    "uptime_seconds",
                    Json::from(shared.started.elapsed().as_secs_f64()),
                ),
            ])),
            stop: false,
        },
        _ => {
            // readiness: stop steering traffic here once shutdown begins
            let shutting_down = shared.stop.load(Ordering::SeqCst);
            let ready = !shutting_down;
            Routed {
                status: if ready { 200 } else { 503 },
                body: Content::Json(Json::obj([
                    ("ok", Json::Bool(ready)),
                    ("ready", Json::Bool(ready)),
                    ("shutting_down", Json::Bool(shutting_down)),
                    ("models_loaded", Json::from(shared.registry.len())),
                ])),
                stop: false,
            }
        }
    })
}

/// Status-class request counters (`wa_http_requests_total{code=...}`),
/// cached so the hot path never touches the registration lock.
fn http_request_counter(status: u16) -> &'static wa_obs::Counter {
    static CLASSES: OnceLock<[Arc<wa_obs::Counter>; 4]> = OnceLock::new();
    let classes = CLASSES.get_or_init(|| {
        let class = |code: &'static str| {
            wa_obs::counter_with(
                "wa_http_requests_total",
                "HTTP requests answered, by status-code class.",
                &[("code", code)],
            )
        };
        [class("2xx"), class("3xx"), class("4xx"), class("5xx")]
    });
    let idx = (status / 100).clamp(2, 5) as usize - 2;
    &classes[idx]
}

/// One structured access-log line per routed request, carrying the
/// response's trace id when the endpoint produced one (`/v1/infer`).
fn access_log(req: &HttpRequest, routed: &Routed, micros: u64) {
    http_request_counter(routed.status).inc();
    if !wa_obs::log_enabled(wa_obs::Level::Info) {
        return;
    }
    let trace = match &routed.body {
        Content::Json(doc) => doc.get("trace_id").and_then(|t| t.as_str()).unwrap_or(""),
        Content::Text { .. } => "",
    };
    wa_obs::info(
        "wa_serve::http",
        "request",
        &[
            ("method", req.method.as_str().into()),
            ("path", req.path.as_str().into()),
            ("status", u64::from(routed.status).into()),
            ("micros", micros.into()),
            ("trace_id", trace.into()),
        ],
    );
}

/// One HTTP connection's read → route → respond loop.
fn serve_http_connection(stream: TcpStream, shared: &Shared) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = read_request(&mut reader, shared.max_frame);
        // from here until the response is written this request counts as
        // in-flight: shutdown waits for the counter to drain
        let _guard = CountGuard::begin(&shared.in_flight);
        let request = match request {
            Ok(request) => request,
            Err(HttpReadError::Closed) | Err(HttpReadError::Io) => return,
            Err(HttpReadError::Malformed(msg)) => {
                let body = error_response(None, &ErrorBody::new(ErrorKind::BadFrame, msg));
                let _ = write_response(&mut writer, 400, &Content::Json(body), false);
                return;
            }
            Err(HttpReadError::BodyTooLarge { declared, max }) => {
                let body = error_response(
                    None,
                    &ErrorBody::new(
                        ErrorKind::BadFrame,
                        format!("request body of {declared} bytes exceeds the {max}-byte cap"),
                    ),
                );
                let _ = write_response(&mut writer, 413, &Content::Json(body), false);
                return;
            }
            Err(HttpReadError::Unsupported(msg)) => {
                let body = error_response(None, &ErrorBody::new(ErrorKind::BadRequest, msg));
                let _ = write_response(&mut writer, 501, &Content::Json(body), false);
                return;
            }
        };
        let started = Instant::now();
        let routed = route(&request, shared);
        access_log(&request, &routed, started.elapsed().as_micros() as u64);
        let keep_alive = request.keep_alive && !routed.stop;
        let write = write_response(&mut writer, routed.status, &routed.body, keep_alive);
        if routed.stop {
            request_stop(shared);
            return;
        }
        if write.is_err() || !keep_alive {
            return;
        }
    }
}

/// Answers an over-limit HTTP connection with exactly one `429`, then
/// closes it (the HTTP twin of the socket busy refusal).
fn refuse_http_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    // drain the request head (bounded by the timeout) so the refusal is
    // observable as a response rather than a connection reset
    let mut reader = BufReader::new(stream);
    let _ = read_request(&mut reader, shared.max_frame);
    let body = error_response(
        None,
        &ErrorBody::new(
            ErrorKind::Busy,
            format!(
                "connection limit reached (max {} concurrent connections); retry later",
                shared.max_conns
            ),
        ),
    );
    let _ = write_response(&mut writer, 429, &Content::Json(body), false);
}

/// The HTTP accept loop: same stop flag, connection pool and busy
/// policy as the socket accept loop in [`crate::server`].
pub(crate) fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue, // transient accept failure
        };
        // request/response traffic: Nagle + delayed ACK would add ~40ms
        // to every keep-alive round trip
        let _ = stream.set_nodelay(true);
        let conn_shared = Arc::clone(shared);
        // reserve a connection slot before spawning; over the limit the
        // peer gets one 429 instead of a thread (same policy and same
        // pool as the socket accept loop)
        if shared.conns.fetch_add(1, Ordering::SeqCst) >= shared.max_conns {
            shared.conns.fetch_sub(1, Ordering::SeqCst);
            if shared.busy.fetch_add(1, Ordering::SeqCst) >= shared.max_conns {
                shared.busy.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let spawned = std::thread::Builder::new()
                .name("wa-serve-http-busy".to_string())
                .spawn(move || {
                    let _slot = CountGuard::adopt(&conn_shared.busy);
                    refuse_http_connection(stream, &conn_shared);
                });
            if spawned.is_err() {
                // thread creation failed: the closure (and its adopted
                // guard) never ran
                shared.busy.fetch_sub(1, Ordering::SeqCst);
            }
            continue;
        }
        let spawned = std::thread::Builder::new()
            .name("wa-serve-http-conn".to_string())
            .spawn(move || {
                // release the slot however the connection ends
                let _slot = CountGuard::adopt(&conn_shared.conns);
                serve_http_connection(stream, &conn_shared);
            });
        if spawned.is_err() {
            shared.conns.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_error_kind_has_a_status() {
        for (kind, want) in [
            (ErrorKind::BadFrame, 400),
            (ErrorKind::BadRequest, 400),
            (ErrorKind::UnknownModel, 404),
            (ErrorKind::InvalidSpec, 400),
            (ErrorKind::ShapeMismatch, 400),
            (ErrorKind::UnsupportedAlgo, 400),
            (ErrorKind::Busy, 429),
            (ErrorKind::DeadlineExceeded, 504),
            (ErrorKind::ShuttingDown, 503),
            (ErrorKind::Internal, 500),
        ] {
            assert_eq!(status_for_kind(kind), want, "{:?}", kind);
            // the string-side mapping used on dispatch responses agrees
            let doc = error_response(None, &ErrorBody::new(kind, "x"));
            assert_eq!(status_of_response(&doc), want, "{:?}", kind);
        }
    }

    #[test]
    fn ok_responses_are_200() {
        assert_eq!(status_of_response(&ok_response(None, vec![])), 200);
    }
}
