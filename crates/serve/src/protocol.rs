//! The wire protocol: length-prefixed JSON frames, typed requests, and
//! structured error responses.
//!
//! # Framing
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! ┌──────────────┬──────────────────────────┐
//! │ length: u32  │ body: `length` bytes of  │
//! │ (big-endian) │ UTF-8 JSON               │
//! └──────────────┴──────────────────────────┘
//! ```
//!
//! A connection carries any number of frames in sequence. The body is a
//! single [`Json`] document produced by `wa_tensor::json` (the same
//! codec checkpoints use), so a request can embed tensors and full
//! checkpoints verbatim.
//!
//! # Requests
//!
//! Every request is an object with an `"op"` string, an optional `"id"`
//! (echoed verbatim in the response so clients can pipeline), and
//! op-specific fields:
//!
//! | op            | fields                                   |
//! |---------------|------------------------------------------|
//! | `load_model`  | `name`, `checkpoint` (a [`FullCheckpoint`] document, or a server-side file path string — JSON or binary container, sniffed by magic) |
//! | `unload`      | `name`                                   |
//! | `list_models` | —                                        |
//! | `infer`       | `model`, `input` (tensor, `[N,C,H,W]` or one `[C,H,W]` sample), optional `deadline_ms`, optional `trace_id` |
//! | `stats`       | —                                        |
//! | `metrics`     | — (Prometheus exposition text in `text`) |
//! | `shutdown`    | —                                        |
//!
//! # Responses
//!
//! `{"id": ..., "ok": true, ...}` on success, or
//! `{"id": ..., "ok": false, "error": {"kind": "...", "message": "..."}}`
//! — *every* malformed input maps to such a structured error (the server
//! never just drops a connection over request content). The one
//! exception is an oversized frame: the server answers with a
//! `frame_too_large` error and then closes that connection, because the
//! offending body was never read and the stream is no longer in sync.

use std::io::{self, Read, Write};

use wa_nn::{FullCheckpoint, WaError};
use wa_tensor::{Json, JsonError, Tensor};

/// Default cap on one frame's body size. 512 MiB: a full-width
/// ResNet-18 checkpoint serializes to ~320 MiB of decimal JSON (11M
/// fp32 parameters at ~30 bytes each), and the flagship model must be
/// loadable with defaults. Deployments serving only small models should
/// lower this (`wa-serve --max-frame-mb`).
pub const DEFAULT_MAX_FRAME: usize = 512 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection at a frame boundary (normal end).
    Closed,
    /// An I/O error, including mid-frame EOF.
    Io(io::Error),
    /// The declared body length exceeds the configured cap. The body was
    /// not consumed, so the stream cannot be re-synchronized.
    TooLarge {
        /// Declared body length.
        declared: usize,
        /// Configured cap.
        max: usize,
    },
    /// The body was not valid UTF-8 JSON.
    BadJson(JsonError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "I/O error: {e}"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte cap")
            }
            FrameError::BadJson(e) => write!(f, "invalid JSON body: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame (`u32` big-endian length + compact JSON body).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_frame(w: &mut impl Write, doc: &Json) -> io::Result<()> {
    let body = doc.to_string_compact();
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Reads one frame, enforcing the `max` body-size cap.
///
/// # Errors
///
/// [`FrameError::Closed`] on EOF at a frame boundary, [`FrameError::Io`]
/// on other I/O failures, [`FrameError::TooLarge`] when the declared
/// length exceeds `max` (the body is left unread), and
/// [`FrameError::BadJson`] when the body does not parse.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Json, FrameError> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame header",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let declared = u32::from_be_bytes(header) as usize;
    if declared > max {
        return Err(FrameError::TooLarge { declared, max });
    }
    let mut body = vec![0u8; declared];
    r.read_exact(&mut body).map_err(FrameError::Io)?;
    let text = std::str::from_utf8(&body).map_err(|_| {
        FrameError::BadJson(JsonError {
            offset: 0,
            message: "frame body is not UTF-8".to_string(),
        })
    })?;
    Json::parse(text).map_err(FrameError::BadJson)
}

/// Machine-readable error category of a failed request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The frame itself was unusable (oversized, unparsable JSON).
    BadFrame,
    /// The frame parsed but is not a well-formed request.
    BadRequest,
    /// `infer`/`unload` named a model the registry does not hold.
    UnknownModel,
    /// A spec/checkpoint field is invalid.
    InvalidSpec,
    /// Tensor shapes disagree (input vs model, checkpoint vs model).
    ShapeMismatch,
    /// The requested convolution algorithm is unsupported.
    UnsupportedAlgo,
    /// The server is at its connection limit (`--max-conns`) or the
    /// model's admission-control queue cap (`--max-queue`); retry after
    /// backing off.
    Busy,
    /// The request's `deadline_ms` budget expired before inference ran;
    /// the input was dropped unexecuted.
    DeadlineExceeded,
    /// The server is draining for shutdown and no longer accepts work.
    ShuttingDown,
    /// The server failed internally while handling a valid request.
    Internal,
}

impl ErrorKind {
    /// The wire form (`"bad_frame"`, `"unknown_model"`, …).
    pub fn code(self) -> &'static str {
        match self {
            ErrorKind::BadFrame => "bad_frame",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::UnknownModel => "unknown_model",
            ErrorKind::InvalidSpec => "invalid_spec",
            ErrorKind::ShapeMismatch => "shape_mismatch",
            ErrorKind::UnsupportedAlgo => "unsupported_algo",
            ErrorKind::Busy => "busy",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A structured request failure: what went wrong, in a form a remote
/// client can match on (`kind`) and a human can read (`message`).
#[derive(Clone, Debug)]
pub struct ErrorBody {
    /// Machine-readable category.
    pub kind: ErrorKind,
    /// Human-readable explanation.
    pub message: String,
}

impl ErrorBody {
    /// Builds an error body.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> ErrorBody {
        ErrorBody {
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ErrorBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.code(), self.message)
    }
}

impl From<WaError> for ErrorBody {
    fn from(e: WaError) -> ErrorBody {
        let kind = match &e {
            WaError::InvalidSpec { .. } => ErrorKind::InvalidSpec,
            WaError::ShapeMismatch { .. } => ErrorKind::ShapeMismatch,
            WaError::UnsupportedAlgo { .. } => ErrorKind::UnsupportedAlgo,
        };
        ErrorBody::new(kind, e.to_string())
    }
}

/// Where a `load_model` request's checkpoint comes from.
#[derive(Debug)]
pub enum CheckpointSource {
    /// The checkpoint document rode inline in the request.
    Inline(Box<FullCheckpoint>),
    /// A server-side file path: the server reads the file, sniffs the
    /// container magic, and parses JSON or binary accordingly — the
    /// cold-start fast path (no multi-hundred-MB JSON frame on the
    /// wire, and binary containers decode in milliseconds).
    Path(String),
}

/// A parsed request (the `"op"` dispatch of the [module docs](self)).
#[derive(Debug)]
pub enum Request {
    /// Install a model from a one-document checkpoint.
    LoadModel {
        /// Registry name to serve the model under.
        name: String,
        /// The checkpoint (arch + spec + params), inline or by path.
        checkpoint: CheckpointSource,
    },
    /// Remove a model from the registry.
    Unload {
        /// Registry name.
        name: String,
    },
    /// Enumerate loaded models.
    ListModels,
    /// Run inference on a loaded model.
    Infer {
        /// Registry name.
        model: String,
        /// `[N, C, H, W]` batch (a `[C, H, W]` sample is promoted to
        /// `N = 1`).
        input: Tensor,
        /// Optional latency budget in milliseconds, counted from request
        /// arrival. When it expires before the batch runs, the request
        /// is answered with a `deadline_exceeded` error instead of
        /// riding a late flush.
        deadline_ms: Option<u64>,
        /// Optional client-supplied trace ID (1–64 chars of
        /// `[0-9a-zA-Z_.-]`), echoed in the response and carried through
        /// the scheduler's flush log; the server mints one when absent.
        trace_id: Option<String>,
    },
    /// Per-model serving counters.
    Stats,
    /// The process-wide metrics registry as Prometheus exposition text.
    Metrics,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

impl Request {
    /// Parses a request document. The caller extracts `"id"` itself (it
    /// must be echoed even when parsing fails).
    ///
    /// # Errors
    ///
    /// [`ErrorBody`] with [`ErrorKind::BadRequest`] naming the missing or
    /// mistyped field.
    pub fn from_json(doc: &Json) -> Result<Request, ErrorBody> {
        let bad = |msg: String| ErrorBody::new(ErrorKind::BadRequest, msg);
        if doc.as_obj().is_none() {
            return Err(bad("request must be a JSON object".to_string()));
        }
        let op = doc
            .get("op")
            .ok_or_else(|| bad("request needs an `op` string".to_string()))?
            .as_str()
            .ok_or_else(|| bad("`op` must be a string".to_string()))?;
        let name_field = |field: &str| -> Result<String, ErrorBody> {
            let v = doc
                .get(field)
                .ok_or_else(|| bad(format!("`{op}` needs a `{field}` string")))?;
            let s = v
                .as_str()
                .ok_or_else(|| bad(format!("`{field}` must be a string")))?;
            if s.is_empty() {
                return Err(bad(format!("`{field}` must be nonempty")));
            }
            Ok(s.to_string())
        };
        match op {
            "load_model" => {
                let name = name_field("name")?;
                let ckpt_doc = doc.get("checkpoint").ok_or_else(|| {
                    bad("`load_model` needs a `checkpoint` object or path string".to_string())
                })?;
                let checkpoint = match ckpt_doc.as_str() {
                    Some(path) if !path.is_empty() => CheckpointSource::Path(path.to_string()),
                    Some(_) => return Err(bad("`checkpoint` path must be nonempty".to_string())),
                    None => {
                        let parsed = FullCheckpoint::from_json(ckpt_doc)
                            .map_err(|e| bad(format!("bad checkpoint: {}", e.message)))?;
                        CheckpointSource::Inline(Box::new(parsed))
                    }
                };
                Ok(Request::LoadModel { name, checkpoint })
            }
            "unload" => Ok(Request::Unload {
                name: name_field("name")?,
            }),
            "list_models" => Ok(Request::ListModels),
            "infer" => {
                let model = name_field("model")?;
                let input_doc = doc
                    .get("input")
                    .ok_or_else(|| bad("`infer` needs an `input` tensor".to_string()))?;
                let mut input = Tensor::from_json(input_doc)
                    .map_err(|e| bad(format!("bad input tensor: {}", e.message)))?;
                if input.ndim() == 3 {
                    let mut shape = vec![1];
                    shape.extend_from_slice(input.shape());
                    input = input.reshape(&shape);
                }
                let deadline_ms = match doc.get("deadline_ms") {
                    None | Some(Json::Null) => None,
                    Some(v) => {
                        let ms = v
                            .as_f64()
                            .filter(|ms| ms.is_finite() && *ms >= 0.0)
                            .ok_or_else(|| {
                                bad("`deadline_ms` must be a non-negative number".to_string())
                            })?;
                        Some(ms as u64)
                    }
                };
                let trace_id = match doc.get("trace_id") {
                    None | Some(Json::Null) => None,
                    Some(v) => {
                        let s = v
                            .as_str()
                            .filter(|s| wa_obs::is_valid_trace_id(s))
                            .ok_or_else(|| {
                                bad("`trace_id` must be 1-64 characters of [0-9a-zA-Z_.-]"
                                    .to_string())
                            })?;
                        Some(s.to_string())
                    }
                };
                Ok(Request::Infer {
                    model,
                    input,
                    deadline_ms,
                    trace_id,
                })
            }
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(bad(format!(
                "unknown op `{other}` (expected load_model | unload | list_models | \
                 infer | stats | metrics | shutdown)"
            ))),
        }
    }
}

/// Builds a success response: `{"id"?, "ok": true, ...fields}`.
pub fn ok_response(id: Option<&Json>, fields: Vec<(String, Json)>) -> Json {
    let mut pairs = Vec::with_capacity(fields.len() + 2);
    if let Some(id) = id {
        pairs.push(("id".to_string(), id.clone()));
    }
    pairs.push(("ok".to_string(), Json::Bool(true)));
    pairs.extend(fields);
    Json::Obj(pairs)
}

/// Builds a failure response:
/// `{"id"?, "ok": false, "error": {"kind", "message"}}`.
pub fn error_response(id: Option<&Json>, err: &ErrorBody) -> Json {
    let mut pairs = Vec::with_capacity(3);
    if let Some(id) = id {
        pairs.push(("id".to_string(), id.clone()));
    }
    pairs.push(("ok".to_string(), Json::Bool(false)));
    pairs.push((
        "error".to_string(),
        Json::obj([
            ("kind", Json::from(err.kind.code())),
            ("message", Json::from(err.message.as_str())),
        ]),
    ));
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let doc = Json::obj([("op", Json::from("stats")), ("id", Json::from(7usize))]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc).unwrap();
        write_frame(&mut buf, &doc).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap(), doc);
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap(), doc);
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_frames_are_rejected_without_reading_the_body() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::from("x".repeat(100))).unwrap();
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r, 16),
            Err(FrameError::TooLarge { max: 16, .. })
        ));
    }

    #[test]
    fn truncated_frames_are_io_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::from(1.5f64)).unwrap();
        let mut r = &buf[..buf.len() - 1];
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn request_parse_errors_are_structured() {
        for (doc, needle) in [
            (Json::from(3usize), "object"),
            (Json::obj([("noop", 1usize)]), "`op`"),
            (Json::obj([("op", "fly")]), "unknown op"),
            (Json::obj([("op", "unload")]), "`name`"),
            (Json::obj([("op", "infer"), ("model", "m")]), "`input`"),
        ] {
            let err = Request::from_json(&doc).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest);
            assert!(err.message.contains(needle), "{}: {}", doc, err.message);
        }
    }

    #[test]
    fn infer_trace_id_is_validated() {
        let base = |trace: Json| {
            Json::obj([
                ("op", Json::from("infer")),
                ("model", Json::from("m")),
                ("input", Tensor::zeros(&[1, 4, 4]).to_json()),
                ("trace_id", trace),
            ])
        };
        let Request::Infer { trace_id, .. } =
            Request::from_json(&base(Json::from("bench-run.42"))).unwrap()
        else {
            panic!("expected infer");
        };
        assert_eq!(trace_id.as_deref(), Some("bench-run.42"));
        let Request::Infer { trace_id, .. } = Request::from_json(&base(Json::Null)).unwrap() else {
            panic!("expected infer");
        };
        assert_eq!(trace_id, None);
        for bad in [Json::from("has space"), Json::from(""), Json::from(3usize)] {
            let err = Request::from_json(&base(bad)).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest);
            assert!(err.message.contains("trace_id"));
        }
    }

    #[test]
    fn metrics_op_parses() {
        let doc = Json::obj([("op", Json::from("metrics"))]);
        assert!(matches!(
            Request::from_json(&doc).unwrap(),
            Request::Metrics
        ));
    }

    #[test]
    fn single_sample_infer_input_is_promoted_to_a_batch() {
        let doc = Json::obj([
            ("op", Json::from("infer")),
            ("model", Json::from("m")),
            ("input", Tensor::zeros(&[1, 4, 4]).to_json()),
        ]);
        let Request::Infer { input, .. } = Request::from_json(&doc).unwrap() else {
            panic!("expected infer");
        };
        assert_eq!(input.shape(), &[1, 1, 4, 4]);
    }

    #[test]
    fn responses_echo_the_id_and_carry_structured_errors() {
        let id = Json::from("req-1");
        let ok = ok_response(Some(&id), vec![("n".to_string(), Json::from(2usize))]);
        assert_eq!(ok.get("id").unwrap().as_str(), Some("req-1"));
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
        let err = error_response(
            Some(&id),
            &ErrorBody::new(ErrorKind::UnknownModel, "no such model"),
        );
        assert_eq!(err.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            err.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("unknown_model")
        );
    }
}
