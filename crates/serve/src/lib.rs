//! # wa-serve
//!
//! The socket serving front-end of the workspace: load Winograd-aware
//! quantized models from one-document checkpoints, batch concurrent
//! inference requests, and answer over a dependency-free TCP protocol —
//! the deployment half the paper's efficiency story points at
//! (Winograd-aware quantized CNNs exist to be *served* on commodity
//! hardware).
//!
//! Three layers:
//!
//! * [`protocol`] — length-prefixed `wa_tensor::json` frames; typed
//!   [`Request`]s (`load_model`, `unload`, `list_models`, `infer`,
//!   `stats`, `shutdown`); every malformed input maps to a structured
//!   error response instead of a dropped connection.
//! * [`registry`] — named models reconstructed from
//!   [`FullCheckpoint`](wa_nn::FullCheckpoint) documents
//!   (`ModelSpec` → `from_spec` → `import_params`), shared behind
//!   `Arc`s, with per-model request/latency counters.
//! * [`scheduler`] — coalesces concurrent `infer` requests into
//!   `[N, C, H, W]` batches (flush on max-batch or deadline) and drives
//!   them through `wa_nn::BatchExecutor`, stitching per-request outputs
//!   back to the right connections; per-request deadlines drop expired
//!   jobs before they burn executor time, and a per-model admission cap
//!   refuses work with `busy` before the queue can grow without bound.
//! * [`http`] — an optional HTTP/1.1 front-end (`--http-port`) exposing
//!   the same registry + scheduler as `POST /v1/infer`, `GET
//!   /v1/models`, `GET /v1/stats`, `POST /v1/models/{load,unload}` and
//!   `POST /v1/shutdown`, with error kinds mapped onto HTTP statuses;
//!   plus the observability surface: `GET /v1/metrics` (Prometheus
//!   text), `GET /v1/healthz` and `GET /v1/readyz`.
//! * `metrics` (crate-private) — the `/v1/metrics` collector: refreshes
//!   live gauges and renders the process-global [`wa_obs`] registry
//!   followed by per-model series, so the Prometheus and `stats` views
//!   read the same counters.
//!
//! Every `infer` request carries a trace id (caller-supplied or minted
//! at the edge) that is echoed in the response, carried on the
//! scheduler job, and stamped on each structured log line — see
//! `docs/observability.md`.
//!
//! The `wa-serve` binary serves; the `wa-client` binary exercises a
//! server end-to-end (build a checkpoint, load it, fire batched
//! requests, print logits and samples/sec).
//!
//! # In-process example
//!
//! ```
//! use wa_models::{ModelKind, ModelSpec, ZooModel};
//! use wa_serve::{Client, Server, ServerConfig};
//! use wa_tensor::SeededRng;
//!
//! // boot a server on an ephemeral port
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//! let addr = server.local_addr();
//! let thread = std::thread::spawn(move || server.run());
//!
//! // build a checkpoint, load it, infer against it
//! let spec = ModelSpec::builder().classes(10).input_size(12).build().unwrap();
//! let mut rng = SeededRng::new(0);
//! let mut model = ZooModel::from_spec(ModelKind::LeNet, &spec, &mut rng).unwrap();
//! let ckpt = model.to_full_checkpoint().unwrap();
//!
//! let mut client = Client::connect(addr).unwrap();
//! client.load_model("mnist", &ckpt).unwrap();
//! let x = rng.uniform_tensor(&[2, 1, 12, 12], -1.0, 1.0);
//! let logits = client.infer("mnist", &x).unwrap();
//! assert_eq!(logits.shape(), &[2, 10]);
//!
//! client.shutdown().unwrap();
//! thread.join().unwrap()?;
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
pub mod http;
pub(crate) mod metrics;
pub mod protocol;
pub mod registry;
pub mod scheduler;
pub mod server;

pub use client::{Client, ClientError};
pub use http::status_for_kind;
pub use protocol::{
    error_response, ok_response, read_frame, write_frame, CheckpointSource, ErrorBody, ErrorKind,
    FrameError, Request, DEFAULT_MAX_FRAME,
};
pub use registry::{checkpoint_resident_bytes, ModelLifecycle, ModelStats, Registry, ServedModel};
pub use scheduler::{Scheduler, SchedulerConfig};
pub use server::{Server, ServerConfig, ServerHandle};
