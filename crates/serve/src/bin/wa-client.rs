//! `wa-client` — exercise a running `wa-serve` end-to-end.
//!
//! ```text
//! wa-client make-checkpoint <path> [--arch lenet] [--classes N]
//!           [--input-size N] [--width W] [--algo F2] [--quant INT8] [--transform per-tap]
//!           [--execution int8] [--calibration-batches N] [--seed N]
//! wa-client convert <input> <output>
//! wa-client load <addr> <name> <path> [--timeout MS]
//! wa-client list <addr> [--timeout MS]
//! wa-client infer <addr> <name> [--batch N] [--requests K]
//!           [--concurrency C] [--seed N] [--deadline-ms N]
//!           [--timeout MS] [--record]
//! wa-client stats <addr> [--timeout MS]
//! wa-client shutdown <addr> [--timeout MS]
//! ```
//!
//! `infer` asks the server for the model's expected sample shape, fires
//! `--requests` random batches of `--batch` samples across
//! `--concurrency` connections (concurrent requests let the server's
//! scheduler coalesce them), prints the first response's logits and the
//! measured served samples/sec, and with `--record` appends the number
//! to `results/serve_throughput.json`.
//!
//! `--execution int8` mints a checkpoint for the true-integer inference
//! path. Integer serving needs settled scales, so the model is first
//! calibrated on `--calibration-batches` (default 2) seeded random
//! batches; passing `0` is rejected before writing — an uncalibrated
//! int8 checkpoint would requantize through one-off per-request scales.
//!
//! `convert` round-trips a checkpoint between formats, sniffed from the
//! input's bytes: a JSON document becomes a binary `.wack` container
//! (magic `WACK`, see `docs/checkpoints.md`) and a container becomes
//! pretty-printed JSON. `load` sniffs too: a JSON checkpoint is parsed
//! locally and sent inline over the wire, while a binary container is
//! loaded *by the server* from the given path (binary bytes never
//! transit the JSON protocol — the server and client must share a
//! filesystem for that form).
//!
//! `--timeout MS` bounds every network wait on the client side
//! (connect, send, receive); an elapsed timeout exits with a structured
//! `timed out after …` message instead of hanging. `--deadline-ms N`
//! is the *server-side* budget: the scheduler drops the request
//! unexecuted (answering `deadline_exceeded`) if it is still queued
//! when the budget elapses.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use wa_bench::BenchRecord;
use wa_core::ConvAlgo;
use wa_models::{ModelKind, ModelSpec, ZooModel};
use wa_nn::{FullCheckpoint, Layer, QuantConfig, QuantSiteState, Tape};
use wa_quant::{BitWidth, Execution, TapPolicy};
use wa_serve::Client;
use wa_tensor::{SeededRng, Tensor};

fn usage() -> ! {
    eprintln!(
        "usage:\n  wa-client make-checkpoint <path> [--arch lenet] [--classes N] \
         [--input-size N] [--width W] [--algo F2] [--quant INT8] [--transform per-tap] \
         [--execution int8] [--calibration-batches N] [--seed N]\n  \
         wa-client convert <input> <output>\n  \
         wa-client load <addr> <name> <path> [--timeout MS]\n  \
         wa-client list <addr> [--timeout MS]\n  \
         wa-client infer <addr> <name> [--batch N] [--requests K] [--concurrency C] \
         [--seed N] [--deadline-ms N] [--timeout MS] [--record]\n  \
         wa-client stats <addr> [--timeout MS]\n  \
         wa-client shutdown <addr> [--timeout MS]"
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("wa-client: {msg}");
    std::process::exit(1);
}

/// Key-value flags after the positional arguments.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String], booleans: &[&str]) -> Flags {
        let mut out = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let Some(key) = args[i].strip_prefix("--") else {
                usage();
            };
            if booleans.contains(&key) {
                out.push((key.to_string(), "true".to_string()));
                i += 1;
            } else {
                if i + 1 >= args.len() {
                    usage();
                }
                out.push((key.to_string(), args[i + 1].clone()));
                i += 2;
            }
        }
        Flags(out)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| fail(format!("bad value for --{key}: `{v}`"))),
        }
    }
}

/// Connects, honouring `--timeout MS` when present (0 or absent = no
/// client-side timeout).
fn connect(addr: &str, flags: &Flags) -> Client {
    match flags.parsed("timeout", 0u64) {
        0 => Client::connect(addr).unwrap_or_else(|e| fail(e)),
        ms => Client::connect_with_timeout(addr, Duration::from_millis(ms))
            .unwrap_or_else(|e| fail(e)),
    }
}

fn make_checkpoint(path: &str, flags: &Flags) {
    let kind: ModelKind = flags
        .get("arch")
        .unwrap_or("lenet")
        .parse()
        .unwrap_or_else(|e| fail(e));
    let algo: ConvAlgo = flags
        .get("algo")
        .unwrap_or("im2row")
        .parse()
        .unwrap_or_else(|e| fail(e));
    let bits: BitWidth = flags
        .get("quant")
        .unwrap_or("FP32")
        .parse()
        .unwrap_or_else(|e| fail(e));
    let transform: TapPolicy = flags
        .get("transform")
        .unwrap_or("per-layer")
        .parse()
        .unwrap_or_else(|e| fail(e));
    let execution: Execution = flags
        .get("execution")
        .unwrap_or("fake-quant")
        .parse()
        .unwrap_or_else(|e| fail(e));
    let default_size = if kind == ModelKind::LeNet { 28 } else { 32 };
    let spec = ModelSpec::builder()
        .classes(flags.parsed("classes", 10))
        .input_size(flags.parsed("input-size", default_size))
        .width(flags.parsed("width", 1.0))
        .quant(
            QuantConfig::uniform(bits)
                .with_transform(transform)
                .with_execution(execution),
        )
        .algo(algo)
        .build()
        .unwrap_or_else(|e| fail(e));
    let mut rng = SeededRng::new(flags.parsed("seed", 0u64));
    let mut model = ZooModel::from_spec(kind, &spec, &mut rng).unwrap_or_else(|e| fail(e));

    // int8 serving requantizes through the calibrated scales, so warm
    // every observer (and the BN moments) on seeded random batches
    // before exporting
    let calibration_default = if execution == Execution::Int8 {
        2usize
    } else {
        0
    };
    let calibration = flags.parsed("calibration-batches", calibration_default);
    let [c, h, w] = model.sample_shape();
    for _ in 0..calibration {
        let batch = rng.uniform_tensor(&[4, c, h, w], -1.0, 1.0);
        let mut tape = Tape::new();
        let x = tape.leaf(batch);
        let _ = model.forward(&mut tape, x, true);
    }

    let ckpt = model.to_full_checkpoint().unwrap_or_else(|e| fail(e));
    if execution == Execution::Int8 {
        let cold = ckpt.quant.iter().find(|(_, state)| match state {
            QuantSiteState::Observer { seen, .. } | QuantSiteState::Taps { seen, .. } => *seen == 0,
            QuantSiteState::BatchNorm { .. } => false,
        });
        if ckpt.quant.is_empty() {
            fail(
                "int8 execution requires calibrated quantization state, but the model exports none",
            );
        }
        if let Some((site, _)) = cold {
            fail(format!(
                "int8 execution requires calibrated quantization state, but \
                 `quant.{site}` has no observations (seen = 0); mint with \
                 --calibration-batches >= 1"
            ));
        }
    }
    let doc = ckpt.to_json().to_string_pretty();
    std::fs::write(path, &doc).unwrap_or_else(|e| fail(format!("writing {path}: {e}")));
    println!("wrote {kind} checkpoint ({} bytes) to {path}", doc.len());
}

/// Converts a checkpoint between the JSON and binary container formats
/// (direction sniffed from the input's leading bytes).
fn convert(input: &str, output: &str) {
    let bytes = std::fs::read(input).unwrap_or_else(|e| fail(format!("reading {input}: {e}")));
    let (params, from, out_bytes, to) = if wa_nn::is_container(&bytes) {
        let ckpt = wa_nn::read_checkpoint(&bytes)
            .unwrap_or_else(|e| fail(format!("parsing {input}: {e}")));
        let text = ckpt.to_json().to_string_pretty();
        (
            ckpt.params.params.len(),
            "binary",
            text.into_bytes(),
            "json",
        )
    } else {
        let text = String::from_utf8(bytes).unwrap_or_else(|_| {
            fail(format!(
                "{input} is neither a binary container nor UTF-8 JSON"
            ))
        });
        let ckpt = FullCheckpoint::from_json_str(&text)
            .unwrap_or_else(|e| fail(format!("parsing {input}: {e}")));
        let out = wa_nn::write_checkpoint(&ckpt);
        (ckpt.params.params.len(), "json", out, "binary")
    };
    std::fs::write(output, &out_bytes).unwrap_or_else(|e| fail(format!("writing {output}: {e}")));
    println!(
        "converted {from} {input} ({params} params) to {to} {output} ({} bytes)",
        out_bytes.len()
    );
}

fn load(addr: &str, name: &str, path: &str, flags: &Flags) {
    let bytes = std::fs::read(path).unwrap_or_else(|e| fail(format!("reading {path}: {e}")));
    let mut client = connect(addr, flags);
    let resp = if wa_nn::is_container(&bytes) {
        // binary containers don't transit the JSON protocol: the server
        // reads the path itself (it must see the same filesystem)
        client
            .load_model_path(name, path)
            .unwrap_or_else(|e| fail(e))
    } else {
        let text = String::from_utf8(bytes).unwrap_or_else(|_| {
            fail(format!(
                "{path} is neither a binary container nor UTF-8 JSON"
            ))
        });
        let ckpt = FullCheckpoint::from_json_str(&text)
            .unwrap_or_else(|e| fail(format!("parsing {path}: {e}")));
        client.load_model(name, &ckpt).unwrap_or_else(|e| fail(e))
    };
    println!(
        "loaded `{name}` (arch {}, {} params, format {}, {} µs)",
        resp.get("arch").and_then(|v| v.as_str()).unwrap_or("?"),
        resp.get("params").and_then(|v| v.as_f64()).unwrap_or(0.0),
        resp.get("format").and_then(|v| v.as_str()).unwrap_or("?"),
        resp.get("load_micros")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
    );
}

/// The model's `[C, H, W]` sample shape, from `list_models`.
fn sample_shape(client: &mut Client, name: &str) -> Vec<usize> {
    let models = client.list_models().unwrap_or_else(|e| fail(e));
    let Some(row) = models
        .as_arr()
        .unwrap_or(&[])
        .iter()
        .find(|m| m.get("name").and_then(|v| v.as_str()) == Some(name))
    else {
        fail(format!("no model `{name}` on the server"));
    };
    row.get("sample_shape")
        .and_then(|s| s.as_arr())
        .map(|a| {
            a.iter()
                .filter_map(|v| v.as_f64())
                .map(|f| f as usize)
                .collect()
        })
        .unwrap_or_else(|| fail("list_models row lacks sample_shape"))
}

fn infer(addr: &str, name: &str, flags: &Flags) {
    let batch: usize = flags.parsed("batch", 4);
    let requests: usize = flags.parsed("requests", 8);
    let concurrency: usize = flags.parsed("concurrency", 2).max(1);
    let seed: u64 = flags.parsed("seed", 7);
    let deadline_ms: u64 = flags.parsed("deadline-ms", 0);

    let mut probe = connect(addr, flags);
    let shape = sample_shape(&mut probe, name);
    let mut full = vec![batch];
    full.extend(&shape);
    let mut rng = SeededRng::new(seed);
    let inputs: Vec<Tensor> = (0..requests)
        .map(|_| rng.uniform_tensor(&full, -1.0, 1.0))
        .collect();

    // fire the requests across `concurrency` connections so the server's
    // scheduler gets something to coalesce
    let next = AtomicUsize::new(0);
    let first_logits = std::sync::Mutex::new(None::<Tensor>);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..concurrency.min(requests) {
            s.spawn(|| {
                let mut client = connect(addr, flags);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= requests {
                        return;
                    }
                    let out = if deadline_ms > 0 {
                        client
                            .infer_with_deadline(name, &inputs[i], deadline_ms)
                            .unwrap_or_else(|e| fail(e))
                    } else {
                        client.infer(name, &inputs[i]).unwrap_or_else(|e| fail(e))
                    };
                    if i == 0 {
                        *first_logits.lock().expect("logits lock") = Some(out);
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    let samples = batch * requests;
    let sps = samples as f64 / elapsed;

    if let Some(logits) = first_logits.lock().expect("logits lock").as_ref() {
        let row: Vec<String> = logits.data()[..logits.dim(1).min(10)]
            .iter()
            .map(|v| format!("{v:.4}"))
            .collect();
        println!("first logits: [{}]", row.join(", "));
    }
    println!(
        "{samples} samples in {requests} requests over {concurrency} connections: \
         {sps:.1} samples/sec"
    );

    if flags.get("record").is_some() {
        let mut record = BenchRecord::new("serve_throughput", "samples/sec");
        record.push(
            format!("{name} served"),
            sps,
            &[
                ("batch", batch as f64),
                ("requests", requests as f64),
                ("concurrency", concurrency as f64),
            ],
        );
        record.save();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match (cmd.as_str(), &args[1..]) {
        ("make-checkpoint", rest) if !rest.is_empty() => {
            make_checkpoint(&rest[0], &Flags::parse(&rest[1..], &[]));
        }
        ("convert", rest) if rest.len() == 2 => {
            convert(&rest[0], &rest[1]);
        }
        ("load", rest) if rest.len() >= 3 => {
            let flags = Flags::parse(&rest[3..], &[]);
            load(&rest[0], &rest[1], &rest[2], &flags);
        }
        ("list", rest) if !rest.is_empty() => {
            let mut client = connect(&rest[0], &Flags::parse(&rest[1..], &[]));
            println!("{}", client.list_models().unwrap_or_else(|e| fail(e)));
        }
        ("infer", rest) if rest.len() >= 2 => {
            infer(&rest[0], &rest[1], &Flags::parse(&rest[2..], &["record"]));
        }
        ("stats", rest) if !rest.is_empty() => {
            let mut client = connect(&rest[0], &Flags::parse(&rest[1..], &[]));
            println!("{}", client.stats().unwrap_or_else(|e| fail(e)));
        }
        ("shutdown", rest) if !rest.is_empty() => {
            let mut client = connect(&rest[0], &Flags::parse(&rest[1..], &[]));
            client.shutdown().unwrap_or_else(|e| fail(e));
            println!("server stopping");
        }
        _ => usage(),
    }
}
