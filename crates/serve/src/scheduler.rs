//! The batching scheduler: coalesce concurrent `infer` requests into
//! `[N, C, H, W]` batches and drive them through the [`BatchExecutor`].
//!
//! Connection threads [`submit`](Scheduler::submit) jobs (one tensor +
//! one reply channel each) and block on their reply. A single scheduler
//! thread accumulates jobs per model and flushes a model's queue when
//! either
//!
//! * the accumulated sample count reaches
//!   [`SchedulerConfig::max_batch`], or
//! * the oldest queued job has waited [`SchedulerConfig::max_delay`]
//!   (the batching deadline).
//!
//! A flush concatenates the queued inputs along dimension 0 in arrival
//! order and hands the batch to a *flusher thread*, which runs one
//! [`BatchExecutor`] pass, slices the output back into per-request
//! pieces, and answers every reply channel — so a slow model's
//! inference never stalls batch formation (or another model's flush):
//! different models' batches execute concurrently while the scheduler
//! thread keeps accumulating. Deadlines are swept on *every* wake-up of
//! the scheduler loop, so a partial batch flushes on time even while
//! other models keep the job channel busy. Because the executor's
//! output is bit-identical for any batch partition (see
//! `wa_nn::executor`), a request's logits do not depend on which other
//! requests happened to share its batch — batching is invisible to
//! clients except as throughput.
//!
//! Shape safety: jobs are validated against the model's expected
//! per-sample shape *before* they are queued (see
//! [`Scheduler::submit`]), so one malformed request cannot poison a
//! whole batch.

use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wa_nn::{BatchExecutor, ExecutorConfig, WaError};
use wa_tensor::Tensor;

use crate::protocol::{ErrorBody, ErrorKind};
use crate::registry::ServedModel;

/// Batching policy.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Flush a model's queue once this many samples are waiting.
    pub max_batch: usize,
    /// Flush whatever is waiting once the oldest job is this old.
    pub max_delay: Duration,
    /// Executor sharding for each flushed batch.
    pub exec: ExecutorConfig,
}

impl Default for SchedulerConfig {
    /// 32-sample batches, a 2 ms batching window, default executor.
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            exec: ExecutorConfig::default(),
        }
    }
}

impl SchedulerConfig {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] for a zero `max_batch` or an invalid
    /// executor config.
    pub fn validate(&self) -> Result<(), WaError> {
        if self.max_batch == 0 {
            return Err(WaError::invalid(
                "SchedulerConfig",
                "max_batch",
                "must be nonzero",
            ));
        }
        self.exec.validate()
    }
}

/// One queued inference request.
struct Job {
    entry: Arc<ServedModel>,
    input: Tensor,
    reply: Sender<Result<Tensor, ErrorBody>>,
}

/// A model's accumulating batch.
struct Pending {
    jobs: Vec<Job>,
    samples: usize,
    oldest: Instant,
}

/// Handle to the scheduler thread. Dropping it flushes the queue and
/// joins the thread.
pub struct Scheduler {
    tx: Mutex<Option<Sender<Job>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    cfg: SchedulerConfig,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler").field("cfg", &self.cfg).finish()
    }
}

impl Scheduler {
    /// Starts the scheduler thread.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] for an invalid config.
    pub fn start(cfg: SchedulerConfig) -> Result<Scheduler, WaError> {
        cfg.validate()?;
        let exec = BatchExecutor::new(cfg.exec)?;
        let (tx, rx) = channel::<Job>();
        let worker = std::thread::Builder::new()
            .name("wa-serve-scheduler".to_string())
            .spawn(move || scheduler_loop(rx, cfg, exec))
            .expect("spawning the scheduler thread failed");
        Ok(Scheduler {
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
            cfg,
        })
    }

    /// The active policy.
    pub fn config(&self) -> SchedulerConfig {
        self.cfg
    }

    /// Validates `input` against `entry`'s expected per-sample shape and
    /// queues it, returning the channel the result will arrive on.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::ShapeMismatch`] for an input the model could not
    /// consume (rejected *before* batching, so other requests are
    /// unaffected); [`ErrorKind::Internal`] if the scheduler is gone.
    pub fn submit(
        &self,
        entry: Arc<ServedModel>,
        input: Tensor,
    ) -> Result<Receiver<Result<Tensor, ErrorBody>>, ErrorBody> {
        let want = entry.model.sample_shape();
        let shape = input.shape();
        if shape.len() != 4 || shape[0] == 0 || shape[1..] != want {
            return Err(ErrorBody::new(
                ErrorKind::ShapeMismatch,
                format!(
                    "model `{}` expects [N, {}, {}, {}] input with N >= 1, got {:?}",
                    entry.name, want[0], want[1], want[2], shape
                ),
            ));
        }
        let (reply, result) = channel();
        let job = Job {
            entry,
            input,
            reply,
        };
        let guard = self.tx.lock().expect("scheduler sender lock poisoned");
        let tx = guard
            .as_ref()
            .ok_or_else(|| ErrorBody::new(ErrorKind::Internal, "the scheduler has shut down"))?;
        tx.send(job)
            .map_err(|_| ErrorBody::new(ErrorKind::Internal, "the scheduler thread exited"))?;
        Ok(result)
    }

    /// Stops the scheduler: flushes everything queued and joins the
    /// thread. Idempotent.
    pub fn stop(&self) {
        self.tx
            .lock()
            .expect("scheduler sender lock poisoned")
            .take();
        if let Some(worker) = self
            .worker
            .lock()
            .expect("scheduler worker lock poisoned")
            .take()
        {
            let _ = worker.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The scheduler thread: accumulate → flush on size or deadline, with
/// the actual inference handed to flusher threads.
fn scheduler_loop(rx: Receiver<Job>, cfg: SchedulerConfig, exec: BatchExecutor) {
    let mut pending: BTreeMap<String, Pending> = BTreeMap::new();
    let mut flushers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        // sleep until the nearest deadline (or indefinitely when idle)
        let timeout = pending
            .values()
            .map(|p| cfg.max_delay.saturating_sub(p.oldest.elapsed()))
            .min();
        let msg = match timeout {
            None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
            Some(t) => rx.recv_timeout(t),
        };
        match msg {
            Ok(job) => {
                let samples = job.input.dim(0);
                // a hot reload can swap the model behind a name while
                // jobs for the old instance are queued: flush those
                // rather than run them on a model they weren't meant for
                if let Some(p) = pending.get(&job.entry.name) {
                    if !Arc::ptr_eq(&p.jobs[0].entry, &job.entry) {
                        let p = pending.remove(&job.entry.name).expect("key exists");
                        spawn_flush(&mut flushers, p, &exec);
                    }
                }
                let p = pending
                    .entry(job.entry.name.clone())
                    .or_insert_with(|| Pending {
                        jobs: Vec::new(),
                        samples: 0,
                        oldest: Instant::now(),
                    });
                p.jobs.push(job);
                p.samples += samples;
                if p.samples >= cfg.max_batch {
                    let key = pending
                        .iter()
                        .find(|(_, p)| p.samples >= cfg.max_batch)
                        .map(|(k, _)| k.clone())
                        .expect("the batch just filled");
                    let p = pending.remove(&key).expect("key exists");
                    spawn_flush(&mut flushers, p, &exec);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // final drain: answer everything still queued, then wait
                // for every in-flight flush before exiting (stop() joins
                // this thread, so joining here makes stop() synchronous)
                for (_, p) in std::mem::take(&mut pending) {
                    spawn_flush(&mut flushers, p, &exec);
                }
                for h in flushers {
                    let _ = h.join();
                }
                return;
            }
        }
        // sweep due deadlines on *every* wake-up — under sustained
        // traffic the channel never empties, so a Timeout-only sweep
        // would starve partial batches far past max_delay
        let due: Vec<String> = pending
            .iter()
            .filter(|(_, p)| p.oldest.elapsed() >= cfg.max_delay)
            .map(|(k, _)| k.clone())
            .collect();
        for key in due {
            let p = pending.remove(&key).expect("key exists");
            spawn_flush(&mut flushers, p, &exec);
        }
        flushers.retain(|h| !h.is_finished());
    }
}

/// Hands an accumulated batch to its own flusher thread so the
/// scheduler loop can keep accumulating (and other models' batches can
/// execute concurrently). Worker-thread fan-out stays bounded: each
/// flush's executor is capped at `cfg.exec.threads`, and flusher threads
/// are reaped every loop iteration.
fn spawn_flush(flushers: &mut Vec<JoinHandle<()>>, p: Pending, exec: &BatchExecutor) {
    let exec = exec.clone();
    let handle = std::thread::Builder::new()
        .name("wa-serve-flush".to_string())
        .spawn(move || flush(p, &exec))
        .expect("spawning a flusher thread failed");
    flushers.push(handle);
}

/// Runs one accumulated batch and routes the per-request outputs back.
fn flush(p: Pending, exec: &BatchExecutor) {
    if p.jobs.is_empty() {
        return;
    }
    let entry = Arc::clone(&p.jobs[0].entry);
    let inputs: Vec<&Tensor> = p.jobs.iter().map(|j| &j.input).collect();
    let batch = Tensor::concat_dim0(&inputs);
    let t0 = Instant::now();
    let result = exec.run(&entry.model, &batch);
    let micros = t0.elapsed().as_micros() as u64;
    entry
        .stats
        .record_batch(p.jobs.len() as u64, p.samples as u64, micros);
    match result {
        Ok(output) => {
            // slice the stitched output back into per-request pieces, in
            // the arrival order the batch was assembled in
            let mut row = 0;
            for job in p.jobs {
                let n = job.input.dim(0);
                let piece = output.slice_dim0(row, row + n);
                row += n;
                // a dropped receiver just means the client went away
                let _ = job.reply.send(Ok(piece));
            }
        }
        Err(e) => {
            // per-job shape validation happened at submit, so a batch
            // failure is a genuine server-side problem; every waiting
            // request learns about it
            let body = ErrorBody::new(
                ErrorKind::Internal,
                format!("batched inference failed: {e}"),
            );
            for job in p.jobs {
                let _ = job.reply.send(Err(body.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use wa_models::{ModelKind, ModelSpec, ZooModel};
    use wa_nn::Infer;
    use wa_tensor::SeededRng;

    fn loaded_lenet(reg: &Registry) -> Arc<ServedModel> {
        let spec = ModelSpec::builder()
            .classes(10)
            .input_size(12)
            .build()
            .unwrap();
        let mut model =
            ZooModel::from_spec(ModelKind::LeNet, &spec, &mut SeededRng::new(3)).unwrap();
        let doc = model.to_full_checkpoint().unwrap();
        reg.load("mnist", &doc).unwrap()
    }

    fn test_cfg(max_batch: usize, max_delay: Duration) -> SchedulerConfig {
        SchedulerConfig {
            max_batch,
            max_delay,
            exec: ExecutorConfig {
                threads: 2,
                chunk: 2,
            },
        }
    }

    #[test]
    fn config_rejects_zero_batch() {
        let cfg = SchedulerConfig {
            max_batch: 0,
            ..SchedulerConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn single_request_is_answered_and_matches_in_process_inference() {
        let reg = Registry::new();
        let entry = loaded_lenet(&reg);
        let sched = Scheduler::start(test_cfg(8, Duration::from_millis(1))).unwrap();
        let mut rng = SeededRng::new(4);
        let x = rng.uniform_tensor(&[2, 1, 12, 12], -1.0, 1.0);
        let want = entry
            .model
            .try_forward_batch(&x, sched.config().exec)
            .unwrap();
        let rx = sched.submit(Arc::clone(&entry), x).unwrap();
        let got = rx.recv().unwrap().unwrap();
        assert_eq!(got.data(), want.data());
        assert_eq!(
            entry
                .stats
                .requests
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn bad_shape_is_rejected_before_batching() {
        let reg = Registry::new();
        let entry = loaded_lenet(&reg);
        let sched = Scheduler::start(test_cfg(8, Duration::from_millis(1))).unwrap();
        let bad = Tensor::zeros(&[1, 3, 12, 12]);
        let err = sched.submit(entry, bad).unwrap_err();
        assert_eq!(err.kind, ErrorKind::ShapeMismatch);
        assert!(err.message.contains("mnist"));
    }

    #[test]
    fn concurrent_requests_coalesce_into_one_batch() {
        let reg = Registry::new();
        let entry = loaded_lenet(&reg);
        // max_batch 4 = the total sample count, generous deadline: the
        // flush must be triggered by the size threshold, as one batch
        let sched = Arc::new(Scheduler::start(test_cfg(4, Duration::from_secs(5))).unwrap());
        let mut rng = SeededRng::new(5);
        let inputs: Vec<Tensor> = (0..4)
            .map(|_| rng.uniform_tensor(&[1, 1, 12, 12], -1.0, 1.0))
            .collect();
        let wants: Vec<Tensor> = inputs
            .iter()
            .map(|x| {
                entry
                    .model
                    .try_forward_batch(x, sched.config().exec)
                    .unwrap()
            })
            .collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = inputs
                .iter()
                .map(|x| {
                    let entry = Arc::clone(&entry);
                    let sched = Arc::clone(&sched);
                    s.spawn(move || {
                        sched
                            .submit(entry, x.clone())
                            .unwrap()
                            .recv()
                            .unwrap()
                            .unwrap()
                    })
                })
                .collect();
            for (h, want) in handles.into_iter().zip(&wants) {
                assert_eq!(h.join().unwrap().data(), want.data());
            }
        });
        assert_eq!(
            entry
                .stats
                .batches
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        assert_eq!(
            entry
                .stats
                .requests
                .load(std::sync::atomic::Ordering::Relaxed),
            4
        );
        assert_eq!(
            entry
                .stats
                .samples
                .load(std::sync::atomic::Ordering::Relaxed),
            4
        );
    }

    #[test]
    fn deadline_flushes_a_partial_batch() {
        let reg = Registry::new();
        let entry = loaded_lenet(&reg);
        let sched = Scheduler::start(test_cfg(64, Duration::from_millis(5))).unwrap();
        let x = Tensor::zeros(&[1, 1, 12, 12]);
        let rx = sched.submit(entry, x).unwrap();
        // well under max_batch: only the deadline can flush this
        let got = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(got.is_ok());
    }

    #[test]
    fn stop_drains_queued_work() {
        let reg = Registry::new();
        let entry = loaded_lenet(&reg);
        let sched = Scheduler::start(test_cfg(64, Duration::from_secs(5))).unwrap();
        let rx = sched.submit(entry, Tensor::zeros(&[1, 1, 12, 12])).unwrap();
        sched.stop();
        assert!(rx.recv().unwrap().is_ok(), "queued job must be answered");
        // post-stop submissions fail cleanly
        let reg2 = Registry::new();
        let entry2 = loaded_lenet(&reg2);
        let err = sched
            .submit(entry2, Tensor::zeros(&[1, 1, 12, 12]))
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Internal);
    }
}
