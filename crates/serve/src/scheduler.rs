//! The batching scheduler: coalesce concurrent `infer` requests into
//! `[N, C, H, W]` batches and drive them through the [`BatchExecutor`].
//!
//! Connection threads [`submit`](Scheduler::submit) jobs (one tensor +
//! one reply channel each) and block on their reply. A single scheduler
//! thread accumulates jobs per model and flushes a model's queue when
//! either
//!
//! * the accumulated sample count reaches
//!   [`SchedulerConfig::max_batch`], or
//! * the oldest queued job has waited [`SchedulerConfig::max_delay`]
//!   (the batching deadline).
//!
//! A flush concatenates the queued inputs along dimension 0 in arrival
//! order and hands the batch to a *flusher thread*, which runs one
//! [`BatchExecutor`] pass, slices the output back into per-request
//! pieces, and answers every reply channel — so a slow model's
//! inference never stalls batch formation (or another model's flush):
//! different models' batches execute concurrently while the scheduler
//! thread keeps accumulating. Deadlines are swept on *every* wake-up of
//! the scheduler loop, so a partial batch flushes on time even while
//! other models keep the job channel busy. Because the executor's
//! output is bit-identical for any batch partition (see
//! `wa_nn::executor`), a request's logits do not depend on which other
//! requests happened to share its batch — batching is invisible to
//! clients except as throughput.
//!
//! Shape safety: jobs are validated against the model's expected
//! per-sample shape *before* they are queued (see
//! [`Scheduler::submit`]), so one malformed request cannot poison a
//! whole batch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wa_nn::{BatchExecutor, ExecutorConfig, WaError};
use wa_obs::TraceId;
use wa_tensor::Tensor;

use crate::protocol::{ErrorBody, ErrorKind};
use crate::registry::ServedModel;

/// Cached handles into the global metrics registry. The per-model
/// counters live on each entry's `ModelStats`; these are the
/// process-wide scheduler aggregates `/v1/metrics` exposes directly.
struct SchedMetrics {
    /// Samples submitted but not yet answered, across all models.
    queue_depth: Arc<wa_obs::Gauge>,
    /// Submit → flush-assembly wait per answered job.
    queue_wait: Arc<wa_obs::Histogram>,
    /// Samples per flushed batch.
    batch_size: Arc<wa_obs::Histogram>,
    /// Executor wall time per flushed batch.
    batch_duration: Arc<wa_obs::Histogram>,
    batches: Arc<wa_obs::Counter>,
    jobs: Arc<wa_obs::Counter>,
    deadline_expired: Arc<wa_obs::Counter>,
    busy_refusals: Arc<wa_obs::Counter>,
}

fn sched_metrics() -> &'static SchedMetrics {
    static M: OnceLock<SchedMetrics> = OnceLock::new();
    M.get_or_init(|| SchedMetrics {
        queue_depth: wa_obs::gauge(
            "wa_scheduler_queue_depth_samples",
            "Samples submitted to the scheduler but not yet answered (all models).",
        ),
        queue_wait: wa_obs::histogram(
            "wa_scheduler_queue_wait_microseconds",
            "Time a job waited between submit and flush assembly.",
        ),
        batch_size: wa_obs::histogram(
            "wa_scheduler_batch_size_samples",
            "Samples per flushed batch.",
        ),
        batch_duration: wa_obs::histogram(
            "wa_scheduler_batch_duration_microseconds",
            "Executor wall time per flushed batch.",
        ),
        batches: wa_obs::counter("wa_scheduler_batches_total", "Batches flushed."),
        jobs: wa_obs::counter("wa_scheduler_jobs_total", "Jobs accepted into the queue."),
        deadline_expired: wa_obs::counter(
            "wa_scheduler_deadline_expired_total",
            "Jobs answered deadline_exceeded instead of running (drop-on-expiry).",
        ),
        busy_refusals: wa_obs::counter(
            "wa_scheduler_busy_refusals_total",
            "Submissions refused with busy by the per-model admission cap.",
        ),
    })
}

/// Hard cap on `max_inflight_flushes` (beyond this a config is a typo,
/// not a deployment).
const MAX_INFLIGHT_FLUSHES: usize = 1024;

/// Hard cap on `max_queue` (samples per model awaiting an answer).
const MAX_QUEUE: usize = 1 << 20;

/// Batching policy.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Flush a model's queue once this many samples are waiting.
    pub max_batch: usize,
    /// Flush whatever is waiting once the oldest job is this old.
    pub max_delay: Duration,
    /// Executor sharding for each flushed batch.
    pub exec: ExecutorConfig,
    /// Maximum number of flusher threads running at once. Each flush
    /// gets its own thread (so different models' batches execute
    /// concurrently), but without a cap a burst of batches could spawn
    /// unboundedly many; at the cap the scheduler thread blocks until
    /// *any* in-flight flush finishes before spawning the next —
    /// backpressure instead of thread exhaustion.
    pub max_inflight_flushes: usize,
    /// Admission control: the most samples one model may have submitted
    /// but not yet answered (queued or mid-flush). A submit that would
    /// exceed the cap is refused with a structured `busy` error *before*
    /// batching, so an overloaded model degrades into prompt refusals
    /// instead of an unbounded queue whose tail latency grows forever.
    pub max_queue: usize,
}

impl Default for SchedulerConfig {
    /// 32-sample batches, a 2 ms batching window, default executor, at
    /// most one in-flight flush per available core, and a 1024-sample
    /// per-model admission cap.
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            exec: ExecutorConfig::default(),
            max_inflight_flushes: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            max_queue: 1024,
        }
    }
}

impl SchedulerConfig {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] for a zero `max_batch`, a zero or absurd
    /// `max_inflight_flushes`, or an invalid executor config.
    pub fn validate(&self) -> Result<(), WaError> {
        if self.max_batch == 0 {
            return Err(WaError::invalid(
                "SchedulerConfig",
                "max_batch",
                "must be nonzero",
            ));
        }
        if self.max_inflight_flushes == 0 || self.max_inflight_flushes > MAX_INFLIGHT_FLUSHES {
            return Err(WaError::invalid(
                "SchedulerConfig",
                "max_inflight_flushes",
                format!(
                    "max_inflight_flushes must be in 1..={MAX_INFLIGHT_FLUSHES}, got {}",
                    self.max_inflight_flushes
                ),
            ));
        }
        if self.max_queue == 0 || self.max_queue > MAX_QUEUE {
            return Err(WaError::invalid(
                "SchedulerConfig",
                "max_queue",
                format!(
                    "max_queue must be in 1..={MAX_QUEUE}, got {}",
                    self.max_queue
                ),
            ));
        }
        self.exec.validate()
    }
}

/// One queued inference request.
struct Job {
    entry: Arc<ServedModel>,
    input: Tensor,
    reply: Sender<Result<Tensor, ErrorBody>>,
    /// Absolute expiry instant (from the request's `deadline_ms`); a job
    /// past it is answered with `deadline_exceeded` instead of running.
    deadline: Option<Instant>,
    /// The request's trace ID, minted at the serving edge (or by
    /// `submit_with_deadline` for direct callers) — carried through the
    /// flush log so one request's life is reconstructable.
    trace: String,
    /// When the job entered the queue (for the queue-wait histogram).
    submitted: Instant,
}

impl Job {
    /// Whether the job's deadline has passed at `now`.
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

/// Answers a job and releases its admission-control samples. Every job
/// is answered through here exactly once, so the `queued_samples` gauge
/// can never leak. A dropped receiver just means the client went away.
fn answer(job: Job, result: Result<Tensor, ErrorBody>) {
    let samples = job.input.dim(0) as u64;
    job.entry
        .stats
        .queued_samples
        .fetch_sub(samples, Ordering::Relaxed);
    sched_metrics().queue_depth.add(-(samples as i64));
    let _ = job.reply.send(result);
}

/// Releases a job's admission-control reservation without answering it
/// (the caller reports the failure through its own return value).
fn answer_unsent(job: Job) {
    let samples = job.input.dim(0) as u64;
    job.entry
        .stats
        .queued_samples
        .fetch_sub(samples, Ordering::Relaxed);
    sched_metrics().queue_depth.add(-(samples as i64));
}

/// The structured refusal for submissions racing a shutdown.
fn shutting_down_error() -> ErrorBody {
    ErrorBody::new(
        ErrorKind::ShuttingDown,
        "the scheduler is draining for shutdown and no longer accepts work",
    )
}

/// Answers an expired job with `deadline_exceeded` (drop-on-expiry: the
/// input is never executed).
fn expire(job: Job) {
    job.entry
        .stats
        .deadline_expired
        .fetch_add(1, Ordering::Relaxed);
    sched_metrics().deadline_expired.inc();
    wa_obs::warn(
        "wa_serve::scheduler",
        "deadline expired, job dropped unexecuted",
        &[
            ("trace_id", job.trace.as_str().into()),
            ("model", job.entry.name.as_str().into()),
            ("samples", job.input.dim(0).into()),
        ],
    );
    let body = ErrorBody::new(
        ErrorKind::DeadlineExceeded,
        "the request's deadline_ms expired before inference ran; it was dropped unexecuted",
    );
    answer(job, Err(body));
}

/// A model's accumulating batch.
struct Pending {
    jobs: Vec<Job>,
    samples: usize,
    oldest: Instant,
}

/// Handle to the scheduler thread. Dropping it flushes the queue and
/// joins the thread.
pub struct Scheduler {
    tx: Mutex<Option<Sender<Job>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    cfg: SchedulerConfig,
    /// Set by [`Scheduler::stop`] *before* the queue is closed, so
    /// submissions racing a shutdown get a structured `shutting_down`
    /// refusal instead of an opaque internal error.
    shutting: AtomicBool,
    /// Flusher threads currently executing a batch (shared with the
    /// scheduler thread; exposed through [`Scheduler::inflight_flushes`]
    /// and the server's `stats` op).
    inflight: Arc<FlushGauge>,
}

/// The in-flight flush gauge: a counter whose decrement wakes the
/// scheduler thread when it is waiting for a free flusher slot. A
/// condvar (not an atomic) so the wait releases as soon as *any* flush
/// finishes, rather than blocking on one specific thread.
#[derive(Debug, Default)]
struct FlushGauge {
    count: Mutex<usize>,
    freed: Condvar,
}

impl FlushGauge {
    fn lock(&self) -> std::sync::MutexGuard<'_, usize> {
        self.count.lock().expect("flush gauge poisoned")
    }

    fn inc(&self) {
        *self.lock() += 1;
    }

    fn dec(&self) {
        *self.lock() -= 1;
        self.freed.notify_all();
    }

    fn get(&self) -> usize {
        *self.lock()
    }

    /// Blocks until fewer than `cap` flushes are executing. No missed
    /// wake-ups: the predicate is re-checked under the same lock
    /// [`FlushGauge::dec`] notifies under.
    fn wait_below(&self, cap: usize) {
        let mut count = self.lock();
        while *count >= cap {
            count = self.freed.wait(count).expect("flush gauge poisoned");
        }
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler").field("cfg", &self.cfg).finish()
    }
}

impl Scheduler {
    /// Starts the scheduler thread.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] for an invalid config.
    pub fn start(cfg: SchedulerConfig) -> Result<Scheduler, WaError> {
        cfg.validate()?;
        let exec = BatchExecutor::new(cfg.exec)?;
        let (tx, rx) = channel::<Job>();
        let inflight = Arc::new(FlushGauge::default());
        let loop_inflight = Arc::clone(&inflight);
        let worker = std::thread::Builder::new()
            .name("wa-serve-scheduler".to_string())
            .spawn(move || scheduler_loop(rx, cfg, exec, loop_inflight))
            .expect("spawning the scheduler thread failed");
        Ok(Scheduler {
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
            cfg,
            shutting: AtomicBool::new(false),
            inflight,
        })
    }

    /// The active policy.
    pub fn config(&self) -> SchedulerConfig {
        self.cfg
    }

    /// Flusher threads currently executing a batch — always `<=`
    /// [`SchedulerConfig::max_inflight_flushes`].
    pub fn inflight_flushes(&self) -> usize {
        self.inflight.get()
    }

    /// Validates `input` against `entry`'s expected per-sample shape and
    /// queues it, returning the channel the result will arrive on.
    /// Equivalent to [`Scheduler::submit_with_deadline`] with no
    /// deadline.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::submit_with_deadline`].
    pub fn submit(
        &self,
        entry: Arc<ServedModel>,
        input: Tensor,
    ) -> Result<Receiver<Result<Tensor, ErrorBody>>, ErrorBody> {
        self.submit_with_deadline(entry, input, None)
    }

    /// Validates `input` against `entry`'s expected per-sample shape,
    /// applies admission control, and queues it, returning the channel
    /// the result will arrive on. A job whose `deadline` passes before
    /// its batch runs is answered with a `deadline_exceeded` error
    /// instead of riding a late flush.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::ShapeMismatch`] for an input the model could not
    /// consume (rejected *before* batching, so other requests are
    /// unaffected); [`ErrorKind::Busy`] when the model already has
    /// [`SchedulerConfig::max_queue`] unanswered samples;
    /// [`ErrorKind::ShuttingDown`] once [`Scheduler::stop`] has begun.
    pub fn submit_with_deadline(
        &self,
        entry: Arc<ServedModel>,
        input: Tensor,
        deadline: Option<Instant>,
    ) -> Result<Receiver<Result<Tensor, ErrorBody>>, ErrorBody> {
        self.submit_traced(entry, input, deadline, &TraceId::mint().to_string())
    }

    /// [`Scheduler::submit_with_deadline`] with an explicit trace ID
    /// (the serving edge mints or echoes one per request); the ID rides
    /// the job into the batch-flush log.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::submit_with_deadline`].
    pub fn submit_traced(
        &self,
        entry: Arc<ServedModel>,
        input: Tensor,
        deadline: Option<Instant>,
        trace: &str,
    ) -> Result<Receiver<Result<Tensor, ErrorBody>>, ErrorBody> {
        let want = entry.model.sample_shape();
        let shape = input.shape();
        if shape.len() != 4 || shape[0] == 0 || shape[1..] != want {
            return Err(ErrorBody::new(
                ErrorKind::ShapeMismatch,
                format!(
                    "model `{}` expects [N, {}, {}, {}] input with N >= 1, got {:?}",
                    entry.name, want[0], want[1], want[2], shape
                ),
            ));
        }
        if self.shutting.load(Ordering::SeqCst) {
            return Err(shutting_down_error());
        }
        // admission control: reserve the samples, then undo the
        // reservation if it overshot the cap (the transient overshoot is
        // only ever visible to other submitters as an early refusal)
        let samples = input.dim(0) as u64;
        let cap = self.cfg.max_queue as u64;
        let queued = &entry.stats.queued_samples;
        if queued.fetch_add(samples, Ordering::Relaxed) + samples > cap {
            queued.fetch_sub(samples, Ordering::Relaxed);
            entry.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
            sched_metrics().busy_refusals.inc();
            wa_obs::warn(
                "wa_serve::scheduler",
                "admission cap hit, refusing with busy",
                &[
                    ("trace_id", trace.into()),
                    ("model", entry.name.as_str().into()),
                    ("samples", samples.into()),
                    ("max_queue", cap.into()),
                ],
            );
            return Err(ErrorBody::new(
                ErrorKind::Busy,
                format!(
                    "model `{}` has {cap} samples awaiting inference (max_queue); retry later",
                    entry.name
                ),
            ));
        }
        sched_metrics().queue_depth.add(samples as i64);
        // admitted: stamp recency so the memory budget's LRU eviction
        // never picks a model that is actively serving traffic
        entry.stats.touch();
        let (reply, result) = channel();
        let job = Job {
            entry,
            input,
            reply,
            deadline,
            trace: trace.to_string(),
            submitted: Instant::now(),
        };
        sched_metrics().jobs.inc();
        let guard = self.tx.lock().expect("scheduler sender lock poisoned");
        let tx = match guard.as_ref() {
            Some(tx) => tx,
            None => {
                answer_unsent(job);
                return Err(shutting_down_error());
            }
        };
        if let Err(send) = tx.send(job) {
            // the scheduler thread is gone: nothing will ever drain the
            // reservation, so release it here (answer_unsent returns the
            // gauge without replying — the error below is the reply)
            answer_unsent(send.0);
            return Err(ErrorBody::new(
                ErrorKind::Internal,
                "the scheduler thread exited",
            ));
        }
        drop(guard);
        Ok(result)
    }

    /// Stops the scheduler deterministically: new submissions are
    /// refused with `shutting_down`, everything already queued is
    /// flushed and answered, and every flusher thread is joined before
    /// this returns. Idempotent.
    pub fn stop(&self) {
        self.shutting.store(true, Ordering::SeqCst);
        self.tx
            .lock()
            .expect("scheduler sender lock poisoned")
            .take();
        if let Some(worker) = self
            .worker
            .lock()
            .expect("scheduler worker lock poisoned")
            .take()
        {
            let _ = worker.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The scheduler thread: accumulate → flush on size or deadline, with
/// the actual inference handed to flusher threads (at most
/// `cfg.max_inflight_flushes` at once).
fn scheduler_loop(
    rx: Receiver<Job>,
    cfg: SchedulerConfig,
    exec: BatchExecutor,
    inflight: Arc<FlushGauge>,
) {
    let mut pending: BTreeMap<String, Pending> = BTreeMap::new();
    let mut flushers = Flushers {
        handles: Vec::new(),
        gauge: inflight,
        cap: cfg.max_inflight_flushes,
    };
    loop {
        // sleep until the nearest batching deadline or per-request
        // expiry (or indefinitely when idle)
        let now = Instant::now();
        let batch_due = pending
            .values()
            .map(|p| cfg.max_delay.saturating_sub(p.oldest.elapsed()))
            .min();
        let job_due = pending
            .values()
            .flat_map(|p| p.jobs.iter().filter_map(|j| j.deadline))
            .map(|d| d.saturating_duration_since(now))
            .min();
        let timeout = match (batch_due, job_due) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let msg = match timeout {
            None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
            Some(t) => rx.recv_timeout(t),
        };
        match msg {
            Ok(job) => {
                let samples = job.input.dim(0);
                // a hot reload can swap the model behind a name while
                // jobs for the old instance are queued: flush those
                // rather than run them on a model they weren't meant for
                if let Some(p) = pending.get(&job.entry.name) {
                    if !Arc::ptr_eq(&p.jobs[0].entry, &job.entry) {
                        let p = pending.remove(&job.entry.name).expect("key exists");
                        flushers.spawn(p, &exec);
                    }
                }
                let p = pending
                    .entry(job.entry.name.clone())
                    .or_insert_with(|| Pending {
                        jobs: Vec::new(),
                        samples: 0,
                        oldest: Instant::now(),
                    });
                p.jobs.push(job);
                p.samples += samples;
                if p.samples >= cfg.max_batch {
                    let key = pending
                        .iter()
                        .find(|(_, p)| p.samples >= cfg.max_batch)
                        .map(|(k, _)| k.clone())
                        .expect("the batch just filled");
                    let p = pending.remove(&key).expect("key exists");
                    flushers.spawn(p, &exec);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // final drain: answer everything still queued, then wait
                // for every in-flight flush before exiting (stop() joins
                // this thread, so joining here makes stop() synchronous)
                for (_, p) in std::mem::take(&mut pending) {
                    flushers.spawn(p, &exec);
                }
                for h in flushers.handles {
                    let _ = h.join();
                }
                return;
            }
        }
        // sweep expired requests on *every* wake-up (the wake timer
        // includes the earliest job deadline, so expiry is answered
        // promptly even while the queue idles): drop-on-expiry means an
        // expired request is answered now, never executed late
        let now = Instant::now();
        pending.retain(|_, p| {
            if p.jobs.iter().any(|j| j.expired(now)) {
                let jobs = std::mem::take(&mut p.jobs);
                let (expired, live): (Vec<Job>, Vec<Job>) =
                    jobs.into_iter().partition(|j| j.expired(now));
                for job in expired {
                    p.samples -= job.input.dim(0);
                    expire(job);
                }
                p.jobs = live;
            }
            !p.jobs.is_empty()
        });
        // sweep due batching deadlines on *every* wake-up — under
        // sustained traffic the channel never empties, so a Timeout-only
        // sweep would starve partial batches far past max_delay
        let due: Vec<String> = pending
            .iter()
            .filter(|(_, p)| p.oldest.elapsed() >= cfg.max_delay)
            .map(|(k, _)| k.clone())
            .collect();
        for key in due {
            let p = pending.remove(&key).expect("key exists");
            flushers.spawn(p, &exec);
        }
        flushers.reap();
    }
}

/// The scheduler thread's bounded pool of flusher threads.
struct Flushers {
    handles: Vec<JoinHandle<()>>,
    gauge: Arc<FlushGauge>,
    cap: usize,
}

impl Flushers {
    /// Drops handles whose threads have finished.
    fn reap(&mut self) {
        self.handles.retain(|h| !h.is_finished());
    }

    /// Hands an accumulated batch to its own flusher thread so the
    /// scheduler loop can keep accumulating (and other models' batches
    /// can execute concurrently). Fan-out stays bounded twice over: each
    /// flush's executor is capped at `cfg.exec.threads`, and at most
    /// `cap` flusher threads run at once — at the cap this blocks until
    /// *any* in-flight flush finishes (backpressure), so a burst of
    /// batches can no longer spawn unbounded threads and one slow model
    /// cannot stall the scheduler once another slot frees.
    fn spawn(&mut self, p: Pending, exec: &BatchExecutor) {
        self.gauge.wait_below(self.cap);
        self.reap();
        let exec = exec.clone();
        let gauge = Arc::clone(&self.gauge);
        // count the flush before its thread exists so the gauge can
        // never exceed `cap` (only this thread spawns flushes)
        gauge.inc();
        let handle = std::thread::Builder::new()
            .name("wa-serve-flush".to_string())
            .spawn(move || {
                // decrement (and wake the scheduler) even if the flush
                // panics, so the gauge can never get stuck above the
                // true in-flight count
                struct Dec(Arc<FlushGauge>);
                impl Drop for Dec {
                    fn drop(&mut self) {
                        self.0.dec();
                    }
                }
                let _dec = Dec(gauge);
                flush(p, &exec);
            })
            .expect("spawning a flusher thread failed");
        self.handles.push(handle);
    }
}

/// Runs one accumulated batch and routes the per-request outputs back.
///
/// Jobs whose deadline passed between the last sweep and this flush are
/// filtered out *here* — answered `deadline_exceeded` — and the batch
/// runs with the survivors only, so one expired request never delays or
/// perturbs its batch-mates (executor output is partition-invariant).
fn flush(p: Pending, exec: &BatchExecutor) {
    let now = Instant::now();
    let (expired, live): (Vec<Job>, Vec<Job>) = p.jobs.into_iter().partition(|j| j.expired(now));
    for job in expired {
        expire(job);
    }
    if live.is_empty() {
        return;
    }
    let entry = Arc::clone(&live[0].entry);
    let metrics = sched_metrics();
    for job in &live {
        metrics
            .queue_wait
            .record(job.submitted.elapsed().as_micros() as u64);
    }
    let inputs: Vec<&Tensor> = live.iter().map(|j| &j.input).collect();
    let batch = Tensor::concat_dim0(&inputs);
    let samples = batch.dim(0);
    let t0 = Instant::now();
    let result = exec.run(&entry.model, &batch);
    let micros = t0.elapsed().as_micros() as u64;
    entry
        .stats
        .record_batch(live.len() as u64, samples as u64, micros);
    metrics.batches.inc();
    metrics.batch_size.record(samples as u64);
    metrics.batch_duration.record(micros);
    if wa_obs::log_enabled(wa_obs::Level::Info) {
        let trace_ids = live
            .iter()
            .map(|j| j.trace.as_str())
            .collect::<Vec<_>>()
            .join(",");
        wa_obs::info(
            "wa_serve::scheduler",
            "batch flushed",
            &[
                ("model", entry.name.as_str().into()),
                ("requests", live.len().into()),
                ("samples", samples.into()),
                ("micros", micros.into()),
                ("ok", result.is_ok().into()),
                ("trace_ids", trace_ids.into()),
            ],
        );
    }
    match result {
        Ok(output) => {
            // slice the stitched output back into per-request pieces, in
            // the arrival order the batch was assembled in
            let mut row = 0;
            for job in live {
                let n = job.input.dim(0);
                let piece = output.slice_dim0(row, row + n);
                row += n;
                answer(job, Ok(piece));
            }
        }
        Err(e) => {
            // per-job shape validation happened at submit, so a batch
            // failure is a genuine server-side problem; every waiting
            // request learns about it
            let body = ErrorBody::new(
                ErrorKind::Internal,
                format!("batched inference failed: {e}"),
            );
            for job in live {
                answer(job, Err(body.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use wa_models::{ModelKind, ModelSpec, ZooModel};
    use wa_nn::Infer;
    use wa_tensor::SeededRng;

    fn loaded_lenet(reg: &Registry) -> Arc<ServedModel> {
        let spec = ModelSpec::builder()
            .classes(10)
            .input_size(12)
            .build()
            .unwrap();
        let mut model =
            ZooModel::from_spec(ModelKind::LeNet, &spec, &mut SeededRng::new(3)).unwrap();
        let doc = model.to_full_checkpoint().unwrap();
        reg.load("mnist", &doc).unwrap()
    }

    fn test_cfg(max_batch: usize, max_delay: Duration) -> SchedulerConfig {
        SchedulerConfig {
            max_batch,
            max_delay,
            exec: ExecutorConfig {
                threads: 2,
                chunk: 2,
            },
            ..SchedulerConfig::default()
        }
    }

    #[test]
    fn config_rejects_zero_batch() {
        let cfg = SchedulerConfig {
            max_batch: 0,
            ..SchedulerConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn config_rejects_zero_or_absurd_inflight_cap() {
        for bad in [0usize, MAX_INFLIGHT_FLUSHES + 1] {
            let cfg = SchedulerConfig {
                max_inflight_flushes: bad,
                ..SchedulerConfig::default()
            };
            assert!(cfg.validate().is_err(), "cap {bad} must be rejected");
        }
        assert!(SchedulerConfig::default().validate().is_ok());
        assert!(SchedulerConfig::default().max_inflight_flushes >= 1);
    }

    #[test]
    fn inflight_cap_one_still_answers_bursts_of_batches() {
        // with the cap at 1, a burst of deadline-flushed batches is
        // serialized through one flusher at a time (backpressure) —
        // every request must still be answered, and the gauge may never
        // exceed the cap
        let reg = Registry::new();
        let entry = loaded_lenet(&reg);
        let cfg = SchedulerConfig {
            max_inflight_flushes: 1,
            ..test_cfg(2, Duration::from_millis(1))
        };
        let sched = Scheduler::start(cfg).unwrap();
        let mut rng = SeededRng::new(9);
        let rxs: Vec<_> = (0..6)
            .map(|_| {
                let x = rng.uniform_tensor(&[2, 1, 12, 12], -1.0, 1.0);
                sched.submit(Arc::clone(&entry), x).unwrap()
            })
            .collect();
        for rx in rxs {
            assert!(sched.inflight_flushes() <= 1, "cap exceeded");
            assert!(rx.recv_timeout(Duration::from_secs(30)).unwrap().is_ok());
        }
        assert_eq!(
            entry
                .stats
                .requests
                .load(std::sync::atomic::Ordering::Relaxed),
            6
        );
    }

    #[test]
    fn single_request_is_answered_and_matches_in_process_inference() {
        let reg = Registry::new();
        let entry = loaded_lenet(&reg);
        let sched = Scheduler::start(test_cfg(8, Duration::from_millis(1))).unwrap();
        let mut rng = SeededRng::new(4);
        let x = rng.uniform_tensor(&[2, 1, 12, 12], -1.0, 1.0);
        let want = entry
            .model
            .try_forward_batch(&x, sched.config().exec)
            .unwrap();
        let rx = sched.submit(Arc::clone(&entry), x).unwrap();
        let got = rx.recv().unwrap().unwrap();
        assert_eq!(got.data(), want.data());
        assert_eq!(
            entry
                .stats
                .requests
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn bad_shape_is_rejected_before_batching() {
        let reg = Registry::new();
        let entry = loaded_lenet(&reg);
        let sched = Scheduler::start(test_cfg(8, Duration::from_millis(1))).unwrap();
        let bad = Tensor::zeros(&[1, 3, 12, 12]);
        let err = sched.submit(entry, bad).unwrap_err();
        assert_eq!(err.kind, ErrorKind::ShapeMismatch);
        assert!(err.message.contains("mnist"));
    }

    #[test]
    fn concurrent_requests_coalesce_into_one_batch() {
        let reg = Registry::new();
        let entry = loaded_lenet(&reg);
        // max_batch 4 = the total sample count, generous deadline: the
        // flush must be triggered by the size threshold, as one batch
        let sched = Arc::new(Scheduler::start(test_cfg(4, Duration::from_secs(5))).unwrap());
        let mut rng = SeededRng::new(5);
        let inputs: Vec<Tensor> = (0..4)
            .map(|_| rng.uniform_tensor(&[1, 1, 12, 12], -1.0, 1.0))
            .collect();
        let wants: Vec<Tensor> = inputs
            .iter()
            .map(|x| {
                entry
                    .model
                    .try_forward_batch(x, sched.config().exec)
                    .unwrap()
            })
            .collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = inputs
                .iter()
                .map(|x| {
                    let entry = Arc::clone(&entry);
                    let sched = Arc::clone(&sched);
                    s.spawn(move || {
                        sched
                            .submit(entry, x.clone())
                            .unwrap()
                            .recv()
                            .unwrap()
                            .unwrap()
                    })
                })
                .collect();
            for (h, want) in handles.into_iter().zip(&wants) {
                assert_eq!(h.join().unwrap().data(), want.data());
            }
        });
        assert_eq!(
            entry
                .stats
                .batches
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        assert_eq!(
            entry
                .stats
                .requests
                .load(std::sync::atomic::Ordering::Relaxed),
            4
        );
        assert_eq!(
            entry
                .stats
                .samples
                .load(std::sync::atomic::Ordering::Relaxed),
            4
        );
    }

    #[test]
    fn deadline_flushes_a_partial_batch() {
        let reg = Registry::new();
        let entry = loaded_lenet(&reg);
        let sched = Scheduler::start(test_cfg(64, Duration::from_millis(5))).unwrap();
        let x = Tensor::zeros(&[1, 1, 12, 12]);
        let rx = sched.submit(entry, x).unwrap();
        // well under max_batch: only the deadline can flush this
        let got = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(got.is_ok());
    }

    #[test]
    fn stop_drains_queued_work_and_rejects_stragglers_with_shutting_down() {
        let reg = Registry::new();
        let entry = loaded_lenet(&reg);
        let sched = Scheduler::start(test_cfg(64, Duration::from_secs(5))).unwrap();
        let rx = sched
            .submit(Arc::clone(&entry), Tensor::zeros(&[1, 1, 12, 12]))
            .unwrap();
        sched.stop();
        // stop() is deterministic: by the time it returns every queued
        // job has been flushed and answered and every flusher joined
        assert!(
            rx.try_recv().expect("already answered").is_ok(),
            "queued job must be answered before stop() returns"
        );
        assert_eq!(sched.inflight_flushes(), 0, "all flushers joined");
        assert_eq!(
            entry.stats.queued_samples.load(Ordering::Relaxed),
            0,
            "admission gauge drained"
        );
        // post-stop submissions are structured shutting_down refusals
        let err = sched
            .submit(entry, Tensor::zeros(&[1, 1, 12, 12]))
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::ShuttingDown);
    }

    #[test]
    fn deadline_zero_is_dropped_unexecuted() {
        // a 0 ms budget can never be met: the request must come back as
        // deadline_exceeded without the model ever running
        let reg = Registry::new();
        let entry = loaded_lenet(&reg);
        // huge max_batch + long max_delay: only expiry can answer this
        let sched = Scheduler::start(test_cfg(64, Duration::from_secs(30))).unwrap();
        let rx = sched
            .submit_with_deadline(
                Arc::clone(&entry),
                Tensor::zeros(&[2, 1, 12, 12]),
                Some(Instant::now()),
            )
            .unwrap();
        let got = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(got.unwrap_err().kind, ErrorKind::DeadlineExceeded);
        assert_eq!(entry.stats.batches.load(Ordering::Relaxed), 0);
        assert_eq!(entry.stats.deadline_expired.load(Ordering::Relaxed), 1);
        assert_eq!(entry.stats.queued_samples.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn expiry_while_queued_is_answered_promptly_not_at_the_batch_deadline() {
        // the batching window is far away (30 s); the request deadline
        // (20 ms) must wake the scheduler and answer long before it
        let reg = Registry::new();
        let entry = loaded_lenet(&reg);
        let sched = Scheduler::start(test_cfg(64, Duration::from_secs(30))).unwrap();
        let t0 = Instant::now();
        let rx = sched
            .submit_with_deadline(
                Arc::clone(&entry),
                Tensor::zeros(&[1, 1, 12, 12]),
                Some(Instant::now() + Duration::from_millis(20)),
            )
            .unwrap();
        let got = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(got.unwrap_err().kind, ErrorKind::DeadlineExceeded);
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "expiry must not wait for the batch deadline"
        );
        assert_eq!(entry.stats.deadline_expired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn expiry_at_flush_time_leaves_batch_mates_unaffected() {
        // Drive `flush` directly with a batch holding one already-expired
        // job between two live ones — the narrow race the flush-time
        // filter exists for (a deadline passing between the last sweep
        // and batch assembly). The expired job must get
        // deadline_exceeded; the live jobs' logits must be bit-identical
        // to a batch that never contained the expired input.
        let reg = Registry::new();
        let entry = loaded_lenet(&reg);
        let cfg = test_cfg(8, Duration::from_millis(1));
        let exec = BatchExecutor::new(cfg.exec).unwrap();
        let mut rng = SeededRng::new(11);
        let a = rng.uniform_tensor(&[2, 1, 12, 12], -1.0, 1.0);
        let doomed = rng.uniform_tensor(&[1, 1, 12, 12], -1.0, 1.0);
        let b = rng.uniform_tensor(&[1, 1, 12, 12], -1.0, 1.0);
        let want_a = entry.model.try_forward_batch(&a, cfg.exec).unwrap();
        let want_b = entry.model.try_forward_batch(&b, cfg.exec).unwrap();

        let mut jobs = Vec::new();
        let mut rxs = Vec::new();
        for (input, deadline) in [
            (a, None),
            (doomed, Some(Instant::now() - Duration::from_millis(1))),
            (b, None),
        ] {
            // mirror submit's bookkeeping so answer()'s decrement balances
            entry
                .stats
                .queued_samples
                .fetch_add(input.dim(0) as u64, Ordering::Relaxed);
            let (reply, rx) = std::sync::mpsc::channel();
            jobs.push(Job {
                entry: Arc::clone(&entry),
                input,
                reply,
                deadline,
                trace: TraceId::mint().to_string(),
                submitted: Instant::now(),
            });
            rxs.push(rx);
        }
        let samples = jobs.iter().map(|j| j.input.dim(0)).sum();
        flush(
            Pending {
                jobs,
                samples,
                oldest: Instant::now(),
            },
            &exec,
        );

        let got_a = rxs[0].recv().unwrap().unwrap();
        assert_eq!(got_a.data(), want_a.data(), "batch-mate before perturbed");
        let err = rxs[1].recv().unwrap().unwrap_err();
        assert_eq!(err.kind, ErrorKind::DeadlineExceeded);
        let got_b = rxs[2].recv().unwrap().unwrap();
        assert_eq!(got_b.data(), want_b.data(), "batch-mate after perturbed");
        // the executor saw one 3-sample batch (2 + 1 live samples)
        assert_eq!(entry.stats.batches.load(Ordering::Relaxed), 1);
        assert_eq!(entry.stats.samples.load(Ordering::Relaxed), 3);
        assert_eq!(entry.stats.queued_samples.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn admission_cap_refuses_with_busy_before_batching() {
        let reg = Registry::new();
        let entry = loaded_lenet(&reg);
        let cfg = SchedulerConfig {
            max_queue: 4,
            ..test_cfg(64, Duration::from_secs(30))
        };
        let sched = Scheduler::start(cfg).unwrap();
        // 4 samples fill the cap exactly
        let rx1 = sched
            .submit(Arc::clone(&entry), Tensor::zeros(&[2, 1, 12, 12]))
            .unwrap();
        let rx2 = sched
            .submit(Arc::clone(&entry), Tensor::zeros(&[2, 1, 12, 12]))
            .unwrap();
        // the 5th sample is refused before batching
        let err = sched
            .submit(Arc::clone(&entry), Tensor::zeros(&[1, 1, 12, 12]))
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Busy);
        assert!(err.message.contains("max_queue"), "{}", err.message);
        assert_eq!(entry.stats.rejected_busy.load(Ordering::Relaxed), 1);
        // draining the queue frees the budget again
        sched.stop();
        assert!(rx1.recv().unwrap().is_ok());
        assert!(rx2.recv().unwrap().is_ok());
        assert_eq!(entry.stats.queued_samples.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn config_rejects_zero_or_absurd_max_queue() {
        for bad in [0usize, MAX_QUEUE + 1] {
            let cfg = SchedulerConfig {
                max_queue: bad,
                ..SchedulerConfig::default()
            };
            assert!(cfg.validate().is_err(), "max_queue {bad} must be rejected");
        }
    }
}
