//! A blocking client for the wa-serve protocol — what the `wa-client`
//! binary and the end-to-end tests drive, and a reference for writing
//! clients in other languages (the protocol is just length-prefixed
//! JSON, see [`crate::protocol`]).

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use wa_nn::FullCheckpoint;
use wa_tensor::{Json, Tensor};

use crate::protocol::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, framing).
    Transport(FrameError),
    /// A configured client-side timeout (see [`Client::set_timeout`] or
    /// [`Client::connect_with_timeout`]) elapsed before the server
    /// answered. Distinct from [`ClientError::Transport`] so callers can
    /// retry timeouts without treating every I/O failure as retryable.
    Timeout {
        /// The configured limit that elapsed.
        limit: Duration,
    },
    /// The server answered with `ok: false`; `kind`/`message` are the
    /// structured error fields.
    Server {
        /// Machine-readable category (e.g. `"unknown_model"`).
        kind: String,
        /// Human-readable explanation.
        message: String,
    },
    /// The server answered with something that is not a valid response.
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport error: {e}"),
            ClientError::Timeout { limit } => {
                write!(
                    f,
                    "timed out after {}ms waiting on the server",
                    limit.as_millis()
                )
            }
            ClientError::Server { kind, message } => write!(f, "server error [{kind}]: {message}"),
            ClientError::BadResponse(m) => write!(f, "bad response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Transport(FrameError::Io(e))
    }
}

/// Whether an I/O error is how this platform reports an elapsed
/// socket read/write timeout.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// A blocking connection to a wa-serve server.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
    /// Per-operation read/write timeout, when one is set.
    timeout: Option<Duration>,
}

impl Client {
    /// Connects with the default frame cap.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
            max_frame: DEFAULT_MAX_FRAME,
            timeout: None,
        })
    }

    /// Connects with a limit on the connect itself *and* installs the
    /// same limit as the per-operation timeout (see
    /// [`Client::set_timeout`]).
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when the limit elapses first; connection
    /// failures otherwise.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        limit: Duration,
    ) -> Result<Client, ClientError> {
        let mut last: Option<io::Error> = None;
        for addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, limit) {
                Ok(stream) => {
                    let mut client = Client {
                        stream,
                        max_frame: DEFAULT_MAX_FRAME,
                        timeout: None,
                    };
                    client.set_timeout(Some(limit))?;
                    return Ok(client);
                }
                Err(e) => last = Some(e),
            }
        }
        match last {
            Some(e) if is_timeout(&e) => Err(ClientError::Timeout { limit }),
            Some(e) => Err(ClientError::from(e)),
            None => Err(ClientError::from(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ))),
        }
    }

    /// Sets (or clears, with `None`) the read/write timeout applied to
    /// every subsequent operation. An elapsed timeout surfaces as
    /// [`ClientError::Timeout`]; the connection should be considered
    /// out of sync afterwards (a late response may still arrive) and be
    /// dropped.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] from the socket options (a zero duration).
    pub fn set_timeout(&mut self, limit: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(limit)?;
        self.stream.set_write_timeout(limit)?;
        self.timeout = limit;
        Ok(())
    }

    /// Re-frames an elapsed-timeout transport error as
    /// [`ClientError::Timeout`] when a timeout is configured.
    fn transport(&self, e: FrameError) -> ClientError {
        match (&e, self.timeout) {
            (FrameError::Io(io), Some(limit)) if is_timeout(io) => ClientError::Timeout { limit },
            _ => ClientError::Transport(e),
        }
    }

    /// Sends one raw request document and returns the raw response
    /// document, whatever its `ok` value.
    ///
    /// # Errors
    ///
    /// Transport failures only ([`ClientError::Timeout`] when a
    /// configured timeout elapses first).
    pub fn request_raw(&mut self, doc: &Json) -> Result<Json, ClientError> {
        write_frame(&mut self.stream, doc).map_err(|e| self.transport(FrameError::Io(e)))?;
        read_frame(&mut self.stream, self.max_frame).map_err(|e| self.transport(e))
    }

    /// Sends a request and enforces `ok: true`, returning the response
    /// body.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for structured failures,
    /// [`ClientError::BadResponse`] for responses missing `ok`.
    pub fn request(&mut self, doc: &Json) -> Result<Json, ClientError> {
        let resp = self.request_raw(doc)?;
        match resp.get("ok") {
            Some(Json::Bool(true)) => Ok(resp),
            Some(Json::Bool(false)) => {
                let err = resp.get("error");
                let field = |k: &str| -> String {
                    err.and_then(|e| e.get(k))
                        .and_then(|v| v.as_str())
                        .unwrap_or("<missing>")
                        .to_string()
                };
                Err(ClientError::Server {
                    kind: field("kind"),
                    message: field("message"),
                })
            }
            _ => Err(ClientError::BadResponse(format!(
                "response lacks an `ok` bool: {resp}"
            ))),
        }
    }

    /// Installs a model from a one-document checkpoint.
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn load_model(&mut self, name: &str, ckpt: &FullCheckpoint) -> Result<Json, ClientError> {
        self.request(&Json::obj([
            ("op", Json::from("load_model")),
            ("name", Json::from(name)),
            ("checkpoint", ckpt.to_json()),
        ]))
    }

    /// Asks the server to load a checkpoint from a path on *its own*
    /// filesystem (JSON or binary container, sniffed by magic) — the
    /// fast path for binary containers, which never transit the wire.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn load_model_path(&mut self, name: &str, path: &str) -> Result<Json, ClientError> {
        self.request(&Json::obj([
            ("op", Json::from("load_model")),
            ("name", Json::from(name)),
            ("checkpoint", Json::from(path)),
        ]))
    }

    /// Removes a model.
    ///
    /// # Errors
    ///
    /// Transport or server failures (`unknown_model` if absent).
    pub fn unload(&mut self, name: &str) -> Result<(), ClientError> {
        self.request(&Json::obj([
            ("op", Json::from("unload")),
            ("name", Json::from(name)),
        ]))
        .map(|_| ())
    }

    /// Lists loaded models (the raw `models` array).
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn list_models(&mut self) -> Result<Json, ClientError> {
        let resp = self.request(&Json::obj([("op", Json::from("list_models"))]))?;
        resp.get("models")
            .cloned()
            .ok_or_else(|| ClientError::BadResponse("list_models lacks `models`".to_string()))
    }

    /// Runs a `[N, C, H, W]` batch (or a single `[C, H, W]` sample)
    /// through a loaded model and returns the output tensor.
    ///
    /// # Errors
    ///
    /// Transport or server failures (`shape_mismatch`, `unknown_model`).
    pub fn infer(&mut self, model: &str, input: &Tensor) -> Result<Tensor, ClientError> {
        let resp = self.request(&Json::obj([
            ("op", Json::from("infer")),
            ("model", Json::from(model)),
            ("input", input.to_json()),
        ]))?;
        extract_output(&resp)
    }

    /// Like [`Client::infer`], but with a server-side latency budget:
    /// the request is dropped unexecuted (and answered with a
    /// `deadline_exceeded` error) if it is still queued when
    /// `deadline_ms` elapses on the server.
    ///
    /// # Errors
    ///
    /// Transport or server failures (`deadline_exceeded` when the
    /// budget expires first).
    pub fn infer_with_deadline(
        &mut self,
        model: &str,
        input: &Tensor,
        deadline_ms: u64,
    ) -> Result<Tensor, ClientError> {
        let resp = self.request(&Json::obj([
            ("op", Json::from("infer")),
            ("model", Json::from(model)),
            ("input", input.to_json()),
            ("deadline_ms", Json::from(deadline_ms as f64)),
        ]))?;
        extract_output(&resp)
    }

    /// Fetches per-model serving counters.
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request(&Json::obj([("op", Json::from("stats"))]))
    }

    /// Asks the server to stop.
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Json::obj([("op", Json::from("shutdown"))]))
            .map(|_| ())
    }
}

/// Pulls the `output` tensor out of an `ok: true` infer response.
fn extract_output(resp: &Json) -> Result<Tensor, ClientError> {
    let out = resp
        .get("output")
        .ok_or_else(|| ClientError::BadResponse("infer response lacks `output`".to_string()))?;
    Tensor::from_json(out).map_err(|e| ClientError::BadResponse(format!("bad output tensor: {e}")))
}
