//! A blocking client for the wa-serve protocol — what the `wa-client`
//! binary and the end-to-end tests drive, and a reference for writing
//! clients in other languages (the protocol is just length-prefixed
//! JSON, see [`crate::protocol`]).

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use wa_nn::FullCheckpoint;
use wa_tensor::{Json, Tensor};

use crate::protocol::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, framing).
    Transport(FrameError),
    /// The server answered with `ok: false`; `kind`/`message` are the
    /// structured error fields.
    Server {
        /// Machine-readable category (e.g. `"unknown_model"`).
        kind: String,
        /// Human-readable explanation.
        message: String,
    },
    /// The server answered with something that is not a valid response.
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport error: {e}"),
            ClientError::Server { kind, message } => write!(f, "server error [{kind}]: {message}"),
            ClientError::BadResponse(m) => write!(f, "bad response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Transport(FrameError::Io(e))
    }
}

/// A blocking connection to a wa-serve server.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
}

impl Client {
    /// Connects with the default frame cap.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Sends one raw request document and returns the raw response
    /// document, whatever its `ok` value.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn request_raw(&mut self, doc: &Json) -> Result<Json, ClientError> {
        write_frame(&mut self.stream, doc)?;
        read_frame(&mut self.stream, self.max_frame).map_err(ClientError::Transport)
    }

    /// Sends a request and enforces `ok: true`, returning the response
    /// body.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for structured failures,
    /// [`ClientError::BadResponse`] for responses missing `ok`.
    pub fn request(&mut self, doc: &Json) -> Result<Json, ClientError> {
        let resp = self.request_raw(doc)?;
        match resp.get("ok") {
            Some(Json::Bool(true)) => Ok(resp),
            Some(Json::Bool(false)) => {
                let err = resp.get("error");
                let field = |k: &str| -> String {
                    err.and_then(|e| e.get(k))
                        .and_then(|v| v.as_str())
                        .unwrap_or("<missing>")
                        .to_string()
                };
                Err(ClientError::Server {
                    kind: field("kind"),
                    message: field("message"),
                })
            }
            _ => Err(ClientError::BadResponse(format!(
                "response lacks an `ok` bool: {resp}"
            ))),
        }
    }

    /// Installs a model from a one-document checkpoint.
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn load_model(&mut self, name: &str, ckpt: &FullCheckpoint) -> Result<Json, ClientError> {
        self.request(&Json::obj([
            ("op", Json::from("load_model")),
            ("name", Json::from(name)),
            ("checkpoint", ckpt.to_json()),
        ]))
    }

    /// Removes a model.
    ///
    /// # Errors
    ///
    /// Transport or server failures (`unknown_model` if absent).
    pub fn unload(&mut self, name: &str) -> Result<(), ClientError> {
        self.request(&Json::obj([
            ("op", Json::from("unload")),
            ("name", Json::from(name)),
        ]))
        .map(|_| ())
    }

    /// Lists loaded models (the raw `models` array).
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn list_models(&mut self) -> Result<Json, ClientError> {
        let resp = self.request(&Json::obj([("op", Json::from("list_models"))]))?;
        resp.get("models")
            .cloned()
            .ok_or_else(|| ClientError::BadResponse("list_models lacks `models`".to_string()))
    }

    /// Runs a `[N, C, H, W]` batch (or a single `[C, H, W]` sample)
    /// through a loaded model and returns the output tensor.
    ///
    /// # Errors
    ///
    /// Transport or server failures (`shape_mismatch`, `unknown_model`).
    pub fn infer(&mut self, model: &str, input: &Tensor) -> Result<Tensor, ClientError> {
        let resp = self.request(&Json::obj([
            ("op", Json::from("infer")),
            ("model", Json::from(model)),
            ("input", input.to_json()),
        ]))?;
        let out = resp
            .get("output")
            .ok_or_else(|| ClientError::BadResponse("infer response lacks `output`".to_string()))?;
        Tensor::from_json(out)
            .map_err(|e| ClientError::BadResponse(format!("bad output tensor: {e}")))
    }

    /// Fetches per-model serving counters.
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request(&Json::obj([("op", Json::from("stats"))]))
    }

    /// Asks the server to stop.
    ///
    /// # Errors
    ///
    /// Transport or server failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Json::obj([("op", Json::from("shutdown"))]))
            .map(|_| ())
    }
}
