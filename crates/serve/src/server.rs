//! The TCP front-end: accept loop, per-connection request dispatch, and
//! graceful shutdown.
//!
//! One thread per connection reads frames, parses them into
//! [`Request`]s, and answers each with exactly one response frame.
//! Request-content problems (malformed JSON, unknown ops/models, bad
//! shapes) become structured error responses and the connection keeps
//! serving; only transport-level problems (I/O errors, an oversized
//! frame whose body was never read) end a connection — and never the
//! server.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use wa_tensor::Json;

use wa_nn::FullCheckpoint;

use crate::protocol::{
    error_response, ok_response, read_frame, write_frame, CheckpointSource, ErrorBody, ErrorKind,
    FrameError, Request, DEFAULT_MAX_FRAME,
};
use crate::registry::Registry;
use crate::scheduler::{Scheduler, SchedulerConfig};

/// Default connection-thread cap (see [`ServerConfig::max_conns`]).
pub const DEFAULT_MAX_CONNS: usize = 256;

/// Server-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Per-frame body-size cap in bytes (also the HTTP body cap).
    pub max_frame: usize,
    /// Maximum concurrently-open client connections (one thread each,
    /// socket and HTTP pooled together). A connection accepted over the
    /// limit is answered with exactly one structured
    /// `{ok: false, error: {kind: "busy"}}` frame (socket) or one
    /// `429` response (HTTP) for its first request and then closed, so
    /// the thread count stays bounded under connection floods.
    pub max_conns: usize,
    /// Resident-parameter-bytes budget across all loaded models
    /// (`--max-model-bytes`): loads over the cap evict idle models
    /// least-recently-used first, or fail with `busy` when every other
    /// model has in-flight work. `None` = unlimited.
    pub max_model_bytes: Option<u64>,
    /// Batching/executor policy.
    pub scheduler: SchedulerConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_frame: DEFAULT_MAX_FRAME,
            max_conns: DEFAULT_MAX_CONNS,
            max_model_bytes: None,
            scheduler: SchedulerConfig::default(),
        }
    }
}

/// Shared state every connection thread (socket *and* HTTP) sees.
pub(crate) struct Shared {
    pub(crate) registry: Registry,
    pub(crate) scheduler: Scheduler,
    pub(crate) max_frame: usize,
    /// Connection-thread cap; see [`ServerConfig::max_conns`].
    pub(crate) max_conns: usize,
    /// Currently-open connection threads (socket + HTTP).
    pub(crate) conns: AtomicUsize,
    pub(crate) stop: AtomicBool,
    pub(crate) addr: SocketAddr,
    /// Bound address of the HTTP listener, when one was requested.
    pub(crate) http_addr: Option<SocketAddr>,
    pub(crate) started: Instant,
    /// Busy-refusal threads currently answering over-limit connections
    /// (bounded by `max_conns` too; beyond that, over-limit connections
    /// are dropped without a response).
    pub(crate) busy: AtomicUsize,
    /// Requests that have been read off a socket but not yet answered —
    /// shutdown waits (bounded) for this to drain so the process never
    /// exits with a response half-written.
    pub(crate) in_flight: AtomicUsize,
}

/// RAII decrement of a counter: the one drop-guard idiom used for
/// in-flight requests, connection slots and busy-refusal slots.
pub(crate) struct CountGuard<'a>(&'a AtomicUsize);

impl<'a> CountGuard<'a> {
    /// Increments now, decrements on drop.
    pub(crate) fn begin(counter: &'a AtomicUsize) -> CountGuard<'a> {
        counter.fetch_add(1, Ordering::SeqCst);
        CountGuard(counter)
    }

    /// Takes over an increment the caller already performed (used when a
    /// slot must be reserved *before* its thread is spawned).
    pub(crate) fn adopt(counter: &'a AtomicUsize) -> CountGuard<'a> {
        CountGuard(counter)
    }
}

impl Drop for CountGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A handle for stopping a running server from another thread (the
/// in-band `shutdown` op uses the same mechanism).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Requests shutdown: the accept loop exits after at most one more
    /// wake-up. Idempotent.
    pub fn shutdown(&self) {
        request_stop(&self.shared);
    }
}

/// Flags the stop and pokes the (blocking) accept loops awake with
/// throwaway connections.
pub(crate) fn request_stop(shared: &Shared) {
    if !shared.stop.swap(true, Ordering::SeqCst) {
        let _ = TcpStream::connect(shared.addr);
        if let Some(http) = shared.http_addr {
            let _ = TcpStream::connect(http);
        }
    }
}

/// The serving front-end: a bound listener plus registry + scheduler.
///
/// ```no_run
/// use wa_serve::{Server, ServerConfig};
///
/// let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
/// println!("listening on {}", server.local_addr());
/// server.run()?; // blocks until a `shutdown` request arrives
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct Server {
    listener: TcpListener,
    /// The optional HTTP/1.1 front-end listener (see [`crate::http`]).
    http_listener: Option<TcpListener>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the socket listener and starts the scheduler thread.
    ///
    /// # Errors
    ///
    /// I/O errors from binding; an invalid scheduler config surfaces as
    /// [`std::io::ErrorKind::InvalidInput`].
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServerConfig) -> std::io::Result<Server> {
        Server::bind_inner(addr, None::<SocketAddr>, cfg)
    }

    /// Binds the socket listener *and* an HTTP/1.1 listener sharing the
    /// same registry and scheduler (see [`crate::http`] for the
    /// endpoints).
    ///
    /// # Errors
    ///
    /// I/O errors from binding either listener; an invalid scheduler
    /// config surfaces as [`std::io::ErrorKind::InvalidInput`].
    pub fn bind_with_http(
        addr: impl ToSocketAddrs,
        http_addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        Server::bind_inner(addr, Some(http_addr), cfg)
    }

    fn bind_inner(
        addr: impl ToSocketAddrs,
        http_addr: Option<impl ToSocketAddrs>,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        // validate before any resource (port, scheduler thread) exists
        if cfg.max_conns == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "max_conns must be nonzero",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let http_listener = match http_addr {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let http_local = match &http_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let scheduler = Scheduler::start(cfg.scheduler)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        Ok(Server {
            listener,
            http_listener,
            shared: Arc::new(Shared {
                registry: Registry::with_budget(cfg.max_model_bytes),
                scheduler,
                max_frame: cfg.max_frame,
                max_conns: cfg.max_conns,
                conns: AtomicUsize::new(0),
                busy: AtomicUsize::new(0),
                stop: AtomicBool::new(false),
                addr: local,
                http_addr: http_local,
                started: Instant::now(),
                in_flight: AtomicUsize::new(0),
            }),
        })
    }

    /// The bound socket address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The bound HTTP address, when [`Server::bind_with_http`] was used.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.shared.http_addr
    }

    /// A handle that can stop this server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until a `shutdown` request (or [`ServerHandle::shutdown`])
    /// arrives, then drains gracefully: stops accepting on *both*
    /// listeners, waits (bounded) for every request already read off a
    /// connection to finish writing its response, stops the scheduler
    /// (which flushes queued batches and joins every flusher thread),
    /// answers stragglers with structured `shutting_down` errors, and
    /// returns — an accepted request is never dropped mid-response.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only (per-connection errors are contained).
    pub fn run(self) -> std::io::Result<()> {
        // the HTTP front-end accepts on its own thread; both loops share
        // one connection pool, scheduler and registry
        let http_thread = self.http_listener.map(|listener| {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("wa-serve-http-accept".to_string())
                .spawn(move || crate::http::accept_loop(listener, &shared))
                .expect("spawning the HTTP accept thread failed")
        });
        for conn in self.listener.incoming() {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue, // transient accept failure
            };
            // request/response traffic: Nagle + delayed ACK would add
            // ~40ms to every framed round trip
            let _ = stream.set_nodelay(true);
            let shared = Arc::clone(&self.shared);
            // reserve a connection slot before spawning; over the limit
            // the peer gets one structured busy error instead of a thread
            if shared.conns.fetch_add(1, Ordering::SeqCst) >= shared.max_conns {
                shared.conns.fetch_sub(1, Ordering::SeqCst);
                // refusal threads are themselves bounded (a trickling
                // peer can pin one for a while): past the cap the
                // connection is dropped without a response, so the total
                // thread count can never exceed 2 × max_conns
                if shared.busy.fetch_add(1, Ordering::SeqCst) >= shared.max_conns {
                    shared.busy.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                let spawned = std::thread::Builder::new()
                    .name("wa-serve-busy".to_string())
                    .spawn(move || {
                        let _slot = CountGuard::adopt(&shared.busy);
                        refuse_connection(stream, &shared);
                    });
                if spawned.is_err() {
                    // thread creation failed: the closure (and its
                    // adopted guard) never ran
                    self.shared.busy.fetch_sub(1, Ordering::SeqCst);
                }
                continue;
            }
            let spawned = std::thread::Builder::new()
                .name("wa-serve-conn".to_string())
                .spawn(move || {
                    // release the slot however the connection ends
                    let _slot = CountGuard::adopt(&shared.conns);
                    serve_connection(stream, &shared);
                });
            if spawned.is_err() {
                self.shared.conns.fetch_sub(1, Ordering::SeqCst);
            }
        }
        // the HTTP accept loop exits on the same stop flag
        // (request_stop pokes both listeners awake)
        if let Some(thread) = http_thread {
            let _ = thread.join();
        }
        // drain in-flight requests before tearing anything down: when
        // this function returns the daemon's main() exits, and a process
        // exit must not truncate a response another thread is writing.
        // The wait is bounded so a peer that keeps sending can't wedge
        // shutdown forever.
        let drain = |limit: Duration| {
            let deadline = Instant::now() + limit;
            while self.shared.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
        };
        drain(Duration::from_secs(10));
        // deterministic scheduler drain: flushes everything queued,
        // answers every queued request, joins every flusher thread
        self.shared.scheduler.stop();
        // a request that slipped in between the drain and the scheduler
        // stop is answered with a structured `shutting_down` error; give
        // that write a moment too
        drain(Duration::from_secs(2));
        Ok(())
    }
}

/// Answers an over-limit connection with exactly one structured busy
/// error, then closes it.
///
/// The peer's first request frame is read (bounded wait) before
/// responding: closing a socket with unread received data sends an RST
/// that could discard the queued error frame, so draining the request
/// first is what makes the refusal *observable* as `{ok: false}` rather
/// than as a connection reset.
fn refuse_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let id = match read_frame(&mut stream, shared.max_frame) {
        Ok(doc) => doc.get("id").cloned(),
        Err(_) => None, // refuse anyway: the peer may never have sent
    };
    let body = ErrorBody::new(
        ErrorKind::Busy,
        format!(
            "connection limit reached (max {} concurrent connections); retry later",
            shared.max_conns
        ),
    );
    let _ = write_frame(&mut stream, &error_response(id.as_ref(), &body));
    let _ = stream.flush();
}

/// One connection's read → dispatch → respond loop.
fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    loop {
        let frame = read_frame(&mut stream, shared.max_frame);
        // from here until the response is written this request counts as
        // in-flight: shutdown waits for the counter to drain
        let _guard = CountGuard::begin(&shared.in_flight);
        let doc = match frame {
            Ok(doc) => doc,
            Err(FrameError::Closed) | Err(FrameError::Io(_)) => return,
            Err(e @ FrameError::TooLarge { .. }) => {
                // the body was never read, so the stream is out of sync:
                // answer, then close this connection (the server lives on)
                let body = ErrorBody::new(ErrorKind::BadFrame, e.to_string());
                let _ = write_frame(&mut stream, &error_response(None, &body));
                let _ = stream.flush();
                return;
            }
            Err(e @ FrameError::BadJson(_)) => {
                // the body was fully consumed: report and keep serving
                let body = ErrorBody::new(ErrorKind::BadFrame, e.to_string());
                if write_frame(&mut stream, &error_response(None, &body)).is_err() {
                    return;
                }
                continue;
            }
        };
        let id = doc.get("id").cloned();
        let response = match Request::from_json(&doc) {
            Err(e) => error_response(id.as_ref(), &e),
            Ok(Request::Shutdown) => {
                // answer *before* stopping: once the accept loop exits
                // the process may end, so the ack must already be on the
                // wire
                let resp = ok_response(
                    id.as_ref(),
                    vec![("stopping".to_string(), Json::Bool(true))],
                );
                let _ = write_frame(&mut stream, &resp);
                let _ = stream.flush();
                request_stop(shared);
                return;
            }
            Ok(request) => dispatch(request, shared, id.as_ref()),
        };
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Edge-level inference counters, registered once per process.
struct InferMetrics {
    requests: Arc<wa_obs::Counter>,
}

fn infer_metrics() -> &'static InferMetrics {
    static METRICS: OnceLock<InferMetrics> = OnceLock::new();
    METRICS.get_or_init(|| InferMetrics {
        requests: wa_obs::counter(
            "wa_infer_requests_total",
            "Inference requests accepted at the serving edge (socket and HTTP).",
        ),
    })
}

/// An error response that still echoes the request's trace id, so a
/// caller correlating logs by trace never loses the failing requests.
fn traced_error(id: Option<&Json>, err: &ErrorBody, trace: &str) -> Json {
    let mut resp = error_response(id, err);
    if let Json::Obj(pairs) = &mut resp {
        pairs.push(("trace_id".to_string(), Json::from(trace)));
    }
    resp
}

/// Resolves a request's checkpoint source into a parsed document plus
/// load provenance: `(doc, format, parse_micros)`.
///
/// An inline document was already parsed by the protocol layer; a path
/// is read from the *server's* filesystem and sniffed by magic — binary
/// containers decode through [`wa_nn::read_checkpoint`], anything else
/// goes through the JSON reader. Either reader's failure comes back as
/// a structured `bad_request` naming the path and the offending field.
fn resolve_checkpoint(
    source: CheckpointSource,
) -> Result<(FullCheckpoint, &'static str, u64), ErrorBody> {
    let bad = |path: &str, detail: String| {
        ErrorBody::new(
            ErrorKind::BadRequest,
            format!("checkpoint `{path}`: {detail}"),
        )
    };
    match source {
        CheckpointSource::Inline(doc) => Ok((*doc, "inline", 0)),
        CheckpointSource::Path(path) => {
            let start = Instant::now();
            let bytes =
                std::fs::read(&path).map_err(|e| bad(&path, format!("cannot read: {e}")))?;
            let (doc, format) = if wa_nn::is_container(&bytes) {
                let doc = wa_nn::read_checkpoint(&bytes).map_err(|e| bad(&path, e.to_string()))?;
                (doc, "binary")
            } else {
                let text = String::from_utf8(bytes).map_err(|_| {
                    bad(
                        &path,
                        "neither a binary container nor UTF-8 JSON".to_string(),
                    )
                })?;
                let doc =
                    FullCheckpoint::from_json_str(&text).map_err(|e| bad(&path, e.to_string()))?;
                (doc, "json")
            };
            Ok((doc, format, start.elapsed().as_micros() as u64))
        }
    }
}

/// Executes one request against the shared state (used by the socket
/// connection loop and the HTTP front-end alike).
pub(crate) fn dispatch(request: Request, shared: &Shared, id: Option<&Json>) -> Json {
    match request {
        Request::LoadModel { name, checkpoint } => {
            let (doc, format, parse_micros) = match resolve_checkpoint(checkpoint) {
                Ok(resolved) => resolved,
                Err(e) => return error_response(id, &e),
            };
            match shared
                .registry
                .load_with_origin(&name, &doc, format, parse_micros)
            {
                Ok(entry) => ok_response(
                    id,
                    vec![
                        ("name".to_string(), Json::from(name)),
                        ("arch".to_string(), Json::from(entry.model.kind().name())),
                        ("params".to_string(), Json::from(doc.params.params.len())),
                        ("format".to_string(), Json::from(format)),
                        (
                            "load_micros".to_string(),
                            Json::from(entry.load_micros as f64),
                        ),
                        (
                            "resident_bytes".to_string(),
                            Json::from(entry.resident_bytes as f64),
                        ),
                    ],
                ),
                Err(e) => error_response(id, &e),
            }
        }
        Request::Unload { name } => match shared.registry.unload(&name) {
            Ok(()) => ok_response(id, vec![("name".to_string(), Json::from(name))]),
            Err(e) => error_response(id, &e),
        },
        Request::ListModels => ok_response(
            id,
            vec![("models".to_string(), shared.registry.list_json())],
        ),
        Request::Infer {
            model,
            input,
            deadline_ms,
            trace_id,
        } => {
            // every request carries a trace id: the caller's if it sent
            // one, a freshly minted one otherwise — either way it is
            // echoed in the response and logged at every pipeline stage
            let trace = trace_id.unwrap_or_else(|| wa_obs::TraceId::mint().to_string());
            infer_metrics().requests.inc();
            let entry = match shared.registry.get(&model) {
                Ok(entry) => entry,
                Err(e) => return traced_error(id, &e, &trace),
            };
            let samples = input.dim(0);
            // the budget is counted from dispatch (≈ request arrival);
            // it rides into the scheduler so expiry drops the job there
            let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
            let result = shared
                .scheduler
                .submit_traced(entry, input, deadline, &trace)
                .and_then(|rx| {
                    rx.recv().map_err(|_| {
                        ErrorBody::new(ErrorKind::Internal, "the scheduler dropped the request")
                    })
                })
                .and_then(|r| r);
            match result {
                Ok(output) => ok_response(
                    id,
                    vec![
                        ("model".to_string(), Json::from(model)),
                        ("samples".to_string(), Json::from(samples)),
                        ("trace_id".to_string(), Json::from(trace)),
                        ("output".to_string(), output.to_json()),
                    ],
                ),
                Err(e) => traced_error(id, &e, &trace),
            }
        }
        Request::Metrics => ok_response(
            id,
            vec![(
                "metrics".to_string(),
                Json::from(crate::metrics::metrics_text(shared)),
            )],
        ),
        Request::Stats => {
            let uptime = shared.started.elapsed();
            ok_response(
                id,
                vec![
                    (
                        "uptime_seconds".to_string(),
                        Json::from(uptime.as_secs_f64()),
                    ),
                    (
                        "uptime_ms".to_string(),
                        Json::from(uptime.as_millis() as f64),
                    ),
                    (
                        "connections".to_string(),
                        Json::obj([
                            ("open", Json::from(shared.conns.load(Ordering::SeqCst))),
                            ("max_conns", Json::from(shared.max_conns)),
                        ]),
                    ),
                    (
                        "scheduler".to_string(),
                        Json::obj([
                            (
                                "max_inflight_flushes",
                                Json::from(shared.scheduler.config().max_inflight_flushes),
                            ),
                            (
                                "inflight_flushes",
                                Json::from(shared.scheduler.inflight_flushes()),
                            ),
                            ("max_queue", Json::from(shared.scheduler.config().max_queue)),
                        ]),
                    ),
                    (
                        "memory".to_string(),
                        Json::obj([
                            (
                                "max_model_bytes",
                                match shared.registry.budget() {
                                    Some(b) => Json::from(b as f64),
                                    None => Json::Null,
                                },
                            ),
                            (
                                "resident_bytes",
                                Json::from(shared.registry.resident_bytes_total() as f64),
                            ),
                        ]),
                    ),
                    ("models".to_string(), shared.registry.stats_json()),
                ],
            )
        }
        Request::Shutdown => unreachable!("handled in serve_connection"),
    }
}
