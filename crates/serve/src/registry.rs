//! The model registry: named, concurrently-shared, instrumented models.
//!
//! Loading installs a [`ZooModel`] reconstructed from a one-document
//! [`FullCheckpoint`] behind an [`Arc`], so any number of connection
//! threads and the batching scheduler can read it simultaneously
//! (inference goes through the read-only `Infer` trait). Each entry
//! carries its own [`ModelStats`] counters, updated lock-free by the
//! scheduler as batches complete.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

use wa_models::ZooModel;
use wa_nn::FullCheckpoint;
use wa_tensor::Json;

use crate::protocol::{ErrorBody, ErrorKind};

/// Process-wide monotonic recency clock: every admitted inference
/// stamps its model, and the eviction policy removes the idle model
/// with the smallest stamp (least recently used).
static USE_CLOCK: AtomicU64 = AtomicU64::new(1);

/// The bytes a checkpoint's parameters occupy once resident (dense
/// `f32` storage) — what the `--max-model-bytes` budget accounts.
pub fn checkpoint_resident_bytes(doc: &FullCheckpoint) -> u64 {
    doc.params
        .params
        .values()
        .map(|t| 4 * t.data().len() as u64)
        .sum()
}

/// Lifecycle totals for one model *name*, surviving eviction and
/// reload (the [`ServedModel`] entry itself is replaced on each load).
#[derive(Debug, Default)]
pub struct ModelLifecycle {
    /// Checkpoints loaded under this name (reloads included).
    pub loads: AtomicU64,
    /// Loads that replaced a live model (hot reloads).
    pub reloads: AtomicU64,
    /// Times the memory budget evicted this name.
    pub evictions: AtomicU64,
}

impl ModelLifecycle {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "loads",
                Json::from(self.loads.load(Ordering::Relaxed) as f64),
            ),
            (
                "reloads",
                Json::from(self.reloads.load(Ordering::Relaxed) as f64),
            ),
            (
                "evictions",
                Json::from(self.evictions.load(Ordering::Relaxed) as f64),
            ),
        ])
    }
}

/// Per-model serving counters (relaxed atomics: the numbers are
/// monotonic telemetry, not synchronization) plus a full-history
/// log-linear latency histogram for p50/p99 estimates.
///
/// The histogram replaced an older 256-sample ring: the ring forgot
/// history, so p99 under sustained load reflected only the last few
/// seconds and a brief stall could vanish from the quantiles entirely.
/// The `wa_obs` histogram accumulates every batch since load in fixed
/// memory with ~3% quantile error, records lock-free, and renders
/// directly as Prometheus bucket series.
///
/// The histogram lives on the entry (not in the global registry) so each
/// `Registry` instance — and each test — starts from zero; `wa-serve`'s
/// `/v1/metrics` collector renders it with a `model` label at scrape
/// time.
#[derive(Debug, Default)]
pub struct ModelStats {
    /// `infer` requests answered.
    pub requests: AtomicU64,
    /// Samples pushed through the model.
    pub samples: AtomicU64,
    /// Executor batches formed (`< requests` means the scheduler
    /// coalesced concurrent requests).
    pub batches: AtomicU64,
    /// Time spent inside the executor, in microseconds.
    pub busy_micros: AtomicU64,
    /// Samples submitted to the scheduler but not yet answered (queued
    /// or inside a flush) — the gauge admission control caps.
    pub queued_samples: AtomicU64,
    /// Requests answered with `deadline_exceeded` instead of running.
    pub deadline_expired: AtomicU64,
    /// Requests refused with `busy` by the admission-control queue cap.
    pub rejected_busy: AtomicU64,
    /// Recency stamp of the last admitted inference, drawn from the
    /// registry's monotonic use-clock; the LRU eviction key.
    pub last_used: AtomicU64,
    latency: wa_obs::Histogram,
}

impl ModelStats {
    /// Stamps this model as just-used (called on every admitted
    /// inference and at load time, so a fresh model is never the
    /// immediate eviction victim).
    pub fn touch(&self) {
        self.last_used
            .store(USE_CLOCK.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Records one flushed batch.
    pub fn record_batch(&self, requests: u64, samples: u64, micros: u64) {
        self.requests.fetch_add(requests, Ordering::Relaxed);
        self.samples.fetch_add(samples, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.busy_micros.fetch_add(micros, Ordering::Relaxed);
        self.latency.record(micros);
    }

    /// The `q`-quantile (0.0..=1.0) of all batch latencies since load in
    /// microseconds, or `None` before the first flushed batch.
    pub fn latency_quantile_micros(&self, q: f64) -> Option<u64> {
        self.latency.quantile(q)
    }

    /// A point-in-time copy of the batch-latency histogram — what the
    /// `/v1/metrics` collector renders under a `model` label.
    pub fn latency_snapshot(&self) -> wa_obs::LogHistogram {
        self.latency.snapshot()
    }

    /// The counters as a JSON object.
    pub fn to_json(&self) -> Json {
        let req = self.requests.load(Ordering::Relaxed);
        let samples = self.samples.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let micros = self.busy_micros.load(Ordering::Relaxed);
        let quantile_ms = |q: f64| match self.latency_quantile_micros(q) {
            Some(us) => Json::from(us as f64 / 1e3),
            None => Json::Null,
        };
        Json::obj([
            ("requests", Json::from(req as f64)),
            ("samples", Json::from(samples as f64)),
            ("batches", Json::from(batches as f64)),
            ("busy_micros", Json::from(micros as f64)),
            (
                "queued_samples",
                Json::from(self.queued_samples.load(Ordering::Relaxed) as f64),
            ),
            (
                "deadline_expired",
                Json::from(self.deadline_expired.load(Ordering::Relaxed) as f64),
            ),
            (
                "rejected_busy",
                Json::from(self.rejected_busy.load(Ordering::Relaxed) as f64),
            ),
            (
                "latency",
                Json::obj([
                    ("p50_ms", quantile_ms(0.50)),
                    ("p99_ms", quantile_ms(0.99)),
                    ("count", Json::from(self.latency.count() as f64)),
                ]),
            ),
            (
                "samples_per_second",
                if micros > 0 {
                    Json::from(samples as f64 / (micros as f64 / 1e6))
                } else {
                    Json::Null
                },
            ),
        ])
    }
}

/// One registry entry: the runnable model plus its counters.
#[derive(Debug)]
pub struct ServedModel {
    /// Registry name the model is served under.
    pub name: String,
    /// The reconstructed model (read-only after load).
    pub model: ZooModel,
    /// Serving counters.
    pub stats: ModelStats,
    /// Parameter bytes this model keeps resident (the budget's unit).
    pub resident_bytes: u64,
    /// End-to-end load cost in microseconds: checkpoint read + parse
    /// (when the server resolved a path) plus model build + import.
    pub load_micros: u64,
    /// Which source format the checkpoint arrived in
    /// (`"inline"` / `"json"` / `"binary"`).
    pub format: String,
    /// Name-keyed lifecycle totals, shared across reloads.
    pub lifecycle: Arc<ModelLifecycle>,
}

/// Name → model map shared by every connection thread, with an
/// optional resident-bytes budget enforced by LRU eviction of idle
/// models (`wa-serve --max-model-bytes`).
#[derive(Debug, Default)]
pub struct Registry {
    models: RwLock<BTreeMap<String, Arc<ServedModel>>>,
    /// Resident-parameter-bytes budget; `None` = unlimited.
    max_model_bytes: Option<u64>,
    /// Lifecycle counters by model *name*, surviving eviction/reload.
    lifecycle: RwLock<BTreeMap<String, Arc<ModelLifecycle>>>,
}

/// Global load/unload/evict counters (process-wide lifecycle totals;
/// the per-model counters live on each entry's [`ModelStats`] and
/// [`ModelLifecycle`]).
struct RegistryMetrics {
    loads: Arc<wa_obs::Counter>,
    unloads: Arc<wa_obs::Counter>,
    evictions: Arc<wa_obs::Counter>,
}

fn registry_metrics() -> &'static RegistryMetrics {
    static M: OnceLock<RegistryMetrics> = OnceLock::new();
    M.get_or_init(|| RegistryMetrics {
        loads: wa_obs::counter(
            "wa_model_loads_total",
            "Models (re)loaded into a registry from a checkpoint.",
        ),
        unloads: wa_obs::counter("wa_model_unloads_total", "Models removed from a registry."),
        evictions: wa_obs::counter(
            "wa_model_evictions_total",
            "Idle models evicted by the --max-model-bytes memory budget.",
        ),
    })
}

impl Registry {
    /// Creates an empty registry with no memory budget.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Creates an empty registry capped at `max_model_bytes` resident
    /// parameter bytes (`None` = unlimited). When a load would exceed
    /// the cap, idle models are evicted least-recently-used first; if
    /// nothing idle can be evicted the load is refused with `busy`.
    pub fn with_budget(max_model_bytes: Option<u64>) -> Registry {
        Registry {
            max_model_bytes,
            ..Registry::default()
        }
    }

    /// The configured resident-bytes budget (`None` = unlimited).
    pub fn budget(&self) -> Option<u64> {
        self.max_model_bytes
    }

    /// Parameter bytes currently resident across all loaded models.
    pub fn resident_bytes_total(&self) -> u64 {
        self.read().values().map(|m| m.resident_bytes).sum()
    }

    /// The lifecycle counter block for `name`, created on first use and
    /// retained after eviction so `evictions` totals survive the entry.
    fn lifecycle_for(&self, name: &str) -> Arc<ModelLifecycle> {
        let mut map = self.lifecycle.write().expect("lifecycle lock poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Every model name that has ever been loaded, with its lifecycle
    /// totals (evicted names included — their counters outlive the
    /// entry), for collectors that render labeled series.
    pub fn lifecycle_entries(&self) -> Vec<(String, Arc<ModelLifecycle>)> {
        self.lifecycle
            .read()
            .expect("lifecycle lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Reconstructs a model from a one-document checkpoint and installs
    /// it under `name`, replacing any previous model of that name (the
    /// replaced model finishes its in-flight batches through its `Arc`).
    ///
    /// # Errors
    ///
    /// [`ErrorBody`] describing the bad checkpoint (unknown arch, invalid
    /// spec, shape-mismatched params), or [`ErrorKind::Busy`] when the
    /// memory budget cannot make room.
    pub fn load(&self, name: &str, doc: &FullCheckpoint) -> Result<Arc<ServedModel>, ErrorBody> {
        self.load_with_origin(name, doc, "inline", 0)
    }

    /// [`Registry::load`] with source attribution: `format` names where
    /// the checkpoint came from (`"inline"` / `"json"` / `"binary"`) and
    /// `parse_micros` is the time the caller already spent reading and
    /// parsing it, folded into the entry's `load_micros`.
    ///
    /// # Errors
    ///
    /// As [`Registry::load`].
    pub fn load_with_origin(
        &self,
        name: &str,
        doc: &FullCheckpoint,
        format: &str,
        parse_micros: u64,
    ) -> Result<Arc<ServedModel>, ErrorBody> {
        let resident_bytes = checkpoint_resident_bytes(doc);
        if let Some(budget) = self.max_model_bytes {
            if resident_bytes > budget {
                return Err(ErrorBody::new(
                    ErrorKind::Busy,
                    format!(
                        "checkpoint `{name}` needs {resident_bytes} resident bytes but the \
                         --max-model-bytes budget is {budget}"
                    ),
                ));
            }
        }
        let build_start = Instant::now();
        let model = ZooModel::from_full_checkpoint(doc).map_err(ErrorBody::from)?;
        let load_micros = parse_micros + build_start.elapsed().as_micros() as u64;
        let lifecycle = self.lifecycle_for(name);
        let entry = Arc::new(ServedModel {
            name: name.to_string(),
            model,
            stats: ModelStats::default(),
            resident_bytes,
            load_micros,
            format: format.to_string(),
            lifecycle: Arc::clone(&lifecycle),
        });
        entry.stats.touch();
        let mut evicted: Vec<String> = Vec::new();
        {
            let mut models = self.write();
            if let Some(budget) = self.max_model_bytes {
                // Bytes that stay resident alongside the new model — a
                // same-name reload replaces its old entry, so exclude it.
                let mut used: u64 = models
                    .iter()
                    .filter(|(k, _)| k.as_str() != name)
                    .map(|(_, m)| m.resident_bytes)
                    .sum();
                while used + resident_bytes > budget {
                    let victim = models
                        .iter()
                        .filter(|(k, m)| {
                            k.as_str() != name
                                && m.stats.queued_samples.load(Ordering::Relaxed) == 0
                        })
                        .min_by_key(|(_, m)| m.stats.last_used.load(Ordering::Relaxed))
                        .map(|(k, _)| k.clone());
                    let Some(victim) = victim else {
                        return Err(ErrorBody::new(
                            ErrorKind::Busy,
                            format!(
                                "cannot make room for `{name}` ({resident_bytes} bytes): \
                                 {used} bytes resident, every other model is busy, and the \
                                 --max-model-bytes budget is {budget}"
                            ),
                        ));
                    };
                    let gone = models.remove(&victim).expect("eviction victim vanished");
                    used -= gone.resident_bytes;
                    gone.lifecycle.evictions.fetch_add(1, Ordering::Relaxed);
                    registry_metrics().evictions.inc();
                    evicted.push(victim);
                }
            }
            let replaced = models
                .insert(name.to_string(), Arc::clone(&entry))
                .is_some();
            lifecycle.loads.fetch_add(1, Ordering::Relaxed);
            if replaced {
                lifecycle.reloads.fetch_add(1, Ordering::Relaxed);
            }
        }
        registry_metrics().loads.inc();
        for victim in &evicted {
            wa_obs::info(
                "wa_serve::registry",
                "model evicted",
                &[
                    ("model", victim.as_str().into()),
                    ("evicted_for", name.into()),
                ],
            );
        }
        wa_obs::info(
            "wa_serve::registry",
            "model loaded",
            &[
                ("model", name.into()),
                ("arch", entry.model.kind().name().into()),
                ("format", format.into()),
            ],
        );
        Ok(entry)
    }

    /// Looks a model up by name.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::UnknownModel`] listing what *is* loaded.
    pub fn get(&self, name: &str) -> Result<Arc<ServedModel>, ErrorBody> {
        let models = self.read();
        models.get(name).cloned().ok_or_else(|| {
            ErrorBody::new(
                ErrorKind::UnknownModel,
                format!(
                    "no model `{name}` is loaded (loaded: [{}])",
                    models.keys().cloned().collect::<Vec<_>>().join(", ")
                ),
            )
        })
    }

    /// Removes a model.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::UnknownModel`] if nothing is loaded under `name`.
    pub fn unload(&self, name: &str) -> Result<(), ErrorBody> {
        if self.write().remove(name).is_some() {
            registry_metrics().unloads.inc();
            wa_obs::info(
                "wa_serve::registry",
                "model unloaded",
                &[("model", name.into())],
            );
            Ok(())
        } else {
            Err(ErrorBody::new(
                ErrorKind::UnknownModel,
                format!("no model `{name}` is loaded"),
            ))
        }
    }

    /// Number of loaded models.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// One JSON row per loaded model (name, arch, expected sample shape,
    /// class count) — the `list_models` response body.
    pub fn list_json(&self) -> Json {
        Json::Arr(
            self.read()
                .values()
                .map(|m| {
                    Json::obj([
                        ("name", Json::from(m.name.as_str())),
                        ("arch", Json::from(m.model.kind().name())),
                        (
                            "sample_shape",
                            Json::arr(m.model.sample_shape().iter().copied()),
                        ),
                        ("classes", Json::from(m.model.spec().classes)),
                    ])
                })
                .collect(),
        )
    }

    /// A point-in-time snapshot of every loaded model (name order), for
    /// collectors that render per-model series outside the lock.
    pub fn entries(&self) -> Vec<Arc<ServedModel>> {
        self.read().values().cloned().collect()
    }

    /// One JSON row per loaded model with its counters — the `stats`
    /// response body.
    pub fn stats_json(&self) -> Json {
        Json::Arr(
            self.read()
                .values()
                .map(|m| {
                    Json::obj([
                        ("name", Json::from(m.name.as_str())),
                        ("format", Json::from(m.format.as_str())),
                        ("resident_bytes", Json::from(m.resident_bytes as f64)),
                        ("load_micros", Json::from(m.load_micros as f64)),
                        ("lifecycle", m.lifecycle.to_json()),
                        ("stats", m.stats.to_json()),
                    ])
                })
                .collect(),
        )
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<ServedModel>>> {
        self.models.read().expect("registry lock poisoned")
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Arc<ServedModel>>> {
        self.models.write().expect("registry lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_models::{ModelKind, ModelSpec, ZooModel};
    use wa_tensor::SeededRng;

    fn lenet_doc() -> FullCheckpoint {
        let spec = ModelSpec::builder()
            .classes(10)
            .input_size(12)
            .build()
            .unwrap();
        let mut model =
            ZooModel::from_spec(ModelKind::LeNet, &spec, &mut SeededRng::new(0)).unwrap();
        model.to_full_checkpoint().unwrap()
    }

    #[test]
    fn load_get_unload_cycle() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        reg.load("mnist", &lenet_doc()).unwrap();
        assert_eq!(reg.len(), 1);
        let entry = reg.get("mnist").unwrap();
        assert_eq!(entry.model.kind(), ModelKind::LeNet);
        reg.unload("mnist").unwrap();
        assert!(matches!(
            reg.get("mnist").unwrap_err().kind,
            ErrorKind::UnknownModel
        ));
        assert!(matches!(
            reg.unload("mnist").unwrap_err().kind,
            ErrorKind::UnknownModel
        ));
    }

    #[test]
    fn unknown_model_error_names_what_is_loaded() {
        let reg = Registry::new();
        reg.load("a", &lenet_doc()).unwrap();
        let err = reg.get("b").unwrap_err();
        assert!(err.message.contains("`b`"));
        assert!(err.message.contains('a'));
    }

    #[test]
    fn bad_checkpoint_is_a_structured_error() {
        let reg = Registry::new();
        let mut doc = lenet_doc();
        doc.arch = "mystery-net".to_string();
        let err = reg.load("x", &doc).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidSpec);
        assert!(reg.is_empty());
    }

    #[test]
    fn budget_evicts_the_least_recently_used_idle_model() {
        let doc = lenet_doc();
        let one = checkpoint_resident_bytes(&doc);
        assert!(one > 0);
        // Room for two resident models, not three.
        let reg = Registry::with_budget(Some(2 * one));
        reg.load("a", &doc).unwrap();
        reg.load("b", &doc).unwrap();
        assert_eq!(reg.resident_bytes_total(), 2 * one);
        // Touch `a` so `b` becomes the LRU victim.
        reg.get("a").unwrap().stats.touch();
        reg.load("c", &doc).unwrap();
        assert_eq!(reg.len(), 2);
        assert!(reg.get("b").is_err(), "LRU model `b` should be evicted");
        assert!(reg.get("a").is_ok() && reg.get("c").is_ok());
        let lifecycles: BTreeMap<_, _> = reg.lifecycle_entries().into_iter().collect();
        assert_eq!(lifecycles["b"].evictions.load(Ordering::Relaxed), 1);
        assert_eq!(lifecycles["a"].evictions.load(Ordering::Relaxed), 0);
        assert_eq!(lifecycles["c"].loads.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn budget_refuses_when_every_other_model_is_busy() {
        let doc = lenet_doc();
        let one = checkpoint_resident_bytes(&doc);
        let reg = Registry::with_budget(Some(one));
        reg.load("hot", &doc).unwrap();
        // In-flight samples pin the only possible victim.
        reg.get("hot")
            .unwrap()
            .stats
            .queued_samples
            .store(3, Ordering::Relaxed);
        let err = reg.load("next", &doc).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Busy);
        assert!(err.message.contains("busy"), "message: {}", err.message);
        assert!(reg.get("hot").is_ok(), "busy model must not be evicted");
        assert!(reg.get("next").is_err());
    }

    #[test]
    fn oversized_checkpoint_is_refused_outright() {
        let doc = lenet_doc();
        let one = checkpoint_resident_bytes(&doc);
        let reg = Registry::with_budget(Some(one - 1));
        let err = reg.load("big", &doc).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Busy);
        assert!(err.message.contains("--max-model-bytes"));
        assert!(reg.is_empty());
    }

    #[test]
    fn reload_replaces_in_place_and_counts_as_reload() {
        let doc = lenet_doc();
        let one = checkpoint_resident_bytes(&doc);
        // Budget fits exactly one copy: a same-name reload must not
        // double-count the entry it replaces.
        let reg = Registry::with_budget(Some(one));
        reg.load("m", &doc).unwrap();
        reg.load("m", &doc).unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.resident_bytes_total(), one);
        let lifecycles: BTreeMap<_, _> = reg.lifecycle_entries().into_iter().collect();
        assert_eq!(lifecycles["m"].loads.load(Ordering::Relaxed), 2);
        assert_eq!(lifecycles["m"].reloads.load(Ordering::Relaxed), 1);
        assert_eq!(lifecycles["m"].evictions.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn stats_rows_carry_load_provenance() {
        let reg = Registry::new();
        reg.load_with_origin("m", &lenet_doc(), "binary", 1234)
            .unwrap();
        let rows = reg.stats_json();
        let row = &rows.as_arr().unwrap()[0];
        assert_eq!(row.get("format").unwrap().as_str(), Some("binary"));
        assert!(row.get("load_micros").unwrap().as_f64().unwrap() >= 1234.0);
        assert!(row.get("resident_bytes").unwrap().as_f64().unwrap() > 0.0);
        let lc = row.get("lifecycle").unwrap();
        assert_eq!(lc.get("loads").and_then(|v| v.as_f64()), Some(1.0));
    }

    #[test]
    fn latency_quantiles_cover_the_full_history() {
        let stats = ModelStats::default();
        assert_eq!(stats.latency_quantile_micros(0.5), None);
        for us in 1..=100u64 {
            stats.record_batch(1, 1, us);
        }
        assert_eq!(stats.latency_quantile_micros(0.0), Some(1));
        let p100 = stats.latency_quantile_micros(1.0).unwrap();
        assert!((97..=100).contains(&p100), "p100 was {p100}");
        let p50 = stats.latency_quantile_micros(0.5).unwrap();
        assert!((48..=52).contains(&p50), "p50 was {p50}");
        // Unlike the old 256-sample ring, history never ages out: a flood
        // of fast batches shifts p50 but the early slow tail stays in p99.
        for _ in 0..2048 {
            stats.record_batch(1, 1, 7);
        }
        assert_eq!(stats.latency_quantile_micros(0.5), Some(7));
        let p999 = stats.latency_quantile_micros(0.999).unwrap();
        assert!(p999 >= 90, "slow tail forgotten: p99.9 was {p999}");
        let row = stats.to_json();
        let lat = row.get("latency").expect("latency object");
        assert_eq!(lat.get("p50_ms").and_then(|v| v.as_f64()), Some(0.007));
        assert_eq!(lat.get("count").and_then(|v| v.as_f64()), Some(2148.0));
        let snap = stats.latency_snapshot();
        assert_eq!(snap.count(), 2148);
    }

    #[test]
    fn list_reports_shape_and_arch() {
        let reg = Registry::new();
        reg.load("mnist", &lenet_doc()).unwrap();
        let rows = reg.list_json();
        let row = &rows.as_arr().unwrap()[0];
        assert_eq!(row.get("arch").unwrap().as_str(), Some("lenet"));
        let shape: Vec<f64> = row
            .get("sample_shape")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        assert_eq!(shape, vec![1.0, 12.0, 12.0]);
    }
}
