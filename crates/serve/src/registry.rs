//! The model registry: named, concurrently-shared, instrumented models.
//!
//! Loading installs a [`ZooModel`] reconstructed from a one-document
//! [`FullCheckpoint`] behind an [`Arc`], so any number of connection
//! threads and the batching scheduler can read it simultaneously
//! (inference goes through the read-only `Infer` trait). Each entry
//! carries its own [`ModelStats`] counters, updated lock-free by the
//! scheduler as batches complete.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use wa_models::ZooModel;
use wa_nn::FullCheckpoint;
use wa_tensor::Json;

use crate::protocol::{ErrorBody, ErrorKind};

/// Batch latencies kept per model for quantile estimation.
pub const LATENCY_WINDOW: usize = 256;

/// A fixed-size ring of the most recent batch latencies (microseconds).
/// Bounded memory per model, O(window log window) quantile reads — the
/// `stats` op is rare next to `record` (once per flushed batch).
#[derive(Debug)]
struct LatencyRing {
    micros: [u64; LATENCY_WINDOW],
    /// Total records ever; `min(len, LATENCY_WINDOW)` entries are live.
    len: u64,
}

impl Default for LatencyRing {
    fn default() -> LatencyRing {
        LatencyRing {
            micros: [0; LATENCY_WINDOW],
            len: 0,
        }
    }
}

impl LatencyRing {
    fn record(&mut self, micros: u64) {
        self.micros[(self.len % LATENCY_WINDOW as u64) as usize] = micros;
        self.len += 1;
    }

    /// The `q`-quantile (0.0..=1.0) of the live window, or `None` when
    /// nothing has been recorded yet.
    fn quantile(&self, q: f64) -> Option<u64> {
        let live = (self.len.min(LATENCY_WINDOW as u64)) as usize;
        if live == 0 {
            return None;
        }
        let mut sorted = self.micros[..live].to_vec();
        sorted.sort_unstable();
        let rank = ((q * (live - 1) as f64).round() as usize).min(live - 1);
        Some(sorted[rank])
    }
}

/// Per-model serving counters (relaxed atomics: the numbers are
/// monotonic telemetry, not synchronization) plus a bounded ring of
/// recent batch latencies for p50/p99 estimates.
#[derive(Debug, Default)]
pub struct ModelStats {
    /// `infer` requests answered.
    pub requests: AtomicU64,
    /// Samples pushed through the model.
    pub samples: AtomicU64,
    /// Executor batches formed (`< requests` means the scheduler
    /// coalesced concurrent requests).
    pub batches: AtomicU64,
    /// Time spent inside the executor, in microseconds.
    pub busy_micros: AtomicU64,
    /// Samples submitted to the scheduler but not yet answered (queued
    /// or inside a flush) — the gauge admission control caps.
    pub queued_samples: AtomicU64,
    /// Requests answered with `deadline_exceeded` instead of running.
    pub deadline_expired: AtomicU64,
    /// Requests refused with `busy` by the admission-control queue cap.
    pub rejected_busy: AtomicU64,
    latency: Mutex<LatencyRing>,
}

impl ModelStats {
    /// Records one flushed batch.
    pub fn record_batch(&self, requests: u64, samples: u64, micros: u64) {
        self.requests.fetch_add(requests, Ordering::Relaxed);
        self.samples.fetch_add(samples, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.busy_micros.fetch_add(micros, Ordering::Relaxed);
        self.latency
            .lock()
            .expect("latency ring poisoned")
            .record(micros);
    }

    /// The `q`-quantile (0.0..=1.0) of the recent batch latencies in
    /// microseconds, or `None` before the first flushed batch.
    pub fn latency_quantile_micros(&self, q: f64) -> Option<u64> {
        self.latency
            .lock()
            .expect("latency ring poisoned")
            .quantile(q)
    }

    /// The counters as a JSON object.
    pub fn to_json(&self) -> Json {
        let req = self.requests.load(Ordering::Relaxed);
        let samples = self.samples.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let micros = self.busy_micros.load(Ordering::Relaxed);
        let quantile_ms = |q: f64| match self.latency_quantile_micros(q) {
            Some(us) => Json::from(us as f64 / 1e3),
            None => Json::Null,
        };
        Json::obj([
            ("requests", Json::from(req as f64)),
            ("samples", Json::from(samples as f64)),
            ("batches", Json::from(batches as f64)),
            ("busy_micros", Json::from(micros as f64)),
            (
                "queued_samples",
                Json::from(self.queued_samples.load(Ordering::Relaxed) as f64),
            ),
            (
                "deadline_expired",
                Json::from(self.deadline_expired.load(Ordering::Relaxed) as f64),
            ),
            (
                "rejected_busy",
                Json::from(self.rejected_busy.load(Ordering::Relaxed) as f64),
            ),
            (
                "latency",
                Json::obj([
                    ("p50_ms", quantile_ms(0.50)),
                    ("p99_ms", quantile_ms(0.99)),
                    ("window", Json::from(LATENCY_WINDOW)),
                ]),
            ),
            (
                "samples_per_second",
                if micros > 0 {
                    Json::from(samples as f64 / (micros as f64 / 1e6))
                } else {
                    Json::Null
                },
            ),
        ])
    }
}

/// One registry entry: the runnable model plus its counters.
#[derive(Debug)]
pub struct ServedModel {
    /// Registry name the model is served under.
    pub name: String,
    /// The reconstructed model (read-only after load).
    pub model: ZooModel,
    /// Serving counters.
    pub stats: ModelStats,
}

/// Name → model map shared by every connection thread.
#[derive(Debug, Default)]
pub struct Registry {
    models: RwLock<BTreeMap<String, Arc<ServedModel>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Reconstructs a model from a one-document checkpoint and installs
    /// it under `name`, replacing any previous model of that name (the
    /// replaced model finishes its in-flight batches through its `Arc`).
    ///
    /// # Errors
    ///
    /// [`ErrorBody`] describing the bad checkpoint (unknown arch, invalid
    /// spec, shape-mismatched params).
    pub fn load(&self, name: &str, doc: &FullCheckpoint) -> Result<Arc<ServedModel>, ErrorBody> {
        let model = ZooModel::from_full_checkpoint(doc).map_err(ErrorBody::from)?;
        let entry = Arc::new(ServedModel {
            name: name.to_string(),
            model,
            stats: ModelStats::default(),
        });
        self.write().insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Looks a model up by name.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::UnknownModel`] listing what *is* loaded.
    pub fn get(&self, name: &str) -> Result<Arc<ServedModel>, ErrorBody> {
        let models = self.read();
        models.get(name).cloned().ok_or_else(|| {
            ErrorBody::new(
                ErrorKind::UnknownModel,
                format!(
                    "no model `{name}` is loaded (loaded: [{}])",
                    models.keys().cloned().collect::<Vec<_>>().join(", ")
                ),
            )
        })
    }

    /// Removes a model.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::UnknownModel`] if nothing is loaded under `name`.
    pub fn unload(&self, name: &str) -> Result<(), ErrorBody> {
        if self.write().remove(name).is_some() {
            Ok(())
        } else {
            Err(ErrorBody::new(
                ErrorKind::UnknownModel,
                format!("no model `{name}` is loaded"),
            ))
        }
    }

    /// Number of loaded models.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// One JSON row per loaded model (name, arch, expected sample shape,
    /// class count) — the `list_models` response body.
    pub fn list_json(&self) -> Json {
        Json::Arr(
            self.read()
                .values()
                .map(|m| {
                    Json::obj([
                        ("name", Json::from(m.name.as_str())),
                        ("arch", Json::from(m.model.kind().name())),
                        (
                            "sample_shape",
                            Json::arr(m.model.sample_shape().iter().copied()),
                        ),
                        ("classes", Json::from(m.model.spec().classes)),
                    ])
                })
                .collect(),
        )
    }

    /// One JSON row per loaded model with its counters — the `stats`
    /// response body.
    pub fn stats_json(&self) -> Json {
        Json::Arr(
            self.read()
                .values()
                .map(|m| {
                    Json::obj([
                        ("name", Json::from(m.name.as_str())),
                        ("stats", m.stats.to_json()),
                    ])
                })
                .collect(),
        )
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<ServedModel>>> {
        self.models.read().expect("registry lock poisoned")
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Arc<ServedModel>>> {
        self.models.write().expect("registry lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_models::{ModelKind, ModelSpec, ZooModel};
    use wa_tensor::SeededRng;

    fn lenet_doc() -> FullCheckpoint {
        let spec = ModelSpec::builder()
            .classes(10)
            .input_size(12)
            .build()
            .unwrap();
        let mut model =
            ZooModel::from_spec(ModelKind::LeNet, &spec, &mut SeededRng::new(0)).unwrap();
        model.to_full_checkpoint().unwrap()
    }

    #[test]
    fn load_get_unload_cycle() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        reg.load("mnist", &lenet_doc()).unwrap();
        assert_eq!(reg.len(), 1);
        let entry = reg.get("mnist").unwrap();
        assert_eq!(entry.model.kind(), ModelKind::LeNet);
        reg.unload("mnist").unwrap();
        assert!(matches!(
            reg.get("mnist").unwrap_err().kind,
            ErrorKind::UnknownModel
        ));
        assert!(matches!(
            reg.unload("mnist").unwrap_err().kind,
            ErrorKind::UnknownModel
        ));
    }

    #[test]
    fn unknown_model_error_names_what_is_loaded() {
        let reg = Registry::new();
        reg.load("a", &lenet_doc()).unwrap();
        let err = reg.get("b").unwrap_err();
        assert!(err.message.contains("`b`"));
        assert!(err.message.contains('a'));
    }

    #[test]
    fn bad_checkpoint_is_a_structured_error() {
        let reg = Registry::new();
        let mut doc = lenet_doc();
        doc.arch = "mystery-net".to_string();
        let err = reg.load("x", &doc).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidSpec);
        assert!(reg.is_empty());
    }

    #[test]
    fn latency_quantiles_track_the_recent_window() {
        let stats = ModelStats::default();
        assert_eq!(stats.latency_quantile_micros(0.5), None);
        for us in 1..=100u64 {
            stats.record_batch(1, 1, us);
        }
        // 100 records, window 256: all live
        assert_eq!(stats.latency_quantile_micros(0.0), Some(1));
        assert_eq!(stats.latency_quantile_micros(1.0), Some(100));
        let p50 = stats.latency_quantile_micros(0.5).unwrap();
        assert!((49..=52).contains(&p50), "p50 was {p50}");
        // overflow the window with a uniform value: old samples age out
        for _ in 0..LATENCY_WINDOW {
            stats.record_batch(1, 1, 7);
        }
        assert_eq!(stats.latency_quantile_micros(0.5), Some(7));
        assert_eq!(stats.latency_quantile_micros(0.99), Some(7));
        let row = stats.to_json();
        let lat = row.get("latency").expect("latency object");
        assert_eq!(lat.get("p50_ms").and_then(|v| v.as_f64()), Some(0.007));
    }

    #[test]
    fn list_reports_shape_and_arch() {
        let reg = Registry::new();
        reg.load("mnist", &lenet_doc()).unwrap();
        let rows = reg.list_json();
        let row = &rows.as_arr().unwrap()[0];
        assert_eq!(row.get("arch").unwrap().as_str(), Some("lenet"));
        let shape: Vec<f64> = row
            .get("sample_shape")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        assert_eq!(shape, vec![1.0, 12.0, 12.0]);
    }
}
