//! The model registry: named, concurrently-shared, instrumented models.
//!
//! Loading installs a [`ZooModel`] reconstructed from a one-document
//! [`FullCheckpoint`] behind an [`Arc`], so any number of connection
//! threads and the batching scheduler can read it simultaneously
//! (inference goes through the read-only `Infer` trait). Each entry
//! carries its own [`ModelStats`] counters, updated lock-free by the
//! scheduler as batches complete.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use wa_models::ZooModel;
use wa_nn::FullCheckpoint;
use wa_tensor::Json;

use crate::protocol::{ErrorBody, ErrorKind};

/// Per-model serving counters (relaxed atomics: the numbers are
/// monotonic telemetry, not synchronization) plus a full-history
/// log-linear latency histogram for p50/p99 estimates.
///
/// The histogram replaced an older 256-sample ring: the ring forgot
/// history, so p99 under sustained load reflected only the last few
/// seconds and a brief stall could vanish from the quantiles entirely.
/// The `wa_obs` histogram accumulates every batch since load in fixed
/// memory with ~3% quantile error, records lock-free, and renders
/// directly as Prometheus bucket series.
///
/// The histogram lives on the entry (not in the global registry) so each
/// `Registry` instance — and each test — starts from zero; `wa-serve`'s
/// `/v1/metrics` collector renders it with a `model` label at scrape
/// time.
#[derive(Debug, Default)]
pub struct ModelStats {
    /// `infer` requests answered.
    pub requests: AtomicU64,
    /// Samples pushed through the model.
    pub samples: AtomicU64,
    /// Executor batches formed (`< requests` means the scheduler
    /// coalesced concurrent requests).
    pub batches: AtomicU64,
    /// Time spent inside the executor, in microseconds.
    pub busy_micros: AtomicU64,
    /// Samples submitted to the scheduler but not yet answered (queued
    /// or inside a flush) — the gauge admission control caps.
    pub queued_samples: AtomicU64,
    /// Requests answered with `deadline_exceeded` instead of running.
    pub deadline_expired: AtomicU64,
    /// Requests refused with `busy` by the admission-control queue cap.
    pub rejected_busy: AtomicU64,
    latency: wa_obs::Histogram,
}

impl ModelStats {
    /// Records one flushed batch.
    pub fn record_batch(&self, requests: u64, samples: u64, micros: u64) {
        self.requests.fetch_add(requests, Ordering::Relaxed);
        self.samples.fetch_add(samples, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.busy_micros.fetch_add(micros, Ordering::Relaxed);
        self.latency.record(micros);
    }

    /// The `q`-quantile (0.0..=1.0) of all batch latencies since load in
    /// microseconds, or `None` before the first flushed batch.
    pub fn latency_quantile_micros(&self, q: f64) -> Option<u64> {
        self.latency.quantile(q)
    }

    /// A point-in-time copy of the batch-latency histogram — what the
    /// `/v1/metrics` collector renders under a `model` label.
    pub fn latency_snapshot(&self) -> wa_obs::LogHistogram {
        self.latency.snapshot()
    }

    /// The counters as a JSON object.
    pub fn to_json(&self) -> Json {
        let req = self.requests.load(Ordering::Relaxed);
        let samples = self.samples.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let micros = self.busy_micros.load(Ordering::Relaxed);
        let quantile_ms = |q: f64| match self.latency_quantile_micros(q) {
            Some(us) => Json::from(us as f64 / 1e3),
            None => Json::Null,
        };
        Json::obj([
            ("requests", Json::from(req as f64)),
            ("samples", Json::from(samples as f64)),
            ("batches", Json::from(batches as f64)),
            ("busy_micros", Json::from(micros as f64)),
            (
                "queued_samples",
                Json::from(self.queued_samples.load(Ordering::Relaxed) as f64),
            ),
            (
                "deadline_expired",
                Json::from(self.deadline_expired.load(Ordering::Relaxed) as f64),
            ),
            (
                "rejected_busy",
                Json::from(self.rejected_busy.load(Ordering::Relaxed) as f64),
            ),
            (
                "latency",
                Json::obj([
                    ("p50_ms", quantile_ms(0.50)),
                    ("p99_ms", quantile_ms(0.99)),
                    ("count", Json::from(self.latency.count() as f64)),
                ]),
            ),
            (
                "samples_per_second",
                if micros > 0 {
                    Json::from(samples as f64 / (micros as f64 / 1e6))
                } else {
                    Json::Null
                },
            ),
        ])
    }
}

/// One registry entry: the runnable model plus its counters.
#[derive(Debug)]
pub struct ServedModel {
    /// Registry name the model is served under.
    pub name: String,
    /// The reconstructed model (read-only after load).
    pub model: ZooModel,
    /// Serving counters.
    pub stats: ModelStats,
}

/// Name → model map shared by every connection thread.
#[derive(Debug, Default)]
pub struct Registry {
    models: RwLock<BTreeMap<String, Arc<ServedModel>>>,
}

/// Global load/unload counters (process-wide lifecycle totals; the
/// per-model counters live on each entry's [`ModelStats`]).
struct RegistryMetrics {
    loads: Arc<wa_obs::Counter>,
    unloads: Arc<wa_obs::Counter>,
}

fn registry_metrics() -> &'static RegistryMetrics {
    static M: OnceLock<RegistryMetrics> = OnceLock::new();
    M.get_or_init(|| RegistryMetrics {
        loads: wa_obs::counter(
            "wa_model_loads_total",
            "Models (re)loaded into a registry from a checkpoint.",
        ),
        unloads: wa_obs::counter("wa_model_unloads_total", "Models removed from a registry."),
    })
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Reconstructs a model from a one-document checkpoint and installs
    /// it under `name`, replacing any previous model of that name (the
    /// replaced model finishes its in-flight batches through its `Arc`).
    ///
    /// # Errors
    ///
    /// [`ErrorBody`] describing the bad checkpoint (unknown arch, invalid
    /// spec, shape-mismatched params).
    pub fn load(&self, name: &str, doc: &FullCheckpoint) -> Result<Arc<ServedModel>, ErrorBody> {
        let model = ZooModel::from_full_checkpoint(doc).map_err(ErrorBody::from)?;
        let entry = Arc::new(ServedModel {
            name: name.to_string(),
            model,
            stats: ModelStats::default(),
        });
        self.write().insert(name.to_string(), Arc::clone(&entry));
        registry_metrics().loads.inc();
        wa_obs::info(
            "wa_serve::registry",
            "model loaded",
            &[
                ("model", name.into()),
                ("arch", entry.model.kind().name().into()),
            ],
        );
        Ok(entry)
    }

    /// Looks a model up by name.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::UnknownModel`] listing what *is* loaded.
    pub fn get(&self, name: &str) -> Result<Arc<ServedModel>, ErrorBody> {
        let models = self.read();
        models.get(name).cloned().ok_or_else(|| {
            ErrorBody::new(
                ErrorKind::UnknownModel,
                format!(
                    "no model `{name}` is loaded (loaded: [{}])",
                    models.keys().cloned().collect::<Vec<_>>().join(", ")
                ),
            )
        })
    }

    /// Removes a model.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::UnknownModel`] if nothing is loaded under `name`.
    pub fn unload(&self, name: &str) -> Result<(), ErrorBody> {
        if self.write().remove(name).is_some() {
            registry_metrics().unloads.inc();
            wa_obs::info(
                "wa_serve::registry",
                "model unloaded",
                &[("model", name.into())],
            );
            Ok(())
        } else {
            Err(ErrorBody::new(
                ErrorKind::UnknownModel,
                format!("no model `{name}` is loaded"),
            ))
        }
    }

    /// Number of loaded models.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// One JSON row per loaded model (name, arch, expected sample shape,
    /// class count) — the `list_models` response body.
    pub fn list_json(&self) -> Json {
        Json::Arr(
            self.read()
                .values()
                .map(|m| {
                    Json::obj([
                        ("name", Json::from(m.name.as_str())),
                        ("arch", Json::from(m.model.kind().name())),
                        (
                            "sample_shape",
                            Json::arr(m.model.sample_shape().iter().copied()),
                        ),
                        ("classes", Json::from(m.model.spec().classes)),
                    ])
                })
                .collect(),
        )
    }

    /// A point-in-time snapshot of every loaded model (name order), for
    /// collectors that render per-model series outside the lock.
    pub fn entries(&self) -> Vec<Arc<ServedModel>> {
        self.read().values().cloned().collect()
    }

    /// One JSON row per loaded model with its counters — the `stats`
    /// response body.
    pub fn stats_json(&self) -> Json {
        Json::Arr(
            self.read()
                .values()
                .map(|m| {
                    Json::obj([
                        ("name", Json::from(m.name.as_str())),
                        ("stats", m.stats.to_json()),
                    ])
                })
                .collect(),
        )
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<ServedModel>>> {
        self.models.read().expect("registry lock poisoned")
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Arc<ServedModel>>> {
        self.models.write().expect("registry lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_models::{ModelKind, ModelSpec, ZooModel};
    use wa_tensor::SeededRng;

    fn lenet_doc() -> FullCheckpoint {
        let spec = ModelSpec::builder()
            .classes(10)
            .input_size(12)
            .build()
            .unwrap();
        let mut model =
            ZooModel::from_spec(ModelKind::LeNet, &spec, &mut SeededRng::new(0)).unwrap();
        model.to_full_checkpoint().unwrap()
    }

    #[test]
    fn load_get_unload_cycle() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        reg.load("mnist", &lenet_doc()).unwrap();
        assert_eq!(reg.len(), 1);
        let entry = reg.get("mnist").unwrap();
        assert_eq!(entry.model.kind(), ModelKind::LeNet);
        reg.unload("mnist").unwrap();
        assert!(matches!(
            reg.get("mnist").unwrap_err().kind,
            ErrorKind::UnknownModel
        ));
        assert!(matches!(
            reg.unload("mnist").unwrap_err().kind,
            ErrorKind::UnknownModel
        ));
    }

    #[test]
    fn unknown_model_error_names_what_is_loaded() {
        let reg = Registry::new();
        reg.load("a", &lenet_doc()).unwrap();
        let err = reg.get("b").unwrap_err();
        assert!(err.message.contains("`b`"));
        assert!(err.message.contains('a'));
    }

    #[test]
    fn bad_checkpoint_is_a_structured_error() {
        let reg = Registry::new();
        let mut doc = lenet_doc();
        doc.arch = "mystery-net".to_string();
        let err = reg.load("x", &doc).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidSpec);
        assert!(reg.is_empty());
    }

    #[test]
    fn latency_quantiles_cover_the_full_history() {
        let stats = ModelStats::default();
        assert_eq!(stats.latency_quantile_micros(0.5), None);
        for us in 1..=100u64 {
            stats.record_batch(1, 1, us);
        }
        assert_eq!(stats.latency_quantile_micros(0.0), Some(1));
        let p100 = stats.latency_quantile_micros(1.0).unwrap();
        assert!((97..=100).contains(&p100), "p100 was {p100}");
        let p50 = stats.latency_quantile_micros(0.5).unwrap();
        assert!((48..=52).contains(&p50), "p50 was {p50}");
        // Unlike the old 256-sample ring, history never ages out: a flood
        // of fast batches shifts p50 but the early slow tail stays in p99.
        for _ in 0..2048 {
            stats.record_batch(1, 1, 7);
        }
        assert_eq!(stats.latency_quantile_micros(0.5), Some(7));
        let p999 = stats.latency_quantile_micros(0.999).unwrap();
        assert!(p999 >= 90, "slow tail forgotten: p99.9 was {p999}");
        let row = stats.to_json();
        let lat = row.get("latency").expect("latency object");
        assert_eq!(lat.get("p50_ms").and_then(|v| v.as_f64()), Some(0.007));
        assert_eq!(lat.get("count").and_then(|v| v.as_f64()), Some(2148.0));
        let snap = stats.latency_snapshot();
        assert_eq!(snap.count(), 2148);
    }

    #[test]
    fn list_reports_shape_and_arch() {
        let reg = Registry::new();
        reg.load("mnist", &lenet_doc()).unwrap();
        let rows = reg.list_json();
        let row = &rows.as_arr().unwrap()[0];
        assert_eq!(row.get("arch").unwrap().as_str(), Some("lenet"));
        let shape: Vec<f64> = row
            .get("sample_shape")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        assert_eq!(shape, vec![1.0, 12.0, 12.0]);
    }
}
