//! # wa-data
//!
//! Deterministic synthetic image-classification datasets shaped like the
//! paper's benchmarks (CIFAR-10, CIFAR-100, MNIST).
//!
//! **Substitution notice** (see `DESIGN.md`): this reproduction runs in an
//! offline environment without the real datasets. The phenomena under
//! study — numerical error of large-tile Winograd under quantization and
//! its recovery via Winograd-aware training — are properties of the
//! convolution *arithmetic*, not of natural-image statistics, so we
//! substitute class-conditional synthetic images: each class is a
//! distinct combination of oriented sinusoidal texture, geometric mask
//! and channel balance, perturbed by noise and random shifts. A CNN must
//! still learn localized oriented features to solve them, exercising the
//! same code paths.
//!
//! # Example
//!
//! ```
//! use wa_data::cifar10_like;
//!
//! let ds = cifar10_like(20, 16, 42);
//! assert_eq!(ds.images.shape(), &[200, 3, 16, 16]);
//! assert_eq!(ds.classes, 10);
//! let batches = ds.batches(32);
//! assert_eq!(batches[0].0.dim(0), 32);
//! ```

mod dataset;
mod generators;

pub use dataset::Dataset;
pub use generators::{cifar100_like, cifar10_like, mnist_like};
