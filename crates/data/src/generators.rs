//! Synthetic dataset generators.
//!
//! Each class is a deterministic recipe over three cues a CNN must combine:
//!
//! 1. an **oriented sinusoidal texture** (angle & frequency from the class),
//! 2. a **geometric mask** (one of square / disc / diagonal cross),
//! 3. a **channel balance** (for color datasets).
//!
//! Every sample randomizes phase, position and noise, so the task needs
//! genuine convolutional feature extraction rather than template matching.

use wa_tensor::{SeededRng, Tensor};

use crate::dataset::Dataset;

/// Geometric mask kinds cycled through by class index.
#[derive(Clone, Copy)]
enum Shape {
    Square,
    Disc,
    Cross,
}

impl Shape {
    fn of(idx: usize) -> Shape {
        match idx % 3 {
            0 => Shape::Square,
            1 => Shape::Disc,
            _ => Shape::Cross,
        }
    }

    /// Soft membership of pixel (y, x) in the shape centered at (cy, cx)
    /// with radius `rad`.
    fn weight(self, y: f32, x: f32, cy: f32, cx: f32, rad: f32) -> f32 {
        let (dy, dx) = (y - cy, x - cx);
        match self {
            Shape::Square => {
                if dy.abs() <= rad && dx.abs() <= rad {
                    1.0
                } else {
                    0.0
                }
            }
            Shape::Disc => {
                if dy * dy + dx * dx <= rad * rad {
                    1.0
                } else {
                    0.0
                }
            }
            Shape::Cross => {
                if (dy - dx).abs() <= rad * 0.5 || (dy + dx).abs() <= rad * 0.5 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Parameters defining one class's appearance.
struct ClassRecipe {
    angle: f32,
    freq: f32,
    shape: Shape,
    /// Per-channel texture gain.
    gains: Vec<f32>,
}

fn recipe(class: usize, classes: usize, channels: usize) -> ClassRecipe {
    // spread angles over [0, π) and frequencies over a small band
    let t = class as f32 / classes as f32;
    let angle = std::f32::consts::PI * (0.07 + 0.86 * t);
    let freq = 0.55 + 1.25 * ((class * 7 % classes) as f32 / classes as f32);
    let gains = (0..channels)
        .map(|c| {
            // rotate channel emphasis with the class index
            let phase = (class + c * classes / channels.max(1)) % classes;
            0.45 + 0.55 * (phase as f32 / classes as f32)
        })
        .collect();
    ClassRecipe {
        angle,
        freq,
        shape: Shape::of(class),
        gains,
    }
}

fn render(
    r: &ClassRecipe,
    channels: usize,
    size: usize,
    rng: &mut SeededRng,
    noise: f32,
) -> Vec<f32> {
    let s = size as f32;
    let phase = rng.uniform(0.0, std::f32::consts::TAU);
    let cy = rng.uniform(0.3, 0.7) * s;
    let cx = rng.uniform(0.3, 0.7) * s;
    let rad = rng.uniform(0.22, 0.34) * s;
    let (sin_a, cos_a) = r.angle.sin_cos();
    let mut out = Vec::with_capacity(channels * size * size);
    for c in 0..channels {
        let gain = r.gains[c % r.gains.len()];
        for y in 0..size {
            for x in 0..size {
                let (yf, xf) = (y as f32, x as f32);
                // oriented plane wave
                let u = (cos_a * xf + sin_a * yf) * r.freq;
                let tex = (u + phase).sin();
                let mask = r.shape.weight(yf, xf, cy, cx, rad);
                // texture everywhere, boosted inside the shape; channel gain
                let v = gain * tex * (0.45 + 0.55 * mask) + noise * rng.normal();
                out.push(v.clamp(-1.5, 1.5));
            }
        }
    }
    out
}

fn generate(
    name: &str,
    classes: usize,
    per_class: usize,
    channels: usize,
    size: usize,
    seed: u64,
    noise: f32,
) -> Dataset {
    assert!(
        per_class > 0 && classes > 0 && size >= 4,
        "degenerate dataset request"
    );
    let mut rng = SeededRng::new(seed);
    let recipes: Vec<ClassRecipe> = (0..classes).map(|c| recipe(c, classes, channels)).collect();
    let n = classes * per_class;
    let mut data = Vec::with_capacity(n * channels * size * size);
    let mut labels = Vec::with_capacity(n);
    // interleave classes so order-based splits stay balanced
    for i in 0..per_class {
        for (c, r) in recipes.iter().enumerate() {
            let _ = i;
            data.extend(render(r, channels, size, &mut rng, noise));
            labels.push(c);
        }
    }
    Dataset::new(
        name,
        Tensor::from_vec(data, &[n, channels, size, size]),
        labels,
        classes,
    )
}

/// CIFAR-10-shaped synthetic dataset: `10 × per_class` RGB images of
/// `size × size` (the real dataset is 32×32; tests use 16×16 for speed).
///
/// # Panics
///
/// Panics if `per_class == 0` or `size < 4`.
pub fn cifar10_like(per_class: usize, size: usize, seed: u64) -> Dataset {
    generate("cifar10-like", 10, per_class, 3, size, seed, 0.25)
}

/// CIFAR-100-shaped synthetic dataset: 100 classes, fewer examples each —
/// "considerably more challenging … 100 classes with only 600 images per
/// class" (paper §5.1). Class recipes are denser in parameter space, so
/// confusions are more likely, mirroring the difficulty gap.
///
/// # Panics
///
/// Panics if `per_class == 0` or `size < 4`.
pub fn cifar100_like(per_class: usize, size: usize, seed: u64) -> Dataset {
    generate("cifar100-like", 100, per_class, 3, size, seed, 0.3)
}

/// MNIST-shaped synthetic dataset: 10 single-channel classes of
/// `size × size` (the real dataset is 28×28), lower noise — mirroring
/// MNIST being "relatively small" and easy (paper §6.1).
///
/// # Panics
///
/// Panics if `per_class == 0` or `size < 4`.
pub fn mnist_like(per_class: usize, size: usize, seed: u64) -> Dataset {
    generate("mnist-like", 10, per_class, 1, size, seed, 0.15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_balance() {
        let ds = cifar10_like(5, 16, 1);
        assert_eq!(ds.images.shape(), &[50, 3, 16, 16]);
        assert_eq!(ds.class_histogram(), vec![5; 10]);
        let ds = mnist_like(3, 12, 2);
        assert_eq!(ds.images.shape(), &[30, 1, 12, 12]);
    }

    #[test]
    fn cifar100_has_100_classes() {
        let ds = cifar100_like(1, 8, 3);
        assert_eq!(ds.classes, 100);
        assert_eq!(ds.len(), 100);
    }

    #[test]
    fn determinism_per_seed() {
        let a = cifar10_like(2, 8, 7);
        let b = cifar10_like(2, 8, 7);
        assert_eq!(a.images.data(), b.images.data());
        let c = cifar10_like(2, 8, 8);
        assert_ne!(a.images.data(), c.images.data());
    }

    #[test]
    fn values_are_bounded() {
        let ds = cifar10_like(2, 16, 4);
        let (lo, hi) = ds.images.min_max();
        assert!(lo >= -1.5 && hi <= 1.5, "range [{}, {}]", lo, hi);
        // and not degenerate
        assert!(hi - lo > 0.5);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn classes_are_distinguishable_by_simple_statistic() {
        // nearest-centroid in pixel space should beat chance easily on the
        // noise-free axis (texture orientation differs per class)
        let ds = cifar10_like(20, 12, 5);
        let (train, test) = ds.split(0.8);
        let dim = 3 * 12 * 12;
        let mut centroids = vec![vec![0.0f64; dim]; 10];
        let mut counts = [0usize; 10];
        for (i, &l) in train.labels.iter().enumerate() {
            for d in 0..dim {
                centroids[l][d] += train.images.data()[i * dim + d] as f64;
            }
            counts[l] += 1;
        }
        for (c, cent) in centroids.iter_mut().enumerate() {
            for v in cent.iter_mut() {
                *v /= counts[c].max(1) as f64;
            }
        }
        let mut correct = 0;
        for (i, &l) in test.labels.iter().enumerate() {
            let img = &test.images.data()[i * dim..(i + 1) * dim];
            let mut best = (0usize, f64::INFINITY);
            for (c, cent) in centroids.iter().enumerate() {
                let d2: f64 = img
                    .iter()
                    .zip(cent)
                    .map(|(&a, &b)| (a as f64 - b) * (a as f64 - b))
                    .sum();
                if d2 < best.1 {
                    best = (c, d2);
                }
            }
            if best.0 == l {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.labels.len() as f64;
        assert!(
            acc > 0.3,
            "nearest-centroid accuracy {} should beat chance",
            acc
        );
    }
}
