//! Labeled image datasets and batching.

use wa_tensor::{SeededRng, Tensor};

/// A labeled image-classification dataset in NCHW layout.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Images `[N, C, H, W]`, roughly normalized to `[−1, 1]`.
    pub images: Tensor,
    /// Class index per image.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
    /// Dataset name (for logs).
    pub name: String,
}

impl Dataset {
    /// Creates a dataset, validating invariants.
    ///
    /// # Panics
    ///
    /// Panics if shapes/labels disagree or any label is out of range.
    pub fn new(
        name: impl Into<String>,
        images: Tensor,
        labels: Vec<usize>,
        classes: usize,
    ) -> Dataset {
        assert_eq!(images.ndim(), 4, "images must be NCHW");
        assert_eq!(images.dim(0), labels.len(), "image/label count mismatch");
        assert!(classes > 0, "need at least one class");
        assert!(labels.iter().all(|&l| l < classes), "label out of range");
        Dataset {
            images,
            labels,
            classes,
            name: name.into(),
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Splits into `(first, second)` with `first` receiving `frac` of the
    /// examples (stratification-free split; generators interleave classes
    /// so plain splits stay balanced).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < frac < 1.0`.
    pub fn split(&self, frac: f64) -> (Dataset, Dataset) {
        assert!(
            frac > 0.0 && frac < 1.0,
            "frac must be in (0, 1), got {}",
            frac
        );
        let cut = ((self.len() as f64) * frac).round() as usize;
        let cut = cut.clamp(1, self.len() - 1);
        let a = Dataset {
            images: self.images.slice_dim0(0, cut),
            labels: self.labels[..cut].to_vec(),
            classes: self.classes,
            name: format!("{}[:{}]", self.name, cut),
        };
        let b = Dataset {
            images: self.images.slice_dim0(cut, self.len()),
            labels: self.labels[cut..].to_vec(),
            classes: self.classes,
            name: format!("{}[{}:]", self.name, cut),
        };
        (a, b)
    }

    /// Chops the dataset into `(images, labels)` mini-batches in order
    /// (the final short batch is kept).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batches(&self, batch_size: usize) -> Vec<(Tensor, Vec<usize>)> {
        assert!(batch_size > 0, "batch_size must be positive");
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.len() {
            let end = (start + batch_size).min(self.len());
            out.push((
                self.images.slice_dim0(start, end),
                self.labels[start..end].to_vec(),
            ));
            start = end;
        }
        out
    }

    /// Batches in a seeded-shuffled order (fresh permutation per call).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn shuffled_batches(
        &self,
        batch_size: usize,
        rng: &mut SeededRng,
    ) -> Vec<(Tensor, Vec<usize>)> {
        assert!(batch_size > 0, "batch_size must be positive");
        let mut order: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut order);
        let (c, h, w) = (self.images.dim(1), self.images.dim(2), self.images.dim(3));
        let img_len = c * h * w;
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.len() {
            let end = (start + batch_size).min(self.len());
            let idxs = &order[start..end];
            let mut data = Vec::with_capacity(idxs.len() * img_len);
            let mut labels = Vec::with_capacity(idxs.len());
            for &i in idxs {
                data.extend_from_slice(&self.images.data()[i * img_len..(i + 1) * img_len]);
                labels.push(self.labels[i]);
            }
            out.push((Tensor::from_vec(data, &[idxs.len(), c, h, w]), labels));
            start = end;
        }
        out
    }

    /// Per-class example counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.classes];
        for &l in &self.labels {
            h[l] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let images = Tensor::from_fn(&[6, 1, 2, 2], |i| i as f32);
        Dataset::new("t", images, vec![0, 1, 0, 1, 0, 1], 2)
    }

    #[test]
    fn new_validates() {
        let ds = tiny();
        assert_eq!(ds.len(), 6);
        assert_eq!(ds.class_histogram(), vec![3, 3]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        let images = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = Dataset::new("bad", images, vec![5], 2);
    }

    #[test]
    fn split_preserves_examples() {
        let ds = tiny();
        let (a, b) = ds.split(0.5);
        assert_eq!(a.len() + b.len(), ds.len());
        assert_eq!(a.images.data()[0], 0.0);
        assert_eq!(b.labels.len(), b.images.dim(0));
    }

    #[test]
    fn batches_cover_everything() {
        let ds = tiny();
        let bs = ds.batches(4);
        assert_eq!(bs.len(), 2);
        assert_eq!(bs[0].1.len(), 4);
        assert_eq!(bs[1].1.len(), 2);
        let total: usize = bs.iter().map(|(_, l)| l.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn shuffled_batches_are_permutations() {
        let ds = tiny();
        let mut rng = SeededRng::new(1);
        let bs = ds.shuffled_batches(6, &mut rng);
        let mut labels = bs[0].1.clone();
        labels.sort_unstable();
        assert_eq!(labels, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn shuffled_batches_keep_image_label_pairing() {
        // image content encodes its index; verify pairing survives shuffle
        let ds = tiny();
        let mut rng = SeededRng::new(2);
        let bs = ds.shuffled_batches(3, &mut rng);
        for (imgs, labels) in bs {
            for (row, &lab) in labels.iter().enumerate() {
                let first = imgs.data()[row * 4];
                let orig_idx = (first / 4.0) as usize;
                assert_eq!(ds.labels[orig_idx], lab);
            }
        }
    }
}
