//! ResNeXt-20 (8×16) — aggregated-transform bottleneck blocks with
//! grouped 3×3 convolutions (Xie et al. 2017), the Table 5 architecture.
//! Six bottleneck blocks → six (grouped) swappable 3×3 stages.

use wa_core::{ConvAlgo, ConvLayer};
use wa_nn::{
    BatchNorm2d, Conv2d, Infer, Layer, Param, QuantConfig, QuantStateMut, Tape, Var, WaError,
};
use wa_tensor::SeededRng;

use crate::common::{
    bn, conv1x1, convert_convs, linear, scale_width, stem_conv3x3, swappable_conv, ConvNet,
};
use crate::spec::ModelSpec;

/// Channel geometry of one bottleneck block.
#[derive(Clone, Copy, Debug)]
struct BlockDims {
    in_ch: usize,
    inner: usize,
    out_ch: usize,
    groups: usize,
}

/// Bottleneck: 1×1 reduce → grouped 3×3 (cardinality `groups`) → 1×1
/// expand, with projected shortcut. The grouped 3×3 is realized as
/// `groups` parallel [`ConvLayer`]s over channel slices — each is
/// independently Winograd-swappable (policies apply uniformly).
struct ResNeXtBlock {
    reduce: Conv2d,
    bn1: BatchNorm2d,
    group_convs: Vec<ConvLayer>,
    bn2: BatchNorm2d,
    expand: Conv2d,
    bn3: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    downsample: bool,
    group_width: usize,
}

impl ResNeXtBlock {
    fn new(
        name: &str,
        dims: BlockDims,
        downsample: bool,
        quant: QuantConfig,
        rng: &mut SeededRng,
    ) -> Result<ResNeXtBlock, WaError> {
        let BlockDims {
            in_ch,
            inner,
            out_ch,
            groups,
        } = dims;
        if !inner.is_multiple_of(groups) {
            return Err(WaError::invalid(
                "ModelSpec",
                "width",
                format!("inner width {inner} not divisible by {groups} groups"),
            ));
        }
        let gw = inner / groups;
        let group_convs = (0..groups)
            .map(|g| swappable_conv(&format!("{name}.group{}", g), gw, gw, 3, 1, quant, rng))
            .collect::<Result<Vec<_>, WaError>>()?;
        let shortcut = if in_ch != out_ch {
            Some((
                conv1x1(&format!("{name}.proj"), in_ch, out_ch, false, quant, rng)?,
                bn(&format!("{name}.proj_bn"), out_ch)?,
            ))
        } else {
            None
        };
        Ok(ResNeXtBlock {
            reduce: conv1x1(&format!("{name}.reduce"), in_ch, inner, false, quant, rng)?,
            bn1: bn(&format!("{name}.bn1"), inner)?,
            group_convs,
            bn2: bn(&format!("{name}.bn2"), inner)?,
            expand: conv1x1(&format!("{name}.expand"), inner, out_ch, false, quant, rng)?,
            bn3: bn(&format!("{name}.bn3"), out_ch)?,
            shortcut,
            downsample,
            group_width: gw,
        })
    }

    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        let x = if self.downsample {
            tape.max_pool2d(x)
        } else {
            x
        };
        let mut h = self.reduce.forward(tape, x, train);
        h = self.bn1.forward(tape, h, train);
        h = tape.relu(h);
        // grouped 3×3: slice, convolve per group, concat
        let gw = self.group_width;
        let mut parts = Vec::with_capacity(self.group_convs.len());
        for (g, conv) in self.group_convs.iter_mut().enumerate() {
            let slice = tape.slice_chan(h, g * gw, (g + 1) * gw);
            parts.push(conv.forward(tape, slice, train));
        }
        let mut cat = tape.concat_chan(&parts);
        cat = self.bn2.forward(tape, cat, train);
        cat = tape.relu(cat);
        let mut e = self.expand.forward(tape, cat, train);
        e = self.bn3.forward(tape, e, train);
        let s = match &mut self.shortcut {
            Some((proj, bn)) => {
                let p = proj.forward(tape, x, train);
                bn.forward(tape, p, train)
            }
            None => x,
        };
        let sum = tape.add(e, s);
        tape.relu(sum)
    }

    /// Read-only (eval-mode) forward for the batched-inference path.
    fn infer(&self, tape: &mut Tape, x: Var) -> Result<Var, WaError> {
        let x = if self.downsample {
            tape.max_pool2d(x)
        } else {
            x
        };
        let mut h = self.reduce.infer(tape, x)?;
        h = self.bn1.infer(tape, h)?;
        h = tape.relu(h);
        // grouped 3×3: slice, convolve per group, concat
        let gw = self.group_width;
        let mut parts = Vec::with_capacity(self.group_convs.len());
        for (g, conv) in self.group_convs.iter().enumerate() {
            let slice = tape.slice_chan(h, g * gw, (g + 1) * gw);
            parts.push(conv.infer(tape, slice)?);
        }
        let mut cat = tape.concat_chan(&parts);
        cat = self.bn2.infer(tape, cat)?;
        cat = tape.relu(cat);
        let mut e = self.expand.infer(tape, cat)?;
        e = self.bn3.infer(tape, e)?;
        let s = match &self.shortcut {
            Some((proj, bn)) => {
                let p = proj.infer(tape, x)?;
                bn.infer(tape, p)?
            }
            None => x,
        };
        let sum = tape.add(e, s);
        Ok(tape.relu(sum))
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.reduce.visit_params(f);
        self.bn1.visit_params(f);
        for c in &mut self.group_convs {
            c.visit_params(f);
        }
        self.bn2.visit_params(f);
        self.expand.visit_params(f);
        self.bn3.visit_params(f);
        if let Some((proj, bn)) = &mut self.shortcut {
            proj.visit_params(f);
            bn.visit_params(f);
        }
    }

    fn reset_statistics(&mut self) {
        self.reduce.reset_statistics();
        self.bn1.reset_statistics();
        for c in &mut self.group_convs {
            c.reset_statistics();
        }
        self.bn2.reset_statistics();
        self.expand.reset_statistics();
        self.bn3.reset_statistics();
        if let Some((proj, bn)) = &mut self.shortcut {
            proj.reset_statistics();
            bn.reset_statistics();
        }
    }

    fn visit_quant_state(&mut self, f: &mut dyn FnMut(&str, QuantStateMut<'_>)) {
        self.reduce.visit_quant_state(f);
        self.bn1.visit_quant_state(f);
        for c in &mut self.group_convs {
            c.visit_quant_state(f);
        }
        self.bn2.visit_quant_state(f);
        self.expand.visit_quant_state(f);
        self.bn3.visit_quant_state(f);
        if let Some((proj, bn)) = &mut self.shortcut {
            proj.visit_quant_state(f);
            bn.visit_quant_state(f);
        }
    }
}

/// ResNeXt-20 with cardinality 8 and base group width 16 ("8×16"),
/// stride-2 replaced by max-pool as throughout the paper.
///
/// # Example
///
/// ```
/// use wa_models::{ConvNet, ModelSpec, ResNeXt20};
/// use wa_tensor::SeededRng;
///
/// let mut rng = SeededRng::new(0);
/// let spec = ModelSpec::builder().classes(10).width(0.25).build()?;
/// let mut net = ResNeXt20::from_spec(&spec, &mut rng)?;
/// assert_eq!(net.logical_conv_count(), 6); // 6 grouped 3×3 stages
/// # Ok::<(), wa_nn::WaError>(())
/// ```
pub struct ResNeXt20 {
    stem: Conv2d,
    stem_bn: BatchNorm2d,
    blocks: Vec<ResNeXtBlock>,
    head: wa_nn::Linear,
    groups: usize,
}

impl ResNeXt20 {
    /// Builds the network from a validated [`ModelSpec`] (width 1.0 =
    /// paper scale).
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] / [`WaError::UnsupportedAlgo`] for an
    /// invalid spec or out-of-range override.
    pub fn from_spec(spec: &ModelSpec, rng: &mut SeededRng) -> Result<ResNeXt20, WaError> {
        spec.validate()?;
        let quant = spec.quant;
        let width = spec.width;
        let groups = 8;
        // base width 16 per group → inner widths 128/256/512, outs 256/512/1024
        let inner = [
            scale_width(128, width).div_ceil(groups) * groups,
            scale_width(256, width).div_ceil(groups) * groups,
            scale_width(512, width).div_ceil(groups) * groups,
        ];
        let outs = [
            scale_width(256, width),
            scale_width(512, width),
            scale_width(1024, width),
        ];
        let stem_ch = scale_width(64, width);
        let stem = stem_conv3x3("stem", 3, stem_ch, quant, rng)?;
        let stem_bn = bn("stem_bn", stem_ch)?;
        let mut blocks = Vec::with_capacity(6);
        let mut in_ch = stem_ch;
        for stage in 0..3 {
            for b in 0..2 {
                let downsample = stage > 0 && b == 0;
                blocks.push(ResNeXtBlock::new(
                    &format!("stage{}.{}", stage + 1, b),
                    BlockDims {
                        in_ch,
                        inner: inner[stage],
                        out_ch: outs[stage],
                        groups,
                    },
                    downsample,
                    quant,
                    rng,
                )?);
                in_ch = outs[stage];
            }
        }
        let head = linear("fc", outs[2], spec.classes, quant, rng)?;
        let mut net = ResNeXt20 {
            stem,
            stem_bn,
            blocks,
            head,
            groups,
        };
        net.try_set_algo(spec.algo)?;
        spec.check_override_bounds(net.conv_count())?;
        for &(idx, algo) in &spec.overrides {
            net.conv_layers_mut()[idx].try_convert(algo)?;
        }
        Ok(net)
    }

    /// Number of *logical* grouped-3×3 stages (6), as the paper counts.
    pub fn logical_conv_count(&self) -> usize {
        self.blocks.len()
    }

    /// Cardinality (number of groups per block).
    pub fn cardinality(&self) -> usize {
        self.groups
    }

    /// Converts every group conv in every block to the given algorithm.
    ///
    /// # Errors
    ///
    /// [`WaError::UnsupportedAlgo`] if `algo` is unusable.
    pub fn try_set_algo(&mut self, algo: ConvAlgo) -> Result<(), WaError> {
        convert_convs(self, algo, 0)
    }

    /// Panicking wrapper around [`ResNeXt20::try_set_algo`].
    ///
    /// # Panics
    ///
    /// Panics if `algo` is unusable.
    pub fn set_algo(&mut self, algo: ConvAlgo) {
        self.try_set_algo(algo)
            .unwrap_or_else(|e| panic!("set_algo({algo}): {e}"));
    }

    fn check_input(&self, shape: &[usize]) -> Result<(), WaError> {
        if shape.len() != 4 || shape[1] != 3 {
            return Err(WaError::shape("ResNeXt20 input", &[0, 3, 0, 0], shape));
        }
        // stages 2 and 3 max-pool, so spatial dims must be divisible by 4
        if shape[2] == 0 || !shape[2].is_multiple_of(4) || !shape[3].is_multiple_of(4) {
            return Err(WaError::shape(
                "ResNeXt20 input (spatial dims must be nonzero multiples of 4 \
                 for the two max-pool stages)",
                &[0, 3, 4, 4],
                shape,
            ));
        }
        Ok(())
    }
}

impl Layer for ResNeXt20 {
    fn try_forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Result<Var, WaError> {
        self.check_input(tape.value(x).shape())?;
        Ok(self.forward(tape, x, train))
    }

    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        let mut h = self.stem.forward(tape, x, train);
        h = self.stem_bn.forward(tape, h, train);
        h = tape.relu(h);
        for b in &mut self.blocks {
            h = b.forward(tape, h, train);
        }
        let pooled = tape.global_avg_pool(h);
        self.head.forward(tape, pooled, train)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem.visit_params(f);
        self.stem_bn.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.head.visit_params(f);
    }

    fn reset_statistics(&mut self) {
        self.stem.reset_statistics();
        self.stem_bn.reset_statistics();
        for b in &mut self.blocks {
            b.reset_statistics();
        }
        self.head.reset_statistics();
    }

    fn visit_quant_state(&mut self, f: &mut dyn FnMut(&str, QuantStateMut<'_>)) {
        self.stem.visit_quant_state(f);
        self.stem_bn.visit_quant_state(f);
        for b in &mut self.blocks {
            b.visit_quant_state(f);
        }
        self.head.visit_quant_state(f);
    }
}

impl Infer for ResNeXt20 {
    fn infer(&self, tape: &mut Tape, x: Var) -> Result<Var, WaError> {
        self.check_input(tape.value(x).shape())?;
        let mut h = self.stem.infer(tape, x)?;
        h = self.stem_bn.infer(tape, h)?;
        h = tape.relu(h);
        for b in &self.blocks {
            h = b.infer(tape, h)?;
        }
        let pooled = tape.global_avg_pool(h);
        self.head.infer(tape, pooled)
    }
}

impl ConvNet for ResNeXt20 {
    fn conv_layers_mut(&mut self) -> Vec<&mut ConvLayer> {
        self.blocks
            .iter_mut()
            .flat_map(|b| b.group_convs.iter_mut())
            .collect()
    }

    fn model_name(&self) -> &str {
        "ResNeXt-20 (8x16)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(classes: usize, width: f64) -> ModelSpec {
        ModelSpec::builder()
            .classes(classes)
            .width(width)
            .build()
            .unwrap()
    }

    #[test]
    fn forward_shape() {
        let mut rng = SeededRng::new(0);
        let mut net = ResNeXt20::from_spec(&spec(10, 0.25), &mut rng).unwrap();
        let mut tape = Tape::new();
        let x = tape.leaf(rng.uniform_tensor(&[2, 3, 16, 16], -1.0, 1.0));
        let y = net.try_forward(&mut tape, x, true).unwrap();
        assert_eq!(tape.value(y).shape(), &[2, 10]);
    }

    #[test]
    fn six_logical_blocks_cardinality_eight() {
        let mut rng = SeededRng::new(1);
        let mut net = ResNeXt20::from_spec(&spec(10, 0.25), &mut rng).unwrap();
        assert_eq!(net.logical_conv_count(), 6);
        assert_eq!(net.cardinality(), 8);
        assert_eq!(net.conv_count(), 48); // 6 blocks × 8 groups
    }

    #[test]
    fn fp32_group_swap_preserves_output() {
        let mut rng = SeededRng::new(2);
        let mut net = ResNeXt20::from_spec(&spec(4, 0.25), &mut rng).unwrap();
        let x = rng.uniform_tensor(&[1, 3, 8, 8], -1.0, 1.0);
        let before = {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let y = net.forward(&mut tape, xv, false);
            tape.value(y).clone()
        };
        net.try_set_algo(ConvAlgo::Winograd { m: 2 }).unwrap();
        let after = {
            let mut tape = Tape::new();
            let xv = tape.leaf(x);
            let y = net.forward(&mut tape, xv, false);
            tape.value(y).clone()
        };
        for (a, b) in before.data().iter().zip(after.data()) {
            assert!((a - b).abs() < 1e-2, "{} vs {}", a, b);
        }
    }
}
