//! LeNet with 5×5 filters (paper §5.1): the testbed for Winograd-aware
//! layers on larger filters, where `F(m×m, 5×5)` needs tiles up to 10×10
//! and static transforms fail hard (Figure 5).

use wa_core::{ConvAlgo, ConvLayer};
use wa_nn::{Infer, Layer, Linear, Param, QuantStateMut, Tape, Var, WaError};
use wa_tensor::SeededRng;

use crate::common::{convert_convs, linear, swappable_conv, ConvNet};
use crate::spec::ModelSpec;

/// LeNet-5-style network: two 5×5 convolutions (both Winograd-swappable)
/// with 2×2 max-pooling, then three fully connected layers.
///
/// # Example
///
/// ```
/// use wa_models::{ConvNet, LeNet, ModelSpec};
/// use wa_nn::{Layer, Tape};
/// use wa_tensor::SeededRng;
///
/// let mut rng = SeededRng::new(0);
/// let spec = ModelSpec::builder().classes(10).input_size(28).build()?;
/// let mut net = LeNet::from_spec(&spec, &mut rng)?;
/// assert_eq!(net.conv_count(), 2);
/// let mut tape = Tape::new();
/// let x = tape.leaf(rng.uniform_tensor(&[1, 1, 28, 28], -1.0, 1.0));
/// let y = net.forward(&mut tape, x, false);
/// assert_eq!(tape.value(y).shape(), &[1, 10]);
/// # Ok::<(), wa_nn::WaError>(())
/// ```
pub struct LeNet {
    conv1: ConvLayer,
    conv2: ConvLayer,
    fc1: Linear,
    fc2: Linear,
    fc3: Linear,
    flat_dim: usize,
    input_size: usize,
}

impl LeNet {
    /// Builds LeNet from a validated [`ModelSpec`] for square
    /// single-channel inputs of `spec.input_size` (28 for MNIST).
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] if the input is too small for the two
    /// conv/pool stages (needs `input_size ≥ 12` and even intermediate
    /// sizes); [`WaError::UnsupportedAlgo`] for an unusable algorithm.
    pub fn from_spec(spec: &ModelSpec, rng: &mut SeededRng) -> Result<LeNet, WaError> {
        spec.validate()?;
        let input_size = spec.input_size;
        // conv1: 5×5 pad 2 keeps size; pool halves; conv2: 5×5 valid; pool halves
        if input_size < 12 {
            return Err(WaError::invalid(
                "ModelSpec",
                "input_size",
                format!("LeNet needs input_size >= 12, got {input_size}"),
            ));
        }
        if !input_size.is_multiple_of(2) {
            return Err(WaError::invalid(
                "ModelSpec",
                "input_size",
                format!("LeNet input_size must be even, got {input_size}"),
            ));
        }
        let s_pool1 = input_size / 2;
        let s_conv2 = s_pool1 - 4;
        if s_conv2 < 2 || !s_conv2.is_multiple_of(2) {
            return Err(WaError::invalid(
                "ModelSpec",
                "input_size",
                format!("input_size {input_size} incompatible with LeNet geometry"),
            ));
        }
        let s_pool2 = s_conv2 / 2;
        let flat_dim = 16 * s_pool2 * s_pool2;
        let quant = spec.quant;
        let mut net = LeNet {
            conv1: swappable_conv("conv1", 1, 6, 5, 2, quant, rng)?,
            conv2: swappable_conv("conv2", 6, 16, 5, 0, quant, rng)?,
            fc1: linear("fc1", flat_dim, 120, quant, rng)?,
            fc2: linear("fc2", 120, 84, quant, rng)?,
            fc3: linear("fc3", 84, spec.classes, quant, rng)?,
            flat_dim,
            input_size,
        };
        net.try_set_algo(spec.algo)?;
        spec.check_override_bounds(net.conv_count())?;
        for &(idx, algo) in &spec.overrides {
            net.conv_layers_mut()[idx].try_convert(algo)?;
        }
        Ok(net)
    }

    /// Converts both conv layers to the given algorithm (5×5 filters use
    /// Cook-Toom synthesized `F(m, 5)` transforms).
    ///
    /// # Errors
    ///
    /// [`WaError::UnsupportedAlgo`] if `algo` is unusable.
    pub fn try_set_algo(&mut self, algo: ConvAlgo) -> Result<(), WaError> {
        convert_convs(self, algo, 0)
    }

    /// Panicking wrapper around [`LeNet::try_set_algo`].
    ///
    /// # Panics
    ///
    /// Panics if `algo` is unusable.
    pub fn set_algo(&mut self, algo: ConvAlgo) {
        self.try_set_algo(algo)
            .unwrap_or_else(|e| panic!("set_algo({algo}): {e}"));
    }

    fn check_input(&self, shape: &[usize]) -> Result<(), WaError> {
        // the conv/pool/flatten geometry is fixed at construction, so a
        // serving request must match the built input size exactly
        let s = self.input_size;
        if shape.len() != 4 || shape[1] != 1 || shape[2] != s || shape[3] != s {
            return Err(WaError::shape("LeNet input", &[0, 1, s, s], shape));
        }
        Ok(())
    }
}

impl Layer for LeNet {
    fn try_forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Result<Var, WaError> {
        self.check_input(tape.value(x).shape())?;
        Ok(self.forward(tape, x, train))
    }

    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        let mut h = self.conv1.forward(tape, x, train);
        h = tape.relu(h);
        h = tape.max_pool2d(h);
        h = self.conv2.forward(tape, h, train);
        h = tape.relu(h);
        h = tape.max_pool2d(h);
        let n = tape.value(h).dim(0);
        let flat = tape.reshape(h, &[n, self.flat_dim]);
        let mut f = self.fc1.forward(tape, flat, train);
        f = tape.relu(f);
        f = self.fc2.forward(tape, f, train);
        f = tape.relu(f);
        self.fc3.forward(tape, f, train)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.conv2.visit_params(f);
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
        self.fc3.visit_params(f);
    }

    fn reset_statistics(&mut self) {
        self.conv1.reset_statistics();
        self.conv2.reset_statistics();
        self.fc1.reset_statistics();
        self.fc2.reset_statistics();
        self.fc3.reset_statistics();
    }

    fn visit_quant_state(&mut self, f: &mut dyn FnMut(&str, QuantStateMut<'_>)) {
        self.conv1.visit_quant_state(f);
        self.conv2.visit_quant_state(f);
        self.fc1.visit_quant_state(f);
        self.fc2.visit_quant_state(f);
        self.fc3.visit_quant_state(f);
    }
}

impl Infer for LeNet {
    fn infer(&self, tape: &mut Tape, x: Var) -> Result<Var, WaError> {
        self.check_input(tape.value(x).shape())?;
        let mut h = self.conv1.infer(tape, x)?;
        h = tape.relu(h);
        h = tape.max_pool2d(h);
        h = self.conv2.infer(tape, h)?;
        h = tape.relu(h);
        h = tape.max_pool2d(h);
        let n = tape.value(h).dim(0);
        let flat = tape.reshape(h, &[n, self.flat_dim]);
        let mut f = self.fc1.infer(tape, flat)?;
        f = tape.relu(f);
        f = self.fc2.infer(tape, f)?;
        f = tape.relu(f);
        self.fc3.infer(tape, f)
    }
}

impl ConvNet for LeNet {
    fn conv_layers_mut(&mut self) -> Vec<&mut ConvLayer> {
        vec![&mut self.conv1, &mut self.conv2]
    }

    fn model_name(&self) -> &str {
        "LeNet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(classes: usize, input_size: usize) -> ModelSpec {
        ModelSpec::builder()
            .classes(classes)
            .input_size(input_size)
            .build()
            .unwrap()
    }

    #[test]
    fn forward_shapes_mnist_size() {
        let mut rng = SeededRng::new(0);
        let mut net = LeNet::from_spec(&spec(10, 28), &mut rng).unwrap();
        let mut tape = Tape::new();
        let x = tape.leaf(rng.uniform_tensor(&[3, 1, 28, 28], -1.0, 1.0));
        let y = net.try_forward(&mut tape, x, true).unwrap();
        assert_eq!(tape.value(y).shape(), &[3, 10]);
    }

    #[test]
    fn five_by_five_winograd_swap_preserves_output_fp32() {
        let mut rng = SeededRng::new(1);
        let mut net = LeNet::from_spec(&spec(10, 20), &mut rng).unwrap();
        let x = rng.uniform_tensor(&[1, 1, 20, 20], -1.0, 1.0);
        let before = {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let y = net.forward(&mut tape, xv, false);
            tape.value(y).clone()
        };
        net.try_set_algo(ConvAlgo::Winograd { m: 2 }).unwrap(); // F(2×2, 5×5), 6×6 tiles
        let after = {
            let mut tape = Tape::new();
            let xv = tape.leaf(x);
            let y = net.forward(&mut tape, xv, false);
            tape.value(y).clone()
        };
        for (a, b) in before.data().iter().zip(after.data()) {
            assert!((a - b).abs() < 2e-2, "{} vs {}", a, b);
        }
    }

    #[test]
    fn too_small_input_is_rejected_as_error() {
        let mut rng = SeededRng::new(2);
        let Err(err) = LeNet::from_spec(&spec(10, 8), &mut rng) else {
            panic!("size 8 must be rejected")
        };
        assert!(
            matches!(
                err,
                WaError::InvalidSpec {
                    field: "input_size",
                    ..
                }
            ),
            "{err}"
        );
        let Err(err) = LeNet::from_spec(&spec(10, 13), &mut rng) else {
            panic!("odd size must be rejected")
        };
        assert!(
            matches!(
                err,
                WaError::InvalidSpec {
                    field: "input_size",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn try_forward_rejects_mismatched_input_size() {
        let mut rng = SeededRng::new(3);
        let mut net = LeNet::from_spec(&spec(10, 28), &mut rng).unwrap();
        let mut tape = Tape::new();
        // built for 28×28; feed 20×20 (still geometrically valid per-layer)
        let x = tape.leaf(rng.uniform_tensor(&[1, 1, 20, 20], -1.0, 1.0));
        assert!(matches!(
            net.try_forward(&mut tape, x, false),
            Err(WaError::ShapeMismatch { .. })
        ));
    }
}
