//! LeNet with 5×5 filters (paper §5.1): the testbed for Winograd-aware
//! layers on larger filters, where `F(m×m, 5×5)` needs tiles up to 10×10
//! and static transforms fail hard (Figure 5).

use wa_core::{ConvAlgo, ConvLayer};
use wa_nn::{Layer, Linear, Param, QuantConfig, Tape, Var};
use wa_tensor::SeededRng;

use crate::common::ConvNet;

/// LeNet-5-style network: two 5×5 convolutions (both Winograd-swappable)
/// with 2×2 max-pooling, then three fully connected layers.
///
/// # Example
///
/// ```
/// use wa_models::{ConvNet, LeNet};
/// use wa_nn::{Layer, QuantConfig, Tape};
/// use wa_tensor::SeededRng;
///
/// let mut rng = SeededRng::new(0);
/// let mut net = LeNet::new(10, 28, QuantConfig::FP32, &mut rng);
/// assert_eq!(net.conv_count(), 2);
/// let mut tape = Tape::new();
/// let x = tape.leaf(rng.uniform_tensor(&[1, 1, 28, 28], -1.0, 1.0));
/// let y = net.forward(&mut tape, x, false);
/// assert_eq!(tape.value(y).shape(), &[1, 10]);
/// ```
pub struct LeNet {
    conv1: ConvLayer,
    conv2: ConvLayer,
    fc1: Linear,
    fc2: Linear,
    fc3: Linear,
    flat_dim: usize,
}

impl LeNet {
    /// Builds LeNet for square single-channel inputs of `input_size`
    /// (28 for MNIST).
    ///
    /// # Panics
    ///
    /// Panics if the input is too small for the two conv/pool stages
    /// (needs `input_size ≥ 12` and even intermediate sizes).
    pub fn new(classes: usize, input_size: usize, quant: QuantConfig, rng: &mut SeededRng) -> LeNet {
        assert!(classes > 0, "need at least one class");
        // conv1: 5×5 pad 2 keeps size; pool halves; conv2: 5×5 valid; pool halves
        assert!(input_size >= 12, "LeNet needs input_size >= 12, got {}", input_size);
        assert!(input_size.is_multiple_of(2), "input_size must be even, got {}", input_size);
        let s_pool1 = input_size / 2;
        let s_conv2 = s_pool1 - 4;
        assert!(
            s_conv2 >= 2 && s_conv2.is_multiple_of(2),
            "input_size {} incompatible with LeNet geometry",
            input_size
        );
        let s_pool2 = s_conv2 / 2;
        let flat_dim = 16 * s_pool2 * s_pool2;
        LeNet {
            conv1: ConvLayer::new("conv1", 1, 6, 5, 1, 2, ConvAlgo::Im2row, quant, rng),
            conv2: ConvLayer::new("conv2", 6, 16, 5, 1, 0, ConvAlgo::Im2row, quant, rng),
            fc1: Linear::new("fc1", flat_dim, 120, quant, rng),
            fc2: Linear::new("fc2", 120, 84, quant, rng),
            fc3: Linear::new("fc3", 84, classes, quant, rng),
            flat_dim,
        }
    }

    /// Converts both conv layers to the given algorithm (5×5 filters use
    /// Cook-Toom synthesized `F(m, 5)` transforms).
    pub fn set_algo(&mut self, algo: ConvAlgo) {
        self.conv1.convert(algo);
        self.conv2.convert(algo);
    }
}

impl Layer for LeNet {
    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        let mut h = self.conv1.forward(tape, x, train);
        h = tape.relu(h);
        h = tape.max_pool2d(h);
        h = self.conv2.forward(tape, h, train);
        h = tape.relu(h);
        h = tape.max_pool2d(h);
        let n = tape.value(h).dim(0);
        let flat = tape.reshape(h, &[n, self.flat_dim]);
        let mut f = self.fc1.forward(tape, flat, train);
        f = tape.relu(f);
        f = self.fc2.forward(tape, f, train);
        f = tape.relu(f);
        self.fc3.forward(tape, f, train)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.conv2.visit_params(f);
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
        self.fc3.visit_params(f);
    }

    fn reset_statistics(&mut self) {
        self.conv1.reset_statistics();
        self.conv2.reset_statistics();
        self.fc1.reset_statistics();
        self.fc2.reset_statistics();
        self.fc3.reset_statistics();
    }
}

impl ConvNet for LeNet {
    fn conv_layers_mut(&mut self) -> Vec<&mut ConvLayer> {
        vec![&mut self.conv1, &mut self.conv2]
    }

    fn model_name(&self) -> &str {
        "LeNet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes_mnist_size() {
        let mut rng = SeededRng::new(0);
        let mut net = LeNet::new(10, 28, QuantConfig::FP32, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(rng.uniform_tensor(&[3, 1, 28, 28], -1.0, 1.0));
        let y = net.forward(&mut tape, x, true);
        assert_eq!(tape.value(y).shape(), &[3, 10]);
    }

    #[test]
    fn five_by_five_winograd_swap_preserves_output_fp32() {
        let mut rng = SeededRng::new(1);
        let mut net = LeNet::new(10, 20, QuantConfig::FP32, &mut rng);
        let x = rng.uniform_tensor(&[1, 1, 20, 20], -1.0, 1.0);
        let before = {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let y = net.forward(&mut tape, xv, false);
            tape.value(y).clone()
        };
        net.set_algo(ConvAlgo::Winograd { m: 2 }); // F(2×2, 5×5), 6×6 tiles
        let after = {
            let mut tape = Tape::new();
            let xv = tape.leaf(x);
            let y = net.forward(&mut tape, xv, false);
            tape.value(y).clone()
        };
        for (a, b) in before.data().iter().zip(after.data()) {
            assert!((a - b).abs() < 2e-2, "{} vs {}", a, b);
        }
    }

    #[test]
    #[should_panic(expected = "needs input_size >= 12")]
    fn too_small_input_panics() {
        let mut rng = SeededRng::new(2);
        let _ = LeNet::new(10, 8, QuantConfig::FP32, &mut rng);
    }
}
