//! Typed, validated whole-model specification.
//!
//! A [`ModelSpec`] describes everything the paper varies about a model:
//! class count, width multiplier (Figure 4), quantization, the uniform
//! convolution algorithm, and per-layer algorithm overrides (the shape
//! of a wiNAS result). Every model in the zoo is constructed from one:
//!
//! ```
//! use wa_core::ConvAlgo;
//! use wa_models::{ConvNet, ModelSpec, ResNet18};
//! use wa_nn::QuantConfig;
//! use wa_quant::BitWidth;
//! use wa_tensor::SeededRng;
//!
//! let spec = ModelSpec::builder()
//!     .classes(10)
//!     .width(0.125)
//!     .quant(QuantConfig::uniform(BitWidth::INT8))
//!     .algo(ConvAlgo::WinogradFlex { m: 4 })
//!     .build()?;
//! let mut net = ResNet18::from_spec(&spec, &mut SeededRng::new(0))?;
//! assert_eq!(net.conv_count(), 16);
//! # Ok::<(), wa_nn::WaError>(())
//! ```

use wa_core::{validate_algo_geometry, ConvAlgo};
use wa_nn::{QuantConfig, WaError};
use wa_quant::{BitWidth, Execution, TapPolicy};
use wa_tensor::Json;

/// Validated configuration of a model-zoo network.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelSpec {
    /// Number of output classes.
    pub classes: usize,
    /// Width multiplier scaling every channel count (Figure 4).
    pub width: f64,
    /// Square input size (LeNet geometry and latency lookups).
    pub input_size: usize,
    /// Quantization applied to every layer.
    pub quant: QuantConfig,
    /// Uniform algorithm for the swappable convolutions (applied with
    /// each model's policy, e.g. ResNet-18 pins its last two blocks to
    /// F2 for tiles larger than 2).
    pub algo: ConvAlgo,
    /// Per-layer `(index, algo)` overrides applied after the uniform
    /// algorithm — the shape of a wiNAS per-layer assignment.
    pub overrides: Vec<(usize, ConvAlgo)>,
}

impl ModelSpec {
    /// Starts a builder. Defaults: 10 classes, width 1.0, input 32,
    /// FP32, [`ConvAlgo::Im2row`], no overrides.
    pub fn builder() -> ModelSpecBuilder {
        ModelSpecBuilder {
            classes: 10,
            width: 1.0,
            input_size: 32,
            quant: QuantConfig::FP32,
            algo: ConvAlgo::Im2row,
            overrides: Vec::new(),
        }
    }

    /// Checks every constraint, as `build()` does.
    pub fn validate(&self) -> Result<(), WaError> {
        if self.classes == 0 {
            return Err(WaError::invalid(
                "ModelSpec",
                "classes",
                "need at least one class",
            ));
        }
        if self.width <= 0.0 || !self.width.is_finite() {
            return Err(WaError::invalid(
                "ModelSpec",
                "width",
                format!(
                    "width multiplier must be positive and finite, got {}",
                    self.width
                ),
            ));
        }
        if self.input_size == 0 {
            return Err(WaError::invalid(
                "ModelSpec",
                "input_size",
                "must be nonzero",
            ));
        }
        // the zoo's swappable convolutions are 3×3/5×5 stride-1, so only
        // the tile size can disqualify an algorithm here
        validate_algo_geometry(self.algo, 3, 1)?;
        for &(_, algo) in &self.overrides {
            validate_algo_geometry(algo, 3, 1)?;
        }
        Ok(())
    }

    /// Serializes the spec as a JSON document — the `spec` half of a
    /// one-document serving checkpoint
    /// ([`FullCheckpoint`](wa_nn::FullCheckpoint)):
    ///
    /// ```json
    /// {
    ///   "classes": 10, "width": 1.0, "input_size": 32,
    ///   "quant": {"activations": "INT8", "weights": "INT8", "transform": "per-tap"},
    ///   "algo": "F2",
    ///   "overrides": [[3, "F4-flex"]]
    /// }
    /// ```
    ///
    /// Precisions use the [`BitWidth`] display form (`"FP32"`, `"INT8"`),
    /// algorithms the [`ConvAlgo`] display form (`"im2row"`, `"F2"`,
    /// `"F4-flex"`), and the transform-domain policy the
    /// [`TapPolicy`](wa_quant::TapPolicy) display form (`"per-layer"`,
    /// `"per-tap"`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("classes", Json::from(self.classes)),
            ("width", Json::from(self.width)),
            ("input_size", Json::from(self.input_size)),
            (
                "quant",
                Json::obj([
                    ("activations", self.quant.activations.to_string()),
                    ("weights", self.quant.weights.to_string()),
                    ("transform", self.quant.transform.to_string()),
                    ("execution", self.quant.execution.to_string()),
                ]),
            ),
            ("algo", Json::from(self.algo.to_string())),
            (
                "overrides",
                Json::Arr(
                    self.overrides
                        .iter()
                        .map(|(i, a)| Json::arr([Json::from(*i), Json::from(a.to_string())]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Reads a spec back from its [`ModelSpec::to_json`] encoding,
    /// re-running the full [`ModelSpec::validate`] pass — a document that
    /// parses but violates a paper constraint is rejected the same way a
    /// builder misuse would be.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] naming the offending key for missing or
    /// mistyped fields, plus every error `build()` can produce.
    pub fn from_json(doc: &Json) -> Result<ModelSpec, WaError> {
        let invalid = |field: &'static str, reason: String| WaError::InvalidSpec {
            spec: "ModelSpec",
            field,
            reason,
        };
        if doc.as_obj().is_none() {
            return Err(invalid(
                "json",
                format!("spec document must be a JSON object, got {doc}"),
            ));
        }
        let usize_field = |field: &'static str, default: usize| -> Result<usize, WaError> {
            match doc.get(field) {
                None => Ok(default),
                Some(v) => v
                    .as_f64()
                    .filter(|x| *x >= 0.0 && x.fract() == 0.0)
                    .map(|x| x as usize)
                    .ok_or_else(|| {
                        invalid(field, format!("expected a non-negative integer, got {v}"))
                    }),
            }
        };
        let parse_algo = |field: &'static str, v: &Json| -> Result<ConvAlgo, WaError> {
            v.as_str()
                .ok_or_else(|| invalid(field, format!("expected an algorithm string, got {v}")))?
                .parse()
        };
        let classes = usize_field("classes", 10)?;
        let input_size = usize_field("input_size", 32)?;
        let width = match doc.get("width") {
            None => 1.0,
            Some(v) => v
                .as_f64()
                .ok_or_else(|| invalid("width", format!("expected a number, got {v}")))?,
        };
        let quant = match doc.get("quant") {
            None => QuantConfig::FP32,
            Some(q) => {
                // error fields carry the `quant.<field>` key path, the
                // spec-document arm of the checkpoint convention
                let bits = |field: &'static str, path: &'static str| -> Result<BitWidth, WaError> {
                    let v = q
                        .get(field)
                        .ok_or_else(|| invalid(path, format!("missing under `quant`: {q}")))?;
                    v.as_str()
                        .ok_or_else(|| {
                            invalid(path, format!("expected a precision string, got {v}"))
                        })?
                        .parse()
                        .map_err(|e: wa_quant::ParseBitWidthError| invalid(path, e.to_string()))
                };
                let transform = match q.get("transform") {
                    None => TapPolicy::PerLayer,
                    Some(v) => v
                        .as_str()
                        .ok_or_else(|| {
                            invalid(
                                "quant.transform",
                                format!("expected a policy string, got {v}"),
                            )
                        })?
                        .parse()
                        .map_err(|e: wa_quant::ParseTapPolicyError| {
                            invalid("quant.transform", e.to_string())
                        })?,
                };
                let execution = match q.get("execution") {
                    None => Execution::FakeQuant,
                    Some(v) => v
                        .as_str()
                        .ok_or_else(|| {
                            invalid(
                                "quant.execution",
                                format!("expected an execution mode string, got {v}"),
                            )
                        })?
                        .parse()
                        .map_err(|e: wa_quant::ParseExecutionError| {
                            invalid("quant.execution", e.to_string())
                        })?,
                };
                QuantConfig {
                    activations: bits("activations", "quant.activations")?,
                    weights: bits("weights", "quant.weights")?,
                    transform,
                    execution,
                }
            }
        };
        let algo = match doc.get("algo") {
            None => ConvAlgo::Im2row,
            Some(v) => parse_algo("algo", v)?,
        };
        let mut overrides = Vec::new();
        if let Some(list) = doc.get("overrides") {
            let items = list
                .as_arr()
                .ok_or_else(|| invalid("overrides", format!("expected an array, got {list}")))?;
            for item in items {
                let pair = item.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                    invalid(
                        "overrides",
                        format!("expected [index, algo] pairs, got {item}"),
                    )
                })?;
                let idx = pair[0]
                    .as_f64()
                    .filter(|x| *x >= 0.0 && x.fract() == 0.0)
                    .ok_or_else(|| {
                        invalid(
                            "overrides",
                            format!("expected an integer index, got {}", pair[0]),
                        )
                    })? as usize;
                overrides.push((idx, parse_algo("overrides", &pair[1])?));
            }
        }
        let spec = ModelSpec {
            classes,
            width,
            input_size,
            quant,
            algo,
            overrides,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Parses a JSON string and reads the spec out of it.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] describing the parse failure or the
    /// offending field.
    pub fn from_json_str(text: &str) -> Result<ModelSpec, WaError> {
        let doc = Json::parse(text).map_err(|e| WaError::InvalidSpec {
            spec: "ModelSpec",
            field: "json",
            reason: e.to_string(),
        })?;
        ModelSpec::from_json(&doc)
    }

    /// Bounds-checks the override indices against a concrete model's
    /// swappable-layer count (called by each `from_spec`).
    pub(crate) fn check_override_bounds(&self, conv_count: usize) -> Result<(), WaError> {
        for &(idx, _) in &self.overrides {
            if idx >= conv_count {
                return Err(WaError::invalid(
                    "ModelSpec",
                    "overrides",
                    format!("layer index {idx} out of range (model has {conv_count} conv layers)"),
                ));
            }
        }
        Ok(())
    }
}

impl Default for ModelSpec {
    fn default() -> Self {
        ModelSpec::builder()
            .build()
            .expect("default ModelSpec is statically valid")
    }
}

/// Builder for [`ModelSpec`].
#[derive(Clone, Debug)]
pub struct ModelSpecBuilder {
    classes: usize,
    width: f64,
    input_size: usize,
    quant: QuantConfig,
    algo: ConvAlgo,
    overrides: Vec<(usize, ConvAlgo)>,
}

impl ModelSpecBuilder {
    /// Sets the class count (default 10).
    pub fn classes(mut self, c: usize) -> Self {
        self.classes = c;
        self
    }

    /// Sets the width multiplier (default 1.0).
    pub fn width(mut self, w: f64) -> Self {
        self.width = w;
        self
    }

    /// Sets the square input size (default 32).
    pub fn input_size(mut self, s: usize) -> Self {
        self.input_size = s;
        self
    }

    /// Sets the quantization config (default FP32).
    pub fn quant(mut self, q: QuantConfig) -> Self {
        self.quant = q;
        self
    }

    /// Sets the uniform convolution algorithm (default im2row).
    pub fn algo(mut self, a: ConvAlgo) -> Self {
        self.algo = a;
        self
    }

    /// Adds a per-layer algorithm override (applied after the uniform
    /// algorithm, in insertion order).
    pub fn override_layer(mut self, index: usize, algo: ConvAlgo) -> Self {
        self.overrides.push((index, algo));
        self
    }

    /// Validates and produces the spec.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] for zero classes / non-positive width /
    /// zero input size; [`WaError::UnsupportedAlgo`] for an unusable
    /// algorithm in `algo` or any override.
    pub fn build(self) -> Result<ModelSpec, WaError> {
        let spec = ModelSpec {
            classes: self.classes,
            width: self.width,
            input_size: self.input_size,
            quant: self.quant,
            algo: self.algo,
            overrides: self.overrides,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build() {
        let spec = ModelSpec::default();
        assert_eq!(spec.classes, 10);
        assert_eq!(spec.algo, ConvAlgo::Im2row);
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        use wa_quant::BitWidth;
        let spec = ModelSpec::builder()
            .classes(100)
            .width(0.25)
            .input_size(28)
            .quant(wa_nn::QuantConfig {
                activations: BitWidth::INT8,
                weights: BitWidth::INT10,
                transform: TapPolicy::PerTap,
                execution: Execution::FakeQuant,
            })
            .algo(ConvAlgo::WinogradFlex { m: 4 })
            .override_layer(1, ConvAlgo::Im2row)
            .override_layer(3, ConvAlgo::Winograd { m: 2 })
            .build()
            .unwrap();
        let text = spec.to_json().to_string_pretty();
        let back = ModelSpec::from_json_str(&text).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn json_defaults_match_builder_defaults() {
        let back = ModelSpec::from_json_str("{}").unwrap();
        assert_eq!(back, ModelSpec::default());
    }

    #[test]
    fn json_errors_name_the_offending_field() {
        let err = ModelSpec::from_json_str("{\"classes\": \"ten\"}").unwrap_err();
        assert!(matches!(
            err,
            WaError::InvalidSpec {
                field: "classes",
                ..
            }
        ));
        let err = ModelSpec::from_json_str("{\"quant\": {\"activations\": \"INT8\"}}").unwrap_err();
        assert!(matches!(
            err,
            WaError::InvalidSpec {
                field: "quant.weights",
                ..
            }
        ));
        let err = ModelSpec::from_json_str(
            "{\"quant\": {\"activations\": \"INT8\", \"weights\": \"INT8\", \
             \"transform\": \"per-channel\"}}",
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                WaError::InvalidSpec {
                    field: "quant.transform",
                    ..
                }
            ),
            "{err}"
        );
        let err = ModelSpec::from_json_str("{\"algo\": \"F3\"}").unwrap_err();
        assert!(matches!(err, WaError::UnsupportedAlgo { .. }), "{err}");
        let err = ModelSpec::from_json_str("not json").unwrap_err();
        assert!(matches!(err, WaError::InvalidSpec { field: "json", .. }));
        // a parsable document that is not an object must not silently
        // decode as an all-defaults spec
        let err = ModelSpec::from_json_str("[1, 2]").unwrap_err();
        assert!(matches!(err, WaError::InvalidSpec { field: "json", .. }));
    }

    #[test]
    fn invalid_fields_rejected() {
        assert!(matches!(
            ModelSpec::builder().classes(0).build(),
            Err(WaError::InvalidSpec {
                field: "classes",
                ..
            })
        ));
        assert!(matches!(
            ModelSpec::builder().width(0.0).build(),
            Err(WaError::InvalidSpec { field: "width", .. })
        ));
        assert!(matches!(
            ModelSpec::builder().width(f64::NAN).build(),
            Err(WaError::InvalidSpec { field: "width", .. })
        ));
        assert!(matches!(
            ModelSpec::builder()
                .algo(ConvAlgo::Winograd { m: 5 })
                .build(),
            Err(WaError::UnsupportedAlgo { .. })
        ));
        assert!(matches!(
            ModelSpec::builder()
                .override_layer(0, ConvAlgo::WinogradFlex { m: 7 })
                .build(),
            Err(WaError::UnsupportedAlgo { .. })
        ));
    }
}
