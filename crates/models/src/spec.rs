//! Typed, validated whole-model specification.
//!
//! A [`ModelSpec`] describes everything the paper varies about a model:
//! class count, width multiplier (Figure 4), quantization, the uniform
//! convolution algorithm, and per-layer algorithm overrides (the shape
//! of a wiNAS result). Every model in the zoo is constructed from one:
//!
//! ```
//! use wa_core::ConvAlgo;
//! use wa_models::{ConvNet, ModelSpec, ResNet18};
//! use wa_nn::QuantConfig;
//! use wa_quant::BitWidth;
//! use wa_tensor::SeededRng;
//!
//! let spec = ModelSpec::builder()
//!     .classes(10)
//!     .width(0.125)
//!     .quant(QuantConfig::uniform(BitWidth::INT8))
//!     .algo(ConvAlgo::WinogradFlex { m: 4 })
//!     .build()?;
//! let mut net = ResNet18::from_spec(&spec, &mut SeededRng::new(0))?;
//! assert_eq!(net.conv_count(), 16);
//! # Ok::<(), wa_nn::WaError>(())
//! ```

use wa_core::{validate_algo_geometry, ConvAlgo};
use wa_nn::{QuantConfig, WaError};

/// Validated configuration of a model-zoo network.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelSpec {
    /// Number of output classes.
    pub classes: usize,
    /// Width multiplier scaling every channel count (Figure 4).
    pub width: f64,
    /// Square input size (LeNet geometry and latency lookups).
    pub input_size: usize,
    /// Quantization applied to every layer.
    pub quant: QuantConfig,
    /// Uniform algorithm for the swappable convolutions (applied with
    /// each model's policy, e.g. ResNet-18 pins its last two blocks to
    /// F2 for tiles larger than 2).
    pub algo: ConvAlgo,
    /// Per-layer `(index, algo)` overrides applied after the uniform
    /// algorithm — the shape of a wiNAS per-layer assignment.
    pub overrides: Vec<(usize, ConvAlgo)>,
}

impl ModelSpec {
    /// Starts a builder. Defaults: 10 classes, width 1.0, input 32,
    /// FP32, [`ConvAlgo::Im2row`], no overrides.
    pub fn builder() -> ModelSpecBuilder {
        ModelSpecBuilder {
            classes: 10,
            width: 1.0,
            input_size: 32,
            quant: QuantConfig::FP32,
            algo: ConvAlgo::Im2row,
            overrides: Vec::new(),
        }
    }

    /// Checks every constraint, as `build()` does.
    pub fn validate(&self) -> Result<(), WaError> {
        if self.classes == 0 {
            return Err(WaError::invalid(
                "ModelSpec",
                "classes",
                "need at least one class",
            ));
        }
        if self.width <= 0.0 || !self.width.is_finite() {
            return Err(WaError::invalid(
                "ModelSpec",
                "width",
                format!(
                    "width multiplier must be positive and finite, got {}",
                    self.width
                ),
            ));
        }
        if self.input_size == 0 {
            return Err(WaError::invalid(
                "ModelSpec",
                "input_size",
                "must be nonzero",
            ));
        }
        // the zoo's swappable convolutions are 3×3/5×5 stride-1, so only
        // the tile size can disqualify an algorithm here
        validate_algo_geometry(self.algo, 3, 1)?;
        for &(_, algo) in &self.overrides {
            validate_algo_geometry(algo, 3, 1)?;
        }
        Ok(())
    }

    /// Bounds-checks the override indices against a concrete model's
    /// swappable-layer count (called by each `from_spec`).
    pub(crate) fn check_override_bounds(&self, conv_count: usize) -> Result<(), WaError> {
        for &(idx, _) in &self.overrides {
            if idx >= conv_count {
                return Err(WaError::invalid(
                    "ModelSpec",
                    "overrides",
                    format!("layer index {idx} out of range (model has {conv_count} conv layers)"),
                ));
            }
        }
        Ok(())
    }
}

impl Default for ModelSpec {
    fn default() -> Self {
        ModelSpec::builder()
            .build()
            .expect("default ModelSpec is statically valid")
    }
}

/// Builder for [`ModelSpec`].
#[derive(Clone, Debug)]
pub struct ModelSpecBuilder {
    classes: usize,
    width: f64,
    input_size: usize,
    quant: QuantConfig,
    algo: ConvAlgo,
    overrides: Vec<(usize, ConvAlgo)>,
}

impl ModelSpecBuilder {
    /// Sets the class count (default 10).
    pub fn classes(mut self, c: usize) -> Self {
        self.classes = c;
        self
    }

    /// Sets the width multiplier (default 1.0).
    pub fn width(mut self, w: f64) -> Self {
        self.width = w;
        self
    }

    /// Sets the square input size (default 32).
    pub fn input_size(mut self, s: usize) -> Self {
        self.input_size = s;
        self
    }

    /// Sets the quantization config (default FP32).
    pub fn quant(mut self, q: QuantConfig) -> Self {
        self.quant = q;
        self
    }

    /// Sets the uniform convolution algorithm (default im2row).
    pub fn algo(mut self, a: ConvAlgo) -> Self {
        self.algo = a;
        self
    }

    /// Adds a per-layer algorithm override (applied after the uniform
    /// algorithm, in insertion order).
    pub fn override_layer(mut self, index: usize, algo: ConvAlgo) -> Self {
        self.overrides.push((index, algo));
        self
    }

    /// Validates and produces the spec.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] for zero classes / non-positive width /
    /// zero input size; [`WaError::UnsupportedAlgo`] for an unusable
    /// algorithm in `algo` or any override.
    pub fn build(self) -> Result<ModelSpec, WaError> {
        let spec = ModelSpec {
            classes: self.classes,
            width: self.width,
            input_size: self.input_size,
            quant: self.quant,
            algo: self.algo,
            overrides: self.overrides,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build() {
        let spec = ModelSpec::default();
        assert_eq!(spec.classes, 10);
        assert_eq!(spec.algo, ConvAlgo::Im2row);
    }

    #[test]
    fn invalid_fields_rejected() {
        assert!(matches!(
            ModelSpec::builder().classes(0).build(),
            Err(WaError::InvalidSpec {
                field: "classes",
                ..
            })
        ));
        assert!(matches!(
            ModelSpec::builder().width(0.0).build(),
            Err(WaError::InvalidSpec { field: "width", .. })
        ));
        assert!(matches!(
            ModelSpec::builder().width(f64::NAN).build(),
            Err(WaError::InvalidSpec { field: "width", .. })
        ));
        assert!(matches!(
            ModelSpec::builder()
                .algo(ConvAlgo::Winograd { m: 5 })
                .build(),
            Err(WaError::UnsupportedAlgo { .. })
        ));
        assert!(matches!(
            ModelSpec::builder()
                .override_layer(0, ConvAlgo::WinogradFlex { m: 7 })
                .build(),
            Err(WaError::UnsupportedAlgo { .. })
        ));
    }
}
