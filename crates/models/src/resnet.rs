//! ResNet-18, modified for CIFAR and Winograd as in the paper (§5.1):
//!
//! * stride-2 convolutions replaced by 2×2 max-pool + dense 3×3 conv
//!   ("there is no known equivalent for strided Winograd convolutions");
//! * the stem outputs 32 channels instead of 64 (memory peak reduction);
//! * the stem uses normal (direct) convolution — only the 16 block convs
//!   are Winograd-swappable;
//! * width multiplier 0.125–1.0 scales every channel count (Figure 4).

use wa_core::{ConvAlgo, ConvLayer};
use wa_nn::{BatchNorm2d, Conv2d, Layer, Param, QuantConfig, Tape, Var};
use wa_tensor::SeededRng;

use crate::common::{convert_convs, scale_width, ConvNet};

/// Two 3×3 convolutions with identity (or 1×1-projected) shortcut; the
/// downsampling variant max-pools its input first.
struct BasicBlock {
    conv1: ConvLayer,
    bn1: BatchNorm2d,
    conv2: ConvLayer,
    bn2: BatchNorm2d,
    /// 1×1 projection when channel counts change (always direct conv).
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    downsample: bool,
}

impl BasicBlock {
    fn new(
        name: &str,
        in_ch: usize,
        out_ch: usize,
        downsample: bool,
        quant: QuantConfig,
        rng: &mut SeededRng,
    ) -> BasicBlock {
        let conv1 = ConvLayer::new(
            &format!("{name}.conv1"),
            in_ch,
            out_ch,
            3,
            1,
            1,
            ConvAlgo::Im2row,
            quant,
            rng,
        );
        let conv2 = ConvLayer::new(
            &format!("{name}.conv2"),
            out_ch,
            out_ch,
            3,
            1,
            1,
            ConvAlgo::Im2row,
            quant,
            rng,
        );
        let shortcut = (in_ch != out_ch).then(|| {
            (
                Conv2d::new(&format!("{name}.proj"), in_ch, out_ch, 1, 1, 0, false, quant, rng),
                BatchNorm2d::new(&format!("{name}.proj_bn"), out_ch),
            )
        });
        BasicBlock {
            conv1,
            bn1: BatchNorm2d::new(&format!("{name}.bn1"), out_ch),
            conv2,
            bn2: BatchNorm2d::new(&format!("{name}.bn2"), out_ch),
            shortcut,
            downsample,
        }
    }

    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        let x = if self.downsample { tape.max_pool2d(x) } else { x };
        let mut h = self.conv1.forward(tape, x, train);
        h = self.bn1.forward(tape, h, train);
        h = tape.relu(h);
        h = self.conv2.forward(tape, h, train);
        h = self.bn2.forward(tape, h, train);
        let s = match &mut self.shortcut {
            Some((proj, bn)) => {
                let p = proj.forward(tape, x, train);
                bn.forward(tape, p, train)
            }
            None => x,
        };
        let sum = tape.add(h, s);
        tape.relu(sum)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
        if let Some((proj, bn)) = &mut self.shortcut {
            proj.visit_params(f);
            bn.visit_params(f);
        }
    }

    fn reset_statistics(&mut self) {
        self.conv1.reset_statistics();
        self.bn1.reset_statistics();
        self.conv2.reset_statistics();
        self.bn2.reset_statistics();
        if let Some((proj, bn)) = &mut self.shortcut {
            proj.reset_statistics();
            bn.reset_statistics();
        }
    }
}

/// The paper's ResNet-18 variant (see module docs).
///
/// # Example
///
/// ```
/// use wa_core::ConvAlgo;
/// use wa_models::{ConvNet, ResNet18};
/// use wa_nn::{Layer, QuantConfig, Tape};
/// use wa_tensor::SeededRng;
///
/// let mut rng = SeededRng::new(0);
/// let mut net = ResNet18::new(10, 0.125, QuantConfig::FP32, &mut rng);
/// assert_eq!(net.conv_count(), 16); // the 16 swappable 3×3 convs
/// net.set_algo(ConvAlgo::Winograd { m: 4 }); // last two blocks pinned to F2
/// let mut tape = Tape::new();
/// let x = tape.leaf(rng.uniform_tensor(&[1, 3, 16, 16], -1.0, 1.0));
/// let y = net.forward(&mut tape, x, false);
/// assert_eq!(tape.value(y).shape(), &[1, 10]);
/// ```
pub struct ResNet18 {
    stem: Conv2d,
    stem_bn: BatchNorm2d,
    blocks: Vec<BasicBlock>,
    head: wa_nn::Linear,
    width: f64,
}

impl ResNet18 {
    /// Builds the network with the given class count and width multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0` or `width <= 0.0`.
    pub fn new(classes: usize, width: f64, quant: QuantConfig, rng: &mut SeededRng) -> ResNet18 {
        assert!(classes > 0, "need at least one class");
        assert!(width > 0.0, "width multiplier must be positive");
        let stem_ch = scale_width(32, width);
        let chans = [
            scale_width(64, width),
            scale_width(128, width),
            scale_width(256, width),
            scale_width(512, width),
        ];
        let stem = Conv2d::new("stem", 3, stem_ch, 3, 1, 1, false, quant, rng);
        let stem_bn = BatchNorm2d::new("stem_bn", stem_ch);
        let mut blocks = Vec::with_capacity(8);
        let mut in_ch = stem_ch;
        for (stage, &out_ch) in chans.iter().enumerate() {
            for b in 0..2 {
                let downsample = stage > 0 && b == 0;
                blocks.push(BasicBlock::new(
                    &format!("layer{}.{}", stage + 1, b),
                    in_ch,
                    out_ch,
                    downsample,
                    quant,
                    rng,
                ));
                in_ch = out_ch;
            }
        }
        let head = wa_nn::Linear::new("fc", chans[3], classes, quant, rng);
        ResNet18 { stem, stem_bn, blocks, head, width }
    }

    /// Applies a uniform algorithm with the paper's policy: the last two
    /// residual blocks (4 convs) are pinned to F2 whenever `algo` uses a
    /// tile larger than F2.
    pub fn set_algo(&mut self, algo: ConvAlgo) {
        convert_convs(self, algo, 4);
    }

    /// Width multiplier used at construction.
    pub fn width(&self) -> f64 {
        self.width
    }
}

impl Layer for ResNet18 {
    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        let mut h = self.stem.forward(tape, x, train);
        h = self.stem_bn.forward(tape, h, train);
        h = tape.relu(h);
        for b in &mut self.blocks {
            h = b.forward(tape, h, train);
        }
        let pooled = tape.global_avg_pool(h);
        self.head.forward(tape, pooled, train)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem.visit_params(f);
        self.stem_bn.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.head.visit_params(f);
    }

    fn reset_statistics(&mut self) {
        self.stem.reset_statistics();
        self.stem_bn.reset_statistics();
        for b in &mut self.blocks {
            b.reset_statistics();
        }
        self.head.reset_statistics();
    }
}

impl ConvNet for ResNet18 {
    fn conv_layers_mut(&mut self) -> Vec<&mut ConvLayer> {
        let mut out = Vec::with_capacity(16);
        for b in &mut self.blocks {
            out.push(&mut b.conv1);
            out.push(&mut b.conv2);
        }
        out
    }

    fn model_name(&self) -> &str {
        "ResNet-18"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::current_algos;

    #[test]
    fn sixteen_swappable_convs() {
        let mut rng = SeededRng::new(0);
        let mut net = ResNet18::new(10, 0.125, QuantConfig::FP32, &mut rng);
        assert_eq!(net.conv_count(), 16);
    }

    #[test]
    fn full_width_parameter_count_near_11m() {
        let mut rng = SeededRng::new(1);
        let mut net = ResNet18::new(10, 1.0, QuantConfig::FP32, &mut rng);
        let params = net.param_count();
        assert!(
            (10_000_000..13_000_000).contains(&params),
            "full ResNet-18 should be ≈11M params, got {}",
            params
        );
    }

    #[test]
    fn eighth_width_parameter_count_near_215k() {
        // paper §5.1: models range between 215K and 11M parameters
        let mut rng = SeededRng::new(2);
        let mut net = ResNet18::new(10, 0.125, QuantConfig::FP32, &mut rng);
        let params = net.param_count();
        assert!(
            (120_000..320_000).contains(&params),
            "0.125-width ResNet-18 should be ≈215K params, got {}",
            params
        );
    }

    #[test]
    fn forward_shape_and_downsampling() {
        let mut rng = SeededRng::new(3);
        let mut net = ResNet18::new(7, 0.125, QuantConfig::FP32, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(rng.uniform_tensor(&[2, 3, 16, 16], -1.0, 1.0));
        let y = net.forward(&mut tape, x, true);
        assert_eq!(tape.value(y).shape(), &[2, 7]);
    }

    #[test]
    fn set_algo_pins_last_two_blocks_to_f2() {
        let mut rng = SeededRng::new(4);
        let mut net = ResNet18::new(10, 0.125, QuantConfig::FP32, &mut rng);
        net.set_algo(ConvAlgo::Winograd { m: 4 });
        let algos = current_algos(&mut net);
        assert_eq!(algos.len(), 16);
        for a in &algos[..12] {
            assert_eq!(*a, ConvAlgo::Winograd { m: 4 });
        }
        for a in &algos[12..] {
            assert_eq!(*a, ConvAlgo::Winograd { m: 2 }, "last two blocks must be F2");
        }
        // F2 itself is not pinned
        net.set_algo(ConvAlgo::Winograd { m: 2 });
        assert!(current_algos(&mut net).iter().all(|a| *a == ConvAlgo::Winograd { m: 2 }));
    }

    #[test]
    fn width_scales_channels() {
        let mut rng = SeededRng::new(5);
        let mut half = ResNet18::new(10, 0.5, QuantConfig::FP32, &mut rng);
        let mut full = ResNet18::new(10, 1.0, QuantConfig::FP32, &mut rng);
        assert!(half.param_count() < full.param_count() / 3);
    }
}
