//! ResNet-18, modified for CIFAR and Winograd as in the paper (§5.1):
//!
//! * stride-2 convolutions replaced by 2×2 max-pool + dense 3×3 conv
//!   ("there is no known equivalent for strided Winograd convolutions");
//! * the stem outputs 32 channels instead of 64 (memory peak reduction);
//! * the stem uses normal (direct) convolution — only the 16 block convs
//!   are Winograd-swappable;
//! * width multiplier 0.125–1.0 scales every channel count (Figure 4).

use wa_core::{ConvAlgo, ConvLayer};
use wa_nn::{
    BatchNorm2d, Conv2d, Infer, Layer, Linear, Param, QuantConfig, QuantStateMut, Tape, Var,
    WaError,
};
use wa_tensor::SeededRng;

use crate::common::{
    bn, conv1x1, convert_convs, linear, scale_width, stem_conv3x3, swappable_conv, ConvNet,
};
use crate::spec::ModelSpec;

/// Two 3×3 convolutions with identity (or 1×1-projected) shortcut; the
/// downsampling variant max-pools its input first.
struct BasicBlock {
    conv1: ConvLayer,
    bn1: BatchNorm2d,
    conv2: ConvLayer,
    bn2: BatchNorm2d,
    /// 1×1 projection when channel counts change (always direct conv).
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    downsample: bool,
}

impl BasicBlock {
    fn new(
        name: &str,
        in_ch: usize,
        out_ch: usize,
        downsample: bool,
        quant: QuantConfig,
        rng: &mut SeededRng,
    ) -> Result<BasicBlock, WaError> {
        let conv1 = swappable_conv(&format!("{name}.conv1"), in_ch, out_ch, 3, 1, quant, rng)?;
        let conv2 = swappable_conv(&format!("{name}.conv2"), out_ch, out_ch, 3, 1, quant, rng)?;
        let shortcut = if in_ch != out_ch {
            Some((
                conv1x1(&format!("{name}.proj"), in_ch, out_ch, false, quant, rng)?,
                bn(&format!("{name}.proj_bn"), out_ch)?,
            ))
        } else {
            None
        };
        Ok(BasicBlock {
            conv1,
            bn1: bn(&format!("{name}.bn1"), out_ch)?,
            conv2,
            bn2: bn(&format!("{name}.bn2"), out_ch)?,
            shortcut,
            downsample,
        })
    }

    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        let x = if self.downsample {
            tape.max_pool2d(x)
        } else {
            x
        };
        let mut h = self.conv1.forward(tape, x, train);
        h = self.bn1.forward(tape, h, train);
        h = tape.relu(h);
        h = self.conv2.forward(tape, h, train);
        h = self.bn2.forward(tape, h, train);
        let s = match &mut self.shortcut {
            Some((proj, bn)) => {
                let p = proj.forward(tape, x, train);
                bn.forward(tape, p, train)
            }
            None => x,
        };
        let sum = tape.add(h, s);
        tape.relu(sum)
    }

    /// Read-only (eval-mode) forward for the batched-inference path.
    fn infer(&self, tape: &mut Tape, x: Var) -> Result<Var, WaError> {
        let x = if self.downsample {
            tape.max_pool2d(x)
        } else {
            x
        };
        let mut h = self.conv1.infer(tape, x)?;
        h = self.bn1.infer(tape, h)?;
        h = tape.relu(h);
        h = self.conv2.infer(tape, h)?;
        h = self.bn2.infer(tape, h)?;
        let s = match &self.shortcut {
            Some((proj, bn)) => {
                let p = proj.infer(tape, x)?;
                bn.infer(tape, p)?
            }
            None => x,
        };
        let sum = tape.add(h, s);
        Ok(tape.relu(sum))
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
        if let Some((proj, bn)) = &mut self.shortcut {
            proj.visit_params(f);
            bn.visit_params(f);
        }
    }

    fn reset_statistics(&mut self) {
        self.conv1.reset_statistics();
        self.bn1.reset_statistics();
        self.conv2.reset_statistics();
        self.bn2.reset_statistics();
        if let Some((proj, bn)) = &mut self.shortcut {
            proj.reset_statistics();
            bn.reset_statistics();
        }
    }

    fn visit_quant_state(&mut self, f: &mut dyn FnMut(&str, QuantStateMut<'_>)) {
        self.conv1.visit_quant_state(f);
        self.bn1.visit_quant_state(f);
        self.conv2.visit_quant_state(f);
        self.bn2.visit_quant_state(f);
        if let Some((proj, bn)) = &mut self.shortcut {
            proj.visit_quant_state(f);
            bn.visit_quant_state(f);
        }
    }
}

/// The paper's ResNet-18 variant (see module docs).
///
/// # Example
///
/// ```
/// use wa_core::ConvAlgo;
/// use wa_models::{ConvNet, ModelSpec, ResNet18};
/// use wa_nn::{Layer, Tape};
/// use wa_tensor::SeededRng;
///
/// let mut rng = SeededRng::new(0);
/// let spec = ModelSpec::builder()
///     .classes(10)
///     .width(0.125)
///     .algo(ConvAlgo::Winograd { m: 4 }) // last two blocks pinned to F2
///     .build()?;
/// let mut net = ResNet18::from_spec(&spec, &mut rng)?;
/// assert_eq!(net.conv_count(), 16); // the 16 swappable 3×3 convs
/// let mut tape = Tape::new();
/// let x = tape.leaf(rng.uniform_tensor(&[1, 3, 16, 16], -1.0, 1.0));
/// let y = net.forward(&mut tape, x, false);
/// assert_eq!(tape.value(y).shape(), &[1, 10]);
/// # Ok::<(), wa_nn::WaError>(())
/// ```
pub struct ResNet18 {
    stem: Conv2d,
    stem_bn: BatchNorm2d,
    blocks: Vec<BasicBlock>,
    head: Linear,
    width: f64,
}

impl ResNet18 {
    /// Builds the network from a validated [`ModelSpec`]: construction,
    /// the uniform algorithm (with the paper's F2 pinning policy), then
    /// per-layer overrides.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] / [`WaError::UnsupportedAlgo`] if the
    /// spec is invalid or an override index is out of range.
    pub fn from_spec(spec: &ModelSpec, rng: &mut SeededRng) -> Result<ResNet18, WaError> {
        spec.validate()?;
        let quant = spec.quant;
        let stem_ch = scale_width(32, spec.width);
        let chans = [
            scale_width(64, spec.width),
            scale_width(128, spec.width),
            scale_width(256, spec.width),
            scale_width(512, spec.width),
        ];
        let stem = stem_conv3x3("stem", 3, stem_ch, quant, rng)?;
        let stem_bn = bn("stem_bn", stem_ch)?;
        let mut blocks = Vec::with_capacity(8);
        let mut in_ch = stem_ch;
        for (stage, &out_ch) in chans.iter().enumerate() {
            for b in 0..2 {
                let downsample = stage > 0 && b == 0;
                blocks.push(BasicBlock::new(
                    &format!("layer{}.{}", stage + 1, b),
                    in_ch,
                    out_ch,
                    downsample,
                    quant,
                    rng,
                )?);
                in_ch = out_ch;
            }
        }
        let head = linear("fc", chans[3], spec.classes, quant, rng)?;
        let mut net = ResNet18 {
            stem,
            stem_bn,
            blocks,
            head,
            width: spec.width,
        };
        net.try_set_algo(spec.algo)?;
        spec.check_override_bounds(net.conv_count())?;
        for &(idx, algo) in &spec.overrides {
            net.conv_layers_mut()[idx].try_convert(algo)?;
        }
        Ok(net)
    }

    /// Applies a uniform algorithm with the paper's policy: the last two
    /// residual blocks (4 convs) are pinned to F2 whenever `algo` uses a
    /// tile larger than F2.
    ///
    /// # Errors
    ///
    /// [`WaError::UnsupportedAlgo`] if `algo` is unusable.
    pub fn try_set_algo(&mut self, algo: ConvAlgo) -> Result<(), WaError> {
        convert_convs(self, algo, 4)
    }

    /// Panicking wrapper around [`ResNet18::try_set_algo`] for
    /// experiment code using known-good algorithms.
    ///
    /// # Panics
    ///
    /// Panics if `algo` is unusable.
    pub fn set_algo(&mut self, algo: ConvAlgo) {
        self.try_set_algo(algo)
            .unwrap_or_else(|e| panic!("set_algo({algo}): {e}"));
    }

    /// Width multiplier used at construction.
    pub fn width(&self) -> f64 {
        self.width
    }

    fn check_input(&self, shape: &[usize]) -> Result<(), WaError> {
        if shape.len() != 4 || shape[1] != 3 {
            return Err(WaError::shape("ResNet18 input", &[0, 3, 0, 0], shape));
        }
        // the three downsampling stages each max-pool (even dims needed),
        // so spatial dims must be divisible by 8
        if shape[2] == 0 || !shape[2].is_multiple_of(8) || !shape[3].is_multiple_of(8) {
            return Err(WaError::shape(
                "ResNet18 input (spatial dims must be nonzero multiples of 8 \
                 for the three max-pool stages)",
                &[0, 3, 8, 8],
                shape,
            ));
        }
        Ok(())
    }
}

impl Layer for ResNet18 {
    fn try_forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Result<Var, WaError> {
        self.check_input(tape.value(x).shape())?;
        Ok(self.forward(tape, x, train))
    }

    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        let mut h = self.stem.forward(tape, x, train);
        h = self.stem_bn.forward(tape, h, train);
        h = tape.relu(h);
        for b in &mut self.blocks {
            h = b.forward(tape, h, train);
        }
        let pooled = tape.global_avg_pool(h);
        self.head.forward(tape, pooled, train)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem.visit_params(f);
        self.stem_bn.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.head.visit_params(f);
    }

    fn reset_statistics(&mut self) {
        self.stem.reset_statistics();
        self.stem_bn.reset_statistics();
        for b in &mut self.blocks {
            b.reset_statistics();
        }
        self.head.reset_statistics();
    }

    fn visit_quant_state(&mut self, f: &mut dyn FnMut(&str, QuantStateMut<'_>)) {
        self.stem.visit_quant_state(f);
        self.stem_bn.visit_quant_state(f);
        for b in &mut self.blocks {
            b.visit_quant_state(f);
        }
        self.head.visit_quant_state(f);
    }
}

impl Infer for ResNet18 {
    fn infer(&self, tape: &mut Tape, x: Var) -> Result<Var, WaError> {
        self.check_input(tape.value(x).shape())?;
        let mut h = self.stem.infer(tape, x)?;
        h = self.stem_bn.infer(tape, h)?;
        h = tape.relu(h);
        for b in &self.blocks {
            h = b.infer(tape, h)?;
        }
        let pooled = tape.global_avg_pool(h);
        self.head.infer(tape, pooled)
    }
}

impl ConvNet for ResNet18 {
    fn conv_layers_mut(&mut self) -> Vec<&mut ConvLayer> {
        let mut out = Vec::with_capacity(16);
        for b in &mut self.blocks {
            out.push(&mut b.conv1);
            out.push(&mut b.conv2);
        }
        out
    }

    fn model_name(&self) -> &str {
        "ResNet-18"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::current_algos;

    fn basic(classes: usize, width: f64) -> ModelSpec {
        ModelSpec::builder()
            .classes(classes)
            .width(width)
            .build()
            .unwrap()
    }

    #[test]
    fn sixteen_swappable_convs() {
        let mut rng = SeededRng::new(0);
        let mut net = ResNet18::from_spec(&basic(10, 0.125), &mut rng).unwrap();
        assert_eq!(net.conv_count(), 16);
    }

    #[test]
    fn full_width_parameter_count_near_11m() {
        let mut rng = SeededRng::new(1);
        let mut net = ResNet18::from_spec(&basic(10, 1.0), &mut rng).unwrap();
        let params = net.param_count();
        assert!(
            (10_000_000..13_000_000).contains(&params),
            "full ResNet-18 should be ≈11M params, got {}",
            params
        );
    }

    #[test]
    fn eighth_width_parameter_count_near_215k() {
        // paper §5.1: models range between 215K and 11M parameters
        let mut rng = SeededRng::new(2);
        let mut net = ResNet18::from_spec(&basic(10, 0.125), &mut rng).unwrap();
        let params = net.param_count();
        assert!(
            (120_000..320_000).contains(&params),
            "0.125-width ResNet-18 should be ≈215K params, got {}",
            params
        );
    }

    #[test]
    fn forward_shape_and_downsampling() {
        let mut rng = SeededRng::new(3);
        let mut net = ResNet18::from_spec(&basic(7, 0.125), &mut rng).unwrap();
        let mut tape = Tape::new();
        let x = tape.leaf(rng.uniform_tensor(&[2, 3, 16, 16], -1.0, 1.0));
        let y = net.try_forward(&mut tape, x, true).unwrap();
        assert_eq!(tape.value(y).shape(), &[2, 7]);
    }

    #[test]
    fn try_forward_rejects_wrong_input_channels() {
        let mut rng = SeededRng::new(9);
        let mut net = ResNet18::from_spec(&basic(10, 0.125), &mut rng).unwrap();
        let mut tape = Tape::new();
        let x = tape.leaf(rng.uniform_tensor(&[1, 4, 16, 16], -1.0, 1.0));
        assert!(matches!(
            net.try_forward(&mut tape, x, false),
            Err(WaError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn spec_algo_pins_last_two_blocks_to_f2() {
        let mut rng = SeededRng::new(4);
        let spec = ModelSpec::builder()
            .classes(10)
            .width(0.125)
            .algo(ConvAlgo::Winograd { m: 4 })
            .build()
            .unwrap();
        let mut net = ResNet18::from_spec(&spec, &mut rng).unwrap();
        let algos = current_algos(&mut net);
        assert_eq!(algos.len(), 16);
        for a in &algos[..12] {
            assert_eq!(*a, ConvAlgo::Winograd { m: 4 });
        }
        for a in &algos[12..] {
            assert_eq!(
                *a,
                ConvAlgo::Winograd { m: 2 },
                "last two blocks must be F2"
            );
        }
        // F2 itself is not pinned
        net.try_set_algo(ConvAlgo::Winograd { m: 2 }).unwrap();
        assert!(current_algos(&mut net)
            .iter()
            .all(|a| *a == ConvAlgo::Winograd { m: 2 }));
    }

    #[test]
    fn overrides_apply_after_uniform_algo() {
        let mut rng = SeededRng::new(6);
        let spec = ModelSpec::builder()
            .classes(10)
            .width(0.125)
            .algo(ConvAlgo::Winograd { m: 2 })
            .override_layer(0, ConvAlgo::Im2row)
            .override_layer(3, ConvAlgo::WinogradFlex { m: 4 })
            .build()
            .unwrap();
        let mut net = ResNet18::from_spec(&spec, &mut rng).unwrap();
        let algos = current_algos(&mut net);
        assert_eq!(algos[0], ConvAlgo::Im2row);
        assert_eq!(algos[3], ConvAlgo::WinogradFlex { m: 4 });
        assert_eq!(algos[1], ConvAlgo::Winograd { m: 2 });
    }

    #[test]
    fn out_of_range_override_is_rejected() {
        let mut rng = SeededRng::new(7);
        let spec = ModelSpec::builder()
            .classes(10)
            .width(0.125)
            .override_layer(16, ConvAlgo::Winograd { m: 2 })
            .build()
            .unwrap();
        let Err(err) = ResNet18::from_spec(&spec, &mut rng) else {
            panic!("out-of-range override must be rejected")
        };
        assert!(
            matches!(
                err,
                WaError::InvalidSpec {
                    field: "overrides",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn width_scales_channels() {
        let mut rng = SeededRng::new(5);
        let mut half = ResNet18::from_spec(&basic(10, 0.5), &mut rng).unwrap();
        let mut full = ResNet18::from_spec(&basic(10, 1.0), &mut rng).unwrap();
        assert!(half.param_count() < full.param_count() / 3);
    }
}
