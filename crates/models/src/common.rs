//! The model-zoo trait and whole-model surgery helpers.

use wa_core::{ConvAlgo, ConvLayer, ConvSpec};
use wa_nn::{
    BatchNorm2d, BatchNormSpec, Conv2d, Conv2dSpec, Layer, Linear, LinearSpec, QuantConfig, WaError,
};
use wa_tensor::SeededRng;

/// A CNN whose 3×3 (or 5×5) convolutions can be re-implemented with any
/// [`ConvAlgo`] — the interface the paper's experiments (Tables 1/3/4/5,
/// Figures 4/5/6) and wiNAS operate on.
pub trait ConvNet: Layer {
    /// Mutable access to the swappable convolution layers, in network
    /// order. 1×1 convolutions and the input layer are *not* included:
    /// the paper fixes both to direct convolution (§5.1, A.3).
    fn conv_layers_mut(&mut self) -> Vec<&mut ConvLayer>;

    /// Model name for logs.
    fn model_name(&self) -> &str;

    /// Number of swappable convolution layers.
    fn conv_count(&mut self) -> usize {
        self.conv_layers_mut().len()
    }

    /// The current [`ConvSpec`] of every swappable layer, in network
    /// order — the model's searchable state as data.
    fn conv_specs(&mut self) -> Vec<ConvSpec> {
        self.conv_layers_mut().iter().map(|l| l.spec()).collect()
    }
}

/// Converts every swappable convolution to `algo`, pinning the **last**
/// `pin_last_f2` layers to F2 instead — the paper's policy for ResNet-18:
/// "all layers in the network use the same tile size, except the last two
/// residual blocks which are kept fixed to F2" (§5.1).
///
/// Weights are preserved (surgery), so this implements both the Table 1
/// post-training swap and the network construction for Winograd-aware
/// training.
///
/// # Errors
///
/// [`WaError::UnsupportedAlgo`] if any layer cannot implement `algo`;
/// already-converted layers keep their new algorithm (convert a valid
/// uniform config, or inspect [`current_algos`], to recover).
pub fn convert_convs(
    net: &mut dyn ConvNet,
    algo: ConvAlgo,
    pin_last_f2: usize,
) -> Result<(), WaError> {
    let mut layers = net.conv_layers_mut();
    let n = layers.len();
    for (i, layer) in layers.iter_mut().enumerate() {
        let target = if i + pin_last_f2 >= n && algo.tile_m().map(|m| m > 2).unwrap_or(false) {
            match algo {
                ConvAlgo::WinogradFlex { .. } => ConvAlgo::WinogradFlex { m: 2 },
                _ => ConvAlgo::Winograd { m: 2 },
            }
        } else {
            algo
        };
        layer.try_convert(target)?;
    }
    Ok(())
}

/// Applies per-layer algorithm assignments (e.g. a wiNAS result).
///
/// # Errors
///
/// [`WaError::InvalidSpec`] if `algos.len()` differs from the layer
/// count (no layer is touched); [`WaError::UnsupportedAlgo`] if an
/// assignment cannot implement its layer.
pub fn apply_algos(net: &mut dyn ConvNet, algos: &[ConvAlgo]) -> Result<(), WaError> {
    let mut layers = net.conv_layers_mut();
    if layers.len() != algos.len() {
        return Err(WaError::invalid(
            "ModelSpec",
            "overrides",
            format!(
                "expected {} algo assignments, got {}",
                layers.len(),
                algos.len()
            ),
        ));
    }
    for (layer, &algo) in layers.iter_mut().zip(algos) {
        layer.try_convert(algo)?;
    }
    Ok(())
}

/// Reads back the current per-layer algorithms.
pub fn current_algos(net: &mut dyn ConvNet) -> Vec<ConvAlgo> {
    net.conv_layers_mut().iter().map(|l| l.algo()).collect()
}

/// Sets the quantization config on every swappable convolution.
pub fn set_conv_quant(net: &mut dyn ConvNet, q: QuantConfig) {
    for layer in net.conv_layers_mut() {
        layer.set_quant(q);
    }
}

/// Applies per-layer quantization assignments (wiNAS-Q results).
///
/// # Errors
///
/// [`WaError::InvalidSpec`] if lengths disagree (no layer is touched).
pub fn apply_quants(net: &mut dyn ConvNet, quants: &[QuantConfig]) -> Result<(), WaError> {
    let mut layers = net.conv_layers_mut();
    if layers.len() != quants.len() {
        return Err(WaError::invalid(
            "ModelSpec",
            "overrides",
            format!(
                "expected {} quant assignments, got {}",
                layers.len(),
                quants.len()
            ),
        ));
    }
    for (layer, &q) in layers.iter_mut().zip(quants) {
        layer.set_quant(q);
    }
    Ok(())
}

/// Scales a channel count by a width multiplier, keeping at least one
/// channel (the MobileNet-style sweep of paper Figure 4).
pub fn scale_width(base: usize, width: f64) -> usize {
    ((base as f64 * width).round() as usize).max(1)
}

// ---- construction helpers shared by the zoo ---------------------------

/// A swappable convolution (starts as im2row; surgery re-implements it).
pub(crate) fn swappable_conv(
    name: &str,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    pad: usize,
    quant: QuantConfig,
    rng: &mut SeededRng,
) -> Result<ConvLayer, WaError> {
    let spec = ConvSpec::builder()
        .name(name)
        .in_channels(in_ch)
        .out_channels(out_ch)
        .kernel(kernel)
        .pad(pad)
        .quant(quant)
        .build()?;
    ConvLayer::from_spec(&spec, rng)
}

/// A fixed (never swapped) direct 3×3 "same" convolution — the stems.
pub(crate) fn stem_conv3x3(
    name: &str,
    in_ch: usize,
    out_ch: usize,
    quant: QuantConfig,
    rng: &mut SeededRng,
) -> Result<Conv2d, WaError> {
    let spec = Conv2dSpec::builder(name)
        .in_channels(in_ch)
        .out_channels(out_ch)
        .quant(quant)
        .build()?;
    Conv2d::from_spec(&spec, rng)
}

/// A fixed 1×1 convolution (projections, squeeze/expand, classifiers).
pub(crate) fn conv1x1(
    name: &str,
    in_ch: usize,
    out_ch: usize,
    bias: bool,
    quant: QuantConfig,
    rng: &mut SeededRng,
) -> Result<Conv2d, WaError> {
    let spec = Conv2dSpec::builder(name)
        .in_channels(in_ch)
        .out_channels(out_ch)
        .kernel(1)
        .bias(bias)
        .quant(quant)
        .build()?;
    Conv2d::from_spec(&spec, rng)
}

/// A batch-norm layer with default momentum/eps.
pub(crate) fn bn(name: &str, channels: usize) -> Result<BatchNorm2d, WaError> {
    BatchNorm2d::from_spec(&BatchNormSpec::builder(name).channels(channels).build()?)
}

/// A fully connected head.
pub(crate) fn linear(
    name: &str,
    in_features: usize,
    out_features: usize,
    quant: QuantConfig,
    rng: &mut SeededRng,
) -> Result<Linear, WaError> {
    let spec = LinearSpec::builder(name)
        .in_features(in_features)
        .out_features(out_features)
        .quant(quant)
        .build()?;
    Linear::from_spec(&spec, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_width_rounds_and_floors() {
        assert_eq!(scale_width(64, 1.0), 64);
        assert_eq!(scale_width(64, 0.125), 8);
        assert_eq!(scale_width(3, 0.125), 1);
    }
}
