//! The model-zoo trait and whole-model surgery helpers.

use wa_core::{ConvAlgo, ConvLayer};
use wa_nn::{Layer, QuantConfig};

/// A CNN whose 3×3 (or 5×5) convolutions can be re-implemented with any
/// [`ConvAlgo`] — the interface the paper's experiments (Tables 1/3/4/5,
/// Figures 4/5/6) and wiNAS operate on.
pub trait ConvNet: Layer {
    /// Mutable access to the swappable convolution layers, in network
    /// order. 1×1 convolutions and the input layer are *not* included:
    /// the paper fixes both to direct convolution (§5.1, A.3).
    fn conv_layers_mut(&mut self) -> Vec<&mut ConvLayer>;

    /// Model name for logs.
    fn model_name(&self) -> &str;

    /// Number of swappable convolution layers.
    fn conv_count(&mut self) -> usize {
        self.conv_layers_mut().len()
    }
}

/// Converts every swappable convolution to `algo`, pinning the **last**
/// `pin_last_f2` layers to F2 instead — the paper's policy for ResNet-18:
/// "all layers in the network use the same tile size, except the last two
/// residual blocks which are kept fixed to F2" (§5.1).
///
/// Weights are preserved (surgery), so this implements both the Table 1
/// post-training swap and the network construction for Winograd-aware
/// training.
pub fn convert_convs(net: &mut dyn ConvNet, algo: ConvAlgo, pin_last_f2: usize) {
    let mut layers = net.conv_layers_mut();
    let n = layers.len();
    for (i, layer) in layers.iter_mut().enumerate() {
        let target = if i + pin_last_f2 >= n && algo.tile_m().map(|m| m > 2).unwrap_or(false) {
            match algo {
                ConvAlgo::WinogradFlex { .. } => ConvAlgo::WinogradFlex { m: 2 },
                _ => ConvAlgo::Winograd { m: 2 },
            }
        } else {
            algo
        };
        layer.convert(target);
    }
}

/// Applies per-layer algorithm assignments (e.g. a wiNAS result).
///
/// # Panics
///
/// Panics if `algos.len()` differs from the layer count.
pub fn apply_algos(net: &mut dyn ConvNet, algos: &[ConvAlgo]) {
    let mut layers = net.conv_layers_mut();
    assert_eq!(layers.len(), algos.len(), "expected {} algo assignments", layers.len());
    for (layer, &algo) in layers.iter_mut().zip(algos) {
        layer.convert(algo);
    }
}

/// Reads back the current per-layer algorithms.
pub fn current_algos(net: &mut dyn ConvNet) -> Vec<ConvAlgo> {
    net.conv_layers_mut().iter().map(|l| l.algo()).collect()
}

/// Sets the quantization config on every swappable convolution.
pub fn set_conv_quant(net: &mut dyn ConvNet, q: QuantConfig) {
    for layer in net.conv_layers_mut() {
        layer.set_quant(q);
    }
}

/// Applies per-layer quantization assignments (wiNAS-Q results).
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn apply_quants(net: &mut dyn ConvNet, quants: &[QuantConfig]) {
    let mut layers = net.conv_layers_mut();
    assert_eq!(layers.len(), quants.len(), "expected {} quant assignments", layers.len());
    for (layer, &q) in layers.iter_mut().zip(quants) {
        layer.set_quant(q);
    }
}

/// Scales a channel count by a width multiplier, keeping at least one
/// channel (the MobileNet-style sweep of paper Figure 4).
pub fn scale_width(base: usize, width: f64) -> usize {
    ((base as f64 * width).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_width_rounds_and_floors() {
        assert_eq!(scale_width(64, 1.0), 64);
        assert_eq!(scale_width(64, 0.125), 8);
        assert_eq!(scale_width(3, 0.125), 1);
    }
}
