//! Post-training workflows: Table 1 swaps and Figure 6 adaptation.

use wa_core::{evaluate, fit, warm_up, ConvAlgo, History, LabeledBatch, TrainConfig};
use wa_nn::{QuantConfig, WaError};

use crate::common::{convert_convs, set_conv_quant, ConvNet};

/// Table 1 experiment: swap a trained model's convolutions to `algo` at
/// quantization `quant`, warm up every moving average on (a subset of)
/// the training set *without touching the weights*, and evaluate.
///
/// Returns `(val_loss, val_accuracy)` after the swap.
///
/// # Errors
///
/// [`WaError::UnsupportedAlgo`] if any layer cannot implement `algo`.
pub fn swap_and_evaluate(
    net: &mut dyn ConvNet,
    algo: ConvAlgo,
    quant: QuantConfig,
    warmup_batches: &[LabeledBatch],
    val_batches: &[LabeledBatch],
    pin_last_f2: usize,
) -> Result<(f64, f64), WaError> {
    convert_convs(net, algo, pin_last_f2)?;
    set_conv_quant(net, quant);
    // re-estimate every moving average from scratch: batch-norm statistics
    // may carry values from a previous (possibly collapsed) configuration
    net.reset_statistics();
    warm_up(net, warmup_batches);
    Ok(evaluate(net, val_batches))
}

/// Figure 6 experiment: swap a pretrained model to a Winograd-aware
/// configuration and *retrain for a few epochs* — "an INT8 ResNet-18 F4
/// can be adapted from a model … trained end-to-end with standard
/// convolutions in 20 epochs of retraining … only possible when allowing
/// the transformation matrices to evolve" (§6.1).
///
/// # Errors
///
/// [`WaError::UnsupportedAlgo`] if any layer cannot implement `algo`.
pub fn adapt(
    net: &mut dyn ConvNet,
    algo: ConvAlgo,
    quant: QuantConfig,
    train_batches: &[LabeledBatch],
    val_batches: &[LabeledBatch],
    config: &TrainConfig,
    pin_last_f2: usize,
) -> Result<History, WaError> {
    convert_convs(net, algo, pin_last_f2)?;
    set_conv_quant(net, quant);
    Ok(fit(net, train_batches, val_batches, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lenet::LeNet;
    use crate::spec::ModelSpec;
    use wa_core::OptimKind;
    use wa_data::mnist_like;
    use wa_tensor::SeededRng;

    #[test]
    fn swap_fp32_f2_is_accuracy_neutral_and_int8_f6_collapses() {
        // miniature Table 1 on LeNet/mnist-like
        let mut rng = SeededRng::new(0);
        let ds = mnist_like(12, 12, 1);
        let (train, val) = ds.split(0.8);
        let train_b = train.batches(24);
        let val_b = val.batches(24);
        let spec = ModelSpec::builder()
            .classes(10)
            .input_size(12)
            .build()
            .unwrap();
        let mut net = LeNet::from_spec(&spec, &mut rng).unwrap();
        let cfg = TrainConfig {
            epochs: 6,
            optim: OptimKind::Adam { lr: 2e-3 },
            weight_decay: 0.0,
            cosine_to: Some(1e-4),
        };
        let hist = fit(&mut net, &train_b, &val_b, &cfg);
        let base = hist.final_val_acc();
        assert!(base > 0.5, "baseline LeNet should learn, got {}", base);

        // FP32 F2 swap: accuracy preserved
        let (_, acc_f2) = swap_and_evaluate(
            &mut net,
            ConvAlgo::Winograd { m: 2 },
            QuantConfig::FP32,
            &train_b[..1],
            &val_b,
            0,
        )
        .unwrap();
        assert!(
            (acc_f2 - base).abs() < 0.12,
            "FP32 F2 swap: {} vs {}",
            acc_f2,
            base
        );

        // INT8 F6 swap (10×10 tiles on 5×5 filters): collapse
        let (_, acc_f6) = swap_and_evaluate(
            &mut net,
            ConvAlgo::Winograd { m: 6 },
            QuantConfig::uniform(wa_quant::BitWidth::INT8),
            &train_b[..1],
            &val_b,
            0,
        )
        .unwrap();
        assert!(
            acc_f6 < base - 0.2,
            "INT8 F6 swap should collapse: {} vs baseline {}",
            acc_f6,
            base
        );
    }
}
